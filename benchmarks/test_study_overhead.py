"""Benchmark: Study expansion + dispatch overhead over the raw SweepRunner.

The Study layer is pure orchestration -- axis expansion, factory dispatch,
axis-column attachment -- so running a sweep through a
:class:`~repro.studies.study.Study` must cost essentially the same as
hand-building the scenario list and calling
:meth:`SweepRunner.run_table <repro.sweep.runner.SweepRunner.run_table>`
directly.

Wall-clock evaluation time in CI varies by ~10% run to run, far more than
the ~1% true overhead, so the pin isolates the orchestration delta instead
of differencing two noisy cold sweeps: both paths run against one *warm*
result cache (evaluation cost ~0, identical cache lookups and scenario
construction), interleaved and best-of-N, so the timing delta is exactly
the Study layer's expansion, factory dispatch, and axis-column attachment.
That delta, relative to the cold end-to-end sweep time, must stay under 5%.
Results land in ``BENCH_study.json`` for the CI artifact.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

from benchmarks.conftest import emit
from repro.studies import Study
from repro.sweep import Scenario, SweepRunner, expand_grid

BENCH_STUDY_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_study.json"

#: The shared grid: model x batch x prompt inference predictions on one node.
_AXES = {
    "model": ["Llama2-7B", "Llama2-13B"],
    "batch_size": [1, 2, 4, 8, 16, 32],
    "prompt_tokens": [64, 128, 256, 512],
    "generated_tokens": [16, 32, 64],
}
_FIXED = {"system": "A100", "tensor_parallel": 8}


def _study() -> Study:
    return Study(
        name="study-overhead-grid",
        kind="inference",
        axes=_AXES,
        fixed=_FIXED,
        extract=lambda result: {"latency_s": result.value.total_latency},
    )


def _scenarios():
    return [
        Scenario.inference(_FIXED["system"], tensor_parallel=_FIXED["tensor_parallel"], **combo)
        for combo in expand_grid(**_AXES)
    ]


def _timed(fn):
    gc.collect()  # pay accumulated collection debt outside the timed region
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def test_study_dispatch_overhead_under_5_percent(benchmark):
    study = _study()
    rows = sum(1 for _ in study.combos())
    extract = lambda result: {"latency_s": result.value.total_latency}  # noqa: E731

    runner = SweepRunner(cache_size=4 * rows)
    cold_seconds, _ = _timed(lambda: runner.run_table(_scenarios(), extract=extract))

    # Warm cache from here on: evaluation cost ~0 for both paths, so the
    # timing difference is exactly the Study layer's expansion + dispatch
    # (both paths build their 144 scenarios inside the timed region, as a
    # real caller of either API would).  Interleave repetitions and keep
    # each path's best time so host load drift hits both alike.
    direct_seconds = study_seconds = float("inf")
    direct_table = study_table = None
    for _ in range(7):
        elapsed, direct_table = _timed(lambda: runner.run_table(_scenarios(), extract=extract))
        direct_seconds = min(direct_seconds, elapsed)
        elapsed, study_table = _timed(lambda: study.run(runner=runner))
        study_seconds = min(study_seconds, elapsed)
    benchmark.pedantic(lambda: study.run(runner=runner), rounds=1, iterations=1)

    overhead_pct = (study_seconds - direct_seconds) / cold_seconds * 100.0
    record = {
        "benchmark": "study_vs_direct_run_table",
        "rows": rows,
        "cold_sweep_seconds": cold_seconds,
        "direct_warm_seconds": direct_seconds,
        "study_warm_seconds": study_seconds,
        "dispatch_delta_seconds": study_seconds - direct_seconds,
        "overhead_pct_of_cold_sweep": overhead_pct,
    }
    benchmark.extra_info.update(record)
    BENCH_STUDY_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        f"study dispatch overhead: {rows}-scenario inference grid\n"
        f"  cold sweep (evaluations)       : {cold_seconds * 1e3:8.1f} ms\n"
        f"  direct run_table, warm cache   : {direct_seconds * 1e3:8.1f} ms\n"
        f"  Study.run, warm cache          : {study_seconds * 1e3:8.1f} ms\n"
        f"  expansion+dispatch overhead    : {overhead_pct:8.2f} % of the cold sweep"
        f"  -> {BENCH_STUDY_PATH.name}"
    )

    # Same rows (axis columns + metric), same values, negligible overhead.
    assert len(study_table) == len(direct_table) == rows
    assert study_table["latency_s"].tolist() == direct_table["latency_s"].tolist()
    assert overhead_pct < 5.0, f"Study layer adds {overhead_pct:.2f}% over run_table"
