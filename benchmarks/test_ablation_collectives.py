"""Ablation: ring vs double-binary-tree all-reduce for inference TP scaling (Eq. 3 vs Eq. 4).

The paper adopts the double-binary-tree algorithm for inference because its
latency term grows as log2(N) instead of (N-1), which "helps scale inference
up to 8 GPUs".  This ablation prices the Llama2-13B decode phase with both
algorithms and shows the tree widening its advantage as the TP degree grows,
while making no difference for the huge, bandwidth-dominated collectives of
training.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.formatting import render_table
from repro.comm.collectives import CollectiveAlgorithm
from repro.comm.fabric import CollectiveModel
from repro.core.inference import InferencePerformanceModel
from repro.hardware.cluster import build_system
from repro.models.zoo import get_model
from repro.units import MIB


def _sweep():
    model = get_model("Llama2-13B")
    system = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
    rows = []
    for algorithm in (CollectiveAlgorithm.RING, CollectiveAlgorithm.DOUBLE_BINARY_TREE):
        collective_model = CollectiveModel(system=system, algorithm=algorithm)
        inference = InferencePerformanceModel(system=system, collective_model=collective_model)
        for tp in (2, 4, 8):
            report = inference.predict(model, tensor_parallel=tp)
            rows.append(
                {
                    "algorithm": algorithm.value,
                    "tp": tp,
                    "latency_ms": report.total_latency_ms,
                    "communication_ms": report.communication_time * 1e3,
                }
            )
    # Training-sized collective for reference: 50 MiB gradient-sized all-reduce.
    big_message = 50 * MIB
    ring_big = CollectiveModel(system=system, algorithm=CollectiveAlgorithm.RING).all_reduce(big_message, 8)
    tree_big = CollectiveModel(system=system, algorithm=CollectiveAlgorithm.DOUBLE_BINARY_TREE).all_reduce(big_message, 8)
    return rows, ring_big, tree_big


def test_ablation_ring_vs_tree_all_reduce(benchmark):
    rows, ring_big, tree_big = run_once(benchmark, _sweep)

    emit(render_table(rows, title="Ablation: ring vs double-binary-tree all-reduce (Llama2-13B inference)", precision=1))
    emit(f"50 MiB training-style all-reduce: ring = {ring_big*1e6:.0f} us, tree = {tree_big*1e6:.0f} us")

    by_key = {(row["algorithm"], row["tp"]): row for row in rows}
    benchmark.extra_info["tree_gain_tp8_ms"] = round(
        by_key[("ring", 8)]["communication_ms"] - by_key[("double_binary_tree", 8)]["communication_ms"], 1
    )

    # The tree algorithm never loses, and its advantage grows with the group size.
    gains = []
    for tp in (2, 4, 8):
        ring = by_key[("ring", tp)]["communication_ms"]
        tree = by_key[("double_binary_tree", tp)]["communication_ms"]
        assert tree <= ring + 1e-9
        gains.append(ring - tree)
    assert gains[2] > gains[1] > gains[0] >= 0
    # End-to-end latency at TP=8 visibly benefits from the tree.
    assert by_key[("double_binary_tree", 8)]["latency_ms"] < by_key[("ring", 8)]["latency_ms"]
    # For large bandwidth-bound messages the two algorithms are nearly identical.
    assert abs(ring_big - tree_big) / ring_big < 0.15
