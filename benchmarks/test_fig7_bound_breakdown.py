"""Benchmark: regenerate paper Fig. 7 (GEMM-time bound breakdown vs technology node).

For a single transformer layer of the GPT-7B technology-node case study,
split the per-layer GEMM time into compute-bound and memory-bound parts for
HBM2, HBM3 and HBM4 memory.  The paper shows the memory-bound share growing
as the logic node advances (compute gets faster while DRAM does not), with
faster HBM pushing the cross-over to later nodes.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.experiments import fig7_bound_breakdown
from repro.analysis.formatting import render_table

_COMBINATIONS = [
    {"dram": "HBM2", "network": "NDR-x8"},
    {"dram": "HBM3", "network": "NDR-x8"},
    {"dram": "HBM4", "network": "NDR-x8"},
]


def test_fig7_bound_breakdown(benchmark):
    rows = run_once(benchmark, fig7_bound_breakdown, combinations=_COMBINATIONS)

    emit(
        render_table(
            rows,
            columns=["technology_node", "dram", "compute_bound_ms", "memory_bound_ms", "memory_bound_fraction"],
            title="Fig. 7: per-layer GEMM time split by bound type vs technology node",
            precision=3,
        )
    )

    by_dram = {}
    for row in rows:
        by_dram.setdefault(row["dram"], {})[row["technology_node"]] = row

    benchmark.extra_info["hbm2_n1_memory_fraction"] = round(by_dram["HBM2"]["N1"]["memory_bound_fraction"], 3)
    benchmark.extra_info["hbm4_n1_memory_fraction"] = round(by_dram["HBM4"]["N1"]["memory_bound_fraction"], 3)

    for dram, curve in by_dram.items():
        fractions = [curve[node]["memory_bound_fraction"] for node in ("N12", "N10", "N7", "N5", "N3", "N2", "N1")]
        # The memory-bound share grows monotonically (or stays flat) with node scaling.
        assert all(later >= earlier - 1e-9 for earlier, later in zip(fractions, fractions[1:])), dram
    # By N1 a substantial part of the GEMM time is memory bound on HBM2, and far more
    # than at N12 where the slower compute kept the GEMMs compute bound.
    assert by_dram["HBM2"]["N1"]["memory_bound_fraction"] > 0.35
    assert by_dram["HBM2"]["N1"]["memory_bound_fraction"] > 3 * by_dram["HBM2"]["N12"]["memory_bound_fraction"]
    # Old node, fast memory: still compute dominated.
    assert by_dram["HBM4"]["N12"]["memory_bound_fraction"] < 0.3
    # Faster HBM keeps more of the GEMM time compute bound at the most advanced node.
    assert (
        by_dram["HBM4"]["N1"]["memory_bound_fraction"]
        <= by_dram["HBM3"]["N1"]["memory_bound_fraction"]
        <= by_dram["HBM2"]["N1"]["memory_bound_fraction"]
    )
    # Total per-layer GEMM time shrinks with node scaling (for fixed memory).
    assert (
        by_dram["HBM2"]["N1"]["compute_bound_ms"] + by_dram["HBM2"]["N1"]["memory_bound_ms"]
        < by_dram["HBM2"]["N12"]["compute_bound_ms"] + by_dram["HBM2"]["N12"]["memory_bound_ms"]
    )
