"""Benchmark: regenerate paper Fig. 9 (DRAM technology scaling for inference).

Keep the compute die fixed at the A100's 7 nm node and sweep the DRAM
technology from GDDR6 (0.6 TB/s) to HBM3e (4.8 TB/s) and a futuristic HBMX
(6.8 TB/s) for Llama2-13B inference (batch 1, 200+200 tokens) on 2- and
8-GPU systems over NVLink-Gen3, plus an HBMX + NVLink-Gen4 point.  The paper
finds near-linear scaling up to HBM3, saturation beyond HBM3e (the problem
becomes L2 bound), a ~12% communication gain from NVLink-Gen4, and a
communication time of roughly 1.6x the memory time at 8 GPUs.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.experiments import fig9_memory_technology_scaling
from repro.analysis.formatting import render_table


def test_fig9_memory_technology_scaling(benchmark):
    result = run_once(benchmark, fig9_memory_technology_scaling)
    rows = result["rows"]
    references = result["h100_reference_latency_s"]

    table_rows = [
        {
            "memory": row.dram_technology,
            "network": row.network,
            "gpus": row.num_gpus,
            "memory_s": row.memory_time,
            "communication_s": row.communication_time,
            "total_s": row.total_latency,
        }
        for row in rows
    ]
    emit(
        render_table(
            table_rows,
            title="Fig. 9: Llama2-13B inference latency vs DRAM technology (A100-class compute)",
            precision=2,
        )
    )
    emit("H100 reference latencies (dashed lines): " + ", ".join(f"{k}={v:.2f}s" for k, v in references.items()))

    def pick(gpus, dram, network="NVLink3"):
        return next(r for r in rows if r.num_gpus == gpus and r.dram_technology == dram and r.network == network)

    benchmark.extra_info["latency_2gpu_gddr6_s"] = round(pick(2, "GDDR6").total_latency, 2)
    benchmark.extra_info["latency_2gpu_hbmx_s"] = round(pick(2, "HBMX").total_latency, 2)
    benchmark.extra_info["comm_over_memory_8gpu"] = round(
        pick(8, "HBM2E").communication_time / pick(8, "HBM2E").memory_time, 2
    )

    for gpus in (2, 8):
        # Latency decreases monotonically with DRAM bandwidth along the NVLink3 sweep.
        sweep = [pick(gpus, dram).total_latency for dram in ("GDDR6", "HBM2", "HBM2E", "HBM3", "HBM3E", "HBMX")]
        assert sweep == sorted(sweep, reverse=True)
        # Near-linear scaling early in the sweep, saturation at the end (L2 bound).
        early_gain = pick(gpus, "GDDR6").memory_time / pick(gpus, "HBM2E").memory_time
        late_gain = pick(gpus, "HBM3E").memory_time / pick(gpus, "HBMX").memory_time
        assert early_gain > 2.0
        assert late_gain < 1.10
        # NVLink-Gen4 yields a modest communication gain (paper: ~12%).
        nv3 = pick(gpus, "HBMX", "NVLink3")
        nv4 = pick(gpus, "HBMX", "NVLink4")
        gain = 1.0 - nv4.communication_time / nv3.communication_time
        assert 0.03 < gain < 0.3
    # At 8 GPUs the communication time is comparable to / larger than the memory time
    # once the memory is fast (the paper reports ~1.6x for Llama2-13B).
    fast_memory = pick(8, "HBM3E")
    assert 1.0 < fast_memory.communication_time / fast_memory.memory_time < 2.5
    # The real H100 (faster on-chip memory and network) beats the A100-with-HBM3 projection.
    assert references["H100x2"] < pick(2, "HBM3").total_latency
    assert references["H100x8"] < pick(8, "HBM3").total_latency
