"""Chaos benchmark: degraded-fleet goodput and crash-tolerant sweeping.

Two scenarios back the resilience layer's acceptance criteria:

* **Degraded fleet** -- the same Llama2-7B workload priced on a clean
  4-replica fleet and on one injected with replica crashes (exponential
  MTBF/MTTR) plus retries.  Records availability, goodput retention, and
  wasted re-prefill work, and asserts the faulty run stays deterministic
  and fully accounted (every request completes, fails, or is rejected).
* **Crash-recovery sweep** -- a process-pool sweep whose worker is killed
  mid-shard through the test-only crash hook; the runner must rebuild the
  pool and still return a complete, correct table.

Headline numbers land in ``BENCH_faults.json`` at the repo root so CI can
archive the resilience trajectory as an artifact (next to
``BENCH_fleet.json`` and friends).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import emit

from repro.hardware.cluster import build_system
from repro.models.zoo import get_model
from repro.serving import (
    FaultConfig,
    FleetConfig,
    FleetSimulator,
    LengthDistribution,
    RetryPolicy,
    SchedulerConfig,
    TraceConfig,
)
from repro.sweep import Scenario, SweepRunner

#: Where the chaos benchmark records its headline numbers.
BENCH_FAULTS_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: Requests in the degraded-fleet run; override for quick local runs.
NUM_REQUESTS = int(os.environ.get("REPRO_FAULT_REQUESTS", 20_000))
NUM_REPLICAS = 4

#: Acceptance floors: faults must hurt but not collapse the fleet.
AVAILABILITY_FLOOR = 0.5
GOODPUT_RETENTION_FLOOR = 0.2


def _fleet_config(faults: "FaultConfig | None") -> FleetConfig:
    return FleetConfig(
        trace=TraceConfig(
            rate=60.0,
            num_requests=NUM_REQUESTS,
            prompt_lengths=LengthDistribution.uniform(64, 256),
            output_lengths=LengthDistribution.constant(32),
            seed=2024,
        ),
        num_replicas=NUM_REPLICAS,
        router="least_queue",
        scheduler=SchedulerConfig(max_batch_size=64, max_prefill_requests=16),
        faults=faults,
        retry=RetryPolicy(max_attempts=3, backoff=0.5),
    )


def test_degraded_fleet_goodput(benchmark):
    system = build_system("A100", num_devices=1)
    model = get_model("Llama2-7B")
    faults = FaultConfig(mtbf=45.0, mttr=10.0, seed=7)

    clean = FleetSimulator(system=system, model=model, fleet=_fleet_config(None)).run()

    simulator = FleetSimulator(system=system, model=model, fleet=_fleet_config(faults))
    start = time.perf_counter()
    report = benchmark.pedantic(simulator.run, rounds=1, iterations=1)
    wall_seconds = time.perf_counter() - start

    # Determinism: a second run of the same config is bit-identical.
    again = FleetSimulator(system=system, model=model, fleet=_fleet_config(faults)).run()
    assert again.to_dict() == report.to_dict()

    # Full accounting under faults: no request silently vanishes.
    assert (
        report.completed_requests + report.failed_requests + report.rejected_requests
        == NUM_REQUESTS
    )
    assert report.replica_failures > 0
    assert report.availability < 1.0

    goodput_retention = report.goodput / clean.goodput if clean.goodput else 0.0
    payload = {
        "benchmark": "fault_tolerance",
        "model": model.name,
        "system": system.name,
        "num_requests": NUM_REQUESTS,
        "num_replicas": NUM_REPLICAS,
        "mtbf_s": faults.mtbf,
        "mttr_s": faults.mttr,
        "wall_seconds": wall_seconds,
        "availability": report.availability,
        "replica_failures": report.replica_failures,
        "retried_requests": report.retried_requests,
        "failed_requests": report.failed_requests,
        "wasted_prefill_tokens": report.wasted_prefill_tokens,
        "lost_output_tokens": report.lost_output_tokens,
        "clean_goodput_rps": clean.goodput,
        "faulty_goodput_rps": report.goodput,
        "goodput_retention": goodput_retention,
        "clean_ttft_p99_s": clean.ttft_p99,
        "faulty_ttft_p99_s": report.ttft_p99,
    }
    BENCH_FAULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info.update(payload)
    emit(
        f"degraded fleet: {report.replica_failures} crashes over "
        f"{NUM_REQUESTS:,} requests, availability {report.availability:.3f}, "
        f"{report.retried_requests:,} retried / {report.failed_requests:,} failed, "
        f"goodput retention {goodput_retention:.2f} "
        f"({report.wasted_prefill_tokens:,} prefill tokens re-done) in {wall_seconds:.1f}s"
    )
    assert report.availability >= AVAILABILITY_FLOOR
    assert goodput_retention >= GOODPUT_RETENTION_FLOOR


def test_crash_recovery_sweep(benchmark, monkeypatch, tmp_path):
    system = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
    model = get_model("Llama2-7B")
    scenarios = [
        Scenario.inference(system, model, batch_size=1 + index, tag=f"chaos{index}")
        for index in range(8)
    ]
    baseline = [r.value.total_latency for r in SweepRunner().run(scenarios)]

    monkeypatch.setenv("REPRO_TEST_CRASH_TAG", "chaos5")
    monkeypatch.setenv("REPRO_TEST_CRASH_ONCE", str(tmp_path / "crash.marker"))

    def sweep():
        runner = SweepRunner(executor="process", max_workers=2)
        return runner, runner.run(scenarios)

    start = time.perf_counter()
    runner, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    wall_seconds = time.perf_counter() - start

    assert (tmp_path / "crash.marker").exists()
    assert runner.stats.pool_rebuilds >= 1
    assert [r.error for r in results] == [None] * len(scenarios)
    latencies = [r.value.total_latency for r in results]
    assert latencies == baseline

    payload = json.loads(BENCH_FAULTS_PATH.read_text()) if BENCH_FAULTS_PATH.exists() else {}
    payload["crash_recovery_sweep"] = {
        "scenarios": len(scenarios),
        "pool_rebuilds": runner.stats.pool_rebuilds,
        "evaluations": runner.stats.evaluations,
        "wall_seconds": wall_seconds,
    }
    BENCH_FAULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info.update(payload["crash_recovery_sweep"])
    emit(
        f"crash-recovery sweep: worker killed mid-shard, pool rebuilt "
        f"{runner.stats.pool_rebuilds}x, {len(scenarios)} scenarios correct "
        f"in {wall_seconds:.1f}s"
    )
