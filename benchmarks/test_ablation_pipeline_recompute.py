"""Ablation: pipeline schedules and activation-recomputation strategies.

Two of the design choices the paper inherits from Megatron-LM are examined on
the GPT-175B / 64-A100 validation configuration:

* the pipeline schedule (GPipe vs 1F1B vs interleaved 1F1B), which changes the
  bubble fraction and the in-flight activation memory, and
* the activation recomputation strategy (none / selective / full), which
  trades step time for activation memory (the basis of Fig. 4 and Table 1).
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.formatting import render_table
from repro.core.training import TrainingPerformanceModel
from repro.hardware.cluster import build_system
from repro.models.zoo import get_model
from repro.parallelism.config import ParallelismConfig
from repro.units import GB


def _sweep():
    model = get_model("GPT-175B")
    system = build_system("A100", num_devices=64, intra_node="NVLink3", inter_node="HDR-IB")
    trainer = TrainingPerformanceModel(system=system)

    schedule_rows = []
    for schedule, virtual in (("gpipe", 1), ("1f1b", 1), ("interleaved", 4)):
        config = ParallelismConfig(
            tensor_parallel=8,
            pipeline_parallel=8,
            micro_batch_size=1,
            pipeline_schedule=schedule,
            virtual_pipeline_stages=virtual,
        )
        report = trainer.predict(model, config, global_batch_size=64, recompute="selective")
        schedule_rows.append(
            {
                "schedule": schedule,
                "virtual_stages": virtual,
                "step_time_s": report.step_time,
                "bubble_s": report.bubble_time,
                "activation_gb": report.memory.activation_bytes / GB,
            }
        )

    recompute_rows = []
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    for strategy in ("none", "selective", "full"):
        report = trainer.predict(model, config, global_batch_size=64, recompute=strategy)
        recompute_rows.append(
            {
                "recompute": strategy,
                "step_time_s": report.step_time,
                "recompute_s": report.recompute_time,
                "activation_gb": report.memory.activation_bytes / GB,
                "total_memory_gb": report.memory.total_bytes / GB,
            }
        )
    return schedule_rows, recompute_rows


def test_ablation_pipeline_schedule_and_recompute(benchmark):
    schedule_rows, recompute_rows = run_once(benchmark, _sweep)

    emit(render_table(schedule_rows, title="Ablation: pipeline schedule (GPT-175B, 64 A100s, selective recompute)", precision=2))
    emit(render_table(recompute_rows, title="Ablation: activation recomputation (GPT-175B, 64 A100s, 1F1B)", precision=2))

    schedules = {row["schedule"]: row for row in schedule_rows}
    strategies = {row["recompute"]: row for row in recompute_rows}
    benchmark.extra_info["interleaved_bubble_s"] = round(schedules["interleaved"]["bubble_s"], 2)
    benchmark.extra_info["full_recompute_overhead_s"] = round(
        strategies["full"]["step_time_s"] - strategies["none"]["step_time_s"], 2
    )

    # GPipe and 1F1B share the same bubble; 1F1B only reduces memory.  Interleaving shrinks the bubble.
    assert schedules["gpipe"]["bubble_s"] == schedules["1f1b"]["bubble_s"]
    assert schedules["gpipe"]["activation_gb"] > schedules["1f1b"]["activation_gb"]
    assert schedules["interleaved"]["bubble_s"] < schedules["1f1b"]["bubble_s"]
    assert schedules["interleaved"]["step_time_s"] < schedules["1f1b"]["step_time_s"]

    # Recomputation trades time for memory: none is fastest but needs the most memory,
    # full is slowest but leanest; selective sits in between on both axes.
    assert strategies["none"]["step_time_s"] < strategies["selective"]["step_time_s"] < strategies["full"]["step_time_s"]
    assert strategies["none"]["activation_gb"] > strategies["selective"]["activation_gb"] > strategies["full"]["activation_gb"]
    # Full recomputation costs roughly one extra forward pass (~25-40% more step time).
    overhead = strategies["full"]["step_time_s"] / strategies["none"]["step_time_s"]
    assert 1.15 < overhead < 1.6
