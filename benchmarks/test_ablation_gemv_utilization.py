"""Ablation: constant vs size-dependent (clustered) GEMV DRAM-utilization factors.

The paper's Fig. 3 motivates calibrating size-dependent DRAM-utilization
factors for skinny GEMM/GEMV kernels.  This ablation measures the effect of
that choice on an end-to-end prediction: the Table 2 inference validation is
re-run with a single constant utilization factor and with the calibrated
size-dependent table, comparing the resulting error statistics.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.formatting import render_table, summarize_errors
from repro.core.inference import InferencePerformanceModel
from repro.hardware.cluster import build_system
from repro.models.zoo import get_model
from repro.perf.gemm import GemmTimeModel, GemvUtilizationModel
from repro.perf.kernels import DeviceKernelModel
from repro.validation.metrics import relative_error
from repro.validation.reference import TABLE2_INFERENCE_ROWS


def _validate_with(utilization_model):
    rows = []
    for row in TABLE2_INFERENCE_ROWS:
        if row.gpu != "A100":
            continue
        system = build_system("A100", num_devices=max(1, row.num_gpus), intra_node="NVLink3", inter_node="NDR-IB")
        kernel_model = DeviceKernelModel(
            accelerator=system.accelerator,
            gemm_model=GemmTimeModel(accelerator=system.accelerator, gemv_utilization=utilization_model),
        )
        inference = InferencePerformanceModel(system=system, kernel_model=kernel_model)
        report = inference.predict(
            get_model(row.model),
            batch_size=row.batch_size,
            prompt_tokens=row.prompt_tokens,
            generated_tokens=row.generated_tokens,
            tensor_parallel=row.num_gpus,
        )
        rows.append(
            {
                "model": row.model,
                "num_gpus": row.num_gpus,
                "nvidia_ms": row.nvidia_latency_ms,
                "predicted_ms": report.total_latency_ms,
                "relative_error_%": relative_error(report.total_latency_ms, row.nvidia_latency_ms) * 100,
            }
        )
    return rows


def _run_both():
    varied = _validate_with(GemvUtilizationModel())  # calibrated size-dependent table (default)
    constant = _validate_with(GemvUtilizationModel.constant_model(0.70))
    return varied, constant


def test_ablation_gemv_utilization_model(benchmark):
    varied, constant = run_once(benchmark, _run_both)

    emit(render_table(varied, title="Ablation: Table 2 (A100 rows) with size-dependent GEMV utilization", precision=1))
    emit(render_table(constant, title="Ablation: Table 2 (A100 rows) with constant GEMV utilization (0.70)", precision=1))

    varied_summary = summarize_errors([row["relative_error_%"] for row in varied])
    constant_summary = summarize_errors([row["relative_error_%"] for row in constant])
    emit(
        f"size-dependent: mean |err| = {varied_summary['mean_abs_error_%']:.1f}%, max = {varied_summary['max_abs_error_%']:.1f}%\n"
        f"constant:       mean |err| = {constant_summary['mean_abs_error_%']:.1f}%, max = {constant_summary['max_abs_error_%']:.1f}%"
    )
    benchmark.extra_info["mean_error_varied"] = round(varied_summary["mean_abs_error_%"], 2)
    benchmark.extra_info["mean_error_constant"] = round(constant_summary["mean_abs_error_%"], 2)

    # The calibrated size-dependent model is at least as accurate overall and
    # clearly better in the worst case.
    assert varied_summary["mean_abs_error_%"] <= constant_summary["mean_abs_error_%"] + 0.5
    assert varied_summary["max_abs_error_%"] < constant_summary["max_abs_error_%"]
    # Both remain within a loose 20% envelope (the model is still calibrated).
    assert varied_summary["max_abs_error_%"] < 13.0
    assert constant_summary["max_abs_error_%"] < 20.0
