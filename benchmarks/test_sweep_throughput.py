"""Micro-benchmark: cached sweep pipeline vs naive per-point engine rebuilds.

A repeated-scenario grid (the shape every paper sweep has: a few unique
configurations queried over and over across tables, figures, and search
iterations) is evaluated two ways:

* **naive**: the pre-sweep idiom -- build a fresh
  ``PerformancePredictionEngine`` for every grid point and predict.
* **cached**: one ``SweepRunner`` with scenario dedup, the LRU result cache,
  and the shared per-system engine cache.

The benchmark asserts the cached path is at least ~2x faster, which is the
architectural point of the sweep subsystem (in practice the gap is far
larger because only the unique scenarios are ever evaluated).
"""

from __future__ import annotations

import time

from conftest import emit

from repro.core.engine import PerformancePredictionEngine
from repro.hardware.cluster import build_system
from repro.models.zoo import get_model
from repro.sweep import Scenario, SweepRunner

#: Unique scenario axes: (tensor_parallel, batch_size).
_UNIQUE_POINTS = ((1, 1), (2, 1), (2, 4))
#: How many times the grid repeats each unique point.
_REPEATS = 24


def _grid():
    model = get_model("Llama2-13B")
    system = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
    points = [
        (system, model, tensor_parallel, batch_size)
        for _ in range(_REPEATS)
        for tensor_parallel, batch_size in _UNIQUE_POINTS
    ]
    return points


def _run_naive(points):
    latencies = []
    for system, model, tensor_parallel, batch_size in points:
        engine = PerformancePredictionEngine(system)
        report = engine.predict_inference(
            model, batch_size=batch_size, tensor_parallel=tensor_parallel
        )
        latencies.append(report.total_latency)
    return latencies


def _run_cached(points):
    runner = SweepRunner()
    results = runner.run(
        Scenario.inference(system, model, batch_size=batch_size, tensor_parallel=tensor_parallel)
        for system, model, tensor_parallel, batch_size in points
    )
    return [result.value.total_latency for result in results], runner.stats


def test_cached_sweep_beats_naive_engine_rebuilds(benchmark):
    points = _grid()

    start = time.perf_counter()
    naive_latencies = _run_naive(points)
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    (cached_latencies, stats) = benchmark.pedantic(_run_cached, args=(points,), rounds=1, iterations=1)
    cached_seconds = time.perf_counter() - start

    speedup = naive_seconds / cached_seconds
    benchmark.extra_info["naive_seconds"] = naive_seconds
    benchmark.extra_info["cached_seconds"] = cached_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["evaluations"] = stats.evaluations
    benchmark.extra_info["cache_hits"] = stats.cache_hits

    emit(
        f"sweep throughput: {len(points)} grid points, {len(_UNIQUE_POINTS)} unique\n"
        f"  naive per-point engines : {naive_seconds * 1e3:8.1f} ms\n"
        f"  cached sweep runner     : {cached_seconds * 1e3:8.1f} ms\n"
        f"  speedup                 : {speedup:8.1f}x "
        f"({stats.evaluations} evaluations, {stats.cache_hits} cache hits)"
    )

    # Identical numbers, far less work.
    assert cached_latencies == naive_latencies
    assert stats.evaluations == len(_UNIQUE_POINTS)
    assert stats.cache_hits == len(points) - len(_UNIQUE_POINTS)
    assert speedup >= 2.0, f"cached sweep only {speedup:.2f}x faster than naive loop"
