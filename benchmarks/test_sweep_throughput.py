"""Micro-benchmarks of the sweep pipeline's two speed layers.

* **Cached sweeps** (``test_cached_sweep_beats_naive_engine_rebuilds``): a
  repeated-scenario grid evaluated through one ``SweepRunner`` (dedup + LRU
  cache + shared engines) vs a fresh ``PerformancePredictionEngine`` per grid
  point.
* **Batched roofline backend** (``test_batched_backend_beats_scalar_loop``):
  a >=1k-GEMM batch evaluated uncached through the NumPy
  ``BatchedGemmTimeModel`` vs the scalar object-per-kernel
  ``GemmTimeModel.evaluate`` loop.  The headline numbers are written to
  ``BENCH_batched.json`` at the repo root so CI can archive the perf
  trajectory as an artifact.
"""

from __future__ import annotations

import itertools
import json
import pathlib
import time

from conftest import emit

from repro.core.engine import PerformancePredictionEngine
from repro.hardware.accelerator import get_accelerator
from repro.hardware.cluster import build_system
from repro.hardware.datatypes import Precision
from repro.models.zoo import get_model
from repro.perf.batched import BatchedGemmTimeModel, GemmBatch
from repro.perf.gemm import GemmTimeModel
from repro.sweep import Scenario, SweepRunner
from repro.workload.operators import GEMM

#: Where the batched-backend benchmark records its headline numbers.
BENCH_BATCHED_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_batched.json"

#: Unique scenario axes: (tensor_parallel, batch_size).
_UNIQUE_POINTS = ((1, 1), (2, 1), (2, 4))
#: How many times the grid repeats each unique point.
_REPEATS = 24


def _grid():
    model = get_model("Llama2-13B")
    system = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
    points = [
        (system, model, tensor_parallel, batch_size)
        for _ in range(_REPEATS)
        for tensor_parallel, batch_size in _UNIQUE_POINTS
    ]
    return points


def _run_naive(points):
    latencies = []
    for system, model, tensor_parallel, batch_size in points:
        engine = PerformancePredictionEngine(system)
        report = engine.predict_inference(
            model, batch_size=batch_size, tensor_parallel=tensor_parallel
        )
        latencies.append(report.total_latency)
    return latencies


def _run_cached(points):
    runner = SweepRunner()
    results = runner.run(
        Scenario.inference(system, model, batch_size=batch_size, tensor_parallel=tensor_parallel)
        for system, model, tensor_parallel, batch_size in points
    )
    return [result.value.total_latency for result in results], runner.stats


def test_cached_sweep_beats_naive_engine_rebuilds(benchmark):
    points = _grid()

    start = time.perf_counter()
    naive_latencies = _run_naive(points)
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    (cached_latencies, stats) = benchmark.pedantic(_run_cached, args=(points,), rounds=1, iterations=1)
    cached_seconds = time.perf_counter() - start

    speedup = naive_seconds / cached_seconds
    benchmark.extra_info["naive_seconds"] = naive_seconds
    benchmark.extra_info["cached_seconds"] = cached_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["evaluations"] = stats.evaluations
    benchmark.extra_info["cache_hits"] = stats.cache_hits

    emit(
        f"sweep throughput: {len(points)} grid points, {len(_UNIQUE_POINTS)} unique\n"
        f"  naive per-point engines : {naive_seconds * 1e3:8.1f} ms\n"
        f"  cached sweep runner     : {cached_seconds * 1e3:8.1f} ms\n"
        f"  speedup                 : {speedup:8.1f}x "
        f"({stats.evaluations} evaluations, {stats.cache_hits} cache hits)"
    )

    # Identical numbers, far less work.
    assert cached_latencies == naive_latencies
    assert stats.evaluations == len(_UNIQUE_POINTS)
    assert stats.cache_hits == len(points) - len(_UNIQUE_POINTS)
    assert speedup >= 2.0, f"cached sweep only {speedup:.2f}x faster than naive loop"


def _gemm_batch_grid():
    """A >=1k-GEMM grid of fat, skinny, and GEMV shapes across precisions."""
    dims = (1, 16, 64, 128, 512, 1024, 2048, 8192)
    gemms = []
    for m, n, k in itertools.product(dims, repeat=3):
        for precision in (Precision.FP16, Precision.INT8):
            gemms.append(
                GEMM(
                    name=f"g_{m}x{n}x{k}_{precision.value}",
                    m=m,
                    n=n,
                    k=k,
                    precision=precision,
                    batch=2 if m == 128 else 1,
                    weight_operand=(n >= k),
                )
            )
    return gemms


def test_batched_backend_beats_scalar_loop(benchmark):
    """The vectorized backend must be >=5x faster than the scalar loop, uncached."""
    accelerator = get_accelerator("A100")
    gemms = _gemm_batch_grid()
    assert len(gemms) >= 1000

    scalar_model = GemmTimeModel(accelerator=accelerator)  # cold memo cache
    start = time.perf_counter()
    scalar_points = [scalar_model.evaluate(gemm) for gemm in gemms]
    scalar_seconds = time.perf_counter() - start

    batched_model = BatchedGemmTimeModel.from_scalar(scalar_model)

    def _run_batched():
        # Includes the struct-of-arrays conversion: the honest uncached path
        # from kernel descriptors to timed, classified results.
        return batched_model.evaluate_batch(GemmBatch.from_gemms(gemms))

    start = time.perf_counter()
    result = _run_batched()
    batched_seconds = time.perf_counter() - start
    benchmark.pedantic(_run_batched, rounds=1, iterations=1)

    speedup = scalar_seconds / batched_seconds
    record = {
        "benchmark": "batched_vs_scalar_gemm_roofline",
        "accelerator": accelerator.name,
        "num_gemms": len(gemms),
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "speedup": speedup,
        "scalar_us_per_gemm": scalar_seconds / len(gemms) * 1e6,
        "batched_us_per_gemm": batched_seconds / len(gemms) * 1e6,
    }
    benchmark.extra_info.update(record)
    BENCH_BATCHED_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        f"batched roofline backend: {len(gemms)} uncached GEMMs on {accelerator.name}\n"
        f"  scalar object-per-kernel: {scalar_seconds * 1e3:8.1f} ms "
        f"({record['scalar_us_per_gemm']:.1f} us/GEMM)\n"
        f"  batched NumPy backend   : {batched_seconds * 1e3:8.1f} ms "
        f"({record['batched_us_per_gemm']:.2f} us/GEMM)\n"
        f"  speedup                 : {speedup:8.1f}x  -> {BENCH_BATCHED_PATH.name}"
    )

    # Identical numbers, vectorized work.
    assert result.to_points() == scalar_points
    assert speedup >= 5.0, f"batched backend only {speedup:.2f}x faster than the scalar loop"
