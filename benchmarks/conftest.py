"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints the
rows in a paper-like layout (visible with ``pytest benchmarks/ --benchmark-only -s``),
records the headline numbers in ``benchmark.extra_info``, and asserts the
qualitative shape of the result (who wins, orderings, error bands).
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a regenerated table so it is visible in benchmark runs."""
    sys.stdout.write("\n" + text + "\n")


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
