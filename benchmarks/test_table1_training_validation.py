"""Benchmark: regenerate paper Table 1 (training-time validation on A100 clusters).

For every row of the paper's Table 1 (GPT-22B to GPT-1T on 8 to 3072 A100
GPUs, with TP/PP/SP/DP and full or selective recomputation), predict the
training time per batch and compare against the published reference time.
The paper reports relative errors mostly below 10%.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.experiments import table1_training_validation
from repro.analysis.formatting import render_table, summarize_errors


def test_table1_training_validation(benchmark):
    rows = run_once(benchmark, table1_training_validation)

    emit(
        render_table(
            rows,
            columns=[
                "model",
                "num_gpus",
                "parallelism",
                "recompute",
                "reference_s",
                "paper_pred_s",
                "predicted_s",
                "relative_error_%",
            ],
            title="Table 1: training time per batch on A100 clusters (reference vs prediction)",
            precision=1,
        )
    )
    errors = [row["relative_error_%"] for row in rows]
    summary = summarize_errors(errors)
    emit(f"mean |error| = {summary['mean_abs_error_%']:.1f}%   max |error| = {summary['max_abs_error_%']:.1f}%")

    benchmark.extra_info["mean_abs_error_percent"] = round(summary["mean_abs_error_%"], 2)
    benchmark.extra_info["max_abs_error_percent"] = round(summary["max_abs_error_%"], 2)

    # Shape assertions: every row within a 12% band, mean within 7%, and the
    # qualitative orderings of the paper hold.
    assert len(rows) == 11
    assert all(abs(error) < 12.0 for error in errors)
    assert summary["mean_abs_error_%"] < 7.0
    full = {r["model"]: r["predicted_s"] for r in rows if r["recompute"] == "full" and r["num_gpus"] <= 512}
    selective = {r["model"]: r["predicted_s"] for r in rows if r["recompute"] == "selective"}
    for model in ("GPT-175B", "GPT-530B", "GPT-1008B"):
        assert selective[model] < full[model]
