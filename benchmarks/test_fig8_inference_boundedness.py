"""Benchmark: regenerate paper Fig. 8 (prefill boundedness and memory inset).

Split the per-layer GEMM time of the Llama2-13B summarization (prefill) phase
into compute-bound and memory-bound parts for batch sizes 1 and 16 on the
A100 and the H100, and report the memory inset (model weights and KV-cache
size versus device capacity).  The paper's headline: on the H100 the batch-1
prefill is entirely memory bound, and growing the batch to 16 turns most of
the GEMM time compute bound on both GPUs.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.experiments import fig8_inference_boundedness
from repro.analysis.formatting import render_table


def test_fig8_inference_boundedness(benchmark):
    rows = run_once(benchmark, fig8_inference_boundedness)

    emit(
        render_table(
            rows,
            columns=[
                "gpu",
                "batch_size",
                "compute_bound_ms",
                "memory_bound_ms",
                "compute_bound_fraction",
                "weights_gb",
                "kv_cache_gb",
                "device_memory_gb",
            ],
            title="Fig. 8: prefill GEMM time by bound type and the weights/KV-cache memory inset (Llama2-13B)",
            precision=2,
        )
    )

    by_key = {(row["gpu"], row["batch_size"]): row for row in rows}
    benchmark.extra_info["h100_b1_compute_fraction"] = round(by_key[("H100", 1)]["compute_bound_fraction"], 3)
    benchmark.extra_info["h100_b16_compute_fraction"] = round(by_key[("H100", 16)]["compute_bound_fraction"], 3)

    # H100 at batch 1 is fully memory bound; batch 16 flips it mostly compute bound (paper: 0% -> 85%).
    assert by_key[("H100", 1)]["compute_bound_fraction"] < 0.1
    assert by_key[("H100", 16)]["compute_bound_fraction"] > 0.6
    # A100 is compute dominated at both batch sizes, more so at batch 16 (paper: 67% -> 96%).
    assert by_key[("A100", 1)]["compute_bound_fraction"] > 0.5
    assert by_key[("A100", 16)]["compute_bound_fraction"] >= by_key[("A100", 1)]["compute_bound_fraction"]
    # Memory inset: weights do not depend on the batch, the KV-cache grows 16x and
    # everything fits in the 80 GB devices.
    for gpu in ("A100", "H100"):
        assert by_key[(gpu, 1)]["weights_gb"] == by_key[(gpu, 16)]["weights_gb"]
        assert by_key[(gpu, 16)]["kv_cache_gb"] > 10 * by_key[(gpu, 1)]["kv_cache_gb"]
        assert by_key[(gpu, 16)]["weights_gb"] + by_key[(gpu, 16)]["kv_cache_gb"] < by_key[(gpu, 16)]["device_memory_gb"]
    # On the H100 the batch-1 layer is memory (weight-streaming) bound, so serving a
    # 16x batch costs much less than 16x the GEMM time -- the throughput benefit the
    # paper highlights ("larger batch sizes improve inference throughput at the cost
    # of latency, but the growth of latency with B is rather modest").
    h100_b1 = by_key[("H100", 1)]["compute_bound_ms"] + by_key[("H100", 1)]["memory_bound_ms"]
    h100_b16 = by_key[("H100", 16)]["compute_bound_ms"] + by_key[("H100", 16)]["memory_bound_ms"]
    assert h100_b16 < 14 * h100_b1
