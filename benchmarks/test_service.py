"""Benchmark: study service latency -- submit-to-first-result and warm resubmission.

The service exists to keep the warm state (step-cost tables, interned
fabric/collective models, the runner LRU) resident across requests, so the
pin is the ratio that state buys: a resubmission of the same spec must
complete at least 5x faster than the cold first run, because it prices zero
scenarios.  Also recorded: submit-to-first-streamed-row latency on both the
cold and warm paths (the row events carry service-clock timestamps).
Results land in ``BENCH_service.json`` for the CI artifact.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

from benchmarks.conftest import emit
from repro.service import InMemoryJobStore, ServiceApi, ServiceRegistry, StudyService
from repro.sweep import SweepRunner, clear_engine_cache

BENCH_SERVICE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: The submitted spec: a 48-scenario inference grid on one A100 node.
SPEC = {
    "name": "service-bench-grid",
    "kind": "inference",
    "axes": {
        "batch_size": [1, 2, 4, 8],
        "prompt_tokens": [64, 128, 256],
        "generated_tokens": [16, 32, 64, 128],
    },
    "fixed": {"system": "A100", "model": "Llama2-7B", "tensor_parallel": 8},
}


def _submit_and_run(api, service):
    """Submit SPEC, drain it synchronously, and return (job_id, elapsed, first_row_s)."""
    gc.collect()
    started = time.perf_counter()
    submitted_at = time.time()
    response = api.dispatch("POST", "/studies", body=json.dumps(SPEC).encode())
    assert response.status == 202
    job_id = response.json_body()["job"]["id"]
    service.run_next()
    elapsed = time.perf_counter() - started
    job = service.job(job_id)
    first_row_s = job.rows[0]["t"] - submitted_at
    return job_id, elapsed, first_row_s


def test_warm_resubmission_at_least_5x_faster_than_cold(benchmark):
    clear_engine_cache()  # honest cold start: no process-global warm state
    runner = SweepRunner()
    registry = ServiceRegistry(runner=runner, jobs=InMemoryJobStore(), workers=0)
    service = StudyService(registry, start_workers=False)
    api = ServiceApi(service)
    total = 4 * 3 * 4

    cold_id, cold_seconds, cold_first_row = _submit_and_run(api, service)
    cold_job = service.job(cold_id)
    assert cold_job.state.value == "done"
    assert len(cold_job.rows) == total
    assert runner.stats.evaluations == total

    warm_seconds = warm_first_row = float("inf")
    warm_id = None
    for _ in range(3):  # best-of-N so host load drift cannot fake a miss
        warm_id, elapsed, first_row = _submit_and_run(api, service)
        warm_seconds = min(warm_seconds, elapsed)
        warm_first_row = min(warm_first_row, first_row)
    warm_job = service.job(warm_id)
    assert warm_job.cached_rows == total  # priced nothing
    assert runner.stats.evaluations == total

    benchmark.pedantic(lambda: _submit_and_run(api, service), rounds=1, iterations=1)

    speedup = cold_seconds / warm_seconds
    record = {
        "benchmark": "service_warm_resubmission",
        "scenarios": total,
        "cold_submit_to_done_seconds": cold_seconds,
        "warm_submit_to_done_seconds": warm_seconds,
        "cold_submit_to_first_row_seconds": cold_first_row,
        "warm_submit_to_first_row_seconds": warm_first_row,
        "warm_speedup_x": speedup,
    }
    benchmark.extra_info.update(record)
    BENCH_SERVICE_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        f"study service: {total}-scenario grid through POST /studies\n"
        f"  cold submit -> done            : {cold_seconds * 1e3:8.1f} ms\n"
        f"  warm submit -> done            : {warm_seconds * 1e3:8.1f} ms\n"
        f"  cold submit -> first row       : {cold_first_row * 1e3:8.1f} ms\n"
        f"  warm submit -> first row       : {warm_first_row * 1e3:8.1f} ms\n"
        f"  warm speedup                   : {speedup:8.1f} x"
        f"  -> {BENCH_SERVICE_PATH.name}"
    )

    assert speedup >= 5.0, f"warm resubmission only {speedup:.1f}x faster than cold"
