"""Ablation: flat (DRAM-only) vs hierarchical (shared/L2/DRAM) roofline.

DeepFlow's prediction that transformer performance becomes L2-bound (rather
than compute- or DRAM-bound) disagreed with measured behaviour; the paper's
model keeps the hierarchy but re-anchors the bound analysis.  This ablation
compares a flat DRAM-only roofline against the full hierarchical one, showing
that (a) for today's accelerators the two agree on training GEMMs, but
(b) only the hierarchical model captures the L2-bound saturation that stops
the DRAM-technology scaling gains for inference (Fig. 9's plateau).
"""

from __future__ import annotations

import dataclasses

from conftest import emit, run_once

from repro.analysis.formatting import render_table
from repro.hardware.accelerator import get_accelerator
from repro.hardware.memory import MemoryHierarchy
from repro.models.zoo import get_model
from repro.perf.gemm import GemmTimeModel
from repro.perf.roofline import BoundType
from repro.workload.operators import GEMM
from repro.workload.transformer_layer import LayerExecutionSpec, TransformerLayerBuilder


def _flat(accelerator):
    """A copy of the accelerator whose hierarchy only has the DRAM level."""
    return dataclasses.replace(accelerator, memory=MemoryHierarchy([accelerator.memory.dram]))


def _sweep():
    llama = get_model("Llama2-13B")
    rows = []
    for dram in ("HBM2E", "HBM3E", "HBMX"):
        accelerator = get_accelerator("A100").with_dram(dram, keep_capacity=True)
        hierarchical = GemmTimeModel(accelerator=accelerator)
        flat = GemmTimeModel(accelerator=_flat(accelerator))
        spec = LayerExecutionSpec(
            model=llama, micro_batch=1, seq_len=1, kv_len=300, with_dropout=False, use_kv_cache=True
        )
        gemms = TransformerLayerBuilder(spec).forward_gemms()
        rows.append(
            {
                "dram": dram,
                "hier_layer_us": sum(hierarchical.time(g) for g in gemms) * 1e6,
                "flat_layer_us": sum(flat.time(g) for g in gemms) * 1e6,
                "hier_bound": hierarchical.evaluate(gemms[-1]).bound.value,
                "flat_bound": flat.evaluate(gemms[-1]).bound.value,
            }
        )
    # A training-style fat GEMM for the agreement check.
    fat = GEMM(name="fat", m=2048, n=6144, k=12288, weight_operand=True)
    a100 = get_accelerator("A100")
    fat_hier = GemmTimeModel(accelerator=a100).time(fat, include_overhead=False)
    fat_flat = GemmTimeModel(accelerator=_flat(a100)).time(fat, include_overhead=False)
    return rows, fat_hier, fat_flat


def test_ablation_flat_vs_hierarchical_roofline(benchmark):
    rows, fat_hier, fat_flat = run_once(benchmark, _sweep)

    emit(render_table(rows, title="Ablation: flat vs hierarchical roofline (Llama2-13B decode layer, A100 compute)", precision=1))
    emit(f"training fat GEMM: hierarchical = {fat_hier*1e3:.2f} ms, flat = {fat_flat*1e3:.2f} ms")

    by_dram = {row["dram"]: row for row in rows}
    benchmark.extra_info["hbmx_hier_bound"] = by_dram["HBMX"]["hier_bound"]
    benchmark.extra_info["hbmx_flat_bound"] = by_dram["HBMX"]["flat_bound"]

    # For today's DRAM (HBM2E) both models agree within a few percent.
    assert abs(by_dram["HBM2E"]["hier_layer_us"] - by_dram["HBM2E"]["flat_layer_us"]) / by_dram["HBM2E"]["flat_layer_us"] < 0.05
    # Training fat GEMMs: compute bound either way, same time.
    assert fat_hier == fat_flat
    # Only the hierarchical model saturates at very fast DRAM: the flat model keeps
    # promising speed-ups while the hierarchical one becomes L2 (cache) bound.
    assert by_dram["HBMX"]["flat_layer_us"] < 0.95 * by_dram["HBMX"]["hier_layer_us"]
    assert by_dram["HBMX"]["hier_bound"] == BoundType.CACHE.value
    assert by_dram["HBMX"]["flat_bound"] == BoundType.MEMORY.value
    # The saturation shows up as a shrinking gain from HBM3E to HBMX only in the hierarchical model.
    hier_gain = by_dram["HBM3E"]["hier_layer_us"] / by_dram["HBMX"]["hier_layer_us"]
    flat_gain = by_dram["HBM3E"]["flat_layer_us"] / by_dram["HBMX"]["flat_layer_us"]
    assert flat_gain > hier_gain
