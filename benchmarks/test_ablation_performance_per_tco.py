"""Extension study: performance per total cost of operation across GPU generations.

The paper's introduction motivates the whole analysis with "performance per
total cost of operation (TCO)" and names a cost/energy model as future work.
This study combines the Fig.-5 training projections with the energy/TCO
extension (``repro.cost``) to rank the GPU generations by trained tokens per
dollar and per kilowatt-hour for the GPT-175B case study.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.formatting import render_table
from repro.core.engine import PerformancePredictionEngine
from repro.cost.energy import EnergyModel
from repro.cost.tco import TCOModel
from repro.hardware.cluster import preset_cluster
from repro.models.zoo import get_model
from repro.parallelism.config import ParallelismConfig
from repro.validation.reference import CASE_STUDY_CONFIGS

_SYSTEMS = [
    ("A100-HDR", "fp16"),
    ("H100-NDR", "fp8"),
    ("H100-NVS", "fp8"),
    ("B200-NVS", "fp4"),
]


def _sweep():
    case = CASE_STUDY_CONFIGS["GPT-175B"]
    model = get_model("GPT-175B")
    config = ParallelismConfig(
        data_parallel=case.data_parallel,
        tensor_parallel=case.tensor_parallel,
        pipeline_parallel=case.pipeline_parallel,
        sequence_parallel=True,
        micro_batch_size=1,
        pipeline_schedule="interleaved",
        virtual_pipeline_stages=6,
    )
    rows = []
    for system_name, precision in _SYSTEMS:
        cluster = preset_cluster(system_name, num_devices=case.num_gpus)
        engine = PerformancePredictionEngine(cluster)
        report = engine.predict_training(model, config, global_batch_size=1024, precision=precision)
        tco = TCOModel(system=cluster)
        energy = EnergyModel(system=cluster)
        rows.append(
            {
                "system": system_name,
                "precision": precision,
                "step_time_s": report.step_time,
                "step_energy_kwh": EnergyModel.to_kwh(energy.training_step_energy(report)),
                "cost_per_Mtok_usd": tco.training_cost_per_million_tokens(report),
                "tokens_per_usd": tco.training_performance_per_dollar(report),
                "tokens_per_kwh": (1024 * 2048) / EnergyModel.to_kwh(energy.training_step_energy(report)),
            }
        )
    return rows


def test_extension_performance_per_tco(benchmark):
    rows = run_once(benchmark, _sweep)

    emit(render_table(rows, title="Extension: GPT-175B training performance per TCO across GPU generations", precision=2))

    by_system = {row["system"]: row for row in rows}
    benchmark.extra_info["a100_cost_per_Mtok"] = round(by_system["A100-HDR"]["cost_per_Mtok_usd"], 2)
    benchmark.extra_info["b200_cost_per_Mtok"] = round(by_system["B200-NVS"]["cost_per_Mtok_usd"], 2)

    # Each newer generation improves tokens-per-dollar and tokens-per-kWh despite
    # higher device prices and board power.
    order = [by_system[name]["tokens_per_usd"] for name, _ in _SYSTEMS]
    assert order == sorted(order)
    energy_order = [by_system[name]["tokens_per_kwh"] for name, _ in _SYSTEMS]
    assert energy_order == sorted(energy_order)
    # The NVLink-switch H100 cluster beats the IB-connected one on cost purely by
    # removing exposed communication time (same hardware price assumptions here).
    assert by_system["H100-NVS"]["cost_per_Mtok_usd"] < by_system["H100-NDR"]["cost_per_Mtok_usd"]
    # Sanity: the A100 cost per million trained tokens sits in the single-digit-dollar
    # range that makes a ~300B-token GPT-3 run cost millions of dollars, as the paper's
    # introduction quotes (~$10M).
    assert 1.0 < by_system["A100-HDR"]["cost_per_Mtok_usd"] < 60.0