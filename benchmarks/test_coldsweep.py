"""Cold-sweep benchmark: cross-scenario batched pricing vs the scalar loop.

A 256-scenario decode-bottleneck grid (one system, one model, ``batch_size x
kv_len`` axes) is priced three ways:

* **cold** -- ``batch_planning=False``: the one-at-a-time reference loop,
  every kernel through the scalar roofline path;
* **batched-cold** -- ``batch_planning=True`` (the default): the planner
  collects every GEMM across the generation and prices them in one
  vectorized call;
* **warm** -- the same runner again, everything served from the LRU.

The batched pass must be bit-identical to the cold pass and at least 3x
faster; the headline scenarios/s numbers land in ``BENCH_coldsweep.json`` at
the repo root so CI can archive the perf trajectory as an artifact.
"""

from __future__ import annotations

import json
import pathlib
import time

from conftest import emit

from repro.sweep import Scenario, SweepRunner, clear_engine_cache, expand_grid
from repro.sweep.batchplan import clear_plan_caches

#: Where the benchmark records its headline numbers.
BENCH_COLDSWEEP_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_coldsweep.json"

_SYSTEM = "A100"
_MODEL = "Llama2-13B"
_BATCH_SIZES = (1, 2)
_KV_LENS = tuple(range(64, 192))  # 2 x 128 = 256 unique scenarios


def _scenarios():
    """A fresh 256-scenario grid (fresh objects: no memoized cache keys)."""
    return [
        Scenario.decode_bottlenecks(
            _SYSTEM, _MODEL, batch_size=combo["batch_size"], kv_len=combo["kv_len"]
        )
        for combo in expand_grid(batch_size=list(_BATCH_SIZES), kv_len=list(_KV_LENS))
    ]


def _go_cold():
    """Drop every process-level cache the sweep layer warms."""
    clear_engine_cache()
    clear_plan_caches()


def _timed_run(runner, scenarios):
    start = time.perf_counter()
    results = runner.run(scenarios)
    return results, time.perf_counter() - start


def _best_cold_run(batch_planning, repeats=3):
    """Best-of-N genuinely-cold runs (fresh runner and caches each time).

    Each repetition drops every process-level cache, so both paths pay the
    full cold cost every time; taking the minimum damps load jitter without
    flattering either side.
    """
    best_results, best_seconds, last_runner = None, float("inf"), None
    for _ in range(repeats):
        _go_cold()
        runner = SweepRunner(batch_planning=batch_planning)
        results, seconds = _timed_run(runner, _scenarios())
        if seconds < best_seconds:
            best_results, best_seconds = results, seconds
        last_runner = runner
    return best_results, best_seconds, last_runner


def test_batched_cold_sweep_beats_scalar_and_stays_bit_identical(benchmark):
    num_scenarios = len(_scenarios())
    assert num_scenarios >= 256

    cold_results, cold_seconds, cold_runner = _best_cold_run(batch_planning=False)
    assert cold_runner.stats.evaluations == num_scenarios

    def _run_batched():
        return _best_cold_run(batch_planning=True)

    batched_results, batched_seconds, batched_runner = benchmark.pedantic(
        _run_batched, rounds=1, iterations=1
    )
    assert batched_runner.stats.evaluations == num_scenarios
    assert batched_runner.stats.batched_scenarios == num_scenarios

    warm_results, warm_seconds = _timed_run(batched_runner, _scenarios())
    assert batched_runner.stats.evaluations == num_scenarios  # nothing re-priced
    assert batched_runner.stats.cache_hits == num_scenarios

    speedup = cold_seconds / batched_seconds
    record = {
        "benchmark": "cold_sweep_cross_scenario_batching",
        "system": _SYSTEM,
        "model": _MODEL,
        "num_scenarios": num_scenarios,
        "cold_seconds": cold_seconds,
        "batched_cold_seconds": batched_seconds,
        "warm_seconds": warm_seconds,
        "cold_scenarios_per_s": num_scenarios / cold_seconds,
        "batched_cold_scenarios_per_s": num_scenarios / batched_seconds,
        "warm_scenarios_per_s": num_scenarios / warm_seconds,
        "speedup": speedup,
    }
    benchmark.extra_info.update(record)
    BENCH_COLDSWEEP_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        f"cold sweep: {num_scenarios} decode-bottleneck scenarios ({_MODEL} on {_SYSTEM})\n"
        f"  cold, per-scenario loop : {cold_seconds * 1e3:8.1f} ms "
        f"({record['cold_scenarios_per_s']:8.0f} scenarios/s)\n"
        f"  cold, batched planner   : {batched_seconds * 1e3:8.1f} ms "
        f"({record['batched_cold_scenarios_per_s']:8.0f} scenarios/s)\n"
        f"  warm rerun (LRU)        : {warm_seconds * 1e3:8.1f} ms "
        f"({record['warm_scenarios_per_s']:8.0f} scenarios/s)\n"
        f"  batching speedup        : {speedup:8.2f}x  -> {BENCH_COLDSWEEP_PATH.name}"
    )

    # Bit-identical results: same entries, same floats, scenario by scenario.
    for ours, theirs in zip(batched_results, cold_results):
        assert ours.value == theirs.value
    for ours, theirs in zip(warm_results, batched_results):
        assert ours.value == theirs.value
        assert ours.from_cache
    assert speedup >= 3.0, f"batched cold sweep only {speedup:.2f}x faster than the scalar loop"
