"""Benchmark: regenerate paper Fig. 3 (GEMV validation, varied vs constant DRAM utilization).

The paper profiles GEMV kernels on an A100, clusters them to fit size-dependent
DRAM-bandwidth-utilization factors, and shows that this "varied utilization"
model reduces the mean absolute percentage error to ~5.4%, while a single
constant factor is only accurate for large matrices.  Without the GPU, the
measurements are synthesized by a reference device model (see
``repro.calibration.gemv``); the calibration flow and the varied-vs-constant
comparison are reproduced end to end.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.experiments import fig3_gemv_validation
from repro.analysis.formatting import render_table


def test_fig3_gemv_validation(benchmark):
    result = run_once(benchmark, fig3_gemv_validation)

    emit(
        render_table(
            result.as_rows(),
            title="Fig. 3: GEMV runtime vs prediction (synthetic A100 measurements)",
            precision=1,
        )
    )
    emit(
        f"mean |error| varied utilization   = {result.mean_error_varied_percent:.1f}%  (paper: 5.4%)\n"
        f"mean |error| constant utilization = {result.mean_error_constant_percent:.1f}%"
    )

    benchmark.extra_info["mean_error_varied_percent"] = round(result.mean_error_varied_percent, 2)
    benchmark.extra_info["mean_error_constant_percent"] = round(result.mean_error_constant_percent, 2)

    # Shape assertions: the clustered (varied) utilization model is clearly more
    # accurate than the constant one, and lands in the paper's error range.
    assert result.mean_error_varied_percent < result.mean_error_constant_percent
    assert result.mean_error_varied_percent < 8.0
    # The constant model is accurate for the largest matrices (as the paper notes).
    largest = max(result.points, key=lambda p: p.rows * p.cols)
    assert largest.error_constant_percent < 20.0
    # The fitted utilization factors increase with kernel size.
    factors = [util for _, util in result.utilization_model.table]
    assert factors == sorted(factors)
