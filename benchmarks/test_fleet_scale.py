"""Macro-benchmark of the fleet simulator at million-request scale.

Simulates an 8-replica Llama2-7B fleet on A100s serving one million
requests from an 8-tenant diurnal trace, and records how fast the
cluster-level event-horizon loop runs: simulated requests, fused engine
steps, and generated tokens per wall-clock second.  Trace generation is
timed separately to show the vectorized NumPy path producing the
million-request workload in well under a second.

The headline numbers are written to ``BENCH_fleet.json`` at the repo root
so CI can archive the fleet-throughput trajectory as an artifact (next to
``BENCH_serving.json`` and ``BENCH_batched.json``).  The in-test floors
back the PR's acceptance criterion: >= 1M simulated requests across >= 8
replicas priced in < 60 s wall-clock in a single process.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import emit

from repro.hardware.cluster import build_system
from repro.models.zoo import get_model
from repro.serving import (
    FleetConfig,
    FleetSimulator,
    FleetTraceConfig,
    LengthDistribution,
    SchedulerConfig,
    TenantTrace,
    TraceConfig,
)

#: Where the fleet benchmark records its headline numbers.
BENCH_FLEET_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: Acceptance floors (the local run clears them ~5x; CI machines are slower).
WALL_SECONDS_CEILING = 60.0
REQUESTS_PER_SECOND_FLOOR = 8000.0

#: Total simulated requests across the fleet; override for quick local runs
#: with REPRO_FLEET_REQUESTS (CI uses the full million).
NUM_TENANTS = 8
TOTAL_REQUESTS = int(os.environ.get("REPRO_FLEET_REQUESTS", 1_000_000))
NUM_REPLICAS = 8


def _fleet_config() -> FleetConfig:
    per_tenant = TOTAL_REQUESTS // NUM_TENANTS
    tenants = tuple(
        TenantTrace(
            trace=TraceConfig(
                rate=400.0,
                num_requests=per_tenant,
                prompt_lengths=LengthDistribution.constant(128),
                output_lengths=LengthDistribution.constant(32),
                seed=100 + index,
            ),
            name=f"tenant-{index}",
            diurnal=(0.5, 1.5, 1.5, 0.5),
            period=600.0,
        )
        for index in range(NUM_TENANTS)
    )
    return FleetConfig(
        trace=FleetTraceConfig(tenants=tenants),
        num_replicas=NUM_REPLICAS,
        router="round_robin",
        scheduler=SchedulerConfig(max_batch_size=128, max_prefill_requests=32),
    )


def test_fleet_simulator_million_request_throughput(benchmark):
    system = build_system("A100", num_devices=1)
    model = get_model("Llama2-7B")
    fleet = _fleet_config()

    start = time.perf_counter()
    columns = fleet.trace.generate_columns()
    trace_gen_seconds = time.perf_counter() - start
    assert len(columns) == TOTAL_REQUESTS

    simulator = FleetSimulator(system=system, model=model, fleet=fleet)
    start = time.perf_counter()
    report = benchmark.pedantic(simulator.run, args=(columns,), rounds=1, iterations=1)
    wall_seconds = time.perf_counter() - start

    assert report.completed_requests == TOTAL_REQUESTS
    assert report.rejected_requests == 0
    steps = report.prefill_steps + report.decode_steps
    output_tokens = report.output_token_throughput * report.simulated_time

    payload = {
        "benchmark": "fleet_simulator",
        "model": model.name,
        "system": system.name,
        "num_requests": report.completed_requests,
        "num_replicas": report.num_replicas,
        "router": report.router,
        "engine_steps": steps,
        "simulated_seconds": report.simulated_time,
        "wall_seconds": wall_seconds,
        "trace_gen_seconds": trace_gen_seconds,
        "simulated_requests_per_second": report.completed_requests / wall_seconds,
        "fleet_steps_per_second": steps / wall_seconds,
        "simulated_tokens_per_second": output_tokens / wall_seconds,
        "device_utilization": report.device_utilization,
        "load_imbalance": report.load_imbalance,
        "cost_per_million_tokens_usd": report.cost_per_million_tokens,
    }
    BENCH_FLEET_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info.update(payload)
    emit(
        f"fleet simulator: {report.completed_requests:,} requests on "
        f"{report.num_replicas} replicas ({report.router}) in {wall_seconds:.1f}s = "
        f"{payload['simulated_requests_per_second']:,.0f} requests/s, "
        f"{payload['fleet_steps_per_second']:,.0f} fused steps/s "
        f"(trace generated in {trace_gen_seconds:.2f}s)"
    )
    # Acceptance criterion: a million requests across >= 8 replicas priced in
    # under a minute, single process.
    if TOTAL_REQUESTS >= 1_000_000:
        assert report.completed_requests >= 1_000_000
        assert wall_seconds < WALL_SECONDS_CEILING
        assert payload["simulated_requests_per_second"] >= REQUESTS_PER_SECOND_FLOOR
    assert report.num_replicas >= 8
    # The vectorized trace path must stay a rounding error next to the sim.
    assert trace_gen_seconds < 5.0
