"""Benchmark: regenerate paper Fig. 4 (training memory dissection).

Per-device memory breakdown (optimizer state + gradients, parameters,
activations) for GPT-175B, GPT-530B and GPT-1T under the three activation
recomputation strategies, using the Table 1 parallelism configurations and
2-byte mixed-precision training.  The paper's headline: without recomputation
the models do not fit in an 80 GB A100, and full recomputation frees enough
memory to train them.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.experiments import fig4_memory_breakdown
from repro.analysis.formatting import render_table


def test_fig4_memory_breakdown(benchmark):
    rows = run_once(benchmark, fig4_memory_breakdown)

    emit(
        render_table(
            rows,
            columns=["model", "strategy", "parameters_gb", "optimizer_gb", "activations_gb", "total_gb", "fits_80gb"],
            title="Fig. 4: per-device training memory breakdown (A100 capacity = 80 GB)",
            precision=1,
        )
    )

    by_key = {(row["model"], row["strategy"]): row for row in rows}
    benchmark.extra_info["gpt175b_full_total_gb"] = round(by_key[("GPT-175B", "full")]["total_gb"], 1)
    benchmark.extra_info["gpt1t_none_total_gb"] = round(by_key[("GPT-1008B", "none")]["total_gb"], 1)

    models = ("GPT-175B", "GPT-530B", "GPT-1008B")
    for model in models:
        none, selective, full = (by_key[(model, s)]["total_gb"] for s in ("none", "selective", "full"))
        # Memory ordering across the strategies.
        assert none > selective > full
        # No recomputation never fits in 80 GB; full recomputation always does
        # (those are the configurations Megatron actually ran).
        assert not by_key[(model, "none")]["fits_80gb"]
        assert by_key[(model, "full")]["fits_80gb"]
        # Activations dominate the no-recompute footprint.
        assert by_key[(model, "none")]["activations_gb"] > by_key[(model, "none")]["optimizer_gb"]
    # Bigger models need more total memory without recomputation.
    totals = [by_key[(model, "none")]["total_gb"] for model in models]
    assert totals == sorted(totals)
