"""Micro-benchmark of the request-level serving simulator.

Simulates a continuously-batched Llama2-7B deployment on one A100 and
records how fast the discrete-event loop runs: simulated requests, engine
steps, and generated tokens per wall-clock second.  The headline numbers are
written to ``BENCH_serving.json`` at the repo root so CI can archive the
serving-throughput trajectory as an artifact (next to ``BENCH_batched.json``).
"""

from __future__ import annotations

import json
import pathlib
import time

from conftest import emit

from repro.hardware.cluster import build_system
from repro.models.zoo import get_model
from repro.serving import LengthDistribution, ServingSimulator, TraceConfig

#: Where the serving benchmark records its headline numbers.
BENCH_SERVING_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Workload: mixed prompts, open-loop Poisson arrivals near saturation.
TRACE = TraceConfig(
    rate=6.0,
    num_requests=96,
    prompt_lengths=LengthDistribution.uniform(64, 384),
    output_lengths=LengthDistribution.constant(48),
    seed=2024,
)


def test_serving_simulator_throughput(benchmark):
    system = build_system("A100", num_devices=1)
    model = get_model("Llama2-7B")
    simulator = ServingSimulator(system=system, model=model, tensor_parallel=1)

    start = time.perf_counter()
    report = benchmark.pedantic(simulator.run, args=(TRACE,), rounds=1, iterations=1)
    wall_seconds = time.perf_counter() - start

    assert report.completed_requests == TRACE.num_requests
    assert report.rejected_requests == 0
    steps = report.prefill_steps + report.decode_steps
    output_tokens = sum(metrics.output_tokens for metrics in report.per_request)
    requests_per_second = report.completed_requests / wall_seconds
    payload = {
        "benchmark": "serving_simulator",
        "model": model.name,
        "system": system.name,
        "num_requests": report.completed_requests,
        "engine_steps": steps,
        "simulated_seconds": report.simulated_time,
        "wall_seconds": wall_seconds,
        "simulated_requests_per_second": requests_per_second,
        "steps_per_second": steps / wall_seconds,
        "simulated_tokens_per_second": output_tokens / wall_seconds,
        "speedup_vs_realtime": report.simulated_time / wall_seconds,
    }
    BENCH_SERVING_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info.update(payload)
    emit(
        f"serving simulator: {report.completed_requests} requests / {steps} steps in "
        f"{wall_seconds:.2f}s wall = {requests_per_second:.0f} req/s, "
        f"{payload['speedup_vs_realtime']:.0f}x faster than real time"
    )
    # The simulator must stay far faster than the system it models, or
    # serving sweeps become impractical.
    assert payload["speedup_vs_realtime"] > 5.0
    assert requests_per_second > 10.0
