"""Micro-benchmark of the request-level serving simulator.

Simulates a continuously-batched Llama2-7B deployment on one A100 and
records how fast the discrete-event loop runs: simulated requests, engine
steps, and generated tokens per wall-clock second.  Three regimes are
measured on the same workload:

* **cold**: a fresh simulator, paying all one-time pricing (the protocol of
  the PR 3 baseline, ~5.8k steps/s);
* **steady state**: the same simulator re-run with warm step-cost caches --
  what a frontier sweep sees, since the engine shares one ``StepCostModel``
  across all of a system's serving scenarios;
* **stepwise**: the ``fused=False`` per-step reference loop, measured the
  same way, giving the epoch-fusion speedup.

The headline numbers are written to ``BENCH_serving.json`` at the repo root
so CI can archive the serving-throughput trajectory as an artifact (next to
``BENCH_batched.json``).
"""

from __future__ import annotations

import json
import pathlib
import time

from conftest import emit

from repro.hardware.cluster import build_system
from repro.models.zoo import get_model
from repro.serving import LengthDistribution, ServingSimulator, TraceConfig

#: Where the serving benchmark records its headline numbers.
BENCH_SERVING_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Steps/s of the pre-fusion (PR 3) simulator on this workload; the fused
#: loop must beat it by at least this factor in steady state.
PR3_BASELINE_STEPS_PER_SECOND = 5800.0
FUSION_FLOOR = 5.0

#: Workload: mixed prompts, open-loop Poisson arrivals near saturation.
TRACE = TraceConfig(
    rate=6.0,
    num_requests=96,
    prompt_lengths=LengthDistribution.uniform(64, 384),
    output_lengths=LengthDistribution.constant(48),
    seed=2024,
)


def _best_wall_seconds(simulator: ServingSimulator, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        simulator.run(TRACE)
        best = min(best, time.perf_counter() - start)
    return best


def test_serving_simulator_throughput(benchmark):
    system = build_system("A100", num_devices=1)
    model = get_model("Llama2-7B")
    fused = ServingSimulator(system=system, model=model, tensor_parallel=1)

    start = time.perf_counter()
    report = benchmark.pedantic(fused.run, args=(TRACE,), rounds=1, iterations=1)
    cold_wall_seconds = time.perf_counter() - start

    assert report.completed_requests == TRACE.num_requests
    assert report.rejected_requests == 0
    steps = report.prefill_steps + report.decode_steps
    output_tokens = sum(metrics.output_tokens for metrics in report.per_request)

    # Steady state: the warm-cache regime every scenario after the first of
    # a frontier sweep runs in (one shared StepCostModel per system).
    warm_wall_seconds = _best_wall_seconds(fused)

    # The per-step reference loop, measured identically (its own caches).
    stepwise = ServingSimulator(system=system, model=model, tensor_parallel=1, fused=False)
    stepwise_report = stepwise.run(TRACE)  # cold warm-up run
    assert stepwise_report.to_dict() == report.to_dict()  # fusion is exact
    stepwise_wall_seconds = _best_wall_seconds(stepwise)

    steps_per_second = steps / warm_wall_seconds
    payload = {
        "benchmark": "serving_simulator",
        "model": model.name,
        "system": system.name,
        "num_requests": report.completed_requests,
        "engine_steps": steps,
        "simulated_seconds": report.simulated_time,
        "wall_seconds": warm_wall_seconds,
        "cold_wall_seconds": cold_wall_seconds,
        "stepwise_wall_seconds": stepwise_wall_seconds,
        "simulated_requests_per_second": report.completed_requests / warm_wall_seconds,
        "steps_per_second": steps_per_second,
        "cold_steps_per_second": steps / cold_wall_seconds,
        "stepwise_steps_per_second": steps / stepwise_wall_seconds,
        "fused_speedup": stepwise_wall_seconds / warm_wall_seconds,
        "speedup_vs_pr3_baseline": steps_per_second / PR3_BASELINE_STEPS_PER_SECOND,
        "simulated_tokens_per_second": output_tokens / warm_wall_seconds,
        "speedup_vs_realtime": report.simulated_time / warm_wall_seconds,
    }
    BENCH_SERVING_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info.update(payload)
    emit(
        f"serving simulator: {report.completed_requests} requests / {steps} steps, "
        f"{steps_per_second:.0f} steps/s steady state "
        f"({payload['cold_steps_per_second']:.0f} cold, "
        f"{payload['stepwise_steps_per_second']:.0f} stepwise reference) = "
        f"{payload['speedup_vs_pr3_baseline']:.1f}x the PR 3 baseline, "
        f"{payload['fused_speedup']:.1f}x the per-step loop, "
        f"{payload['speedup_vs_realtime']:.0f}x faster than real time"
    )
    # The simulator must stay far faster than the system it models, or
    # serving sweeps become impractical.
    assert payload["speedup_vs_realtime"] > 5.0
    assert payload["simulated_requests_per_second"] > 10.0
    # Epoch fusion floor: >= 5x the PR 3 per-step baseline on this workload,
    # and a real speedup over the in-tree stepwise reference.
    assert payload["speedup_vs_pr3_baseline"] >= FUSION_FLOOR
    assert payload["fused_speedup"] >= 2.5
