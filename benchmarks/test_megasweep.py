"""Mega-sweep benchmark: the cold path at zoo x catalog x parallelism scale.

A ~10k-scenario decode-bottleneck grid (every zoo model x four catalog
accelerators x tensor-parallel degrees x batch sizes x KV lengths) exercises
the whole cold pipeline the way the million-scenario target will:

* **key-hash** -- vectorized :func:`repro.sweep.cache_keys` vs the scalar
  per-scenario ``cache_key`` loop on fresh grids (identical keys, >= 3x);
* **cold** -- single-process batched planning (``batch_planning=True``,
  serial executor);
* **sharded** -- the same generation planned + priced across the process
  executor's workers;
* **warm** -- the cold runner again, everything served from the LRU.

Sharded results must be bit-identical to the serial batched results.  The
headline numbers land in ``BENCH_megasweep.json`` at the repo root.  The
grid scales via ``REPRO_MEGASWEEP_SCENARIOS`` (default 10000; CI pins the
same value, the README's 100k row comes from
``REPRO_MEGASWEEP_SCENARIOS=100000``).  The >= 2x sharded-speedup assertion
engages only on multi-core hosts -- on a single CPU sharding degenerates to
one shard plus process overhead, which the JSON still records honestly.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time

from conftest import emit

from repro.sweep import Scenario, SweepRunner, cache_keys, clear_engine_cache
from repro.sweep.batchplan import clear_plan_caches

#: Where the benchmark records its headline numbers.
BENCH_MEGASWEEP_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_megasweep.json"

#: Grid scale knob (total scenario count, rounded up to a full KV row).
SCENARIOS_ENV = "REPRO_MEGASWEEP_SCENARIOS"
DEFAULT_SCENARIOS = 10_000

_MODELS = (
    "GPT-7B", "GPT-22B", "GPT-175B", "GPT-310B", "GPT-530B", "GPT-1008B",
    "Llama2-7B", "Llama2-13B", "Llama2-70B",
)
_ACCELERATORS = ("A100", "H100", "B200", "TPUV4")
_TENSOR_PARALLEL = (1, 2, 4, 8)
_BATCH_SIZES = (1, 4)
_KV_BASE = 64


def _target_scenarios() -> int:
    return int(os.environ.get(SCENARIOS_ENV, DEFAULT_SCENARIOS))


def _scenarios():
    """A fresh zoo x catalog x parallelism grid (fresh objects: no pinned keys)."""
    combos = [
        (model, accelerator, tensor_parallel, batch_size)
        for model in _MODELS
        for accelerator in _ACCELERATORS
        for tensor_parallel in _TENSOR_PARALLEL
        for batch_size in _BATCH_SIZES
    ]
    kv_count = max(1, math.ceil(_target_scenarios() / len(combos)))
    return [
        Scenario.decode_bottlenecks(
            accelerator, model, batch_size=batch_size, kv_len=_KV_BASE + kv_index,
            tensor_parallel=tensor_parallel,
        )
        for model, accelerator, tensor_parallel, batch_size in combos
        for kv_index in range(kv_count)
    ]


def _go_cold():
    """Drop every process-level cache the sweep layer warms."""
    clear_engine_cache()
    clear_plan_caches()


def _timed_run(runner, scenarios):
    start = time.perf_counter()
    results = runner.run(scenarios)
    return results, time.perf_counter() - start


def _values_equal(ours, theirs) -> bool:
    if hasattr(ours, "to_dict"):
        return ours.to_dict() == theirs.to_dict()
    return ours == theirs


def test_megasweep_scales_cold_sharded_and_warm(benchmark):
    num_scenarios = len(_scenarios())
    num_cpus = os.cpu_count() or 1

    # -- key-hash throughput: scalar loop vs vectorized identity ------------
    _go_cold()
    scalar_grid = _scenarios()
    start = time.perf_counter()
    scalar_keys = [scenario.cache_key() for scenario in scalar_grid]
    scalar_keyhash_seconds = time.perf_counter() - start
    _go_cold()
    vector_grid = _scenarios()
    start = time.perf_counter()
    vector_keys = cache_keys(vector_grid)
    vector_keyhash_seconds = time.perf_counter() - start
    assert vector_keys == scalar_keys
    keyhash_speedup = scalar_keyhash_seconds / vector_keyhash_seconds
    assert keyhash_speedup >= 3.0

    # -- cold: single-process batched planning ------------------------------
    def _run_cold():
        _go_cold()
        runner = SweepRunner(batch_planning=True, capture_errors=True, cache_size=2 * num_scenarios)
        results, seconds = _timed_run(runner, _scenarios())
        return runner, results, seconds

    cold_runner, cold_results, cold_seconds = benchmark.pedantic(_run_cold, rounds=1, iterations=1)
    assert cold_runner.stats.evaluations == num_scenarios
    assert cold_runner.stats.batched_scenarios == num_scenarios

    # -- sharded: the same generation across the process executor -----------
    _go_cold()
    sharded_runner = SweepRunner(
        executor="process", batch_planning=True, capture_errors=True, cache_size=2 * num_scenarios
    )
    sharded_results, sharded_seconds = _timed_run(sharded_runner, _scenarios())
    assert sharded_runner.stats.evaluations == num_scenarios
    assert sharded_runner.stats.batched_scenarios == num_scenarios

    # Bit-identity: every sharded value equals the serial batched value.
    for ours, theirs in zip(sharded_results, cold_results):
        assert ours.error == theirs.error
        if ours.error is None:
            assert _values_equal(ours.value, theirs.value)

    # -- warm: everything from the LRU --------------------------------------
    warm_results, warm_seconds = _timed_run(cold_runner, _scenarios())
    assert cold_runner.stats.evaluations == num_scenarios  # nothing re-priced
    assert len(warm_results) == num_scenarios

    sharded_speedup = cold_seconds / sharded_seconds
    if num_cpus >= 2:
        assert sharded_speedup >= 2.0

    record = {
        "benchmark": "megasweep_zoo_catalog_parallelism",
        "num_scenarios": num_scenarios,
        "num_cpus": num_cpus,
        "cold_seconds": cold_seconds,
        "sharded_seconds": sharded_seconds,
        "warm_seconds": warm_seconds,
        "cold_scenarios_per_s": num_scenarios / cold_seconds,
        "sharded_scenarios_per_s": num_scenarios / sharded_seconds,
        "warm_scenarios_per_s": num_scenarios / warm_seconds,
        "sharded_speedup": sharded_speedup,
        "scalar_keyhash_keys_per_s": num_scenarios / scalar_keyhash_seconds,
        "vectorized_keyhash_keys_per_s": num_scenarios / vector_keyhash_seconds,
        "keyhash_speedup": keyhash_speedup,
        "plan_seconds": cold_runner.stats.plan_seconds,
        "price_seconds": cold_runner.stats.price_seconds,
        "scatter_seconds": cold_runner.stats.scatter_seconds,
        "keyhash_seconds": cold_runner.stats.keyhash_seconds,
    }
    benchmark.extra_info.update(record)
    BENCH_MEGASWEEP_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        f"megasweep: {num_scenarios} decode-bottleneck scenarios "
        f"({len(_MODELS)} models x {len(_ACCELERATORS)} accelerators x "
        f"tp {_TENSOR_PARALLEL} x batch {_BATCH_SIZES}; {num_cpus} CPUs)\n"
        f"  cold, batched planner   : {cold_seconds:8.2f} s "
        f"({record['cold_scenarios_per_s']:8.0f} scenarios/s)\n"
        f"  cold, process-sharded   : {sharded_seconds:8.2f} s "
        f"({record['sharded_scenarios_per_s']:8.0f} scenarios/s, {sharded_speedup:.2f}x)\n"
        f"  warm, LRU-served        : {warm_seconds:8.2f} s "
        f"({record['warm_scenarios_per_s']:8.0f} scenarios/s)\n"
        f"  key-hash, scalar        : {record['scalar_keyhash_keys_per_s']:8.0f} keys/s\n"
        f"  key-hash, vectorized    : {record['vectorized_keyhash_keys_per_s']:8.0f} keys/s "
        f"({keyhash_speedup:.1f}x)"
    )
