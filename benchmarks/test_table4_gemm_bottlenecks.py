"""Benchmark: regenerate paper Table 4 (per-GEMM bottlenecks, Llama2-13B prefill).

Identify the execution time and bound type of every matrix-multiply function
of one transformer layer during the 200-token summarization phase on a single
A100 and a single H100 (half precision, batch 1).  The paper finds the A100's
projection/MLP GEMMs compute bound and the attention GEMMs memory bound,
while on the H100 every GEMM becomes memory (DRAM) bound.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.experiments import table4_gemm_bottlenecks
from repro.analysis.formatting import render_table


def test_table4_gemm_bottlenecks(benchmark):
    rows = run_once(benchmark, table4_gemm_bottlenecks)

    emit(
        render_table(
            rows,
            columns=["gpu", "gemm", "m", "n", "k", "batch", "time_us", "bound"],
            title="Table 4: GEMM-level bottlenecks in the summarization phase (Llama2-13B, B=1, 200 tokens)",
            precision=1,
        )
    )

    a100 = {row["gemm"]: row for row in rows if row["gpu"] == "A100"}
    h100 = {row["gemm"]: row for row in rows if row["gpu"] == "H100"}

    benchmark.extra_info["a100_compute_bound_gemms"] = sum(1 for r in a100.values() if r["bound"] == "compute")
    benchmark.extra_info["h100_memory_bound_gemms"] = sum(1 for r in h100.values() if r["bound"] == "memory")

    # A100: the weight GEMMs are compute bound, the per-head attention GEMMs memory bound.
    for name in ("qkv_projection", "attention_output", "mlp_h_to_4h", "mlp_4h_to_h"):
        assert a100[name]["bound"] == "compute", name
    for name in ("attention_scores", "attention_context"):
        assert a100[name]["bound"] == "memory", name
    # H100: every GEMM is memory bound.
    assert all(row["bound"] == "memory" for row in h100.values())
    # H100 is faster per GEMM despite being memory bound.
    assert all(h100[name]["time_us"] < a100[name]["time_us"] for name in a100)
    # The MLP block dominates the layer's GEMM time, as in the paper (216 + 109 us
    # of 455 us total on the A100).
    mlp_time = sum(r["time_us"] for name, r in a100.items() if name.startswith("mlp"))
    attention_time = sum(r["time_us"] for name, r in a100.items() if not name.startswith("mlp"))
    assert mlp_time > attention_time
