"""Benchmark: regenerate paper Table 2 (Llama-2 inference-latency validation).

For every row of Table 2 (Llama2-7B/13B/70B on A100 and H100 systems with
TP = 1..8, batch 1, 200 prompt + 200 generated tokens), predict the
end-to-end latency and compare against NVIDIA's published numbers.  The
paper matches them within a 13% relative error.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.experiments import table2_inference_validation
from repro.analysis.formatting import render_table, summarize_errors


def test_table2_inference_validation(benchmark):
    rows = run_once(benchmark, table2_inference_validation)

    emit(
        render_table(
            rows,
            columns=["model", "gpu", "num_gpus", "nvidia_ms", "paper_pred_ms", "predicted_ms", "relative_error_%"],
            title="Table 2: inference latency (batch 1, 200+200 tokens) vs NVIDIA reference",
            precision=0,
        )
    )
    errors = [row["relative_error_%"] for row in rows]
    summary = summarize_errors(errors)
    emit(f"mean |error| = {summary['mean_abs_error_%']:.1f}%   max |error| = {summary['max_abs_error_%']:.1f}%")

    benchmark.extra_info["mean_abs_error_percent"] = round(summary["mean_abs_error_%"], 2)
    benchmark.extra_info["max_abs_error_percent"] = round(summary["max_abs_error_%"], 2)

    assert len(rows) == 22
    # Every row within the paper's 13% band.
    assert all(abs(error) <= 13.0 for error in errors)
    # H100 is always predicted faster than the A100 for the same configuration.
    a100 = {(r["model"], r["num_gpus"]): r["predicted_ms"] for r in rows if r["gpu"] == "A100"}
    h100 = {(r["model"], r["num_gpus"]): r["predicted_ms"] for r in rows if r["gpu"] == "H100"}
    assert all(h100[key] < a100[key] for key in a100)
    # Inference scales poorly with GPU count: 1 -> 8 GPUs gains far less than 8x.
    llama13 = {r["num_gpus"]: r["predicted_ms"] for r in rows if r["model"] == "Llama2-13B" and r["gpu"] == "A100"}
    assert llama13[1] / llama13[8] < 4.0
