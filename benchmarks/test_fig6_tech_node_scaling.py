"""Benchmark: regenerate paper Fig. 6 (technology-node scaling for GPT-7B training).

Sweep the logic technology node from N12 to N1 for the GPT-7B case study
(1024 GPUs, DP-TP-PP-SP = 64-4-4-4) across four HBM generations and three
inter-node network speeds.  The paper's findings: training time drops steeply
at first and saturates beyond ~N5; HBM2 -> HBM2E gives a large gain while
HBM3/HBM4 add little (the model becomes network bound); and raising the
network bandwidth from 100 to 400 GB/s markedly improves training time.
"""

from __future__ import annotations

import collections

from conftest import emit, run_once

from repro.analysis.experiments import fig6_technology_node_scaling
from repro.analysis.formatting import render_table


def test_fig6_technology_node_scaling(benchmark):
    rows = run_once(benchmark, fig6_technology_node_scaling)

    table_rows = [
        {
            "node": row.technology_node,
            "memory": row.dram_technology,
            "network": row.inter_node_network,
            "step_time_s": row.step_time,
            "compute_s": row.compute_time,
            "comm_s": row.communication_time,
            "other_s": row.other_time,
        }
        for row in rows
    ]
    emit(
        render_table(
            table_rows,
            title="Fig. 6: GPT-7B training time per iteration vs technology node / HBM / network",
            precision=3,
        )
    )

    series = collections.defaultdict(dict)
    for row in rows:
        series[row.label][row.technology_node] = row.step_time

    benchmark.extra_info["n12_hbm2_ndr_s"] = round(series["HBM2-NDR-x8"]["N12"], 3)
    benchmark.extra_info["n1_hbm4_gdr_s"] = round(series["HBM4-GDR-x8"]["N1"], 3)

    # Each curve decreases monotonically with the technology node.
    for label, curve in series.items():
        ordered = [curve[node] for node in ("N12", "N10", "N7", "N5", "N3", "N2", "N1")]
        assert ordered == sorted(ordered, reverse=True), label
        # ... and saturates: the early gain (N12->N7) exceeds the late gain (N5->N1).
        assert ordered[0] / ordered[2] > ordered[3] / ordered[6], label

    # HBM2 -> HBM2E is a significant gain; HBM3 -> HBM4 is marginal (network bound).
    hbm2_to_hbm2e = series["HBM2-NDR-x8"]["N1"] / series["HBM2E-NDR-x8"]["N1"]
    hbm3_to_hbm4 = series["HBM3-NDR-x8"]["N1"] / series["HBM4-NDR-x8"]["N1"]
    assert hbm2_to_hbm2e > hbm3_to_hbm4
    assert hbm3_to_hbm4 < 1.10

    # Raising the inter-node network bandwidth from 100 to 400 GB/s markedly helps.
    assert series["HBM4-GDR-x8"]["N1"] < 0.9 * series["HBM4-NDR-x8"]["N1"]
