"""Benchmark: regenerate paper Fig. 5 (GPT-175B training scaling across GPU generations).

Project the GPT-175B training time (Table 3 case-study configuration,
8192 GPUs, DP-TP-PP-SP = 128-8-8-8) across A100-HDR, H100-NDR, H100-NVS,
H200-NVS-L, B200-NDR, B200-NVS and B200-NVS-L clusters, with the per-
generation precision upgrades (FP8 transformer engine on H100/H200, FP4 on
B200) and larger batches on the large-memory "-L" variants.  The paper
reports ~4x from A100 to H100-NDR and ~35x from A100 to B200-NVS-L,
following NVIDIA's scaling trend; the reproduction checks the ordering and
the speed-up bands.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.analysis.experiments import fig5_gpu_generation_scaling
from repro.analysis.formatting import render_table
from repro.validation.reference import GPU_GENERATION_SPEEDUP_CLAIMS


def test_fig5_gpu_generation_scaling(benchmark):
    rows = run_once(benchmark, fig5_gpu_generation_scaling)

    emit(
        render_table(
            rows,
            columns=[
                "system",
                "precision",
                "batch_size",
                "step_time_s",
                "compute_s",
                "communication_s",
                "other_s",
                "speedup_vs_a100",
                "normalized_time",
            ],
            title="Fig. 5: GPT-175B training scaling across GPU generations (per-sequence speed-up vs A100-HDR)",
            precision=2,
        )
    )

    by_system = {row["system"]: row for row in rows}
    for system, row in by_system.items():
        benchmark.extra_info[f"speedup_{system}"] = round(row["speedup_vs_a100"], 1)

    # The generations get monotonically faster per sequence in the order plotted.
    speedups = [row["speedup_vs_a100"] for row in rows]
    assert speedups[0] == 1.0
    assert speedups == sorted(speedups)
    # The paper's qualitative speed-up claims hold (bands defined in validation.reference).
    for system, (low, high) in GPU_GENERATION_SPEEDUP_CLAIMS.items():
        assert low <= by_system[system]["speedup_vs_a100"] <= high, (system, by_system[system]["speedup_vs_a100"])
    # NVS removes most of the inter-node communication exposed on the IB clusters.
    assert by_system["H100-NVS"]["communication_s"] < by_system["H100-NDR"]["communication_s"]
    assert by_system["B200-NVS"]["communication_s"] < by_system["B200-NDR"]["communication_s"]
    # Compute (not communication) dominates the A100 baseline, as in the figure.
    a100 = by_system["A100-HDR"]
    assert a100["compute_s"] > a100["communication_s"] + a100["other_s"]
