#!/usr/bin/env python
"""GPU-generation comparison: how much faster does GPT-175B train on newer clusters?

This example reproduces the paper's Section 5.2 case study (Fig. 5): the
GPT-175B training configuration of Table 3 is projected onto A100, H100,
H200 and B200 clusters, with the per-generation precision upgrades (the FP8
transformer engine on Hopper, FP4 on Blackwell) and the NVLink-Switch (NVS)
inter-node fabric.  The output shows where the time goes (compute vs
communication vs pipeline bubble + weight update) and the speed-up over the
A100 baseline.

Run it with ``python examples/gpu_generation_comparison.py``.
"""

from __future__ import annotations

from repro.analysis.experiments import fig5_gpu_generation_scaling
from repro.analysis.formatting import render_table


def main() -> None:
    rows = fig5_gpu_generation_scaling()

    print(render_table(
        rows,
        columns=[
            "system",
            "precision",
            "batch_size",
            "step_time_s",
            "compute_s",
            "communication_s",
            "other_s",
            "speedup_vs_a100",
        ],
        title="GPT-175B training across GPU generations (8192 GPUs, DP-TP-PP-SP = 128-8-8-8)",
        precision=2,
    ))

    a100 = rows[0]
    best = rows[-1]
    print(
        f"\nThe {best['system']} cluster trains GPT-175B about "
        f"{best['speedup_vs_a100']:.0f}x faster per sequence than the {a100['system']} baseline."
    )
    print("Key drivers, as in the paper:")
    print("  * H100's FP8 transformer engine multiplies the per-GPU math throughput,")
    print("  * the NVLink Switch (NVS) removes the exposed inter-node communication,")
    print("  * H200/B200's larger HBM allows larger (micro-)batches, shrinking bubbles,")
    print("  * B200's FP4 path doubles throughput again.")

    communication_share_ndr = rows[1]["communication_s"] / rows[1]["step_time_s"]
    communication_share_nvs = rows[2]["communication_s"] / rows[2]["step_time_s"]
    print(
        f"\nCommunication share of the step time: {communication_share_ndr:.0%} on H100-NDR "
        f"vs {communication_share_nvs:.0%} on H100-NVS."
    )


if __name__ == "__main__":
    main()
