#!/usr/bin/env python
"""Inference serving study: request-level simulation of a Llama-2 deployment.

Three practical questions a serving team would ask, answered with the
request-level serving simulator (arrival traces -> continuous batching with
KV-memory admission -> analytically priced prefill/decode steps):

1. How hard can one A100 be pushed before tail latency collapses?  The
   latency-throughput frontier of Llama2-13B vs the arrival rate.
2. How many GPUs should serve Llama2-70B under load?  Goodput and tail
   latency vs the tensor-parallel degree at a fixed arrival rate.
3. What does bursty traffic cost?  Poisson vs bursty arrivals at the same
   mean rate, and the p99 inflation the bursts cause.

Run it with ``python examples/inference_serving_study.py``.
"""

from __future__ import annotations

from repro import (
    LengthDistribution,
    Scenario,
    SchedulerConfig,
    ServingConfig,
    ServingSLO,
    SweepRunner,
    TraceConfig,
    build_system,
)
from repro.analysis.experiments import serving_latency_throughput_frontier
from repro.analysis.formatting import render_table

#: One runner for the whole study: scenarios shared between the sections
#: (and with any other analysis in this process) are evaluated once.
RUNNER = SweepRunner(capture_errors=True)

#: Mixed prompt lengths and a fixed generation budget, shared by all studies.
PROMPTS = LengthDistribution.uniform(64, 512)
OUTPUTS = LengthDistribution.constant(96)
SLO = ServingSLO(ttft=1.0, tpot=0.05)


def load_frontier_study() -> None:
    """Latency-throughput frontier of Llama2-13B serving on a single A100."""
    table = serving_latency_throughput_frontier(
        model_name="Llama2-13B",
        gpu="A100",
        num_devices=1,
        arrival_rates=(0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
        tensor_parallels=(1,),
        num_requests=48,
        prompt_lengths=PROMPTS,
        output_lengths=OUTPUTS,
        slo=SLO,
        runner=RUNNER,
    )
    view = table.select(
        ["arrival_rate", "ttft_p50_s", "ttft_p99_s", "tpot_p99_s", "requests_per_s", "goodput_rps", "utilization"]
    )
    print(render_table(view.rows(), title="Llama2-13B on one A100: arrival rate vs tail latency", precision=3))
    print("Throughput tracks the offered load until the device saturates; past that")
    print("point extra arrivals only queue, TTFT p99 explodes, and goodput (requests")
    print("meeting the SLO) falls away from raw throughput.\n")


def tensor_parallel_study() -> None:
    """Goodput of Llama2-70B under load vs the number of A100s serving it."""
    system = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
    config = ServingConfig(
        trace=TraceConfig(
            rate=1.0,
            num_requests=32,
            prompt_lengths=PROMPTS,
            output_lengths=OUTPUTS,
            seed=11,
        ),
        scheduler=SchedulerConfig(max_batch_size=16),
        slo=SLO,
    )
    results = RUNNER.run(
        [
            Scenario.serving(system, "Llama2-70B", config, tensor_parallel=tensor_parallel)
            for tensor_parallel in (1, 2, 4, 8)
        ]
    )
    columns = ["gpus", "ttft_p99_s", "tpot_p99_s", "tokens_per_s", "goodput_rps", "goodput_per_gpu", "utilization", "note"]
    rows = []
    for result in results:
        tensor_parallel = result.scenario.tensor_parallel
        if not result.ok:  # the model does not fit this few devices
            rows.append({"gpus": tensor_parallel, "note": "does not fit (weights exceed device memory)"})
            continue
        report = result.report
        rows.append(
            {
                "gpus": tensor_parallel,
                "ttft_p99_s": report.ttft_p99,
                "tpot_p99_s": report.tpot_p99,
                "tokens_per_s": report.output_token_throughput,
                "goodput_rps": report.goodput,
                "goodput_per_gpu": report.goodput / tensor_parallel,
                "utilization": report.device_utilization,
                "note": "",
            }
        )
    print(
        render_table(
            rows, columns=columns, title="Llama2-70B at 1 req/s: tensor-parallel scaling under load", precision=3
        )
    )
    print("Two GPUs are required just to fit the weights.  More GPUs keep cutting")
    print("TPOT (decode is memory-bound, so each device streams a smaller shard),")
    print("but per-GPU goodput falls -- capacity should be added as replicas once")
    print("the SLO is met.\n")


def burstiness_study() -> None:
    """Poisson vs bursty arrivals at the same mean rate on one A100."""
    system = build_system("A100", num_devices=1)
    rows = []
    for arrival in ("poisson", "bursty"):
        config = ServingConfig(
            trace=TraceConfig(
                rate=4.0,
                num_requests=96,
                arrival=arrival,
                prompt_lengths=PROMPTS,
                output_lengths=OUTPUTS,
                seed=23,
                burstiness=12.0,
                burst_fraction=0.5,
            ),
            slo=SLO,
        )
        report = RUNNER.evaluate(Scenario.serving(system, "Llama2-13B", config))
        rows.append(
            {
                "arrival": arrival,
                "ttft_p50_s": report.ttft_p50,
                "ttft_p99_s": report.ttft_p99,
                "queue_p99_s": report.queue_p99,
                "tpot_p99_s": report.tpot_p99,
                "slo_attainment": report.slo_attainment,
            }
        )
    print(render_table(rows, title="Llama2-13B on one A100 at 4 req/s: Poisson vs bursty arrivals", precision=3))
    print("The mean load is identical, but bursts of back-to-back arrivals queue")
    print("behind each other's prefills: queueing delay inflates the p99")
    print("time-to-first-token well beyond what the average rate predicts.")


if __name__ == "__main__":
    load_frontier_study()
    tensor_parallel_study()
    burstiness_study()
