#!/usr/bin/env python
"""Inference serving study: TP degree, batch size, and memory technology for Llama-2.

Three practical questions a serving team would ask, answered with the
analytical model (mirroring the paper's Section 6):

1. How many GPUs should serve Llama2-70B, and what does each extra GPU buy?
2. What does growing the batch size do to latency and throughput on one GPU?
3. If the accelerator kept its compute but used faster DRAM, how far would
   the latency drop before the on-chip memory becomes the bottleneck?

Run it with ``python examples/inference_serving_study.py``.
"""

from __future__ import annotations

from repro import Scenario, SweepRunner, build_system
from repro.analysis.formatting import render_table
from repro.dse.scaling import inference_memory_scaling_study
from repro.units import GB

#: One runner for the whole study: scenarios shared between the sections
#: (and with any other analysis in this process) are evaluated once.
RUNNER = SweepRunner(capture_errors=True)


def tensor_parallel_study() -> None:
    """Latency and cost-efficiency of Llama2-70B vs the number of A100s."""
    system = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
    results = RUNNER.run_grid(
        lambda tensor_parallel: Scenario.inference(system, "Llama2-70B", tensor_parallel=tensor_parallel),
        tensor_parallel=[1, 2, 4, 8],
    )
    rows = []
    for result in results:
        tensor_parallel = result.scenario.tensor_parallel
        if not result.ok:  # the model does not fit this few devices
            rows.append({"gpus": tensor_parallel, "latency_ms": None, "note": f"does not fit: {result.error}"[:60]})
            continue
        report = result.report
        rows.append(
            {
                "gpus": tensor_parallel,
                "latency_ms": report.total_latency_ms,
                "ms_per_token": report.time_per_output_token * 1e3,
                "communication_ms": report.communication_time * 1e3,
                "memory_per_gpu_gb": report.memory.total_bytes / GB,
                "tokens_per_s_per_gpu": report.throughput_tokens_per_second() / tensor_parallel,
            }
        )
    print(render_table(rows, title="Llama2-70B on A100s: tensor-parallel scaling (batch 1, 200+200 tokens)", precision=1))
    print("Two GPUs are required just to fit the weights; beyond four GPUs the extra")
    print("devices mostly buy latency (at falling per-GPU efficiency) because token")
    print("generation is memory-bound and every layer adds two all-reduces.\n")


def batch_size_study() -> None:
    """Throughput/latency trade-off of batched serving on a single A100."""
    system = build_system("A100", num_devices=1)
    results = RUNNER.run_grid(
        lambda batch_size: Scenario.inference(system, "Llama2-13B", batch_size=batch_size, tensor_parallel=1),
        batch_size=[1, 2, 4, 8, 16],
    )
    rows = []
    for result in results:
        if not result.ok:
            rows.append({"batch": result.scenario.batch_size, "latency_ms": None, "note": result.error[:60]})
            continue
        report = result.report
        rows.append(
            {
                "batch": result.scenario.batch_size,
                "latency_ms": report.total_latency_ms,
                "ms_per_token": report.time_per_output_token * 1e3,
                "throughput_tokens_per_s": report.throughput_tokens_per_second(),
                "kv_cache_gb": report.memory.kv_cache_bytes / GB,
            }
        )
    print(render_table(rows, title="Llama2-13B on one A100: batch size vs latency and throughput", precision=1))
    baseline, biggest = rows[0], rows[-1]
    print(
        f"Growing the batch from 1 to {biggest['batch']} multiplies throughput by "
        f"{biggest['throughput_tokens_per_s'] / baseline['throughput_tokens_per_s']:.1f}x while the request latency grows only "
        f"{biggest['latency_ms'] / baseline['latency_ms']:.1f}x -- the weights are streamed once per step either way.\n"
    )


def memory_technology_study() -> None:
    """DRAM technology what-if for a 2-GPU Llama2-13B server (paper Fig. 9)."""
    rows = inference_memory_scaling_study(gpu_counts=(2,))
    table = [
        {
            "memory": row.dram_technology,
            "network": row.network,
            "memory_s": row.memory_time,
            "communication_s": row.communication_time,
            "total_s": row.total_latency,
        }
        for row in rows
    ]
    print(render_table(table, title="Llama2-13B on 2 GPUs: DRAM technology scaling at fixed (A100) compute", precision=2))
    print("Latency tracks the DRAM bandwidth until roughly HBM3e; beyond that the")
    print("problem becomes L2-bound and only faster on-chip memory or interconnect helps.")


if __name__ == "__main__":
    tensor_parallel_study()
    batch_size_study()
    memory_technology_study()
