#!/usr/bin/env python
"""Quickstart: predict LLM training and inference performance in a few lines.

This example mirrors the paper's two headline use cases:

1. How long does one training step of GPT-175B take on a 64-GPU A100 cluster
   with the Megatron-style 8-way tensor / 8-way pipeline parallelism?
2. What end-to-end latency should we expect when serving Llama2-13B on one or
   eight A100s (batch 1, 200-token prompt, 200 generated tokens)?

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import ParallelismConfig, PerformancePredictionEngine, build_system
from repro.analysis.formatting import render_breakdown
from repro.units import GB


def training_quickstart() -> None:
    """Predict one GPT-175B training step on 64 A100 GPUs."""
    system = build_system(
        "A100",
        num_devices=64,
        intra_node="NVLink3",
        inter_node="HDR-IB",
        name="A100-DGX-cluster",
    )
    engine = PerformancePredictionEngine(system)

    config = ParallelismConfig(
        tensor_parallel=8,
        pipeline_parallel=8,
        micro_batch_size=1,
        sequence_parallel=True,
    )
    report = engine.predict_training(
        "GPT-175B",
        config,
        global_batch_size=64,
        recompute="selective",
    )

    print("=== Training: GPT-175B on 64 x A100 (TP=8, PP=8, SP) ===")
    print(f"time per batch      : {report.step_time:.2f} s")
    print(f"throughput          : {report.throughput_tokens_per_second():,.0f} tokens/s")
    print(render_breakdown(report.breakdown(), title="step-time breakdown", unit="s"))
    print("per-device memory   : "
          f"{report.memory.total_bytes / GB:.1f} GB "
          f"(parameters {report.memory.parameter_bytes / GB:.1f}, "
          f"optimizer {report.memory.optimizer_bytes / GB:.1f}, "
          f"activations {report.memory.activation_bytes / GB:.1f})")
    print()


def inference_quickstart() -> None:
    """Predict Llama2-13B serving latency on 1 and 8 A100 GPUs."""
    system = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
    engine = PerformancePredictionEngine(system)

    print("=== Inference: Llama2-13B, batch 1, 200 prompt + 200 generated tokens ===")
    for tensor_parallel in (1, 2, 4, 8):
        report = engine.predict_inference(
            "Llama2-13B",
            batch_size=1,
            prompt_tokens=200,
            generated_tokens=200,
            tensor_parallel=tensor_parallel,
        )
        print(
            f"TP={tensor_parallel}: latency = {report.total_latency_ms:7.0f} ms   "
            f"(prefill {report.prefill.total_time * 1e3:5.0f} ms, "
            f"decode {report.decode.total_time * 1e3:6.0f} ms, "
            f"communication {report.communication_time * 1e3:5.0f} ms, "
            f"{report.time_per_output_token * 1e3:5.1f} ms/token)"
        )
    print()
    print("Note how poorly inference scales with the GPU count compared to training:")
    print("token generation is memory-bound and the per-layer all-reduces add latency.")


if __name__ == "__main__":
    training_quickstart()
    inference_quickstart()
