#!/usr/bin/env python
"""Capacity planning: find parallelism settings under which an LLM fits in device memory.

This reproduces the workflow of the paper's Section 5.1 ("Memory dissection"):
before any performance analysis one must know whether a model fits into the
device memory at all, and which combination of tensor/pipeline parallelism and
activation recomputation makes it fit with the best training throughput.

The script sweeps TP/PP/recomputation for GPT-175B on a 64-GPU A100 cluster,
reports the per-device memory breakdown of every feasible configuration, and
ranks the feasible ones by predicted training throughput.

Run it with ``python examples/capacity_planning.py``.
"""

from __future__ import annotations

from typing import List

from repro import ParallelismConfig, PerformancePredictionEngine, build_system, get_model
from repro.analysis.formatting import render_table
from repro.errors import ReproError
from repro.units import GB

MODEL_NAME = "GPT-175B"
GLOBAL_BATCH = 64
DEVICE_MEMORY_GB = 80.0


def sweep_configurations() -> List[dict]:
    """Sweep TP, PP, and recomputation strategies and collect memory/throughput."""
    model = get_model(MODEL_NAME)
    system = build_system("A100", num_devices=64, intra_node="NVLink3", inter_node="HDR-IB")
    engine = PerformancePredictionEngine(system)

    rows = []
    for tensor_parallel in (4, 8):
        for pipeline_parallel in (4, 8, 16):
            if tensor_parallel * pipeline_parallel > system.num_devices:
                continue
            data_parallel = system.num_devices // (tensor_parallel * pipeline_parallel)
            for recompute in ("none", "selective", "full"):
                config = ParallelismConfig(
                    data_parallel=data_parallel,
                    tensor_parallel=tensor_parallel,
                    pipeline_parallel=pipeline_parallel,
                    sequence_parallel=True,
                    micro_batch_size=1,
                )
                try:
                    config.validate_for_model(model)
                    memory = engine.training_memory(model, config, GLOBAL_BATCH, recompute=recompute)
                    report = engine.predict_training(model, config, GLOBAL_BATCH, recompute=recompute)
                except ReproError as error:
                    rows.append(
                        {
                            "parallelism": config.label,
                            "recompute": recompute,
                            "memory_gb": float("nan"),
                            "fits": False,
                            "step_s": float("nan"),
                            "tokens_per_s": 0.0,
                            "note": str(error)[:40],
                        }
                    )
                    continue
                fits = memory.total_bytes / GB <= DEVICE_MEMORY_GB
                rows.append(
                    {
                        "parallelism": config.label,
                        "recompute": recompute,
                        "memory_gb": memory.total_bytes / GB,
                        "activations_gb": memory.activation_bytes / GB,
                        "fits": fits,
                        "step_s": report.step_time,
                        "tokens_per_s": report.throughput_tokens_per_second() if fits else 0.0,
                    }
                )
    return rows


def main() -> None:
    rows = sweep_configurations()
    print(render_table(
        rows,
        columns=["parallelism", "recompute", "memory_gb", "activations_gb", "fits", "step_s", "tokens_per_s"],
        title=f"Capacity planning: {MODEL_NAME}, batch {GLOBAL_BATCH}, 64 x A100-80GB",
        precision=1,
    ))

    feasible = [row for row in rows if row.get("fits")]
    if not feasible:
        print("\nNo configuration fits -- increase parallelism or use more aggressive recomputation.")
        return
    best = max(feasible, key=lambda row: row["tokens_per_s"])
    print(
        f"\nBest feasible configuration: DP-TP-PP-SP = {best['parallelism']} with {best['recompute']} recomputation\n"
        f"  per-device memory : {best['memory_gb']:.1f} GB (of {DEVICE_MEMORY_GB:.0f} GB)\n"
        f"  step time         : {best['step_s']:.2f} s\n"
        f"  throughput        : {best['tokens_per_s']:,.0f} tokens/s"
    )


if __name__ == "__main__":
    main()
