#!/usr/bin/env python
"""Declarative studies: declare a sweep, stream its progress, share its spec.

Three steps:

1. Run a registered paper study by name (everything ``python -m repro list``
   shows is equally available from Python).
2. Declare a custom study -- axes by registry name, a one-line extractor --
   and run it with a live progress callback.
3. Serialize the custom study to a JSON spec that anyone can re-run with
   ``python -m repro run study_spec.json`` (no Python required).

Run it with ``python examples/declarative_study.py``.
"""

from __future__ import annotations

import sys

from repro import Study, get_study
from repro.sweep import SweepRunner


def run_registered_study() -> None:
    """Reproduce paper Table 4 through the registry."""
    table = get_study("table4_gemm_bottlenecks", gpus=("A100",)).run()
    print("=== Registered study: table4_gemm_bottlenecks (A100) ===")
    for row in table:
        print(f"{row.gemm:<20} {row.m:>5} x {row.n:>5} x {row.k:>5}  "
              f"{row.time_us:8.1f} us  {row.bound}")
    print()


def run_custom_study() -> Study:
    """Sweep Llama-2 batch sizes across two systems, streaming progress."""
    study = Study(
        name="llama_batch_scan",
        kind="inference",
        axes={"system": ["A100", "H100"], "batch_size": [1, 4, 16]},
        fixed={"model": "Llama2-13B", "prompt_tokens": 512, "generated_tokens": 128,
               "tensor_parallel": 8},
        extract="inference_validation",
        description="Llama2-13B latency vs batch size on one A100/H100 node",
    )

    def progress(result) -> None:
        scenario = result.scenario
        print(f"  evaluated {scenario.system.name:<10} batch={scenario.batch_size:<3} "
              f"{'(cached)' if result.from_cache else '':>8}", file=sys.stderr)

    table = study.run(runner=SweepRunner(), on_result=progress)
    print("=== Custom study: Llama2-13B batch scan ===")
    for row in table:
        per_token = row.decode_ms / 128
        print(f"{row.system:<10} batch {row.batch_size:>2}: total {row.predicted_ms:8.1f} ms  "
              f"prefill {row.prefill_ms:7.1f} ms  decode {per_token:6.2f} ms/token")
    print()
    return study


def export_spec(study: Study) -> None:
    """Write the JSON spec: the shareable, shell-runnable form of the study."""
    path = "llama_batch_scan.json"
    with open(path, "w") as handle:
        handle.write(study.to_json() + "\n")
    print(f"spec written to {path}; re-run it with: python -m repro run {path} --csv out.csv")


if __name__ == "__main__":
    run_registered_study()
    export_spec(run_custom_study())
