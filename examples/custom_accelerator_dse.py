#!/usr/bin/env python
"""Design-space exploration: size a future accelerator for LLM training.

This example drives the µArch engine and the DSE search (paper Sections 3.6
and 5.3): given an area/power budget at an advanced technology node, how
should the silicon be split between the compute array and the last-level
cache, and which memory / network technology should accompany it, to minimize
the GPT-7B training iteration time of the paper's technology-scaling case
study?

Run it with ``python examples/custom_accelerator_dse.py`` (the search takes a
few seconds; it evaluates a few hundred analytical design points).
"""

from __future__ import annotations

from repro.analysis.formatting import render_table
from repro.core.training import TrainingPerformanceModel
from repro.dse.search import GradientDescentSearch
from repro.dse.space import DesignPoint, DesignSpace
from repro.hardware.uarch import ResourceBudget
from repro.models.zoo import get_model
from repro.parallelism.config import ParallelismConfig
from repro.units import MIB, TFLOPS

MODEL = get_model("GPT-7B")
PARALLELISM = ParallelismConfig(
    data_parallel=64, tensor_parallel=4, pipeline_parallel=4, sequence_parallel=True, micro_batch_size=1
)
GLOBAL_BATCH = 512
NUM_DEVICES = 1024
BUDGET = ResourceBudget(area_mm2=800.0, power_watts=700.0)


def objective(point: DesignPoint) -> float:
    """Training-step time of the case-study workload on a cluster of this design."""
    system = point.build_system(num_devices=NUM_DEVICES, budget=BUDGET)
    trainer = TrainingPerformanceModel(system=system)
    report = trainer.predict(MODEL, PARALLELISM, global_batch_size=GLOBAL_BATCH, recompute="selective")
    return report.step_time


def main() -> None:
    space = DesignSpace(
        technology_nodes=("N5", "N3", "N2"),
        dram_technologies=("HBM2E", "HBM3", "HBM4"),
        inter_node_networks=("NDR-x8", "XDR-x8", "GDR-x8"),
        budget=BUDGET,
    )
    search = GradientDescentSearch(space, initial_step=0.1, min_step=0.02, max_iterations=20)
    result = search.search(objective)

    best = result.best_point
    device = best.build_accelerator(budget=BUDGET)
    summary_rows = [
        {"quantity": "technology node", "value": best.technology_node},
        {"quantity": "DRAM technology", "value": best.dram_technology},
        {"quantity": "inter-node network", "value": best.inter_node_network},
        {"quantity": "compute area fraction", "value": f"{best.compute_area_fraction:.2f}"},
        {"quantity": "L2 area fraction", "value": f"{best.l2_area_fraction:.2f}"},
        {"quantity": "derived FP16 peak", "value": f"{device.peak_flops('fp16') / TFLOPS:.0f} TFLOP/s"},
        {"quantity": "derived L2 capacity", "value": f"{device.memory.level('L2').capacity / MIB:.0f} MiB"},
        {"quantity": "GPT-7B iteration time", "value": f"{result.best_cost:.3f} s"},
        {"quantity": "design points evaluated", "value": result.evaluations},
    ]
    print(render_table(summary_rows, title="Best design point found by the DSE search"))

    # Show how the optimum compares against a few fixed reference designs.
    references = []
    for node in ("N5", "N2"):
        for dram in ("HBM2E", "HBM4"):
            point = DesignPoint(technology_node=node, dram_technology=dram, inter_node_network="NDR-x8")
            references.append(
                {"design": point.label, "iteration_s": objective(space.clip(point))}
            )
    references.append({"design": f"optimized ({best.label})", "iteration_s": result.best_cost})
    print()
    print(render_table(references, title="Iteration time of reference designs vs the optimized point", precision=3))
    print("\nAs in the paper, once the logic node is advanced enough the iteration time is")
    print("set by the off-chip memory and the inter-node network, not by more compute.")


if __name__ == "__main__":
    main()
