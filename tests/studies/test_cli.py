"""Tests for the ``python -m repro`` CLI (list / spec / run)."""

import json

import pytest

from repro.cli import main
from repro.sweep import SweepTable


def test_list_prints_registered_studies(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1_training_validation" in out
    assert "[Fig. 5]" in out


def test_list_registries(capsys):
    assert main(["list", "--models", "--systems", "--extractors"]) == 0
    out = capsys.readouterr().out
    assert "Llama2-13B" in out
    assert "A100" in out
    assert "serving_frontier" in out


def test_spec_prints_json(capsys):
    assert main(["spec", "table4_gemm_bottlenecks"]) == 0
    spec = json.loads(capsys.readouterr().out)
    assert spec["kind"] == "prefill_bottlenecks"
    assert spec["axes"]["gpu"] == ["A100", "H100"]


def test_spec_of_code_only_study_fails_cleanly(capsys):
    assert main(["spec", "fig9_memory_technology_scaling"]) == 1
    assert "code-only" in capsys.readouterr().err


def test_run_registered_study_with_params_and_exports(tmp_path, capsys):
    csv_path = tmp_path / "table4.csv"
    json_path = tmp_path / "table4.json"
    code = main([
        "run", "table4_gemm_bottlenecks",
        "-p", "gpus=('A100',)",
        "--csv", str(csv_path),
        "--json", str(json_path),
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "qkv_projection" in captured.out
    assert "rows in" in captured.err
    assert csv_path.read_text().startswith("gpu,gemm,m,n,k,batch,time_us,bound")
    table = SweepTable.from_json(json_path.read_text())
    assert set(table["gpu"].tolist()) == {"A100"}


def test_run_from_spec_file_end_to_end(tmp_path, capsys):
    """The acceptance path: spec a paper study to JSON, run it from the shell."""
    spec_path = tmp_path / "study.json"
    csv_path = tmp_path / "out.csv"
    assert main(["spec", "fig8_inference_boundedness", "-p", "gpus=('A100',)",
                 "-p", "batch_sizes=(1,)", "-o", str(spec_path)]) == 0
    assert main(["run", str(spec_path), "--csv", str(csv_path), "--quiet"]) == 0
    header = csv_path.read_text().splitlines()[0]
    assert header.split(",")[:2] == ["gpu", "batch_size"]
    assert "weights_gb" in header  # the derive chain ran from the spec


def test_run_spec_file_rejects_params(tmp_path, capsys):
    spec_path = tmp_path / "study.json"
    assert main(["spec", "table4_gemm_bottlenecks", "-o", str(spec_path)]) == 0
    assert main(["run", str(spec_path), "-p", "gpus=('A100',)"]) == 1
    assert "registered studies" in capsys.readouterr().err


def test_run_unknown_study_is_an_error(capsys):
    assert main(["run", "no_such_study"]) == 1
    assert "unknown study" in capsys.readouterr().err


def test_run_missing_spec_file_is_a_clean_error(capsys):
    assert main(["run", "does_not_exist.json"]) == 1
    assert "cannot read study spec" in capsys.readouterr().err


def test_run_invalid_spec_file_is_a_clean_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["run", str(bad)]) == 1
    assert "not a valid JSON study spec" in capsys.readouterr().err


def test_bad_param_syntax_is_an_error(capsys):
    assert main(["run", "table4_gemm_bottlenecks", "-p", "gpus"]) == 1
    assert "NAME=VALUE" in capsys.readouterr().err


def test_mistyped_param_name_is_a_clean_error(capsys):
    assert main(["run", "table4_gemm_bottlenecks", "-p", "batchsize=4"]) == 1
    err = capsys.readouterr().err
    assert "bad -p parameter" in err and "batchsize" in err


def test_scalar_param_for_sequence_axis_sweeps_one_value(tmp_path, capsys):
    csv_path = tmp_path / "one_gpu.csv"
    assert main(["run", "table4_gemm_bottlenecks", "-p", "gpus=A100",
                 "--csv", str(csv_path), "--quiet"]) == 0
    lines = csv_path.read_text().splitlines()
    assert all(line.startswith("A100,") for line in lines[1:])


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


@pytest.mark.parametrize("executor", ["thread"])
def test_run_with_pooled_executor(tmp_path, executor):
    assert main(["run", "table4_gemm_bottlenecks", "-p", "gpus=('A100',)",
                 "--executor", executor, "--quiet"]) == 0


# ---------------------------------------------------------------------------
# repro cache
# ---------------------------------------------------------------------------


def test_cache_stats_on_empty_root(tmp_path, capsys):
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    assert "empty" in capsys.readouterr().out


def test_cache_stats_clear_prune_roundtrip(tmp_path, capsys):
    from repro.sweep import DiskResultStore

    store = DiskResultStore(root=tmp_path)
    store.put("aa11", value=1)
    store.put("bb22", value=2)
    DiskResultStore(root=tmp_path, fingerprint="stale").put("cc33", value=3)

    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "2 entries" in out and "(current)" in out and "stale" in out

    assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 0
    assert "stale" in capsys.readouterr().out
    assert store.fingerprints() == [store.fingerprint]

    assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
    assert "removed 2 entries" in capsys.readouterr().out
    assert store.count() == 0

    assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 0
    assert "nothing to prune" in capsys.readouterr().out


def test_cache_prune_all_drops_the_current_fingerprint(tmp_path, capsys):
    from repro.sweep import DiskResultStore

    store = DiskResultStore(root=tmp_path)
    store.put("aa11", value=1)
    assert main(["cache", "prune", "--all", "--cache-dir", str(tmp_path)]) == 0
    assert store.fingerprint in capsys.readouterr().out
    assert store.fingerprints() == []


def test_cache_without_verb_prints_usage(capsys):
    assert main(["cache"]) == 2
    assert "stats,clear,prune" in capsys.readouterr().err


def test_run_stats_line_reports_stage_timings(tmp_path, capsys):
    code = main([
        "run", "table4_gemm_bottlenecks",
        "-p", "gpus=('A100',)",
        "--quiet", "--cache-dir", str(tmp_path),
    ])
    assert code == 0
    err = capsys.readouterr().err
    assert "key-hash" in err and "plan" in err and "price" in err and "scatter" in err


# ---------------------------------------------------------------------------
# Interrupted runs: exit 130, flush what completed, resume the remainder.
# ---------------------------------------------------------------------------


def test_keyboard_interrupt_exits_130_and_resume_prices_only_remainder(
    tmp_path, monkeypatch, capsys
):
    from repro import cli as cli_module

    args = [
        "run", "fleet_resilience",
        "-p", "num_requests=16",
        "-p", "mtbf_values=(0.0, 8.0)",
        "-p", "routers=('round_robin',)",
        "-p", "retry_attempts=(1, 3)",
        "--cache-dir", str(tmp_path),
    ]

    original = cli_module._Progress.__call__
    seen = []

    def interrupting(self, result):
        original(self, result)
        seen.append(result)
        if len(seen) == 2:
            raise KeyboardInterrupt

    monkeypatch.setattr(cli_module._Progress, "__call__", interrupting)
    assert main(args) == 130
    err = capsys.readouterr().err
    assert "interrupted" in err
    assert "2 evaluations" in err
    assert "re-run" in err

    # The two completed scenarios were flushed before the interrupt; the
    # follow-up run prices only the other two.
    monkeypatch.setattr(cli_module._Progress, "__call__", original)
    assert main(args) == 0
    err = capsys.readouterr().err
    assert "4 rows" in err
    assert "2 evaluations" in err
    assert "2 disk hits" in err


def test_keyboard_interrupt_without_disk_cache_omits_resume_hint(monkeypatch, capsys):
    from repro import cli as cli_module

    def interrupting(self, result):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli_module._Progress, "__call__", interrupting)
    assert main([
        "run", "fleet_resilience",
        "-p", "num_requests=16",
        "-p", "mtbf_values=(8.0,)",
        "-p", "routers=('round_robin',)",
        "-p", "retry_attempts=(1,)",
        "--no-disk-cache",
    ]) == 130
    err = capsys.readouterr().err
    assert "interrupted" in err
    assert "re-run" not in err


def test_non_tty_stderr_suppresses_live_progress(capsys):
    # pytest's captured stderr is not a TTY, so the per-scenario `\r` line
    # must not render -- only the closing stats line (server logs / CI).
    assert main(["run", "table4_gemm_bottlenecks", "-p", "gpus=('A100',)", "--no-disk-cache"]) == 0
    err = capsys.readouterr().err
    assert "\r" not in err
    assert "rows in" in err


def test_tty_stderr_renders_live_progress(monkeypatch, capsys):
    import repro.cli as cli

    monkeypatch.setattr(
        cli._Progress, "__init__",
        lambda self, name, total: (
            setattr(self, "name", name), setattr(self, "total", total),
            setattr(self, "done", 0), setattr(self, "live", True), None)[-1],
    )
    assert main(["run", "table4_gemm_bottlenecks", "-p", "gpus=('A100',)", "--no-disk-cache"]) == 0
    err = capsys.readouterr().err
    assert "\r" in err


def test_serve_parser_defaults():
    from repro.cli import _build_parser

    args = _build_parser().parse_args(["serve"])
    assert args.host == "127.0.0.1"
    assert args.port == 8642
    assert args.workers == 2
    assert args.handler.__name__ == "_cmd_serve"
