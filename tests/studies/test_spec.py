"""Tests for the study registry and the JSON spec round-trip."""

import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    FaultConfig,
    FleetConfig,
    FleetTraceConfig,
    LengthDistribution,
    QueueDepthAutoscaler,
    RetryPolicy,
    SchedulerConfig,
    ServingConfig,
    ServingSLO,
    TenantTrace,
    TraceConfig,
)
from repro.studies import Study, get_study, list_studies, register_study, unregister_study
from repro.studies import paper
from repro.sweep import SweepRunner


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_every_paper_artifact_is_registered():
    names = {entry.name for entry in list_studies()}
    assert {
        "table1_training_validation",
        "table2_inference_validation",
        "table4_gemm_bottlenecks",
        "fig3_gemv_validation",
        "fig4_memory_breakdown",
        "fig5_gpu_generation_scaling",
        "fig6_technology_node_scaling",
        "fig7_bound_breakdown",
        "fig8_inference_boundedness",
        "fig9_memory_technology_scaling",
        "serving_latency_throughput_frontier",
        "fleet_load_frontier",
        "fleet_resilience",
    } <= names


def test_registered_entries_carry_artifact_labels():
    by_name = {entry.name: entry for entry in list_studies()}
    assert by_name["table1_training_validation"].artifact == "Table 1"
    assert by_name["fig9_memory_technology_scaling"].artifact == "Fig. 9"
    assert by_name["table4_gemm_bottlenecks"].description


def test_get_study_passes_builder_kwargs():
    study = get_study("table4_gemm_bottlenecks", gpus=("H100",), prompt_tokens=128)
    assert study.axes["gpu"] == ["H100"]
    assert study.fixed["prompt_tokens"] == 128


def test_unknown_study_fails_loudly():
    with pytest.raises(ConfigurationError, match="unknown study"):
        get_study("table9_fantasy")


def test_scalar_for_sequence_parameter_becomes_singleton():
    """`-p gpus=A100` must sweep one GPU, not the characters 'A','1','0','0'."""
    assert get_study("table4_gemm_bottlenecks", gpus="A100").axes["gpu"] == ["A100"]
    assert get_study("fig8_inference_boundedness", batch_sizes=4).axes["batch_size"] == [4]
    # Scalars for scalar parameters pass through untouched.
    assert get_study("table4_gemm_bottlenecks", prompt_tokens=128).fixed["prompt_tokens"] == 128


def test_register_and_unregister_custom_study():
    @register_study(name="custom-probe", description="one-off")
    def build():
        return Study(name="custom-probe", kind="inference_memory",
                     axes={"model": ["Llama2-13B"]}, extract="error")

    try:
        assert get_study("custom-probe").kind == "inference_memory"
    finally:
        unregister_study("custom-probe")
    with pytest.raises(ConfigurationError):
        get_study("custom-probe")


# ---------------------------------------------------------------------------
# JSON spec round-trip
# ---------------------------------------------------------------------------

def test_table4_spec_round_trips_to_identical_table():
    study = paper.table4_gemm_bottlenecks(gpus=("A100",))
    clone = Study.from_json(study.to_json())
    assert clone.to_dict() == study.to_dict()
    direct = study.run(runner=SweepRunner())
    via_spec = clone.run(runner=SweepRunner())
    assert direct.to_dict() == via_spec.to_dict()


def test_fig8_spec_round_trips_to_identical_table():
    study = paper.fig8_inference_boundedness(gpus=("A100",), batch_sizes=(1,))
    clone = Study.from_dict(study.to_dict())
    assert clone.run(runner=SweepRunner()).to_dict() == study.run(runner=SweepRunner()).to_dict()


def test_spec_carries_derive_kwargs():
    spec = paper.fig4_memory_breakdown(models=("GPT-175B",)).to_dict()
    assert spec["derive"] == [["fits_memory", {"device_memory_gb": 80.0}]]
    clone = Study.from_dict(spec)
    assert clone.derive == (("fits_memory", {"device_memory_gb": 80.0}),)


def test_fig4_spec_round_trip_decodes_parallelism_dicts():
    study = paper.fig4_memory_breakdown(models=("GPT-175B",))
    spec = study.to_dict()
    # The ParallelismConfig inside the mapping axis became a plain dict...
    assert isinstance(spec["axes"]["case"][0]["parallelism"], dict)
    # ... and decodes back into an equivalent scenario.
    clone = Study.from_dict(spec)
    original = list(study.scenarios())
    decoded = list(clone.scenarios())
    assert [s.cache_key() for s in decoded] == [s.cache_key() for s in original]


def test_serving_config_spec_round_trip():
    study = Study(
        name="mini-frontier",
        kind="serving",
        axes={"tensor_parallel": [1]},
        fixed={
            "system": "A100",
            "model": "Llama2-7B",
            "serving": ServingConfig(
                trace=TraceConfig(
                    rate=2.0,
                    num_requests=4,
                    prompt_lengths=LengthDistribution.uniform(16, 32),
                    output_lengths=LengthDistribution.constant(8),
                ),
                scheduler=SchedulerConfig(max_batch_size=4),
                slo=ServingSLO(ttft=1.0, tpot=0.1),
            ),
        },
        extract="serving_frontier",
    )
    clone = Study.from_json(study.to_json())
    original = next(study.scenarios())
    decoded = next(clone.scenarios())
    assert decoded.cache_key() == original.cache_key()
    table = clone.run(runner=SweepRunner())
    assert table["completed"][0] == 4


def test_fleet_config_spec_round_trip():
    study = Study(
        name="mini-fleet",
        kind="fleet",
        axes={"tensor_parallel": [1]},
        fixed={
            "system": "A100",
            "model": "Llama2-7B",
            "fleet": FleetConfig(
                trace=FleetTraceConfig(
                    tenants=(
                        TenantTrace(
                            trace=TraceConfig(
                                rate=2.0,
                                num_requests=4,
                                prompt_lengths=LengthDistribution.uniform(16, 32),
                                output_lengths=LengthDistribution.constant(8),
                            ),
                            name="chat",
                            diurnal=(1.0, 2.0),
                            period=60.0,
                        ),
                        TenantTrace(
                            trace=TraceConfig(rate=1.0, num_requests=4, seed=7),
                            name="batch",
                        ),
                    )
                ),
                num_replicas=2,
                router="least_queue",
                scheduler=SchedulerConfig(max_batch_size=4),
            ),
        },
        extract="fleet_frontier",
    )
    clone = Study.from_json(study.to_json())
    original = next(study.scenarios())
    decoded = next(clone.scenarios())
    assert decoded.cache_key() == original.cache_key()
    table = clone.run(runner=SweepRunner())
    assert table["completed"][0] == 8
    assert table["router"][0] == "least_queue"


def test_fleet_load_frontier_study_runs():
    study = get_study(
        "fleet_load_frontier",
        replica_counts=(1, 2),
        routers=("round_robin", "least_queue"),
        requests_per_tenant=8,
        model_name="Llama2-7B",
    )
    table = study.run(runner=SweepRunner())
    assert len(table) == 4
    assert all(error is None for error in table["error"])
    assert all(completed == 12 for completed in table["completed"])
    assert min(table["cost_per_million_tokens_usd"]) > 0


def test_resilient_fleet_config_spec_round_trip():
    study = Study(
        name="mini-resilient-fleet",
        kind="fleet",
        axes={"tensor_parallel": [1]},
        fixed={
            "system": "A100",
            "model": "Llama2-7B",
            "fleet": FleetConfig(
                trace=TraceConfig(rate=4.0, num_requests=16, seed=3),
                num_replicas=2,
                faults=FaultConfig(mtbf=10.0, mttr=3.0, seed=7),
                retry=RetryPolicy(max_attempts=4, backoff=0.5),
                autoscaler=QueueDepthAutoscaler(min_replicas=1, max_replicas=4, interval=1.0),
            ),
        },
        extract="fleet_resilience",
    )
    clone = Study.from_json(study.to_json())
    original = next(study.scenarios())
    decoded = next(clone.scenarios())
    assert decoded.fleet_config == original.fleet_config
    assert decoded.cache_key() == original.cache_key()
    table = clone.run(runner=SweepRunner())
    assert table["fault_mtbf_s"][0] == 10.0
    reference = study.run(runner=SweepRunner())
    assert table["availability"][0] == reference["availability"][0]


def test_fleet_resilience_study_runs():
    study = get_study(
        "fleet_resilience",
        num_requests=16,
        mtbf_values=(0.0, 8.0),
        routers=("round_robin",),
        retry_attempts=(1, 3),
    )
    table = study.run(runner=SweepRunner())
    assert len(table) == 4
    assert all(error is None for error in table["error"])
    baseline = {
        row["retry_max_attempts"]: row for row in table if row["mtbf_s"] == 0.0
    }
    faulty = {row["retry_max_attempts"]: row for row in table if row["mtbf_s"] == 8.0}
    # Fault-free rows: perfect availability, no failure accounting at all.
    for row in baseline.values():
        assert row["availability"] == 1.0
        assert row["replica_failures"] == 0
        assert row["fault_mtbf_s"] is None
    # Faulty rows see failures; retries keep completion at least as high.
    assert any(row["replica_failures"] > 0 for row in faulty.values())
    assert faulty[3]["completed"] >= faulty[1]["completed"]


def test_wrapped_spec_document_is_tolerated():
    spec = {"study": paper.table4_gemm_bottlenecks().to_dict()}
    assert Study.from_dict(spec).name == "table4_gemm_bottlenecks"


def test_typoed_fixed_key_fails_instead_of_running_with_defaults():
    """A hand-edited spec with a misspelled parameter must not silently run."""
    spec = paper.fig8_inference_boundedness(gpus=("A100",), batch_sizes=(1,)).to_dict()
    spec["fixed"]["promt_tokens"] = spec["fixed"].pop("prompt_tokens")
    study = Study.from_dict(spec)
    with pytest.raises(ConfigurationError, match="promt_tokens"):
        study.run(runner=SweepRunner())


def test_metadata_keys_survive_when_named_as_columns():
    study = Study(
        name="metadata",
        kind="inference_memory",
        axes={"model": ["Llama2-7B"]},
        fixed={"batch_size": 1, "source": "model-card"},
        columns=("model", "source"),
        extract="error",
    )
    table = study.run(runner=SweepRunner())
    assert table["source"].tolist() == ["model-card"]


def test_unknown_spec_fields_rejected():
    spec = paper.table4_gemm_bottlenecks().to_dict()
    spec["axis"] = {}
    with pytest.raises(ConfigurationError, match="unknown study spec fields"):
        Study.from_dict(spec)


def test_missing_required_fields_rejected():
    with pytest.raises(ConfigurationError, match="missing"):
        Study.from_dict({"kind": "inference"})


def test_code_only_studies_refuse_to_serialize():
    with pytest.raises(ConfigurationError, match="code-only"):
        paper.inference_memory_scaling().to_dict()  # has a prepare hook
    with pytest.raises(ConfigurationError, match="callable extractor"):
        Study(name="x", kind="inference", extract=lambda r: {}).to_dict()
    with pytest.raises(ConfigurationError, match="callable derive"):
        Study(name="x", kind="inference", derive=(lambda t, r: None,)).to_dict()


def test_unresolvable_rich_values_refuse_to_serialize(tiny_model):
    import dataclasses

    unregistered = dataclasses.replace(tiny_model, name="never-in-the-zoo")
    study = Study(name="x", kind="inference", fixed={"model": unregistered})
    with pytest.raises(ConfigurationError, match="not in the zoo"):
        study.to_dict()


def test_registered_system_makes_spec_serializable(single_node_a100):
    import dataclasses

    from repro.hardware import register_system, unregister_system

    renamed = dataclasses.replace(single_node_a100, name="test-a100-node")
    study = Study(name="x", kind="inference", axes={"batch_size": [1]}, fixed={"system": renamed})
    with pytest.raises(ConfigurationError, match="does not resolve"):
        study.to_dict()  # not registered yet
    name = register_system(renamed)
    try:
        assert study.to_dict()["fixed"]["system"] == "test-a100-node"
    finally:
        unregister_system(name)


# -- eager spec validation (Study.validate, called by from_dict) ---------------


def test_unknown_extractor_rejected_at_parse_time():
    spec = {
        "name": "x",
        "kind": "inference",
        "fixed": {"system": "A100x8", "model": "LLAMA2-7B"},
        "extract": "no_such_extractor",
    }
    with pytest.raises(ConfigurationError, match="no_such_extractor"):
        Study.from_dict(spec)


def test_unknown_derive_rejected_at_parse_time():
    spec = {
        "name": "x",
        "kind": "inference",
        "fixed": {"system": "A100x8", "model": "LLAMA2-7B"},
        "derive": ["no_such_derive"],
    }
    with pytest.raises(ConfigurationError, match="no_such_derive"):
        Study.from_dict(spec)


def test_unknown_model_named_in_parse_error():
    from repro.errors import UnknownModelError

    spec = {"name": "x", "kind": "inference", "fixed": {"system": "A100x8", "model": "GPT-9T"}}
    with pytest.raises(UnknownModelError, match="GPT-9T"):
        Study.from_dict(spec)


def test_unknown_system_in_axes_named_in_parse_error():
    from repro.errors import UnknownHardwareError

    spec = {
        "name": "x",
        "kind": "inference",
        "axes": {"system": ["A100x8", "Bogus-GPU"]},
        "fixed": {"model": "LLAMA2-7B"},
    }
    with pytest.raises(UnknownHardwareError, match="Bogus-GPU"):
        Study.from_dict(spec)


def test_missing_required_factory_params_rejected_at_parse_time():
    spec = {"name": "x", "kind": "inference", "fixed": {"model": "LLAMA2-7B"}}
    with pytest.raises(ConfigurationError, match="'system'"):
        Study.from_dict(spec)


def test_rename_aware_validation_accepts_renamed_axes():
    # fig8-style: a "gpu" axis feeds the accelerator parameter via rename.
    spec = {
        "name": "x",
        "kind": "prefill_bottlenecks",
        "axes": {"gpu": ["A100-80GB"]},
        "fixed": {"model": "LLAMA2-7B"},
        "rename": {"gpu": "accelerator"},
    }
    study = Study.from_dict(spec)
    assert study.rename == {"gpu": "accelerator"}


def test_rename_aware_validation_rejects_unknown_accelerator():
    from repro.errors import UnknownHardwareError

    spec = {
        "name": "x",
        "kind": "prefill_bottlenecks",
        "axes": {"gpu": ["NotA-GPU"]},
        "fixed": {"model": "LLAMA2-7B"},
        "rename": {"gpu": "accelerator"},
    }
    with pytest.raises(UnknownHardwareError, match="NotA-GPU"):
        Study.from_dict(spec)


def test_every_registered_serializable_study_validates():
    for entry in list_studies():
        study = get_study(entry.name)
        try:
            spec = study.to_dict()
        except ConfigurationError:
            continue  # code-only study; nothing to validate from JSON
        Study.from_dict(spec).validate()
