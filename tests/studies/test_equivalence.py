"""Equivalence pins: the Study-backed drivers reproduce the pre-redesign tables.

``golden_driver_tables.json`` was generated from the drivers *before* the
Study redesign (reduced parameterizations, so the pins stay fast).  Each test
runs today's shim with the same parameters and requires the resulting
:class:`~repro.sweep.table.SweepTable` to match column-for-column --
exactly for identity columns, to float precision for metrics.
"""

import json
import pathlib

import pytest

from repro.analysis import experiments as E
from repro.dse import scaling as S
from repro.serving import LengthDistribution
from repro.studies import get_study
from repro.sweep import SweepRunner
from repro.validation.reference import TABLE1_TRAINING_ROWS, TABLE2_INFERENCE_ROWS

GOLDEN = json.loads((pathlib.Path(__file__).parent / "golden_driver_tables.json").read_text())


def assert_matches_golden(table, name):
    got = table.to_dict()["columns"]
    want = GOLDEN[name]["columns"]
    assert set(got) == set(want), f"{name}: columns differ: {set(got) ^ set(want)}"
    for column, expected in want.items():
        actual = got[column]
        assert len(actual) == len(expected), f"{name}.{column}: row count differs"
        for index, (a, e) in enumerate(zip(actual, expected)):
            if isinstance(e, float) and isinstance(a, float):
                assert a == pytest.approx(e, rel=1e-12, abs=1e-15), f"{name}.{column}[{index}]"
            else:
                assert a == e, f"{name}.{column}[{index}]: {a!r} != {e!r}"


def test_table1_matches_pre_redesign_output():
    assert_matches_golden(
        E.table1_training_validation(rows=TABLE1_TRAINING_ROWS[:2]), "table1_training_validation"
    )


def test_table2_matches_pre_redesign_output():
    rows = [r for r in TABLE2_INFERENCE_ROWS if r.model == "Llama2-13B"][:3]
    assert_matches_golden(E.table2_inference_validation(rows=rows), "table2_inference_validation")


def test_table4_matches_pre_redesign_output():
    assert_matches_golden(E.table4_gemm_bottlenecks(gpus=("A100",)), "table4_gemm_bottlenecks")


def test_fig3_matches_pre_redesign_output():
    result = E.fig3_gemv_validation()
    want = GOLDEN["fig3_gemv_validation"]
    assert result.mean_error_varied_percent == pytest.approx(want["mean_error_varied_percent"], rel=1e-12)
    assert result.mean_error_constant_percent == pytest.approx(want["mean_error_constant_percent"], rel=1e-12)


def test_fig4_matches_pre_redesign_output():
    assert_matches_golden(E.fig4_memory_breakdown(models=("GPT-175B",)), "fig4_memory_breakdown")


def test_fig5_matches_pre_redesign_output():
    table = E.fig5_gpu_generation_scaling(systems=[("A100-HDR", 1024), ("H100-NDR", 1024)])
    assert_matches_golden(table, "fig5_gpu_generation_scaling")


_FIG6_KWARGS = dict(
    nodes=("N12", "N1"),
    combinations=[{"dram": "HBM2", "network": "NDR-x8"}, {"dram": "HBM4", "network": "GDR-x8"}],
)


def test_fig6_matches_pre_redesign_output():
    assert_matches_golden(E.fig6_technology_node_scaling(**_FIG6_KWARGS), "fig6_technology_node_scaling")


def test_fig7_matches_pre_redesign_output_from_rows():
    rows = E.fig6_technology_node_scaling(**_FIG6_KWARGS)
    assert_matches_golden(E.fig7_bound_breakdown(rows=rows), "fig7_bound_breakdown")


def test_fig7_registered_study_matches_pre_redesign_output():
    assert_matches_golden(get_study("fig7_bound_breakdown", **_FIG6_KWARGS).run(), "fig7_bound_breakdown")


def test_fig8_matches_pre_redesign_output():
    table = E.fig8_inference_boundedness(gpus=("H100",), batch_sizes=(1, 16))
    assert_matches_golden(table, "fig8_inference_boundedness")


def test_fig9_rows_match_pre_redesign_output():
    table = S.inference_memory_scaling_study(gpu_counts=(2,), memory_technologies=("GDDR6", "HBM2E"))
    assert_matches_golden(table, "inference_memory_scaling_study")


def test_serving_frontier_matches_pre_redesign_output():
    table = E.serving_latency_throughput_frontier(
        model_name="Llama2-7B",
        gpu="A100",
        num_devices=1,
        arrival_rates=(0.5, 2.0),
        tensor_parallels=(1,),
        num_requests=8,
        prompt_lengths=LengthDistribution.uniform(32, 128),
        output_lengths=LengthDistribution.constant(16),
        runner=SweepRunner(),
    )
    assert_matches_golden(table, "serving_latency_throughput_frontier")


def test_shim_and_registered_study_share_one_table():
    """The shim is the registered study: identical output through either door."""
    shim = E.table1_training_validation(rows=TABLE1_TRAINING_ROWS[:1])
    registered = get_study("table1_training_validation", rows=TABLE1_TRAINING_ROWS[:1]).run()
    assert shim.to_dict() == registered.to_dict()
