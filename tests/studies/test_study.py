"""Tests for the declarative Study builder: expansion, execution, streaming."""

import pytest

from repro.errors import ConfigurationError
from repro.models.zoo import register_model
from repro.studies import Study
from repro.sweep import SweepRunner


@pytest.fixture
def registered_tiny(tiny_model):
    """The tiny model, resolvable by name (studies reference models by name)."""
    return register_model(tiny_model)


def inference_study(**overrides):
    spec = dict(
        name="batch-scan",
        kind="inference",
        axes={"system": ["A100"], "batch_size": [1, 2]},
        fixed={"model": "tiny-gpt", "prompt_tokens": 64, "generated_tokens": 16},
        extract=lambda result: {"latency_s": result.value.total_latency},
    )
    spec.update(overrides)
    return Study(**spec)


def test_axes_expand_last_axis_fastest(registered_tiny):
    study = inference_study(axes={"system": ["A100", "H100"], "batch_size": [1, 2]})
    combos = list(study.combos())
    assert [(c["system"], c["batch_size"]) for c in combos] == [
        ("A100", 1), ("A100", 2), ("H100", 1), ("H100", 2),
    ]


def test_no_axes_means_single_evaluation(registered_tiny):
    study = inference_study(
        axes={}, fixed={"model": "tiny-gpt", "system": "A100", "prompt_tokens": 64}
    )
    assert list(study.combos()) == [{}]
    scenarios = list(study.scenarios())
    assert len(scenarios) == 1
    assert scenarios[0].model.name == "tiny-gpt"


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError, match="unknown scenario kind"):
        Study(name="bad", kind="telepathy")


def test_run_attaches_axis_columns(registered_tiny):
    table = inference_study().run(runner=SweepRunner())
    assert table.keys() == ["system", "batch_size", "latency_s"]
    assert table["system"].tolist() == ["A100", "A100"]
    assert table["batch_size"].tolist() == [1, 2]
    assert (table["latency_s"] > 0).all()


def test_mapping_axis_spreads_linked_parameters(registered_tiny):
    cases = [
        {"label": "short", "prompt_tokens": 32, "generated_tokens": 8},
        {"label": "long", "prompt_tokens": 256, "generated_tokens": 64},
    ]
    study = inference_study(
        axes={"case": cases},
        fixed={"model": "tiny-gpt", "system": "A100"},
    )
    table = study.run(runner=SweepRunner())
    assert table["label"].tolist() == ["short", "long"]
    assert table["prompt_tokens"].tolist() == [32, 256]
    assert table["latency_s"][1] > table["latency_s"][0]


def test_columns_projection_and_fixed_lift(registered_tiny):
    study = inference_study(columns=("batch_size", "prompt_tokens"))
    table = study.run(runner=SweepRunner())
    assert table.keys() == ["batch_size", "prompt_tokens", "latency_s"]
    assert table["prompt_tokens"].tolist() == [64, 64]  # lifted from fixed


def test_unknown_column_fails_loudly(registered_tiny):
    study = inference_study(columns=("batch_size", "typo"))
    with pytest.raises(ConfigurationError, match="typo"):
        study.run(runner=SweepRunner())


def test_rename_feeds_factory_under_other_name(registered_tiny):
    study = Study(
        name="bottlenecks",
        kind="prefill_bottlenecks",
        axes={"gpu": ["A100"]},
        fixed={"model": "tiny-gpt", "batch_size": 1, "prompt_tokens": 64},
        rename={"gpu": "accelerator"},
        extract=lambda result: {"gemms": len(result.value)},
    )
    table = study.run(runner=SweepRunner())
    assert table.keys() == ["gpu", "gemms"]
    assert table["gemms"][0] > 0


def test_filters_drop_combos_before_scenarios(registered_tiny):
    study = inference_study(
        axes={"system": ["A100"], "batch_size": [1, 2, 4, 8]},
        filters=(lambda flat: flat["batch_size"] <= 2,),
    )
    table = study.run(runner=SweepRunner())
    assert table["batch_size"].tolist() == [1, 2]


def test_prepare_computes_cross_axis_values(registered_tiny):
    def prepare(flat):
        flat["prompt_tokens"] = flat["batch_size"] * 32
        return flat

    study = inference_study(prepare=prepare)
    scenarios = list(study.scenarios())
    assert [s.prompt_tokens for s in scenarios] == [32, 64]


def test_exploding_extractor_replicates_axis_columns(registered_tiny):
    study = Study(
        name="exploded",
        kind="prefill_bottlenecks",
        axes={"gpu": ["A100"]},
        rename={"gpu": "accelerator"},
        fixed={"model": "tiny-gpt", "prompt_tokens": 64},
        extract=lambda result: [{"gemm": entry.name} for entry in result.value],
    )
    table = study.run(runner=SweepRunner())
    assert len(table) > 1
    assert set(table["gpu"].tolist()) == {"A100"}


def test_callable_derive_appends_columns(registered_tiny):
    def double_latency(table, run):
        table["latency_2x"] = table["latency_s"] * 2

    table = inference_study(derive=(double_latency,)).run(runner=SweepRunner())
    assert (table["latency_2x"] == table["latency_s"] * 2).all()


def test_derive_can_replace_the_table(registered_tiny):
    def project(table, run):
        return table.select(["batch_size"])

    table = inference_study(derive=(project,)).run(runner=SweepRunner())
    assert table.keys() == ["batch_size"]


def test_named_derive_with_kwargs(registered_tiny):
    study = inference_study(
        derive=("sum_columns", {"parts": ("latency_s", "latency_s"), "column": "doubled"}),
    )
    table = study.run(runner=SweepRunner())
    assert (table["doubled"] == 2 * table["latency_s"]).all()


def test_on_result_streams_once_per_scenario(registered_tiny):
    seen = []
    study = inference_study(axes={"system": ["A100"], "batch_size": [1, 2, 1]})
    study.run(runner=SweepRunner(), on_result=seen.append)
    assert len(seen) == 3
    assert sum(1 for result in seen if result.from_cache) == 1


def test_capture_errors_lands_in_error_column(registered_tiny):
    study = Study(
        name="infeasible",
        kind="inference",
        axes={"model": ["Llama2-70B", "tiny-gpt"]},
        fixed={"system": "A100", "tensor_parallel": 1},
        extract="error",
        capture_errors=True,
    )
    table = study.run(runner=SweepRunner())
    assert table["error"][0] is not None  # 70B never fits one A100
    assert table["error"][1] is None


def test_capture_errors_null_fills_report_extractors(registered_tiny):
    """Metric extractors that assume a report survive captured failures: the
    failed row gets null metrics plus the error, every row gains the error
    column, and successful rows keep their values."""
    study = Study(
        name="infeasible-metrics",
        kind="inference",
        axes={"model": ["Llama2-70B", "tiny-gpt"]},
        fixed={"system": "A100", "tensor_parallel": 1},
        extract="inference_validation",
        capture_errors=True,
    )
    table = study.run(runner=SweepRunner())
    assert "error" in table.keys()
    assert table["predicted_ms"][0] is None and table["error"][0] is not None
    assert table["predicted_ms"][1] > 0 and table["error"][1] is None


def test_capture_errors_null_fills_exploding_extractors(registered_tiny):
    study = Study(
        name="infeasible-exploded",
        kind="inference",
        axes={"model": ["Llama2-70B", "tiny-gpt"]},
        fixed={"system": "A100", "tensor_parallel": 1},
        extract=lambda result: [{"latency_s": result.value.total_latency}],
        capture_errors=True,
    )
    table = study.run(runner=SweepRunner())
    assert len(table) == 2  # one null-filled row for the failure, one real row
    assert table["latency_s"][0] is None and table["error"][0] is not None
    assert table["latency_s"][1] > 0 and table["error"][1] is None


def test_execute_exposes_run_context(registered_tiny):
    run = inference_study().execute(runner=SweepRunner())
    assert len(run.combos) == len(run.scenarios) == len(run.results) == 2
    assert run.table.keys()[0] == "system"
    assert all(result.ok for result in run.results)


def test_executor_shorthand_builds_a_runner(registered_tiny):
    table = inference_study().run(executor="thread")
    assert len(table) == 2
