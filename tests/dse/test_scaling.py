"""Tests for the technology-scaling case studies (Fig. 6 / Fig. 9 machinery)."""

import pytest

from repro.dse.scaling import (
    h100_reference_latency,
    inference_memory_scaling_study,
    technology_node_scaling_study,
)
from repro.parallelism.config import ParallelismConfig

# A reduced sweep keeps unit tests quick; the benchmarks run the full sweep.
_FAST_KWARGS = dict(
    nodes=("N12", "N7", "N1"),
    combinations=[
        {"dram": "HBM2", "network": "NDR-x8"},
        {"dram": "HBM4", "network": "NDR-x8"},
        {"dram": "HBM4", "network": "GDR-x8"},
    ],
)


@pytest.fixture(scope="module")
def node_rows():
    return technology_node_scaling_study(**_FAST_KWARGS)


def test_node_scaling_row_count(node_rows):
    assert len(node_rows) == 3 * 3


def test_training_time_decreases_with_node(node_rows):
    series = [row.step_time for row in node_rows if row.label == "HBM2-NDR-x8"]
    assert series == sorted(series, reverse=True)


def test_node_scaling_saturates(node_rows):
    """The N12->N7 gain is much larger than the N7->N1 gain (saturation at advanced nodes)."""
    series = {row.technology_node: row.step_time for row in node_rows if row.label == "HBM2-NDR-x8"}
    early_gain = series["N12"] / series["N7"]
    late_gain = series["N7"] / series["N1"]
    assert early_gain > late_gain


def test_better_memory_and_network_help(node_rows):
    by_label = {}
    for row in node_rows:
        if row.technology_node == "N1":
            by_label[row.label] = row.step_time
    assert by_label["HBM4-NDR-x8"] < by_label["HBM2-NDR-x8"]
    assert by_label["HBM4-GDR-x8"] < by_label["HBM4-NDR-x8"]


def test_memory_boundedness_grows_with_node(node_rows):
    rows = [row for row in node_rows if row.label == "HBM2-NDR-x8"]
    fractions = {
        row.technology_node: row.gemm_memory_bound_time / (row.gemm_memory_bound_time + row.gemm_compute_bound_time)
        for row in rows
    }
    assert fractions["N1"] > fractions["N12"]


def test_node_scaling_breakdown_consistency(node_rows):
    for row in node_rows:
        assert row.step_time == pytest.approx(row.compute_time + row.communication_time + row.other_time, rel=1e-6)


def test_custom_parallelism_is_respected():
    rows = technology_node_scaling_study(
        model="GPT-7B",
        parallelism=ParallelismConfig(data_parallel=16, tensor_parallel=4, pipeline_parallel=4, micro_batch_size=1),
        global_batch_size=128,
        num_devices=256,
        nodes=("N7",),
        combinations=[{"dram": "HBM2E", "network": "NDR-x8"}],
    )
    assert len(rows) == 1
    assert rows[0].step_time > 0


@pytest.fixture(scope="module")
def memory_rows():
    return inference_memory_scaling_study(
        gpu_counts=(2, 8),
        memory_technologies=("GDDR6", "HBM2E", "HBM3E", "HBMX"),
    )


def test_memory_scaling_latency_decreases_with_bandwidth(memory_rows):
    two_gpu = [row for row in memory_rows if row.num_gpus == 2 and row.network == "NVLink3"]
    latencies = [row.total_latency for row in two_gpu]
    assert latencies == sorted(latencies, reverse=True)


def test_memory_scaling_saturates_at_hbmx(memory_rows):
    """Once the DRAM bandwidth passes the on-chip (L2) bandwidth the gains stop."""
    two_gpu = {row.dram_technology: row.memory_time for row in memory_rows if row.num_gpus == 2 and row.network == "NVLink3"}
    early_gain = two_gpu["GDDR6"] / two_gpu["HBM2E"]
    late_gain = two_gpu["HBM3E"] / two_gpu["HBMX"]
    assert early_gain > 2.0
    assert late_gain < 1.15


def test_communication_independent_of_memory_technology(memory_rows):
    eight_gpu = [row for row in memory_rows if row.num_gpus == 8 and row.network == "NVLink3"]
    comm_times = {row.communication_time for row in eight_gpu}
    assert max(comm_times) - min(comm_times) < 1e-6


def test_nvlink4_reduces_communication(memory_rows):
    nv3 = [r for r in memory_rows if r.num_gpus == 8 and r.dram_technology == "HBMX" and r.network == "NVLink3"][0]
    nv4 = [r for r in memory_rows if r.num_gpus == 8 and r.dram_technology == "HBMX" and r.network == "NVLink4"][0]
    assert nv4.communication_time < nv3.communication_time
    assert nv4.memory_time == pytest.approx(nv3.memory_time, rel=1e-6)


def test_eight_gpus_trade_memory_for_communication(memory_rows):
    two = [r for r in memory_rows if r.num_gpus == 2 and r.dram_technology == "HBM2E" and r.network == "NVLink3"][0]
    eight = [r for r in memory_rows if r.num_gpus == 8 and r.dram_technology == "HBM2E" and r.network == "NVLink3"][0]
    assert eight.memory_time < two.memory_time
    assert eight.communication_time > two.communication_time


def test_h100_reference_latency_reasonable():
    latency = h100_reference_latency(num_gpus=2)
    assert 1.0 < latency < 3.0


def test_memory_scaling_study_supports_exact_decode():
    """The sweep driver threads decode_mode through to the inference engine."""
    kwargs = dict(gpu_counts=(2,), memory_technologies=("HBM2E",), extra_points=[])
    average = inference_memory_scaling_study(**kwargs)
    exact = inference_memory_scaling_study(decode_mode="exact", **kwargs)
    assert len(average) == len(exact) == 1
    assert exact[0].memory_time != average[0].memory_time
    assert exact[0].total_latency == pytest.approx(average[0].total_latency, rel=0.05)
    # Communication does not depend on the decode pricing mode.
    assert exact[0].communication_time == pytest.approx(average[0].communication_time, rel=1e-9)
