"""Tests for the design space and design points."""

import pytest

from repro.dse.space import DesignPoint, DesignSpace
from repro.errors import ConfigurationError
from repro.hardware.datatypes import Precision
from repro.hardware.uarch import ResourceBudget


def test_design_point_builds_accelerator():
    point = DesignPoint(technology_node="N5", dram_technology="HBM3")
    device = point.build_accelerator()
    assert device.dram_technology == "HBM3"
    assert device.peak_flops(Precision.FP16) > 0


def test_design_point_builds_system():
    point = DesignPoint(technology_node="N7", dram_technology="HBM2E", inter_node_network="GDR-x8")
    system = point.build_system(num_devices=32)
    assert system.num_devices == 32
    assert system.inter_node_fabric.name == "GDR-x8"
    assert system.intra_node_fabric.name == "NVLink3"


def test_design_point_fp8_fp4_support():
    point = DesignPoint(technology_node="N3", supports_fp8=True, supports_fp4=True)
    device = point.build_accelerator()
    assert device.compute.supports(Precision.FP8)
    assert device.compute.supports(Precision.FP4)


def test_perturbed_and_label():
    point = DesignPoint()
    moved = point.perturbed(compute_area_fraction=0.7)
    assert moved.compute_area_fraction == pytest.approx(0.7)
    assert moved.technology_node == point.technology_node
    assert point.label.startswith("N7-")


def test_space_validation():
    with pytest.raises(Exception):
        DesignSpace(technology_nodes=("N99",))
    with pytest.raises(ConfigurationError):
        DesignSpace(area_fraction_bounds=(0.9, 0.1))


def test_space_clip():
    space = DesignSpace(area_fraction_bounds=(0.3, 0.8), l2_fraction_bounds=(0.05, 0.35))
    clipped = space.clip(DesignPoint(compute_area_fraction=0.95, l2_area_fraction=0.5))
    assert clipped.compute_area_fraction == pytest.approx(0.8)
    assert clipped.l2_area_fraction <= 0.35
    assert clipped.compute_area_fraction + clipped.l2_area_fraction < 0.95


def test_space_contains():
    space = DesignSpace(dram_technologies=("HBM2E",))
    assert space.contains(DesignPoint(dram_technology="HBM2E", inter_node_network="NDR-x8"))
    assert not space.contains(DesignPoint(dram_technology="HBM3", inter_node_network="NDR-x8"))


def test_grid_covers_discrete_dimensions():
    space = DesignSpace(
        technology_nodes=("N7", "N5"),
        dram_technologies=("HBM2E", "HBM3"),
        inter_node_networks=("NDR-x8",),
    )
    grid = space.grid(fraction_steps=2)
    assert len(grid) == 2 * 2 * 1 * 2
    nodes = {point.technology_node for point in grid}
    assert nodes == {"N7", "N5"}


def test_budget_shared_across_grid():
    budget = ResourceBudget(area_mm2=600, power_watts=500)
    space = DesignSpace(budget=budget)
    assert space.budget.area_mm2 == 600
