"""Tests for the gradient-descent design-space search."""

import pytest

from repro.dse.search import EvaluationRecord, GradientDescentSearch, optimize_allocation
from repro.dse.space import DesignPoint, DesignSpace
from repro.errors import MemoryCapacityError, SearchError


def _quadratic_objective(optimum_compute=0.7, optimum_l2=0.1):
    """A smooth objective minimized at a known allocation."""

    def objective(point: DesignPoint) -> float:
        return (point.compute_area_fraction - optimum_compute) ** 2 + (point.l2_area_fraction - optimum_l2) ** 2 + 1.0

    return objective


def test_search_finds_known_optimum():
    space = DesignSpace(technology_nodes=("N7",), dram_technologies=("HBM2E",), inter_node_networks=("NDR-x8",))
    search = GradientDescentSearch(space, initial_step=0.2, min_step=0.005)
    result = search.search(_quadratic_objective(), starting_points=[DesignPoint(compute_area_fraction=0.4)])
    assert result.best_point.compute_area_fraction == pytest.approx(0.7, abs=0.05)
    assert result.best_cost == pytest.approx(1.0, abs=0.02)
    assert result.evaluations > 5
    assert result.history


def test_search_respects_bounds():
    space = DesignSpace(
        technology_nodes=("N7",),
        dram_technologies=("HBM2E",),
        inter_node_networks=("NDR-x8",),
        area_fraction_bounds=(0.3, 0.6),
    )
    search = GradientDescentSearch(space)
    result = search.search(_quadratic_objective(optimum_compute=0.9))
    assert result.best_point.compute_area_fraction <= 0.6 + 1e-9


def test_search_skips_infeasible_points():
    space = DesignSpace(technology_nodes=("N7",), dram_technologies=("HBM2E",), inter_node_networks=("NDR-x8",))

    def objective(point: DesignPoint) -> float:
        if point.compute_area_fraction > 0.55:
            raise MemoryCapacityError("infeasible")
        return 10.0 - point.compute_area_fraction

    result = GradientDescentSearch(space).search(objective, starting_points=[DesignPoint(compute_area_fraction=0.4)])
    assert result.best_point.compute_area_fraction <= 0.55
    assert result.best_cost < 10.0


def test_search_all_infeasible_raises():
    space = DesignSpace(technology_nodes=("N7",), dram_technologies=("HBM2E",), inter_node_networks=("NDR-x8",))

    def objective(point: DesignPoint) -> float:
        raise MemoryCapacityError("never feasible")

    with pytest.raises(SearchError):
        GradientDescentSearch(space).search(objective, starting_points=[DesignPoint()])


def test_search_propagates_objective_bugs():
    """Non-library exceptions are bugs in the objective, not infeasibility."""
    space = DesignSpace(technology_nodes=("N7",), dram_technologies=("HBM2E",), inter_node_networks=("NDR-x8",))

    def objective(point: DesignPoint) -> float:
        raise TypeError("a genuine bug")

    with pytest.raises(TypeError):
        GradientDescentSearch(space).search(objective, starting_points=[DesignPoint()])


def test_evaluate_caches_by_design_point_hash():
    """Repeated evaluations of an equal point hit the structured cache."""
    space = DesignSpace(technology_nodes=("N7",), dram_technologies=("HBM2E",), inter_node_networks=("NDR-x8",))
    search = GradientDescentSearch(space)
    calls = []

    def objective(point: DesignPoint) -> float:
        calls.append(point)
        return 1.0

    cache = {}
    point = DesignPoint(compute_area_fraction=0.5)
    twin = DesignPoint(compute_area_fraction=0.5)
    assert search._evaluate(objective, point, cache) == 1.0
    assert search._evaluate(objective, twin, cache) == 1.0
    assert len(calls) == 1
    assert cache[point] == EvaluationRecord(cost=1.0)


def test_infeasible_points_do_not_pollute_evaluation_count():
    space = DesignSpace(technology_nodes=("N7",), dram_technologies=("HBM2E",), inter_node_networks=("NDR-x8",))
    search = GradientDescentSearch(space)
    cache = {}

    def objective(point: DesignPoint) -> float:
        raise MemoryCapacityError("does not fit")

    point = DesignPoint()
    assert search._evaluate(objective, point, cache) == float("inf")
    assert len(cache) == 1
    assert not cache[point].feasible
    assert cache[point].error is not None


def test_search_without_starting_points_raises():
    space = DesignSpace(technology_nodes=("N7",), dram_technologies=("HBM2E",), inter_node_networks=("NDR-x8",))
    with pytest.raises(SearchError):
        GradientDescentSearch(space).search(_quadratic_objective(), starting_points=[])


def test_optimize_allocation_helper():
    result = optimize_allocation(_quadratic_objective(optimum_compute=0.6, optimum_l2=0.2))
    assert result.best_point.compute_area_fraction == pytest.approx(0.6, abs=0.08)
    summary = result.summary()
    assert "best_cost" in summary and "compute_area_fraction" in summary


def test_batch_objective_probes_once_per_iteration():
    """With a batch objective, each descent iteration fires one batched probe call."""
    space = DesignSpace(technology_nodes=("N7",), dram_technologies=("HBM2E",), inter_node_networks=("NDR-x8",))
    batches = []

    def objective(point: DesignPoint) -> float:
        return (point.compute_area_fraction - 0.7) ** 2 + (point.l2_area_fraction - 0.1) ** 2 + 1.0

    def batch_objective(points):
        batches.append(list(points))
        return [objective(point) for point in points]

    search = GradientDescentSearch(space, initial_step=0.2, min_step=0.005, batch_objective=batch_objective)
    result = search.search(objective, starting_points=[DesignPoint(compute_area_fraction=0.4)])
    assert result.best_point.compute_area_fraction == pytest.approx(0.7, abs=0.05)
    assert result.best_cost == pytest.approx(1.0, abs=0.02)
    assert batches  # the batched path was exercised
    # Every batch contains at most the six gradient probes (3 knobs x 2 directions).
    assert all(1 <= len(batch) <= 6 for batch in batches)


def test_batch_objective_infinite_costs_mark_infeasible():
    space = DesignSpace(technology_nodes=("N7",), dram_technologies=("HBM2E",), inter_node_networks=("NDR-x8",))

    def objective(point: DesignPoint) -> float:
        if point.compute_area_fraction > 0.55:
            raise MemoryCapacityError("infeasible")
        return 10.0 - point.compute_area_fraction

    def batch_objective(points):
        costs = []
        for point in points:
            try:
                costs.append(objective(point))
            except MemoryCapacityError:
                costs.append(float("inf"))
        return costs

    search = GradientDescentSearch(space, batch_objective=batch_objective)
    result = search.search(objective, starting_points=[DesignPoint(compute_area_fraction=0.4)])
    assert result.best_point.compute_area_fraction <= 0.55
    assert result.best_cost < 10.0


def test_batch_objective_length_mismatch_raises():
    space = DesignSpace(technology_nodes=("N7",), dram_technologies=("HBM2E",), inter_node_networks=("NDR-x8",))
    search = GradientDescentSearch(space, batch_objective=lambda points: [1.0])
    with pytest.raises(SearchError):
        search.search(_quadratic_objective(), starting_points=[DesignPoint(compute_area_fraction=0.4)])


def test_batched_and_unbatched_probes_agree():
    """The batch objective changes how probes are evaluated, not where descent lands."""
    space = DesignSpace(technology_nodes=("N7",), dram_technologies=("HBM2E",), inter_node_networks=("NDR-x8",))
    objective = _quadratic_objective(optimum_compute=0.65, optimum_l2=0.15)
    start = [DesignPoint(compute_area_fraction=0.45, l2_area_fraction=0.25)]
    plain = GradientDescentSearch(space, initial_step=0.2, min_step=0.005).search(objective, starting_points=start)
    batched = GradientDescentSearch(
        space, initial_step=0.2, min_step=0.005, batch_objective=lambda pts: [objective(p) for p in pts]
    ).search(objective, starting_points=start)
    assert batched.best_point == plain.best_point
    assert batched.best_cost == plain.best_cost
