"""Tests for interconnect catalog and semantics."""

import pytest

from repro.errors import ConfigurationError, UnknownHardwareError
from repro.hardware.network import (
    INTERCONNECTS,
    Interconnect,
    custom_interconnect,
    get_interconnect,
)
from repro.units import GBPS


def test_catalog_bandwidths_match_paper():
    assert get_interconnect("HDR-IB").bandwidth == pytest.approx(200 * GBPS)
    assert get_interconnect("NDR-IB").bandwidth == pytest.approx(400 * GBPS)
    assert get_interconnect("NVLink3").bandwidth == pytest.approx(300 * GBPS)
    assert get_interconnect("NVLink4").bandwidth == pytest.approx(450 * GBPS)
    assert get_interconnect("NVS").bandwidth == pytest.approx(900 * GBPS)
    assert get_interconnect("NDR-x8").bandwidth == pytest.approx(100 * GBPS)
    assert get_interconnect("XDR-x8").bandwidth == pytest.approx(200 * GBPS)
    assert get_interconnect("GDR-x8").bandwidth == pytest.approx(400 * GBPS)


def test_infiniband_fabrics_are_node_level_shared():
    assert get_interconnect("HDR-IB").per_device is False
    assert get_interconnect("NDR-IB").per_device is False
    assert get_interconnect("NDR-x8").per_device is False


def test_nvlink_fabrics_are_per_device():
    assert get_interconnect("NVLink3").per_device is True
    assert get_interconnect("NVS").per_device is True


def test_scopes():
    assert get_interconnect("NVLink3").scope == "intra_node"
    assert get_interconnect("HDR-IB").scope == "inter_node"
    assert get_interconnect("NVS").scope == "inter_node"


def test_lookup_is_case_insensitive():
    assert get_interconnect("nvlink3").name == "NVLink3"
    assert get_interconnect("hdr-ib").name == "HDR-IB"


def test_lookup_unknown_raises():
    with pytest.raises(UnknownHardwareError):
        get_interconnect("TokenRing")


def test_interconnect_validation():
    with pytest.raises(ConfigurationError):
        Interconnect("bad", bandwidth=0, latency=1e-6)
    with pytest.raises(ConfigurationError):
        Interconnect("bad", bandwidth=1e9, latency=-1)
    with pytest.raises(ConfigurationError):
        Interconnect("bad", bandwidth=1e9, latency=1e-6, scope="sideways")
    with pytest.raises(ConfigurationError):
        Interconnect("bad", bandwidth=1e9, latency=1e-6, utilization=0.0)


def test_scaled_and_with_utilization():
    nvlink = get_interconnect("NVLink3")
    doubled = nvlink.scaled(bandwidth_factor=2.0, name="NVLink3-x2")
    assert doubled.bandwidth == pytest.approx(2 * nvlink.bandwidth)
    assert doubled.name == "NVLink3-x2"
    derated = nvlink.with_utilization(0.5)
    assert derated.effective_bandwidth == pytest.approx(0.5 * nvlink.bandwidth)


def test_custom_interconnect():
    fabric = custom_interconnect("optical", bandwidth=2000 * GBPS, latency=1e-6)
    assert fabric.bandwidth == pytest.approx(2000 * GBPS)
    assert fabric.scope == "inter_node"


def test_catalog_has_no_duplicate_latency_zero():
    for fabric in INTERCONNECTS.values():
        assert fabric.latency > 0
        assert fabric.bandwidth > 0
