"""Tests for the compute-engine spec."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.compute import ComputeSpec
from repro.hardware.datatypes import Precision
from repro.units import TFLOPS


def _spec(efficiency=0.7):
    return ComputeSpec(
        peak_flops={Precision.FP16: 312 * TFLOPS, Precision.FP32: 19.5 * TFLOPS},
        efficiency=efficiency,
    )


def test_peak_and_sustained():
    spec = _spec(efficiency=0.5)
    assert spec.peak(Precision.FP16) == pytest.approx(312 * TFLOPS)
    assert spec.sustained(Precision.FP16) == pytest.approx(156 * TFLOPS)


def test_supports():
    spec = _spec()
    assert spec.supports(Precision.FP16)
    assert not spec.supports(Precision.FP8)


def test_fallback_to_wider_format():
    spec = _spec()
    # BF16 falls back to FP16; FP8 falls back to FP16 as well.
    assert spec.peak(Precision.BF16) == pytest.approx(312 * TFLOPS)
    assert spec.peak(Precision.FP8) == pytest.approx(312 * TFLOPS)


def test_unsupported_without_fallback_raises():
    spec = ComputeSpec(peak_flops={Precision.FP64: 10 * TFLOPS})
    with pytest.raises(ConfigurationError):
        spec.peak(Precision.FP4)


def test_vector_throughput_defaults_to_fraction_of_fp16():
    spec = _spec()
    assert spec.vector_throughput == pytest.approx(312 * TFLOPS * 0.125 * 0.7)


def test_vector_throughput_explicit():
    spec = ComputeSpec(peak_flops={Precision.FP16: 100 * TFLOPS}, efficiency=0.8, vector_flops=20 * TFLOPS)
    assert spec.vector_throughput == pytest.approx(16 * TFLOPS)


def test_scaled():
    spec = _spec()
    doubled = spec.scaled(2.0)
    assert doubled.peak(Precision.FP16) == pytest.approx(624 * TFLOPS)
    assert doubled.efficiency == spec.efficiency
    with pytest.raises(ConfigurationError):
        spec.scaled(0.0)


def test_validation_rejects_bad_inputs():
    with pytest.raises(ConfigurationError):
        ComputeSpec(peak_flops={})
    with pytest.raises(ConfigurationError):
        ComputeSpec(peak_flops={Precision.FP16: -1})
    with pytest.raises(ConfigurationError):
        ComputeSpec(peak_flops={Precision.FP16: 1e12}, efficiency=1.5)


def test_as_dict_round_trip():
    spec = _spec()
    as_dict = spec.as_dict()
    assert as_dict["fp16"] == pytest.approx(312 * TFLOPS)
    assert set(as_dict) == {"fp16", "fp32"}
