"""Tests for memory technologies and the on-device hierarchy."""

import pytest

from repro.errors import ConfigurationError, UnknownHardwareError
from repro.hardware.memory import (
    DRAM_TECHNOLOGIES,
    INFERENCE_MEMORY_SWEEP,
    TRAINING_MEMORY_SWEEP,
    MemoryHierarchy,
    MemoryLevel,
    get_dram_technology,
    make_gpu_hierarchy,
)
from repro.units import GB, MIB, TBPS


def test_dram_catalog_bandwidths_match_paper_values():
    assert get_dram_technology("HBM2").bandwidth == pytest.approx(1.0 * TBPS)
    assert get_dram_technology("HBM2E").bandwidth == pytest.approx(1.9 * TBPS)
    assert get_dram_technology("HBM3").bandwidth == pytest.approx(2.6 * TBPS)
    assert get_dram_technology("HBM3E").bandwidth == pytest.approx(4.8 * TBPS)
    assert get_dram_technology("HBMX").bandwidth == pytest.approx(6.8 * TBPS)
    assert get_dram_technology("GDDR6").bandwidth == pytest.approx(0.6 * TBPS)


def test_dram_lookup_accepts_paper_spelling():
    # The paper writes "GDR6" for GDDR6.
    assert get_dram_technology("GDR6").name == "GDDR6"
    assert get_dram_technology("hbm2e").name == "HBM2E"


def test_dram_lookup_unknown_raises():
    with pytest.raises(UnknownHardwareError):
        get_dram_technology("HBM9")


def test_sweep_orders_are_monotonic_in_bandwidth():
    inference = [get_dram_technology(n).bandwidth for n in INFERENCE_MEMORY_SWEEP]
    assert inference == sorted(inference)
    training = [get_dram_technology(n).bandwidth for n in TRAINING_MEMORY_SWEEP]
    assert training == sorted(training)


def test_memory_technology_with_capacity_and_scaled():
    hbm3 = get_dram_technology("HBM3")
    bigger = hbm3.with_capacity(192 * GB)
    assert bigger.capacity == 192 * GB
    assert bigger.bandwidth == hbm3.bandwidth
    faster = hbm3.scaled(2.0)
    assert faster.bandwidth == pytest.approx(2 * hbm3.bandwidth)


def test_memory_technology_validation():
    with pytest.raises(ConfigurationError):
        MemoryLevel("L2", capacity=-1, bandwidth=1e12)
    with pytest.raises(ConfigurationError):
        MemoryLevel("L2", capacity=1e6, bandwidth=0)
    with pytest.raises(ConfigurationError):
        MemoryLevel("L2", capacity=1e6, bandwidth=1e12, utilization=1.5)


def test_hierarchy_order_and_lookup():
    hierarchy = make_gpu_hierarchy(
        shared_capacity=20 * MIB,
        shared_bandwidth=80 * TBPS,
        l2_capacity=40 * MIB,
        l2_bandwidth=5 * TBPS,
        dram_capacity=80 * GB,
        dram_bandwidth=2 * TBPS,
    )
    assert len(hierarchy) == 3
    assert hierarchy.innermost.name == "shared"
    assert hierarchy.dram.name == "DRAM"
    assert hierarchy.level("L2").capacity == 40 * MIB
    assert hierarchy.has_level("L2")
    assert not hierarchy.has_level("L3")
    with pytest.raises(UnknownHardwareError):
        hierarchy.level("L3")


def test_hierarchy_requires_unique_names():
    level = MemoryLevel("DRAM", capacity=1 * GB, bandwidth=1 * TBPS)
    with pytest.raises(ConfigurationError):
        MemoryHierarchy([level, level])


def test_hierarchy_replace_dram_keeps_inner_levels():
    hierarchy = make_gpu_hierarchy(20 * MIB, 80 * TBPS, 40 * MIB, 5 * TBPS, 80 * GB, 2 * TBPS)
    swapped = hierarchy.replace_dram(get_dram_technology("HBM3E"))
    assert swapped.dram.bandwidth == pytest.approx(4.8 * TBPS)
    assert swapped.level("L2").bandwidth == hierarchy.level("L2").bandwidth
    assert swapped.level("shared").capacity == hierarchy.level("shared").capacity


def test_hierarchy_scaled():
    hierarchy = make_gpu_hierarchy(20 * MIB, 80 * TBPS, 40 * MIB, 5 * TBPS, 80 * GB, 2 * TBPS)
    scaled = hierarchy.scaled(bandwidth_factor=2.0, capacity_factor=0.5)
    assert scaled.dram.bandwidth == pytest.approx(4 * TBPS)
    assert scaled.dram.capacity == pytest.approx(40 * GB)


def test_effective_bandwidth_applies_utilization():
    level = MemoryLevel("DRAM", capacity=1 * GB, bandwidth=1 * TBPS, utilization=0.8)
    assert level.effective_bandwidth == pytest.approx(0.8 * TBPS)


def test_catalog_contains_all_generations_in_order():
    generations = [tech.generation for tech in DRAM_TECHNOLOGIES.values()]
    assert len(set(DRAM_TECHNOLOGIES)) == len(DRAM_TECHNOLOGIES)
    assert max(generations) >= 6
