"""Tests for the µArch engine (technology -> accelerator derivation)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.datatypes import Precision
from repro.hardware.memory import get_dram_technology
from repro.hardware.technology import get_node
from repro.hardware.uarch import (
    MicroArchitecture,
    ResourceAllocation,
    ResourceBudget,
    derive_device,
)
from repro.units import TFLOPS


def test_budget_and_allocation_validation():
    with pytest.raises(ConfigurationError):
        ResourceBudget(area_mm2=-1)
    with pytest.raises(ConfigurationError):
        ResourceAllocation(compute_area_fraction=0.9, l2_area_fraction=0.2)
    with pytest.raises(ConfigurationError):
        ResourceAllocation(compute_power_fraction=0.9, memory_power_fraction=0.2)
    with pytest.raises(ConfigurationError):
        ResourceAllocation(compute_area_fraction=1.5)


def test_reference_node_reproduces_a100_class_throughput():
    """With the A100's budget at N7, the derived FP16 peak is in the A100's class."""
    device = derive_device("N7", dram="HBM2E")
    fp16 = device.peak_flops(Precision.FP16)
    assert 200 * TFLOPS < fp16 < 450 * TFLOPS


def test_newer_nodes_give_more_compute():
    older = derive_device("N12")
    newer = derive_device("N3")
    assert newer.peak_flops(Precision.FP16) > older.peak_flops(Precision.FP16)


def test_compute_is_power_limited_at_advanced_nodes():
    """Area scaling (1.8x/step) outpaces power scaling (1.3x/step), so the
    power limit binds at advanced nodes and throughput grows slower than 1.8x."""
    n7 = derive_device("N7").peak_flops(Precision.FP16)
    n5 = derive_device("N5").peak_flops(Precision.FP16)
    n3 = derive_device("N3").peak_flops(Precision.FP16)
    assert n5 / n7 <= 1.8 + 1e-6
    assert n3 / n5 == pytest.approx(1.3, rel=0.05)


def test_dram_choice_is_respected():
    device = derive_device("N5", dram="HBM3")
    assert device.dram_bandwidth == pytest.approx(get_dram_technology("HBM3").bandwidth)
    assert device.dram_technology == "HBM3"


def test_more_compute_area_more_throughput_less_l2():
    small_compute = MicroArchitecture(
        node=get_node("N7"),
        allocation=ResourceAllocation(compute_area_fraction=0.4, l2_area_fraction=0.3),
    )
    big_compute = MicroArchitecture(
        node=get_node("N7"),
        allocation=ResourceAllocation(compute_area_fraction=0.7, l2_area_fraction=0.1),
    )
    assert big_compute.compute_throughput_fp16() >= small_compute.compute_throughput_fp16()
    assert big_compute.l2_capacity() < small_compute.l2_capacity()


def test_bigger_power_budget_more_throughput():
    base = MicroArchitecture(node=get_node("N3"), budget=ResourceBudget(power_watts=300))
    boosted = MicroArchitecture(node=get_node("N3"), budget=ResourceBudget(power_watts=900))
    assert boosted.compute_throughput_fp16() > base.compute_throughput_fp16()


def test_derived_accelerator_structure():
    device = derive_device("N5", dram="HBM3", supports_fp8=True, supports_fp4=True, name="proto")
    assert device.name == "proto"
    assert device.memory.has_level("L2")
    assert device.memory.dram.name == "DRAM"
    assert device.peak_flops(Precision.FP8) == pytest.approx(2 * device.peak_flops(Precision.FP16))
    assert device.peak_flops(Precision.FP4) == pytest.approx(4 * device.peak_flops(Precision.FP16))


def test_l2_bandwidth_scales_with_capacity():
    small = MicroArchitecture(node=get_node("N7"), allocation=ResourceAllocation(l2_area_fraction=0.08))
    large = MicroArchitecture(node=get_node("N7"), allocation=ResourceAllocation(l2_area_fraction=0.3))
    assert large.l2_bandwidth() > small.l2_bandwidth()
