"""Tests for numeric precisions."""

import pytest

from repro.hardware.datatypes import MASTER_PRECISION, Precision


def test_bytes_per_element_widths():
    assert Precision.FP32.bytes_per_element == 4.0
    assert Precision.FP16.bytes_per_element == 2.0
    assert Precision.BF16.bytes_per_element == 2.0
    assert Precision.FP8.bytes_per_element == 1.0
    assert Precision.FP4.bytes_per_element == 0.5
    assert Precision.INT8.bytes_per_element == 1.0


def test_bits_property():
    assert Precision.FP16.bits == 16
    assert Precision.FP8.bits == 8
    assert Precision.FP4.bits == 4
    assert Precision.FP64.bits == 64


def test_parse_accepts_enum_and_strings():
    assert Precision.parse(Precision.FP16) is Precision.FP16
    assert Precision.parse("fp16") is Precision.FP16
    assert Precision.parse("FP8") is Precision.FP8
    assert Precision.parse(" bf16 ") is Precision.BF16


def test_parse_rejects_unknown():
    with pytest.raises(ValueError):
        Precision.parse("fp12")


def test_master_precision_is_fp32():
    assert MASTER_PRECISION is Precision.FP32


def test_every_precision_has_positive_width():
    for precision in Precision:
        assert precision.bytes_per_element > 0
