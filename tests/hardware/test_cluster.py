"""Tests for node and system assembly."""

import pytest

from repro.errors import ConfigurationError, UnknownHardwareError
from repro.hardware.accelerator import get_accelerator
from repro.hardware.cluster import build_system, preset_cluster
from repro.hardware.network import get_interconnect
from repro.hardware.node import NodeSpec


def test_node_spec_capacity():
    node = NodeSpec(
        accelerator=get_accelerator("A100"),
        devices_per_node=8,
        intra_node_fabric=get_interconnect("NVLink3"),
    )
    assert node.total_dram_capacity == pytest.approx(8 * 80e9)


def test_node_spec_validation():
    with pytest.raises(ConfigurationError):
        NodeSpec(accelerator=get_accelerator("A100"), devices_per_node=0, intra_node_fabric=get_interconnect("NVLink3"))
    with pytest.raises(ConfigurationError):
        NodeSpec(accelerator=get_accelerator("A100"), devices_per_node=8, intra_node_fabric=None)


def test_build_system_by_names():
    system = build_system("A100", num_devices=64, intra_node="NVLink3", inter_node="HDR-IB")
    assert system.num_devices == 64
    assert system.num_nodes == 8
    assert system.devices_per_node == 8
    assert system.accelerator.name == "A100-80GB"
    assert system.intra_node_fabric.name == "NVLink3"
    assert system.inter_node_fabric.name == "HDR-IB"


def test_build_system_smaller_than_one_node():
    system = build_system("A100", num_devices=2, devices_per_node=8)
    assert system.devices_per_node == 2
    assert system.num_nodes == 1


def test_build_system_rejects_partial_nodes():
    with pytest.raises(ConfigurationError):
        build_system("A100", num_devices=12, devices_per_node=8)


def test_fabric_for_group():
    system = build_system("A100", num_devices=64)
    assert system.fabric_for_group(8).scope == "intra_node"
    assert system.fabric_for_group(64).scope == "inter_node"


def test_with_accelerator_and_fabric_and_devices():
    system = build_system("A100", num_devices=16)
    h100 = get_accelerator("H100")
    swapped = system.with_accelerator(h100, name="h100-system")
    assert swapped.accelerator.name == "H100-SXM"
    assert swapped.name == "h100-system"
    rewired = system.with_inter_node_fabric(get_interconnect("NVS"))
    assert rewired.inter_node_fabric.name == "NVS"
    bigger = system.with_num_devices(128)
    assert bigger.num_devices == 128


def test_preset_clusters():
    a100 = preset_cluster("A100-HDR", num_devices=64)
    assert a100.inter_node_fabric.name == "HDR-IB"
    h100 = preset_cluster("H100-NVS", num_devices=64)
    assert h100.inter_node_fabric.name == "NVS"
    b200_large = preset_cluster("B200-NVS-L", num_devices=64)
    assert b200_large.accelerator.name == "B200"
    with pytest.raises(UnknownHardwareError):
        preset_cluster("Z100-XYZ", num_devices=8)


def test_system_summary():
    system = build_system("H100", num_devices=8, intra_node="NVLink4", inter_node="NDR-IB")
    summary = system.summary()
    assert summary["accelerator"] == "H100-SXM"
    assert summary["num_devices"] == 8
    assert summary["inter_node_fabric"] == "NDR-IB"
