"""Tests for the accelerator catalog."""

import pytest

from repro.errors import UnknownHardwareError
from repro.hardware.accelerator import (
    custom_accelerator,
    get_accelerator,
    list_accelerators,
)
from repro.hardware.datatypes import Precision
from repro.units import GB, TBPS, TFLOPS


def test_a100_headline_numbers():
    a100 = get_accelerator("A100")
    assert a100.peak_flops(Precision.FP16) == pytest.approx(312 * TFLOPS)
    assert a100.dram_capacity == pytest.approx(80 * GB)
    assert a100.dram_bandwidth == pytest.approx(1.935 * TBPS, rel=0.05)
    assert not a100.compute.supports(Precision.FP8)


def test_h100_headline_numbers():
    h100 = get_accelerator("H100")
    assert h100.peak_flops(Precision.FP16) == pytest.approx(989.4 * TFLOPS)
    assert h100.peak_flops(Precision.FP8) == pytest.approx(1978.9 * TFLOPS)
    assert h100.dram_bandwidth == pytest.approx(3.35 * TBPS)


def test_h200_has_more_memory_than_h100():
    h100 = get_accelerator("H100")
    h200 = get_accelerator("H200")
    assert h200.dram_capacity > h100.dram_capacity
    assert h200.dram_bandwidth > h100.dram_bandwidth
    assert h200.peak_flops(Precision.FP16) == pytest.approx(h100.peak_flops(Precision.FP16))


def test_b200_supports_fp4_and_is_fastest():
    b200 = get_accelerator("B200")
    assert b200.compute.supports(Precision.FP4)
    assert b200.peak_flops(Precision.FP4) > b200.peak_flops(Precision.FP8) > b200.peak_flops(Precision.FP16)
    assert b200.peak_flops(Precision.FP16) > get_accelerator("H100").peak_flops(Precision.FP16)
    assert b200.dram_bandwidth > get_accelerator("H200").dram_bandwidth


def test_generation_ordering_of_compute_and_bandwidth():
    names = ["A100", "H100", "H200", "B200"]
    fp16 = [get_accelerator(n).peak_flops(Precision.FP16) for n in names]
    assert fp16[0] < fp16[1] <= fp16[2] < fp16[3]
    bandwidth = [get_accelerator(n).dram_bandwidth for n in names]
    assert bandwidth == sorted(bandwidth)


def test_lookup_is_case_insensitive_and_has_aliases():
    assert get_accelerator("a100").name == get_accelerator("A100-80GB").name
    assert get_accelerator("h100-sxm").name == "H100-SXM"


def test_unknown_accelerator_raises():
    with pytest.raises(UnknownHardwareError):
        get_accelerator("MI300")


def test_list_accelerators_returns_distinct_specs():
    specs = list_accelerators()
    assert "A100-80GB" in specs
    assert "B200" in specs
    assert len(specs) >= 5


def test_with_dram_swaps_only_the_last_level():
    a100 = get_accelerator("A100")
    swapped = a100.with_dram("HBM3E", keep_capacity=True)
    assert swapped.dram_bandwidth == pytest.approx(4.8 * TBPS)
    assert swapped.dram_capacity == a100.dram_capacity
    assert swapped.memory.level("L2").bandwidth == a100.memory.level("L2").bandwidth
    assert swapped.dram_technology == "HBM3E"


def test_with_compute_scale():
    a100 = get_accelerator("A100")
    faster = a100.with_compute_scale(2.0)
    assert faster.peak_flops(Precision.FP16) == pytest.approx(2 * a100.peak_flops(Precision.FP16))


def test_custom_accelerator_builder():
    device = custom_accelerator(
        name="future-gpu",
        fp16_tflops=1000,
        dram_bandwidth_tbps=5.0,
        dram_capacity_gb=128,
        fp8_tflops=2000,
    )
    assert device.peak_flops(Precision.FP16) == pytest.approx(1000 * TFLOPS)
    assert device.peak_flops(Precision.FP8) == pytest.approx(2000 * TFLOPS)
    assert device.dram_capacity == pytest.approx(128 * GB)
    assert device.memory.has_level("L2")


def test_summary_fields():
    summary = get_accelerator("A100").summary()
    assert summary["fp16_tflops"] == pytest.approx(312.0)
    assert summary["dram_capacity_gb"] == pytest.approx(80.0)
    assert summary["l2_capacity_mib"] == pytest.approx(40.0)
