"""Tests for logic technology nodes and scaling factors."""

import pytest

from repro.errors import UnknownHardwareError
from repro.hardware.technology import (
    AREA_SCALING_PER_NODE,
    NODE_ORDER,
    POWER_SCALING_PER_NODE,
    all_nodes,
    get_node,
    scaling_factors,
)


def test_node_order_matches_paper():
    assert NODE_ORDER == ["N12", "N10", "N7", "N5", "N3", "N2", "N1"]


def test_scaling_constants_match_paper():
    assert AREA_SCALING_PER_NODE == pytest.approx(1.8)
    assert POWER_SCALING_PER_NODE == pytest.approx(1.3)


def test_get_node_accepts_various_spellings():
    assert get_node("N7").feature_nm == 7.0
    assert get_node("n5").name == "N5"
    assert get_node(3).name == "N3"
    assert get_node("12").name == "N12"


def test_get_node_unknown_raises():
    with pytest.raises(UnknownHardwareError):
        get_node("N14")


def test_steps_and_scales():
    n12 = get_node("N12")
    n7 = get_node("N7")
    assert n7.steps_from(n12) == 2
    assert n7.area_scale_from(n12) == pytest.approx(1.8**2)
    assert n7.power_scale_from(n12) == pytest.approx(1.3**2)
    # Going backwards shrinks density.
    assert n12.area_scale_from(n7) == pytest.approx(1.8**-2)


def test_all_nodes_monotonic_feature_size():
    nodes = all_nodes()
    features = [node.feature_nm for node in nodes]
    assert features == sorted(features, reverse=True)
    assert len(nodes) == 7


def test_scaling_factors_helper():
    factors = scaling_factors("N7", "N1")
    assert factors["steps"] == 4
    assert factors["area_density"] == pytest.approx(1.8**4)
    assert factors["power_efficiency"] == pytest.approx(1.3**4)
