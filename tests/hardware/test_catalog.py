"""Tests for the system catalog (get_system / list_systems / register_system)."""

import dataclasses

import pytest

from repro.errors import UnknownHardwareError
from repro.hardware import (
    device_system,
    get_accelerator,
    get_system,
    list_systems,
    register_system,
    unregister_system,
)
from repro.hardware.cluster import SystemSpec, build_system


def test_accelerator_name_resolves_to_canonical_device_system():
    system = get_system("A100")
    assert system.name == "A100-80GB"
    assert system.num_devices == 8
    assert system.intra_node_fabric.name == "NVLink3"
    assert system.inter_node_fabric.name == "HDR-IB"


def test_resolution_is_case_insensitive():
    assert get_system("h100") == get_system("H100")


def test_sized_accelerator_name_sets_device_count():
    assert get_system("A100x2").num_devices == 2
    assert get_system("H100x16").num_devices == 16


def test_sized_suffix_works_for_presets_and_registered_names(single_node_a100):
    assert get_system("H100-NVSx512").num_devices == 512
    renamed = dataclasses.replace(single_node_a100, name="sized-lab")
    name = register_system(renamed)
    try:
        assert get_system("sized-labx4").num_devices == 4
    finally:
        unregister_system(name)


def test_zero_devices_rejected_on_every_path():
    from repro.errors import ConfigurationError

    for spec in ("A100", "A100-HDR", "H100-NVS"):
        with pytest.raises(ConfigurationError):
            get_system(spec, num_devices=0)


def test_tpu_alias_with_trailing_digit_is_not_split():
    assert get_system("TPUv4").accelerator.name == "TPUv4-like"


def test_preset_cluster_names_resolve():
    system = get_system("H100-NVS")
    assert system.accelerator.name == get_accelerator("H100").name
    assert system.num_devices == 8
    assert get_system("B200-NVS-L", num_devices=64).num_devices == 64


def test_explicit_num_devices_overrides():
    assert get_system("A100", num_devices=64).num_devices == 64
    assert get_system("A100x2", num_devices=4).num_devices == 4


def test_specs_pass_through(single_node_a100):
    assert get_system(single_node_a100) is single_node_a100
    assert get_system(single_node_a100, num_devices=16).num_devices == 16


def test_accelerator_spec_wraps_canonically(a100):
    assert get_system(a100) == device_system(a100)


def test_device_system_matches_scenario_wrapper(a100):
    """The catalog wrapper is the one bottleneck scenarios key their cache on."""
    from repro.sweep.scenario import _device_system

    assert _device_system("A100") == device_system(a100)
    assert _device_system(build_system(a100, num_devices=512)) == device_system(a100)


def test_register_system_round_trip(single_node_a100):
    renamed = dataclasses.replace(single_node_a100, name="lab-cluster")
    name = register_system(renamed)
    try:
        assert name == "lab-cluster"
        assert get_system("lab-cluster") == renamed
        assert get_system("LAB-CLUSTER") == renamed
        assert "LAB-CLUSTER" in list_systems()
    finally:
        unregister_system(name)
    with pytest.raises(UnknownHardwareError):
        get_system("lab-cluster")


def test_register_system_builder_needs_name(single_node_a100):
    with pytest.raises(UnknownHardwareError, match="explicit name"):
        register_system(lambda: single_node_a100)
    name = register_system(lambda: single_node_a100, name="lazy-node")
    try:
        assert get_system("lazy-node") == single_node_a100
    finally:
        unregister_system(name)


def test_unknown_system_fails_with_catalog_listing():
    with pytest.raises(UnknownHardwareError, match="unknown system"):
        get_system("Z9000")


def test_list_systems_covers_all_resolution_paths():
    names = list_systems()
    assert "A100" in names
    assert "H100-NVS" in names
    # The listing contract: every advertised name must actually resolve.
    assert all(isinstance(get_system(name), SystemSpec) for name in names)


def test_register_system_with_underscore_name_resolves(single_node_a100):
    """Registration and lookup share one name normalization (case, _ vs -)."""
    renamed = dataclasses.replace(single_node_a100, name="my_cluster")
    name = register_system(renamed)
    try:
        assert get_system("my_cluster") == renamed
        assert get_system("MY-CLUSTER") == renamed
        unregister_system("my_cluster")
        with pytest.raises(UnknownHardwareError):
            get_system("my_cluster")
    finally:
        unregister_system(name)
