"""Tests for text-table rendering helpers."""

import pytest

from repro.analysis.formatting import format_value, render_breakdown, render_table, summarize_errors


def test_format_value_types():
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(3.14159) == "3.14"
    assert format_value(1234567.0) == "1.23e+06"
    assert format_value(0.0000123) == "1.23e-05"
    assert format_value("text") == "text"
    assert format_value(42) == "42"


def test_render_table_alignment_and_columns():
    rows = [{"name": "a", "value": 1.0}, {"name": "bb", "value": 22.5}]
    text = render_table(rows, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 2 + 1 + len(rows)
    custom = render_table(rows, columns=["value"])
    assert "name" not in custom.splitlines()[0]


def test_render_table_empty():
    assert "(no rows)" in render_table([], title="empty")


def test_render_breakdown_shares():
    text = render_breakdown({"compute": 3.0, "communication": 1.0, "total": 4.0}, title="step", unit="s")
    assert "compute" in text and "75.0%" in text
    assert text.splitlines()[0] == "step"


def test_summarize_errors():
    summary = summarize_errors([-10.0, 5.0, 2.5])
    assert summary["mean_abs_error_%"] == pytest.approx(17.5 / 3)
    assert summary["max_abs_error_%"] == pytest.approx(10.0)
    assert summarize_errors([]) == {"mean_abs_error_%": 0.0, "max_abs_error_%": 0.0}
