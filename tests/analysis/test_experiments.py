"""Tests for the per-table/figure experiment drivers.

The full sweeps run in the benchmark harness; here each driver is exercised on
a reduced scope to check structure and the headline qualitative claims.
"""

import pytest

from repro.analysis.experiments import (
    fig3_gemv_validation,
    fig4_memory_breakdown,
    fig5_gpu_generation_scaling,
    fig8_inference_boundedness,
    table1_training_validation,
    table2_inference_validation,
    table4_gemm_bottlenecks,
)
from repro.validation.reference import TABLE1_TRAINING_ROWS, TABLE2_INFERENCE_ROWS


def test_table1_driver_single_row_accuracy():
    rows = table1_training_validation(rows=[TABLE1_TRAINING_ROWS[1]])  # GPT-175B, 64 GPUs, full
    assert len(rows) == 1
    row = rows[0]
    assert row["model"] == "GPT-175B"
    assert abs(row["relative_error_%"]) < 10.0
    assert row["predicted_s"] == pytest.approx(row["compute_s"] + row["communication_s"] + row["other_s"], rel=1e-6)


def test_table2_driver_single_row_accuracy():
    target = [row for row in TABLE2_INFERENCE_ROWS if row.model == "Llama2-13B" and row.num_gpus == 1 and row.gpu == "A100"]
    rows = table2_inference_validation(rows=target)
    assert len(rows) == 1
    assert abs(rows[0]["relative_error_%"]) < 13.0
    assert rows[0]["predicted_ms"] > 0


def test_table4_driver_structure():
    rows = table4_gemm_bottlenecks(gpus=("A100",))
    names = {row["gemm"] for row in rows}
    assert {"qkv_projection", "mlp_4h_to_h"}.issubset(names)
    assert all(row["bound"] in ("compute", "memory") for row in rows)


def test_fig3_driver_errors():
    result = fig3_gemv_validation()
    assert result.mean_error_varied_percent < result.mean_error_constant_percent


def test_fig4_driver_orderings():
    rows = fig4_memory_breakdown(models=("GPT-175B",))
    by_strategy = {row["strategy"]: row for row in rows}
    assert by_strategy["none"]["total_gb"] > by_strategy["selective"]["total_gb"] > by_strategy["full"]["total_gb"]
    assert not by_strategy["none"]["fits_80gb"]
    assert by_strategy["full"]["fits_80gb"]


def test_fig5_driver_small_subset():
    rows = fig5_gpu_generation_scaling(systems=[("A100-HDR", 1024), ("H100-NDR", 1024)])
    assert len(rows) == 2
    assert rows[0]["speedup_vs_a100"] == pytest.approx(1.0)
    assert rows[1]["speedup_vs_a100"] > 2.0
    assert rows[1]["precision"] == "fp8"


def test_fig8_driver_claims():
    rows = fig8_inference_boundedness(gpus=("H100",), batch_sizes=(1, 16))
    by_batch = {row["batch_size"]: row for row in rows}
    assert by_batch[1]["compute_bound_fraction"] < 0.1
    assert by_batch[16]["compute_bound_fraction"] > 0.6
    assert by_batch[16]["kv_cache_gb"] > by_batch[1]["kv_cache_gb"]
    assert by_batch[1]["weights_gb"] == pytest.approx(by_batch[16]["weights_gb"])


def test_serving_frontier_driver_structure_and_claims():
    from repro.analysis.experiments import serving_latency_throughput_frontier
    from repro.serving import LengthDistribution
    from repro.sweep import SweepRunner

    table = serving_latency_throughput_frontier(
        model_name="Llama2-7B",
        gpu="A100",
        num_devices=1,
        arrival_rates=(0.5, 2.0, 8.0),
        tensor_parallels=(1,),
        num_requests=12,
        prompt_lengths=LengthDistribution.uniform(32, 128),
        output_lengths=LengthDistribution.constant(16),
        runner=SweepRunner(),
    )
    assert len(table) == 3
    for column in ("ttft_p50_s", "ttft_p99_s", "tpot_p50_s", "tpot_p99_s", "goodput_rps", "error"):
        assert column in table.keys()
    assert table["error"].tolist() == [None, None, None]
    assert table["arrival_rate"].tolist() == [0.5, 2.0, 8.0]
    # Offered load rises -> delivered throughput rises (below saturation) and
    # the decode batches deepen.
    throughput = table["requests_per_s"]
    assert throughput[1] > throughput[0]
    assert (table["utilization"] > 0).all()
    assert table["mean_decode_batch"][2] >= table["mean_decode_batch"][0]


def test_serving_frontier_driver_captures_infeasible_corners():
    from repro.analysis.experiments import serving_latency_throughput_frontier
    from repro.sweep import SweepRunner

    table = serving_latency_throughput_frontier(
        model_name="Llama2-70B",  # never fits one A100
        gpu="A100",
        num_devices=1,
        arrival_rates=(1.0,),
        tensor_parallels=(1,),
        num_requests=4,
        runner=SweepRunner(),
    )
    assert len(table) == 1
    assert table[0]["error"] is not None
    assert table[0]["ttft_p50_s"] is None
