"""Tests for cache-aware GEMM tiling."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.tiling import choose_tile, compulsory_traffic, traffic_through_level
from repro.units import MIB
from repro.workload.operators import GEMM


def _gemm(m=1024, n=1024, k=1024, **kwargs):
    return GEMM(name="g", m=m, n=n, k=k, **kwargs)


def test_choose_tile_fits_in_capacity():
    gemm = _gemm()
    tile = choose_tile(gemm, 4 * MIB, occupancy=0.5)
    assert tile.working_set_bytes <= 4 * MIB
    assert 1 <= tile.tile_m <= gemm.m
    assert 1 <= tile.tile_n <= gemm.n
    assert 1 <= tile.tile_k <= gemm.k


def test_choose_tile_clamps_to_gemm_dimensions():
    small = _gemm(m=8, n=8, k=8)
    tile = choose_tile(small, 64 * MIB)
    assert tile.tile_m == 8 and tile.tile_n == 8 and tile.tile_k == 8


def test_choose_tile_validation():
    with pytest.raises(ConfigurationError):
        choose_tile(_gemm(), 0)
    with pytest.raises(ConfigurationError):
        choose_tile(_gemm(), 1 * MIB, occupancy=0.0)


def test_compulsory_traffic_is_lower_bound():
    gemm = _gemm()
    assert traffic_through_level(gemm, 1 * MIB) >= compulsory_traffic(gemm)
    assert traffic_through_level(gemm, None) == pytest.approx(compulsory_traffic(gemm))


def test_bigger_cache_means_less_traffic():
    gemm = _gemm(m=4096, n=4096, k=4096)
    small_cache = traffic_through_level(gemm, 1 * MIB)
    large_cache = traffic_through_level(gemm, 64 * MIB)
    assert large_cache < small_cache


def test_huge_cache_approaches_compulsory_traffic():
    gemm = _gemm(m=2048, n=2048, k=2048)
    traffic = traffic_through_level(gemm, 10_000 * MIB, occupancy=1.0)
    assert traffic == pytest.approx(compulsory_traffic(gemm), rel=0.01)


def test_gemv_traffic_is_weight_dominated():
    gemv = GEMM(name="v", m=1, n=8192, k=8192, weight_operand=True)
    traffic = traffic_through_level(gemv, 40 * MIB)
    assert traffic == pytest.approx(gemv.b_bytes, rel=0.01)


def test_batched_weight_gemm_loads_weights_once():
    shared = GEMM(name="w", m=64, n=256, k=256, batch=16, weight_operand=True)
    replicated = GEMM(name="a", m=64, n=256, k=256, batch=16, weight_operand=False)
    assert traffic_through_level(shared, 16 * MIB) < traffic_through_level(replicated, 16 * MIB)


def test_traffic_scales_with_problem_size():
    small = traffic_through_level(_gemm(m=512, n=512, k=512), 4 * MIB)
    large = traffic_through_level(_gemm(m=2048, n=2048, k=2048), 4 * MIB)
    assert large > 8 * small
