"""Tests for the GEMM/GEMV execution-time model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.datatypes import Precision
from repro.perf.gemm import GemmTimeModel, GemvUtilizationModel
from repro.perf.roofline import BoundType
from repro.units import MICROSECOND
from repro.workload.operators import GEMM, make_gemv


@pytest.fixture
def model(a100):
    return GemmTimeModel(accelerator=a100)


def _fat_gemm(m=4096, n=4096, k=4096):
    return GEMM(name="fat", m=m, n=n, k=k, precision=Precision.FP16, weight_operand=True)


def test_fat_gemm_is_compute_bound(model):
    point = model.evaluate(_fat_gemm())
    assert point.bound is BoundType.COMPUTE
    assert point.compute_time > point.memory_time


def test_fat_gemm_time_matches_flops_over_throughput(model, a100):
    gemm = _fat_gemm()
    expected = gemm.flops / a100.sustained_flops(Precision.FP16)
    assert model.time(gemm, include_overhead=False) == pytest.approx(expected, rel=1e-6)


def test_gemv_is_memory_bound(model):
    gemv = make_gemv("v", rows=12288, cols=12288)
    point = model.evaluate(gemv)
    assert point.bound.is_memory_like
    assert point.memory_time > point.compute_time


def test_gemv_time_matches_weight_streaming(model, a100):
    gemv = make_gemv("v", rows=12288, cols=12288)
    utilization = model.gemv_utilization.utilization(gemv)
    expected = gemv.b_bytes / (a100.dram_bandwidth * utilization)
    assert model.time(gemv, include_overhead=False) == pytest.approx(expected, rel=0.05)


def test_kernel_overhead_added_once(model):
    gemv = make_gemv("v", rows=1024, cols=1024)
    with_overhead = model.time(gemv, include_overhead=True)
    without = model.time(gemv, include_overhead=False)
    assert with_overhead - without == pytest.approx(model.kernel_overhead)


def test_gemv_utilization_constant_model():
    util = GemvUtilizationModel.constant_model(0.5)
    assert util.utilization(make_gemv("v", rows=1024, cols=1024)) == pytest.approx(0.5)
    assert util.utilization(make_gemv("v", rows=32768, cols=8192)) == pytest.approx(0.5)


def test_gemv_utilization_table_is_size_dependent():
    util = GemvUtilizationModel.from_pairs([(0, 0.5), (100e6, 0.8)])
    small = make_gemv("s", rows=1024, cols=1024)       # ~2 MB of weights
    large = make_gemv("l", rows=16384, cols=8192)      # ~268 MB of weights
    assert util.utilization(small) == pytest.approx(0.5)
    assert util.utilization(large) == pytest.approx(0.8)


def test_default_utilization_table_monotonic():
    util = GemvUtilizationModel()
    sizes = [make_gemv("g", rows=r, cols=4096) for r in (512, 8192, 32768)]
    factors = [util.utilization(g) for g in sizes]
    assert factors == sorted(factors)


def test_gemv_utilization_validation():
    with pytest.raises(ConfigurationError):
        GemvUtilizationModel(constant=0.0)
    with pytest.raises(ConfigurationError):
        GemvUtilizationModel.from_pairs([(0, 1.5)])


def test_higher_bandwidth_accelerator_speeds_memory_bound_kernels(a100, h100):
    gemv = make_gemv("v", rows=12288, cols=12288)
    a100_time = GemmTimeModel(accelerator=a100).time(gemv)
    h100_time = GemmTimeModel(accelerator=h100).time(gemv)
    assert h100_time < a100_time
    assert h100_time > a100_time * (a100.dram_bandwidth / h100.dram_bandwidth) * 0.8


def test_faster_compute_does_not_speed_memory_bound_kernels(a100):
    gemv = make_gemv("v", rows=12288, cols=12288)
    base = GemmTimeModel(accelerator=a100)
    boosted = GemmTimeModel(accelerator=a100.with_compute_scale(4.0))
    assert boosted.time(gemv) == pytest.approx(base.time(gemv), rel=1e-6)


def test_compute_bound_kernel_scales_with_compute(a100):
    gemm = _fat_gemm()
    base = GemmTimeModel(accelerator=a100).time(gemm, include_overhead=False)
    boosted = GemmTimeModel(accelerator=a100.with_compute_scale(2.0)).time(gemm, include_overhead=False)
    assert boosted == pytest.approx(base / 2, rel=1e-6)


def test_prefill_shape_transition_a100_vs_h100(a100, h100, llama2_13b):
    """The same 200-token prefill GEMM is compute bound on A100 but memory bound on H100 (Table 4)."""
    gemm = GEMM(
        name="mlp_h_to_4h",
        m=200,
        n=llama2_13b.ffn_hidden_size,
        k=llama2_13b.hidden_size,
        weight_operand=True,
    )
    assert GemmTimeModel(accelerator=a100).bound_type(gemm) is BoundType.COMPUTE
    assert GemmTimeModel(accelerator=h100).bound_type(gemm).is_memory_like


def test_level_traffic_has_every_level(model, a100):
    traffic = model.level_traffic(_fat_gemm())
    assert set(traffic) == {level.name for level in a100.memory.levels}
    assert traffic["DRAM"] <= traffic["L2"] <= traffic["shared"] * 100  # sanity: all positive and ordered-ish
    assert all(value > 0 for value in traffic.values())


def test_evaluate_many(model):
    points = model.evaluate_many([_fat_gemm(), make_gemv("v", rows=2048, cols=2048)])
    assert len(points) == 2
    assert points[0].bound is BoundType.COMPUTE


def test_model_validation(a100):
    with pytest.raises(ConfigurationError):
        GemmTimeModel(accelerator=a100, fat_gemm_dram_utilization=0.0)
    with pytest.raises(ConfigurationError):
        GemmTimeModel(accelerator=a100, kernel_overhead=-1 * MICROSECOND)


def test_utilization_break_sizes_precomputed():
    """The sorted break-point sizes are derived once at construction time."""
    util = GemvUtilizationModel.from_pairs([(100e6, 0.8), (0, 0.5), (32e6, 0.65)])
    assert util.break_sizes == (0.0, 32e6, 100e6)
    # The lookup agrees with a manual scan over the (sorted) table.
    for rows in (512, 4096, 16384):
        gemv = make_gemv("v", rows=rows, cols=4096)
        at_or_below = [u for s, u in util.table if s <= gemv.b_bytes]
        expected = at_or_below[-1] if at_or_below else util.table[0][1]
        assert util.utilization(gemv) == expected


def test_constant_model_has_no_break_sizes():
    util = GemvUtilizationModel.constant_model(0.6)
    assert util.break_sizes == ()
    assert util.utilization(make_gemv("v", rows=1024, cols=1024)) == pytest.approx(0.6)
