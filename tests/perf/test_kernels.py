"""Tests for memory-bound kernel timing and the device dispatcher."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.datatypes import Precision
from repro.perf.kernels import DeviceKernelModel, MemoryBoundKernelModel
from repro.perf.roofline import BoundType
from repro.workload.operators import (
    CollectiveKind,
    CommunicationOp,
    ElementwiseOp,
    GEMM,
    MemoryOp,
    NormalizationOp,
)


@pytest.fixture
def memory_model(a100):
    return MemoryBoundKernelModel(accelerator=a100)


@pytest.fixture
def device_model(a100):
    return DeviceKernelModel(accelerator=a100)


def test_softmax_is_memory_bound(memory_model):
    op = NormalizationOp(name="softmax", num_elements=10_000_000, flops_per_element=5.0)
    point = memory_model.evaluate(op)
    assert point.bound is BoundType.MEMORY
    assert point.time == pytest.approx(op.bytes_total / (1.935e12 * memory_model.dram_utilization), rel=0.01)


def test_elementwise_time_scales_with_elements(memory_model):
    small = ElementwiseOp(name="gelu", num_elements=1_000_000, flops_per_element=8.0)
    large = ElementwiseOp(name="gelu", num_elements=4_000_000, flops_per_element=8.0)
    assert memory_model.time(large, include_overhead=False) == pytest.approx(
        4 * memory_model.time(small, include_overhead=False), rel=1e-6
    )


def test_memory_op_timing(memory_model):
    op = MemoryOp(name="kv_read", bytes_moved=1e9)
    expected = 1e9 / (1.935e12 * memory_model.dram_utilization)
    assert memory_model.time(op, include_overhead=False) == pytest.approx(expected, rel=0.01)


def test_overhead_applies(memory_model):
    op = ElementwiseOp(name="tiny", num_elements=10)
    assert memory_model.time(op) >= memory_model.kernel_overhead


def test_memory_model_validation(a100):
    with pytest.raises(ConfigurationError):
        MemoryBoundKernelModel(accelerator=a100, dram_utilization=0)
    with pytest.raises(ConfigurationError):
        MemoryBoundKernelModel(accelerator=a100, kernel_overhead=-1)


def test_device_model_dispatches_gemm_and_others(device_model):
    gemm = GEMM(name="g", m=2048, n=2048, k=2048, precision=Precision.FP16)
    softmax = NormalizationOp(name="softmax", num_elements=1_000_000)
    assert device_model.evaluate(gemm).bound is BoundType.COMPUTE
    assert device_model.evaluate(softmax).bound is BoundType.MEMORY
    assert device_model.time(gemm) > 0
    assert device_model.time(softmax) > 0


def test_device_model_rejects_communication(device_model):
    comm = CommunicationOp(name="ar", collective=CollectiveKind.ALL_REDUCE, data_bytes=1024, group_size=4)
    with pytest.raises(ConfigurationError):
        device_model.evaluate(comm)


def test_device_model_builds_submodels_lazily(a100):
    model = DeviceKernelModel(accelerator=a100)
    assert model.gemm_model is not None
    assert model.memory_model is not None
    assert model.kernel_overhead == model.gemm_model.kernel_overhead


def test_higher_bandwidth_helps_memory_bound_kernels(a100, h100):
    op = NormalizationOp(name="layernorm", num_elements=10_000_000, flops_per_element=8.0)
    a100_time = MemoryBoundKernelModel(accelerator=a100).time(op, include_overhead=False)
    h100_time = MemoryBoundKernelModel(accelerator=h100).time(op, include_overhead=False)
    assert h100_time < a100_time
