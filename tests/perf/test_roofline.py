"""Tests for the hierarchical roofline classification."""

import pytest

from repro.perf.roofline import BoundType, classify, roofline_time


def test_roofline_time_is_max_of_components():
    assert roofline_time(flops=100, bytes_moved=10, throughput=10, bandwidth=100) == pytest.approx(10.0)
    assert roofline_time(flops=10, bytes_moved=1000, throughput=100, bandwidth=10) == pytest.approx(100.0)


def test_roofline_time_handles_zero_resources():
    assert roofline_time(1.0, 1.0, 0.0, 1.0) == float("inf")
    assert roofline_time(1.0, 1.0, 1.0, 0.0) == float("inf")


def test_classify_compute_bound():
    point = classify("k", flops=1e9, compute_time=2.0, level_times={"L2": 0.5, "DRAM": 1.0}, level_bytes={"DRAM": 1e6})
    assert point.bound is BoundType.COMPUTE
    assert point.is_compute_bound
    assert point.time == pytest.approx(2.0)
    assert point.bound_level == ""


def test_classify_dram_bound():
    point = classify("k", flops=1e9, compute_time=0.5, level_times={"L2": 0.2, "DRAM": 1.5}, level_bytes={"DRAM": 1e6})
    assert point.bound is BoundType.MEMORY
    assert point.bound_level == "DRAM"
    assert point.memory_time == pytest.approx(1.5)
    assert point.bound.is_memory_like


def test_classify_cache_bound():
    point = classify("k", flops=1e9, compute_time=0.5, level_times={"L2": 2.0, "DRAM": 1.0}, level_bytes={})
    assert point.bound is BoundType.CACHE
    assert point.bound_level == "L2"
    assert point.bound.is_memory_like


def test_tie_goes_to_compute():
    point = classify("k", flops=1.0, compute_time=1.0, level_times={"DRAM": 1.0}, level_bytes={})
    assert point.bound is BoundType.COMPUTE


def test_arithmetic_intensity_uses_dram_bytes():
    point = classify("k", flops=2e6, compute_time=1.0, level_times={"DRAM": 0.1}, level_bytes={"DRAM": 1e6})
    assert point.arithmetic_intensity == pytest.approx(2.0)
    no_bytes = classify("k", flops=1.0, compute_time=1.0, level_times={}, level_bytes={})
    assert no_bytes.arithmetic_intensity == float("inf")


def test_time_is_envelope_of_all_levels():
    point = classify("k", flops=1.0, compute_time=0.1, level_times={"shared": 0.3, "L2": 0.2, "DRAM": 0.25}, level_bytes={})
    assert point.time == pytest.approx(0.3)
    assert point.bound is BoundType.CACHE
    assert point.bound_level == "shared"


def test_network_bound_enum_exists():
    assert BoundType.NETWORK.value == "network"
    assert not BoundType.NETWORK.is_memory_like
