"""Batched-vs-scalar equivalence tests for the vectorized roofline backend.

The contract of :class:`~repro.perf.batched.BatchedGemmTimeModel` is exact
float equality with the scalar :class:`~repro.perf.gemm.GemmTimeModel` (same
operation order, float64 throughout), so every assertion here is ``==``, not
``approx``.
"""

import itertools

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.accelerator import get_accelerator
from repro.hardware.datatypes import Precision
from repro.perf.batched import BatchedGemmTimeModel, GemmBatch
from repro.perf.gemm import GemmTimeModel, GemvUtilizationModel
from repro.workload.operators import GEMM, make_gemv

#: Fat, skinny, and GEMV-ish dimensions crossed into the equivalence grid.
_DIMS = (1, 3, 16, 17, 200, 1024, 4096)
_PRECISIONS = (Precision.FP16, Precision.BF16, Precision.INT8)
_ACCELERATORS = ("A100", "H100", "TPU")


def _equivalence_gemms():
    gemms = []
    for m, n, k in itertools.product(_DIMS, repeat=3):
        for precision in _PRECISIONS:
            gemms.append(
                GEMM(
                    name=f"g_{m}x{n}x{k}_{precision.value}",
                    m=m,
                    n=n,
                    k=k,
                    precision=precision,
                    batch=4 if m == 200 else 1,
                    weight_operand=(n >= k),
                    accumulate=(m == 17),
                )
            )
    return gemms


@pytest.mark.parametrize("accelerator_name", _ACCELERATORS)
def test_batched_matches_scalar_bit_for_bit(accelerator_name):
    accelerator = get_accelerator(accelerator_name)
    scalar = GemmTimeModel(accelerator=accelerator)
    batched = BatchedGemmTimeModel.from_scalar(scalar)
    gemms = _equivalence_gemms()
    result = batched.evaluate_batch(GemmBatch.from_gemms(gemms))
    assert len(result) == len(gemms)
    for gemm, point in zip(gemms, result.to_points()):
        expected = scalar.evaluate(gemm)
        assert point == expected, f"{accelerator_name} {gemm.name}: {point} != {expected}"


def test_batched_times_include_overhead(a100):
    scalar = GemmTimeModel(accelerator=a100)
    batched = BatchedGemmTimeModel.from_scalar(scalar)
    gemms = [make_gemv("v", rows=2048, cols=2048), GEMM(name="f", m=512, n=512, k=512)]
    times = batched.times(GemmBatch.from_gemms(gemms))
    for gemm, time in zip(gemms, times):
        assert float(time) == scalar.time(gemm, include_overhead=True)


def test_evaluate_many_routes_through_batched_backend(a100):
    model = GemmTimeModel(accelerator=a100)
    gemms = _equivalence_gemms()[:64]
    points = model.evaluate_many(gemms)
    fresh = GemmTimeModel(accelerator=a100)
    assert points == [fresh.evaluate(gemm) for gemm in gemms]
    # The batched pass memoizes every kernel, so scalar queries now hit the cache.
    assert all(gemm in model._evaluation_cache for gemm in gemms)


def test_evaluate_many_mixes_cached_and_fresh(a100):
    model = GemmTimeModel(accelerator=a100)
    first = GEMM(name="a", m=256, n=256, k=256)
    second = GEMM(name="b", m=1, n=4096, k=4096, weight_operand=True)
    cached_point = model.evaluate(first)
    points = model.evaluate_many([first, second, first])
    assert points[0] is cached_point
    assert points[2] is cached_point
    assert points[1] == GemmTimeModel(accelerator=a100).evaluate(second)


def test_gemm_batch_from_arrays_broadcasts_scalars():
    batch = GemmBatch.from_arrays(m=[1, 2, 3], n=128, k=256, weight_operand=True)
    assert batch.size == 3
    assert batch.n.tolist() == [128.0, 128.0, 128.0]
    assert batch.weight_operand.all()
    assert batch.precisions == (Precision.FP16,) * 3


def test_gemm_batch_validates_shapes_and_dimensions():
    with pytest.raises(ConfigurationError):
        GemmBatch.from_arrays(m=[1, 2], n=[1, 2, 3], k=1)
    with pytest.raises(ConfigurationError):
        GemmBatch.from_arrays(m=[0], n=[1], k=[1])


def test_empty_batch_evaluates_to_empty_result(a100):
    batched = BatchedGemmTimeModel(accelerator=a100)
    result = batched.evaluate_batch(GemmBatch.from_arrays(m=[], n=[], k=[]))
    assert len(result) == 0
    assert result.to_points() == []


def test_vectorized_utilization_matches_bisect_lookup():
    util = GemvUtilizationModel()
    gemvs = [make_gemv("v", rows=rows, cols=4096) for rows in (64, 512, 8192, 32768)]
    weight_bytes = np.array([gemv.b_bytes for gemv in gemvs])
    vectorized = util.utilization_for_weight_bytes(weight_bytes)
    assert vectorized.tolist() == [util.utilization(gemv) for gemv in gemvs]


def test_vectorized_utilization_constant_model():
    util = GemvUtilizationModel.constant_model(0.55)
    factors = util.utilization_for_weight_bytes(np.array([1.0, 1e9]))
    assert factors.tolist() == [0.55, 0.55]


def test_batched_model_validates_parameters_like_scalar_twin(a100):
    with pytest.raises(ConfigurationError):
        BatchedGemmTimeModel(accelerator=a100, fat_gemm_dram_utilization=0.0)
    with pytest.raises(ConfigurationError):
        BatchedGemmTimeModel(accelerator=a100, kernel_overhead=-1e-6)
    with pytest.raises(ConfigurationError):
        BatchedGemmTimeModel(accelerator=a100, cache_occupancy=1.5)


def test_gemm_batch_from_arrays_parses_precision_strings():
    batch = GemmBatch.from_arrays(m=1, n=64, k=64, precision="int8")
    assert batch.size == 1
    assert batch.precisions == (Precision.INT8,)
