"""Tests for the fleet simulator: routing, bit-identity, aggregation, cost."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cluster import build_system
from repro.models.zoo import get_model
from repro.serving import (
    FleetConfig,
    FleetReport,
    FleetSimulator,
    FleetTraceConfig,
    LengthDistribution,
    RoundRobinRouter,
    SchedulerConfig,
    ServingSimulator,
    TenantTrace,
    TraceConfig,
    get_router,
)

SYSTEM = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
MODEL = get_model("Llama2-7B")


def small_trace(rate=3.0, num_requests=24, seed=5, **kwargs):
    return TraceConfig(
        rate=rate,
        num_requests=num_requests,
        prompt_lengths=LengthDistribution.uniform(32, 128),
        output_lengths=LengthDistribution.constant(16),
        seed=seed,
        **kwargs,
    )


def fleet_sim(fleet, **kwargs):
    return FleetSimulator(system=SYSTEM, model=MODEL, fleet=fleet, **kwargs)


class StatefulRoundRobin(RoundRobinRouter):
    """Round-robin with the vectorized fast path disabled: forces the
    arrival-interleaved cluster loop while keeping the same assignment."""

    def assign_batch(self, columns, num_replicas):
        return None


# -- bit-identity with the single-replica simulator -------------------------------------

def test_single_replica_fleet_is_bit_identical_to_serving_simulator():
    trace = small_trace()
    single = ServingSimulator(system=SYSTEM, model=MODEL).run(trace)
    report = fleet_sim(FleetConfig(trace=trace, num_replicas=1)).run()
    assert len(report.replicas) == 1
    assert report.replicas[0].to_dict() == single.to_dict()
    assert report.completed_requests == single.completed_requests
    assert report.simulated_time == single.simulated_time
    assert report.ttft_p99 == single.ttft_p99


def test_single_replica_bit_identity_holds_for_stateful_routers():
    # Stateful routers go through the interleaved path, whose until-horizon
    # epoch cuts must be invisible in the results.
    trace = small_trace()
    single = ServingSimulator(system=SYSTEM, model=MODEL).run(trace)
    for router in ("least_kv_load", "least_queue"):
        report = fleet_sim(FleetConfig(trace=trace, num_replicas=1, router=router)).run()
        assert report.replicas[0].to_dict() == single.to_dict(), router


def test_round_robin_fleet_equals_independent_partitioned_runs():
    # N identical replicas under round-robin == N independent single-replica
    # simulations over the partitioned arrivals, request for request.
    trace = small_trace(num_requests=30)
    requests = trace.generate()
    num_replicas = 3
    report = fleet_sim(FleetConfig(trace=trace, num_replicas=num_replicas)).run()
    for replica in range(num_replicas):
        partition = [r for i, r in enumerate(requests) if i % num_replicas == replica]
        independent = ServingSimulator(system=SYSTEM, model=MODEL).run(partition)
        fleet_requests = [m.to_dict() for m in report.replicas[replica].per_request]
        solo_requests = [m.to_dict() for m in independent.per_request]
        assert fleet_requests == solo_requests
        assert report.replicas[replica].to_dict() == independent.to_dict()


def test_interleaved_path_matches_partitioned_path():
    # Forcing round-robin through the stateful (interleaved) path must give
    # the exact same fleet report as the vectorized partitioned path.
    trace = small_trace(num_requests=30)
    for num_replicas in (1, 2, 3):
        config = FleetConfig(trace=trace, num_replicas=num_replicas)
        fast = fleet_sim(config).run()
        slow = fleet_sim(config, router=StatefulRoundRobin()).run()
        assert fast.to_dict() == slow.to_dict(), num_replicas


# -- routing policies -------------------------------------------------------------------

def test_all_registered_routers_complete_the_workload():
    trace = small_trace()
    for router in ("round_robin", "least_kv_load", "least_queue", "prefix_affinity"):
        report = fleet_sim(FleetConfig(trace=trace, num_replicas=2, router=router)).run()
        assert report.completed_requests == 24, router
        assert report.router == router


def test_unknown_router_rejected():
    with pytest.raises(ConfigurationError):
        FleetConfig(trace=small_trace(), router="weighted_random")
    with pytest.raises(ConfigurationError):
        get_router("weighted_random")


def test_prefix_affinity_concentrates_tenants():
    # Two tenants on a 4-replica fleet: prefix affinity uses only 2 replicas,
    # leaving the others idle (zero-request replicas must report cleanly).
    fleet = FleetTraceConfig(
        tenants=(
            TenantTrace(trace=small_trace(seed=1, num_requests=16), name="a"),
            TenantTrace(trace=small_trace(seed=2, num_requests=16), name="b"),
        )
    )
    report = fleet_sim(
        FleetConfig(trace=fleet, num_replicas=4, router="prefix_affinity")
    ).run()
    loaded = [r for r in report.replicas if r.num_requests > 0]
    idle = [r for r in report.replicas if r.num_requests == 0]
    assert len(loaded) == 2 and len(idle) == 2
    for replica in idle:
        assert replica.completed_requests == 0
        assert replica.ttft_p99 == 0.0  # explicit sentinel, no percentile crash
    assert report.load_imbalance > 0.5


def test_least_queue_balances_better_than_prefix_affinity():
    fleet = FleetTraceConfig(
        tenants=(
            TenantTrace(trace=small_trace(seed=1, num_requests=24), name="heavy"),
            TenantTrace(trace=small_trace(seed=2, num_requests=6, rate=0.5), name="light"),
        )
    )
    balanced = fleet_sim(FleetConfig(trace=fleet, num_replicas=2, router="least_queue")).run()
    pinned = fleet_sim(FleetConfig(trace=fleet, num_replicas=2, router="prefix_affinity")).run()
    assert balanced.load_imbalance < pinned.load_imbalance


# -- aggregation and cost ---------------------------------------------------------------

def test_fleet_report_aggregates_replica_totals():
    trace = small_trace()
    report = fleet_sim(FleetConfig(trace=trace, num_replicas=2)).run()
    assert report.num_requests == sum(r.num_requests for r in report.replicas) == 24
    assert report.completed_requests == sum(r.completed_requests for r in report.replicas)
    assert report.busy_time == pytest.approx(sum(r.busy_time for r in report.replicas))
    assert report.decode_steps == sum(r.decode_steps for r in report.replicas)
    assert report.simulated_time == max(r.simulated_time for r in report.replicas)
    assert 0 < report.device_utilization <= 1.0
    assert report.ttft_p50 <= report.ttft_p99
    # Fleet percentiles pool every request; p99 of the pool sits within the
    # per-replica extremes.
    assert min(r.ttft_p99 for r in report.replicas) <= report.ttft_p99
    assert report.ttft_p99 <= max(r.ttft_p99 for r in report.replicas)


def test_fleet_cost_accounting():
    trace = small_trace()
    report = fleet_sim(FleetConfig(trace=trace, num_replicas=2), tensor_parallel=2).run()
    assert report.total_device_seconds == pytest.approx(2 * 2 * report.simulated_time)
    assert report.energy_joules > 0
    assert report.cost_usd > 0
    assert report.cost_per_million_tokens > 0
    # Doubling the fleet at fixed work cannot cost less.
    bigger = fleet_sim(FleetConfig(trace=trace, num_replicas=4), tensor_parallel=2).run()
    assert bigger.cost_usd > report.cost_usd * 0.99


def test_fleet_report_round_trips_through_json():
    report = fleet_sim(FleetConfig(trace=small_trace(num_requests=8))).run()
    clone = FleetReport.from_json(report.to_json())
    assert clone == report
    assert clone.summary() == report.summary()


def test_fleet_accepts_explicit_request_list_and_scheduler_config():
    requests = small_trace(num_requests=12).generate()
    config = FleetConfig(
        trace=small_trace(num_requests=12),
        num_replicas=2,
        scheduler=SchedulerConfig(max_batch_size=4),
    )
    report = fleet_sim(config).run(requests)
    assert report.completed_requests == 12
    with pytest.raises(ConfigurationError):
        fleet_sim(config).run([])


def test_fleet_config_validation():
    with pytest.raises(ConfigurationError):
        FleetConfig(trace=small_trace(), num_replicas=0)
    with pytest.raises(ConfigurationError):
        FleetConfig(trace=small_trace(), max_epoch_steps=0)


def test_epoch_parameters_do_not_change_results():
    # max_epoch_steps / arrival_probe_steps only regroup the fused epochs;
    # any values must produce bit-identical fleet reports.
    trace = small_trace()
    base = fleet_sim(FleetConfig(trace=trace, num_replicas=2)).run()
    regrouped = fleet_sim(
        FleetConfig(trace=trace, num_replicas=2, max_epoch_steps=3, arrival_probe_steps=2)
    ).run()
    assert base.to_dict() == regrouped.to_dict()
