"""Tests for fault injection, retries, and elastic membership in the fleet.

The two load-bearing invariants:

* **Zero-fault identity** -- a fleet with faults disabled (``faults=None``
  or ``mtbf=inf``, no autoscaler) produces output bit-identical to the
  non-resilient fleet path, across every router.
* **Determinism** -- fault timelines are a pure function of ``(seed, slot)``
  and a faulty fleet run is reproducible from its config alone.
"""

import dataclasses
import math

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cluster import build_system
from repro.models.zoo import get_model
from repro.serving import (
    FaultConfig,
    FleetConfig,
    FleetSimulator,
    LengthDistribution,
    QueueDepthAutoscaler,
    RetryPolicy,
    SLOAutoscaler,
    TraceConfig,
    decode_autoscaler,
)
from repro.serving.router import ROUTER_POLICIES

SYSTEM = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
MODEL = get_model("Llama2-7B")


def small_trace(rate=3.0, num_requests=24, seed=5, **kwargs):
    return TraceConfig(
        rate=rate,
        num_requests=num_requests,
        prompt_lengths=LengthDistribution.uniform(32, 128),
        output_lengths=LengthDistribution.constant(16),
        seed=seed,
        **kwargs,
    )


def run_fleet(fleet):
    return FleetSimulator(system=SYSTEM, model=MODEL, fleet=fleet).run()


# -- fault trace determinism ------------------------------------------------------------

def test_fault_timeline_is_reproducible_by_seed():
    config = FaultConfig(mtbf=40.0, mttr=8.0, seed=11)
    for slot in range(3):
        assert config.timeline(slot, 500.0) == config.timeline(slot, 500.0)
    # Slots draw from independent streams; different seeds move every slot.
    assert config.timeline(0, 500.0) != config.timeline(1, 500.0)
    reseeded = FaultConfig(mtbf=40.0, mttr=8.0, seed=12)
    assert config.timeline(0, 500.0) != reseeded.timeline(0, 500.0)


def test_fault_timeline_alternates_and_caps():
    config = FaultConfig(mtbf=20.0, mttr=5.0, seed=3, max_failures_per_replica=2)
    intervals = config.timeline(0, math.inf)
    assert len(intervals) == 2
    last_up = 0.0
    for down_at, up_at in intervals:
        assert last_up < down_at < up_at
        last_up = up_at


def test_disabled_fault_config_has_empty_timeline():
    config = FaultConfig()  # mtbf = inf
    assert not config.enabled
    assert config.timeline(0, 1e9) == []


def test_fault_config_validation():
    with pytest.raises(ConfigurationError):
        FaultConfig(mtbf=0.0)
    with pytest.raises(ConfigurationError):
        FaultConfig(mttr=0.0)
    with pytest.raises(ConfigurationError):
        FaultConfig(mttr=math.inf)
    with pytest.raises(ConfigurationError):
        FaultConfig(max_failures_per_replica=-1)


# -- retry policy -----------------------------------------------------------------------

def test_retry_policy_exponential_delay():
    policy = RetryPolicy(max_attempts=4, backoff=0.5, multiplier=3.0)
    assert policy.delay(1) == 0.5
    assert policy.delay(2) == 1.5
    assert policy.delay(3) == 4.5


def test_retry_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff=-1.0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(multiplier=0.5)


# -- autoscaler policies ----------------------------------------------------------------

def test_queue_depth_autoscaler_decisions():
    scaler = QueueDepthAutoscaler(high=4.0, low=0.5)
    assert scaler.decide(5.0, None) == 1
    assert scaler.decide(0.1, None) == -1
    assert scaler.decide(2.0, None) == 0


def test_slo_autoscaler_decisions():
    scaler = SLOAutoscaler(target=0.9, relax=0.99)
    assert scaler.decide(3.0, None) == 1      # stalled: queued, no completions
    assert scaler.decide(0.0, None) == 0
    assert scaler.decide(0.0, 0.5) == 1       # missing the target
    assert scaler.decide(0.0, 1.0) == -1      # relaxed and idle
    assert scaler.decide(2.0, 1.0) == 0       # relaxed but busy


def test_autoscaler_validation_and_decode():
    with pytest.raises(ConfigurationError):
        QueueDepthAutoscaler(min_replicas=4, max_replicas=2)
    with pytest.raises(ConfigurationError):
        SLOAutoscaler(target=0.0)
    for scaler in (QueueDepthAutoscaler(max_replicas=3), SLOAutoscaler(target=0.8)):
        assert decode_autoscaler(dataclasses.asdict(scaler)) == scaler
    with pytest.raises(ConfigurationError):
        decode_autoscaler({"policy": "nope"})


def test_fleet_config_respects_scaler_bounds():
    with pytest.raises(ConfigurationError):
        FleetConfig(
            trace=small_trace(),
            num_replicas=8,
            autoscaler=QueueDepthAutoscaler(min_replicas=1, max_replicas=4),
        )


# -- zero-fault identity ----------------------------------------------------------------

@pytest.mark.parametrize("router", sorted(ROUTER_POLICIES))
def test_disabled_faults_are_bit_identical_to_plain_fleet(router):
    trace = small_trace()
    plain = run_fleet(FleetConfig(trace=trace, num_replicas=2, router=router))
    for faults in (None, FaultConfig(mtbf=math.inf)):
        resilient = run_fleet(
            FleetConfig(trace=trace, num_replicas=2, router=router, faults=faults)
        )
        assert resilient.to_dict() == plain.to_dict()


# -- faulty fleet behavior --------------------------------------------------------------

FAULTY = FaultConfig(mtbf=6.0, mttr=4.0, seed=2024)


@pytest.mark.parametrize("router", sorted(ROUTER_POLICIES))
def test_faulty_fleet_is_deterministic_per_seed(router):
    fleet = FleetConfig(
        trace=small_trace(rate=6.0, num_requests=48),
        num_replicas=3,
        router=router,
        faults=FAULTY,
        retry=RetryPolicy(max_attempts=3, backoff=0.25),
    )
    first = run_fleet(fleet)
    second = run_fleet(fleet)
    assert first.to_dict() == second.to_dict()

    reseeded = dataclasses.replace(fleet, faults=dataclasses.replace(FAULTY, seed=7))
    assert run_fleet(reseeded).to_dict() != first.to_dict()


def test_faulty_fleet_accounts_for_every_request():
    fleet = FleetConfig(
        trace=small_trace(rate=6.0, num_requests=64),
        num_replicas=3,
        faults=FAULTY,
        retry=RetryPolicy(max_attempts=2, backoff=0.25),
    )
    report = run_fleet(fleet)
    assert report.replica_failures > 0
    assert report.availability < 1.0
    assert (
        report.completed_requests + report.failed_requests + report.rejected_requests
        == fleet.trace.num_requests
    )


def test_retries_recover_requests_that_would_otherwise_fail():
    trace = small_trace(rate=6.0, num_requests=64)
    base = dict(trace=trace, num_replicas=3, faults=FAULTY)
    no_retry = run_fleet(FleetConfig(retry=RetryPolicy(max_attempts=1), **base))
    with_retry = run_fleet(FleetConfig(retry=RetryPolicy(max_attempts=5, backoff=0.25), **base))
    assert no_retry.failed_requests > 0
    assert no_retry.retried_requests == 0
    assert with_retry.retried_requests > 0
    assert with_retry.completed_requests > no_retry.completed_requests


def test_interruptions_degrade_interruption_aware_ttft():
    trace = small_trace(rate=6.0, num_requests=64)
    clean = run_fleet(FleetConfig(trace=trace, num_replicas=3))
    faulty = run_fleet(
        FleetConfig(
            trace=trace,
            num_replicas=3,
            faults=FAULTY,
            retry=RetryPolicy(max_attempts=5, backoff=0.5),
        )
    )
    # Retried requests carry their backoff + re-queue time as TTFT against
    # the original arrival, so the tail visibly degrades under faults.
    assert faulty.wasted_prefill_tokens > 0
    assert faulty.ttft_p99 > clean.ttft_p99


def test_autoscaler_grows_fleet_under_overload():
    trace = TraceConfig(
        rate=40.0,
        num_requests=96,
        prompt_lengths=LengthDistribution.uniform(64, 512),
        output_lengths=LengthDistribution.constant(128),
        seed=5,
    )
    fleet = FleetConfig(
        trace=trace,
        num_replicas=1,
        autoscaler=QueueDepthAutoscaler(min_replicas=1, max_replicas=6, interval=0.5, high=2.0),
    )
    report = run_fleet(fleet)
    assert report.scale_up_events > 0
    assert report.peak_replicas > 1
    assert report.completed_requests + report.rejected_requests == fleet.trace.num_requests


def test_faults_and_autoscaler_compose_deterministically():
    fleet = FleetConfig(
        trace=small_trace(rate=10.0, num_requests=64),
        num_replicas=2,
        faults=FAULTY,
        retry=RetryPolicy(max_attempts=3, backoff=0.25),
        autoscaler=QueueDepthAutoscaler(min_replicas=1, max_replicas=4, interval=1.0, high=2.0),
    )
    first = run_fleet(fleet)
    second = run_fleet(fleet)
    assert first.to_dict() == second.to_dict()
    assert first.summary()["availability"] == first.availability
