"""Tests for the discrete-event serving simulator and its report."""

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.hardware.cluster import build_system
from repro.models.zoo import get_model
from repro.serving import (
    LengthDistribution,
    Request,
    SchedulerConfig,
    ServingReport,
    ServingSimulator,
    ServingSLO,
    TraceConfig,
    percentile,
)

SYSTEM = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
MODEL = get_model("Llama2-7B")


def make_simulator(**kwargs):
    return ServingSimulator(system=SYSTEM, model=MODEL, **kwargs)


def small_trace(rate=2.0, num_requests=12, seed=5, **kwargs):
    return TraceConfig(
        rate=rate,
        num_requests=num_requests,
        prompt_lengths=LengthDistribution.uniform(32, 128),
        output_lengths=LengthDistribution.constant(16),
        seed=seed,
        **kwargs,
    )


# -- percentile helper ------------------------------------------------------------------

def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)
    assert percentile([7.0], 99) == 7.0
    with pytest.raises(ConfigurationError):
        percentile(values, 101)


def test_percentile_of_empty_sample_raises_repro_error():
    # An empty sample has no percentiles: a replica with zero requests must
    # surface a clear ReproError, not NumPy's IndexError.
    with pytest.raises(ReproError, match="empty sample"):
        percentile([], 50)


# -- simulation behavior ----------------------------------------------------------------

def test_all_requests_complete_and_metrics_are_sane():
    report = make_simulator().run(small_trace())
    assert report.completed_requests == 12
    assert report.rejected_requests == 0
    assert report.num_requests == 12
    assert len(report.per_request) == 12
    assert report.simulated_time > 0
    assert 0 < report.device_utilization <= 1.0
    assert report.prefill_steps > 0 and report.decode_steps > 0
    assert report.busy_time == pytest.approx(report.prefill_time + report.decode_time)
    for metrics in report.per_request:
        assert metrics.ttft > 0
        assert metrics.tpot > 0
        assert metrics.e2e_latency >= metrics.ttft
        assert metrics.queue_time >= 0
    # Every request generates 16 tokens; each decode step after the prefill
    # token accounts for one, so conservation holds.
    assert report.ttft_p50 <= report.ttft_p99
    assert report.tpot_p50 <= report.tpot_p99


def test_simulation_is_deterministic():
    first = make_simulator().run(small_trace())
    second = make_simulator().run(small_trace())
    assert first.to_dict() == second.to_dict()


def test_explicit_request_list_accepted():
    requests = [
        Request(request_id=0, arrival_time=0.0, prompt_tokens=64, output_tokens=4),
        Request(request_id=1, arrival_time=0.0, prompt_tokens=64, output_tokens=4),
    ]
    report = make_simulator().run(requests)
    assert report.completed_requests == 2
    # Same arrival time, both fit: one prefill step serves both.
    assert report.prefill_steps == 1
    assert report.decode_steps == 3  # tokens 2..4 decoded together


def test_empty_workload_rejected():
    with pytest.raises(ConfigurationError):
        make_simulator().run([])


def test_single_token_requests_need_no_decode():
    requests = [Request(request_id=0, arrival_time=0.0, prompt_tokens=64, output_tokens=1)]
    report = make_simulator().run(requests)
    assert report.completed_requests == 1
    assert report.decode_steps == 0
    assert report.per_request[0].tpot == 0.0


def test_higher_load_increases_tail_latency():
    calm = make_simulator().run(small_trace(rate=0.5, num_requests=24))
    slammed = make_simulator().run(small_trace(rate=500.0, num_requests=24))
    assert slammed.ttft_p99 > calm.ttft_p99
    assert slammed.mean_decode_batch > calm.mean_decode_batch
    assert slammed.device_utilization >= calm.device_utilization


def test_tensor_parallel_cuts_decode_latency():
    solo = make_simulator(tensor_parallel=1).run(small_trace())
    sharded = make_simulator(tensor_parallel=4).run(small_trace())
    assert sharded.tpot_p50 < solo.tpot_p50


def test_batch_cap_throttles_concurrency():
    trace = small_trace(rate=500.0, num_requests=16)
    wide = make_simulator(scheduler_config=SchedulerConfig(max_batch_size=16))
    narrow = make_simulator(scheduler_config=SchedulerConfig(max_batch_size=2))
    wide_report = wide.run(trace)
    narrow_report = narrow.run(trace)
    assert narrow_report.mean_decode_batch <= 2.0
    assert narrow_report.ttft_p99 > wide_report.ttft_p99


def test_goodput_respects_slo():
    loose = make_simulator(slo=ServingSLO(ttft=100.0, tpot=10.0)).run(small_trace())
    strict = make_simulator(slo=ServingSLO(ttft=1e-9, tpot=1e-9)).run(small_trace())
    assert loose.slo_attainment == 1.0
    assert loose.goodput == pytest.approx(loose.request_throughput)
    assert strict.slo_attainment == 0.0
    assert strict.goodput == 0.0
    # The SLO only reclassifies requests; the simulation itself is unchanged.
    assert loose.simulated_time == strict.simulated_time


def test_oversized_requests_are_rejected_and_reported():
    requests = [
        Request(request_id=0, arrival_time=0.0, prompt_tokens=64, output_tokens=4),
        Request(request_id=1, arrival_time=0.0, prompt_tokens=10_000_000, output_tokens=4),
    ]
    report = make_simulator().run(requests)
    assert report.completed_requests == 1
    assert report.rejected_requests == 1


def test_report_round_trips_through_json():
    report = make_simulator().run(small_trace(num_requests=4))
    clone = ServingReport.from_json(report.to_json())
    assert clone == report
    assert clone.summary() == report.summary()
