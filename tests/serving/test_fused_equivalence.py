"""Property tests: the epoch-fused serving loop is bit-identical to stepwise.

The fused simulator prices whole decode epochs in one vectorized call and
assigns timestamps from sequential cumulative sums; these tests assert that
every field of the resulting :class:`ServingReport` -- including every
``per_request`` timestamp -- equals the ``fused=False`` per-step reference
**exactly** (``to_dict`` equality, no tolerances) across randomized traces:
Poisson and bursty arrivals, mixed length distributions, and small KV
budgets that force rejections and multi-epoch admission churn.
"""

import pytest

from repro.hardware.cluster import build_system
from repro.memmodel.footprint import model_weight_bytes
from repro.models.zoo import get_model
from repro.serving import (
    LengthDistribution,
    Request,
    SchedulerConfig,
    ServingSimulator,
    TraceConfig,
)

SYSTEM = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
MODEL = get_model("Llama2-7B")


def tight_memory_scheduler(kv_gigabytes: float, **kwargs) -> SchedulerConfig:
    """A scheduler whose KV budget is ``kv_gigabytes`` on top of the weights.

    Small budgets force admission churn (requests queue behind retirements)
    and reject outsized requests outright -- the regimes where epoch
    boundaries are densest.
    """
    weights = model_weight_bytes(MODEL, tensor_parallel=1)
    headroom = kwargs.setdefault("memory_headroom", 0.05)
    capacity = (weights + kv_gigabytes * 1e9) / (1.0 - headroom)
    return SchedulerConfig(memory_capacity_bytes=capacity, **kwargs)


def assert_fused_matches_stepwise(workload, scheduler_config=None, tensor_parallel=1):
    fused = ServingSimulator(
        system=SYSTEM,
        model=MODEL,
        tensor_parallel=tensor_parallel,
        scheduler_config=scheduler_config,
        fused=True,
    ).run(workload)
    stepwise = ServingSimulator(
        system=SYSTEM,
        model=MODEL,
        tensor_parallel=tensor_parallel,
        scheduler_config=scheduler_config,
        fused=False,
    ).run(workload)
    assert fused.to_dict() == stepwise.to_dict()
    return fused


@pytest.mark.parametrize("arrival", ["poisson", "bursty"])
@pytest.mark.parametrize("seed", [1, 7, 2024])
def test_randomized_traces_mixed_lengths(arrival, seed):
    trace = TraceConfig(
        rate=3.0,
        num_requests=24,
        arrival=arrival,
        prompt_lengths=LengthDistribution.uniform(16, 512),
        output_lengths=LengthDistribution.lognormal(median=24, sigma=0.8, maximum=96),
        seed=seed,
    )
    report = assert_fused_matches_stepwise(trace)
    assert report.completed_requests == 24


@pytest.mark.parametrize("seed", [3, 11])
def test_small_kv_budget_forces_churn_and_rejections(seed):
    # ~2 GB of KV on a 7B model fits only a couple of long-context requests
    # at a time; the lognormal tail produces requests that can never fit and
    # must be rejected.
    trace = TraceConfig(
        rate=8.0,
        num_requests=32,
        arrival="bursty",
        prompt_lengths=LengthDistribution.lognormal(median=300, sigma=1.2, maximum=20_000),
        output_lengths=LengthDistribution.uniform(4, 64),
        seed=seed,
        burstiness=8.0,
        burst_fraction=0.4,
    )
    report = assert_fused_matches_stepwise(trace, scheduler_config=tight_memory_scheduler(2.0))
    assert report.rejected_requests > 0
    assert report.completed_requests + report.rejected_requests == 32
    assert report.queue_p99 > 0  # admission churn: requests waited for memory


def test_tiny_batch_cap_epochs_of_one_request():
    trace = TraceConfig(
        rate=10.0,
        num_requests=12,
        prompt_lengths=LengthDistribution.uniform(32, 128),
        output_lengths=LengthDistribution.uniform(1, 8),  # includes prefill-only requests
        seed=5,
    )
    config = SchedulerConfig(max_batch_size=1, max_prefill_requests=1)
    assert_fused_matches_stepwise(trace, scheduler_config=config)


def test_saturating_load_with_tensor_parallel():
    trace = TraceConfig(
        rate=100.0,
        num_requests=24,
        prompt_lengths=LengthDistribution.uniform(64, 256),
        output_lengths=LengthDistribution.constant(32),
        seed=13,
    )
    assert_fused_matches_stepwise(trace, tensor_parallel=4)


def test_sparse_arrivals_interrupt_epochs():
    # Near-idle load: the batch usually holds one request and every arrival
    # lands mid-epoch, exercising the arrival-cut path of the fused loop.
    trace = TraceConfig(
        rate=0.05,
        num_requests=10,
        prompt_lengths=LengthDistribution.uniform(64, 192),
        output_lengths=LengthDistribution.uniform(24, 200),
        seed=17,
    )
    report = assert_fused_matches_stepwise(trace)
    assert report.completed_requests == 10


def test_explicit_tie_heavy_request_list():
    # Simultaneous arrivals and equal lengths produce exact float ties in
    # arrival comparisons and retirement grouping.
    requests = [
        Request(request_id=i, arrival_time=float(i // 3), prompt_tokens=64, output_tokens=16)
        for i in range(9)
    ]
    assert_fused_matches_stepwise(requests)


def test_shared_step_cost_model_between_paths():
    # Warming one path's caches must not perturb the other: run both modes
    # on one shared StepCostModel instance, in both orders.
    from repro.core.stepcost import StepCostModel

    trace = TraceConfig(
        rate=4.0,
        num_requests=16,
        prompt_lengths=LengthDistribution.uniform(32, 256),
        output_lengths=LengthDistribution.uniform(8, 48),
        seed=29,
    )
    shared = StepCostModel(system=SYSTEM)
    kwargs = dict(system=SYSTEM, model=MODEL, step_cost=shared)
    first = ServingSimulator(fused=True, **kwargs).run(trace)
    second = ServingSimulator(fused=False, **kwargs).run(trace)
    third = ServingSimulator(fused=True, **kwargs).run(trace)
    assert first.to_dict() == second.to_dict() == third.to_dict()
