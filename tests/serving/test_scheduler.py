"""Tests for continuous batching and KV-memory admission control."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cluster import build_system
from repro.hardware.datatypes import Precision
from repro.memmodel.footprint import kv_cache_bytes, model_weight_bytes
from repro.models.zoo import get_model
from repro.serving import ContinuousBatchingScheduler, Request, SchedulerConfig

MODEL = get_model("Llama2-7B")
DEVICE_MEMORY = build_system("A100", num_devices=1).accelerator.dram_capacity


def make_scheduler(**kwargs):
    config = SchedulerConfig(**kwargs.pop("config", {}))
    return ContinuousBatchingScheduler(
        model=MODEL,
        config=config,
        device_memory_bytes=kwargs.pop("device_memory_bytes", DEVICE_MEMORY),
        **kwargs,
    )


def request(request_id=0, arrival=0.0, prompt=100, output=50):
    return Request(request_id=request_id, arrival_time=arrival, prompt_tokens=prompt, output_tokens=output)


def test_scheduler_config_validation():
    with pytest.raises(ConfigurationError):
        SchedulerConfig(max_batch_size=0)
    with pytest.raises(ConfigurationError):
        SchedulerConfig(max_prefill_requests=0)
    with pytest.raises(ConfigurationError):
        SchedulerConfig(memory_headroom=1.0)


def test_weights_exceeding_budget_raise():
    with pytest.raises(ConfigurationError):
        make_scheduler(device_memory_bytes=1e9)  # 7B weights never fit 1 GB


def test_kv_reservation_matches_memory_model():
    scheduler = make_scheduler()
    req = request(prompt=300, output=100)
    expected = kv_cache_bytes(MODEL, batch_size=1, context_len=400, precision=Precision.FP16)
    assert scheduler.kv_reservation(req) == expected


def test_fifo_admission_and_batch_cap():
    scheduler = make_scheduler(config={"max_batch_size": 2, "max_prefill_requests": 8})
    for index in range(4):
        scheduler.enqueue(request(request_id=index))
    admitted = scheduler.admit(now=0.0)
    assert [state.request.request_id for state in admitted] == [0, 1]
    assert scheduler.has_waiting
    # Nothing retires, so a second admit is blocked by the batch cap.
    assert scheduler.admit(now=1.0) == []


def test_prefill_cap_limits_one_step():
    scheduler = make_scheduler(config={"max_batch_size": 32, "max_prefill_requests": 3})
    for index in range(5):
        scheduler.enqueue(request(request_id=index))
    assert len(scheduler.admit(now=0.0)) == 3
    assert len(scheduler.admit(now=0.0)) == 2


def test_memory_admission_blocks_head_of_line():
    # Budget sized to hold the weights plus ~1.5 large-context reservations.
    big_kv = kv_cache_bytes(MODEL, batch_size=1, context_len=4096, precision=Precision.FP16)
    weights = model_weight_bytes(MODEL, precision=Precision.FP16)
    scheduler = make_scheduler(
        config={"memory_capacity_bytes": weights + 1.5 * big_kv, "memory_headroom": 0.0}
    )
    scheduler.enqueue(request(request_id=0, prompt=2048, output=2048))
    scheduler.enqueue(request(request_id=1, prompt=2048, output=2048))
    admitted = scheduler.admit(now=0.0)
    assert [state.request.request_id for state in admitted] == [0]
    assert scheduler.has_waiting  # head-of-line blocked, not skipped

    # Retiring the first request frees its reservation and unblocks the queue.
    scheduler.active[0].generated = scheduler.active[0].request.output_tokens
    scheduler.retire_finished(now=1.0)
    assert scheduler.kv_reserved_bytes == 0.0
    assert [state.request.request_id for state in scheduler.admit(now=1.0)] == [1]


def test_impossible_requests_are_rejected_not_blocking():
    weights = model_weight_bytes(MODEL, precision=Precision.FP16)
    small_kv = kv_cache_bytes(MODEL, batch_size=1, context_len=200, precision=Precision.FP16)
    scheduler = make_scheduler(
        config={"memory_capacity_bytes": weights + 2.5 * small_kv, "memory_headroom": 0.0}
    )
    scheduler.enqueue(request(request_id=0, prompt=100_000, output=100_000))  # can never fit
    scheduler.enqueue(request(request_id=1, prompt=100, output=100))
    admitted = scheduler.admit(now=0.0)
    assert [state.request.request_id for state in admitted] == [1]
    assert [req.request_id for req in scheduler.rejected] == [0]


def test_peak_kv_tracking():
    scheduler = make_scheduler()
    scheduler.enqueue(request(request_id=0))
    scheduler.enqueue(request(request_id=1))
    scheduler.admit(now=0.0)
    peak = scheduler.peak_kv_reserved_bytes
    assert peak == scheduler.kv_reserved_bytes > 0
    for state in list(scheduler.active):
        state.generated = state.request.output_tokens
    scheduler.retire_finished(now=1.0)
    assert scheduler.kv_reserved_bytes == 0.0
    assert scheduler.peak_kv_reserved_bytes == peak


def test_decode_kv_len_progression():
    scheduler = make_scheduler()
    scheduler.enqueue(request(prompt=100, output=10))
    (state,) = scheduler.admit(now=0.0)
    state.generated = 1  # after prefill: first decode step attends the prompt
    assert state.decode_kv_len == 100
    state.generated = 5
    assert state.decode_kv_len == 104
    assert not state.done
    state.generated = 10
    assert state.done
