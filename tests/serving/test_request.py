"""Tests for trace generation: arrivals, length distributions, determinism."""

import math
import random

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    FleetTraceConfig,
    LengthDistribution,
    Request,
    TenantTrace,
    TraceConfig,
    bursty_trace,
    poisson_trace,
)


def test_request_validation():
    with pytest.raises(ConfigurationError):
        Request(request_id=0, arrival_time=-1.0, prompt_tokens=10, output_tokens=10)
    with pytest.raises(ConfigurationError):
        Request(request_id=0, arrival_time=0.0, prompt_tokens=0, output_tokens=10)
    with pytest.raises(ConfigurationError):
        Request(request_id=0, arrival_time=0.0, prompt_tokens=10, output_tokens=0)


def test_request_total_context():
    request = Request(request_id=3, arrival_time=1.0, prompt_tokens=100, output_tokens=50)
    assert request.total_context == 150


def test_constant_distribution():
    dist = LengthDistribution.constant(128)
    rng = random.Random(0)
    assert all(dist.sample(rng) == 128 for _ in range(10))
    assert dist.mean_estimate == 128


def test_uniform_distribution_bounds_and_mean():
    dist = LengthDistribution.uniform(50, 150)
    rng = random.Random(1)
    samples = [dist.sample(rng) for _ in range(500)]
    assert all(50 <= sample <= 150 for sample in samples)
    assert sum(samples) / len(samples) == pytest.approx(100, rel=0.1)
    assert dist.mean_estimate == 100


def test_lognormal_distribution_clamps_and_skews():
    dist = LengthDistribution.lognormal(median=100, sigma=0.8, minimum=16, maximum=400)
    rng = random.Random(2)
    samples = [dist.sample(rng) for _ in range(500)]
    assert all(16 <= sample <= 400 for sample in samples)
    # Right-skew: the mean sits above the median.
    assert dist.mean_estimate > 100


def test_distribution_validation():
    with pytest.raises(ConfigurationError):
        LengthDistribution.constant(0)
    with pytest.raises(ConfigurationError):
        LengthDistribution.uniform(10, 5)
    with pytest.raises(ConfigurationError):
        LengthDistribution.lognormal(median=0.5)
    with pytest.raises(ConfigurationError):
        LengthDistribution(kind="zipf")


def test_trace_is_deterministic_and_sorted():
    config = TraceConfig(rate=2.0, num_requests=50, seed=42)
    first = config.generate()
    second = config.generate()
    assert first == second
    assert len(first) == 50
    times = [request.arrival_time for request in first]
    assert times == sorted(times)
    assert [request.request_id for request in first] == list(range(50))


def test_different_seeds_differ():
    base = TraceConfig(rate=2.0, num_requests=20, seed=1).generate()
    other = TraceConfig(rate=2.0, num_requests=20, seed=2).generate()
    assert base != other


def test_poisson_mean_rate():
    requests = poisson_trace(rate=5.0, num_requests=2000, seed=7)
    span = requests[-1].arrival_time
    assert 2000 / span == pytest.approx(5.0, rel=0.1)


def test_bursty_preserves_mean_rate_but_raises_variability():
    poisson = poisson_trace(rate=5.0, num_requests=4000, seed=7)
    bursty = bursty_trace(rate=5.0, num_requests=4000, seed=7, burstiness=8.0, burst_fraction=0.3)
    p_gaps = [b.arrival_time - a.arrival_time for a, b in zip(poisson, poisson[1:])]
    b_gaps = [b.arrival_time - a.arrival_time for a, b in zip(bursty, bursty[1:])]

    def mean(values):
        return sum(values) / len(values)

    def cv(values):
        mu = mean(values)
        return math.sqrt(mean([(v - mu) ** 2 for v in values])) / mu

    assert mean(b_gaps) == pytest.approx(mean(p_gaps), rel=0.15)
    assert cv(b_gaps) > cv(p_gaps) * 1.2  # hyperexponential: strictly burstier


def test_trace_config_validation():
    with pytest.raises(ConfigurationError):
        TraceConfig(rate=0.0)
    with pytest.raises(ConfigurationError):
        TraceConfig(num_requests=0)
    with pytest.raises(ConfigurationError):
        TraceConfig(arrival="uniform")
    with pytest.raises(ConfigurationError):
        TraceConfig(arrival="bursty", burstiness=1.0)
    with pytest.raises(ConfigurationError):
        TraceConfig(arrival="bursty", burst_fraction=0.0)


def test_trace_config_is_hashable():
    config = TraceConfig(rate=1.0, num_requests=10)
    assert hash(config) == hash(TraceConfig(rate=1.0, num_requests=10))


# -- vectorized generation --------------------------------------------------------------

def test_golden_trace_pins_the_rng_stream():
    # Golden fixture: these exact values came from the pre-vectorization
    # per-request random.Random loop.  The vectorized generate() must keep
    # reproducing them for every existing seed.
    config = TraceConfig(
        rate=2.0,
        num_requests=5,
        arrival="bursty",
        prompt_lengths=LengthDistribution.uniform(32, 256),
        output_lengths=LengthDistribution.lognormal(100, 0.6, maximum=300),
        seed=42,
    )
    golden = [
        (0.015830524401711805, 102, 101),
        (0.1845361744388025, 171, 139),
        (0.25304194436336386, 39, 144),
        (0.7679258516782421, 215, 127),
        (1.2600066355797428, 88, 63),
    ]
    generated = [
        (request.arrival_time, request.prompt_tokens, request.output_tokens)
        for request in config.generate()
    ]
    assert generated == golden


def test_generate_columns_matches_generate():
    config = TraceConfig(
        rate=3.0,
        num_requests=200,
        prompt_lengths=LengthDistribution.lognormal(128, 0.9, minimum=8, maximum=1024),
        output_lengths=LengthDistribution.uniform(16, 96),
        seed=11,
    )
    columns = config.generate_columns()
    requests = config.generate()
    assert columns.to_requests() == requests
    assert columns.arrival_times.dtype == np.float64
    assert columns.prompt_tokens.dtype == np.int64
    assert np.all(columns.tenant_ids == 0)
    assert len(columns) == 200


def test_generate_columns_matches_scalar_reference_loop():
    # The vectorized path must consume the identical RNG stream in the same
    # per-request order (gap, prompt, output) as a scalar loop.
    config = TraceConfig(
        rate=2.5,
        num_requests=100,
        arrival="bursty",
        prompt_lengths=LengthDistribution.uniform(32, 512),
        output_lengths=LengthDistribution.lognormal(200, 0.7, maximum=900),
        seed=77,
    )
    rng = random.Random(config.seed)
    now = 0.0
    reference = []
    for index in range(config.num_requests):
        now += config._next_gap(rng)
        reference.append(
            Request(
                request_id=index,
                arrival_time=now,
                prompt_tokens=config.prompt_lengths.sample(rng),
                output_tokens=config.output_lengths.sample(rng),
            )
        )
    assert config.generate() == reference


# -- multi-tenant fleet traces ----------------------------------------------------------

def tenant(seed, rate=5.0, n=200, **kwargs):
    return TenantTrace(
        trace=TraceConfig(rate=rate, num_requests=n, seed=seed,
                          output_lengths=LengthDistribution.constant(8)),
        **kwargs,
    )


def test_fleet_trace_merges_tenants_in_arrival_order():
    fleet = FleetTraceConfig(tenants=(tenant(1, name="a"), tenant(2, name="b")))
    columns = fleet.generate_columns()
    assert len(columns) == 400
    assert np.all(np.diff(columns.arrival_times) >= 0)
    assert set(np.unique(columns.tenant_ids).tolist()) == {0, 1}
    requests = fleet.generate()
    assert [request.request_id for request in requests] == list(range(400))


def test_fleet_trace_is_deterministic_and_seed_sensitive():
    fleet = FleetTraceConfig(tenants=(tenant(1), tenant(2)))
    first = fleet.generate_columns()
    second = fleet.generate_columns()
    assert np.array_equal(first.arrival_times, second.arrival_times)
    assert np.array_equal(first.prompt_tokens, second.prompt_tokens)
    other = FleetTraceConfig(tenants=(tenant(3), tenant(2))).generate_columns()
    assert not np.array_equal(first.arrival_times, other.arrival_times)


def test_diurnal_profile_modulates_arrival_density():
    # Rate multiplier 4x in the second half-period: that half must hold the
    # bulk of the arrivals per unit time.
    period = 100.0
    shaped = TenantTrace(
        trace=TraceConfig(rate=5.0, num_requests=2000, seed=9),
        diurnal=(1.0, 4.0),
        period=period,
    )
    columns = shaped.generate_columns()
    phase = np.mod(columns.arrival_times, period)
    slow = int(np.count_nonzero(phase < period / 2))
    fast = len(columns) - slow
    assert fast > slow * 2  # ~4x density, generous margin

    # The mean rate is preserved relative to the flat profile within noise:
    # average multiplier is 2.5, so the span shrinks ~2.5x.
    flat = TenantTrace(trace=TraceConfig(rate=5.0, num_requests=2000, seed=9))
    ratio = flat.generate_columns().arrival_times[-1] / columns.arrival_times[-1]
    assert ratio == pytest.approx(2.5, rel=0.15)


def test_bursty_tenant_keeps_mean_rate():
    bursty = TenantTrace(
        trace=TraceConfig(rate=5.0, num_requests=4000, seed=3, arrival="bursty")
    ).generate_columns()
    span = bursty.arrival_times[-1]
    assert 4000 / span == pytest.approx(5.0, rel=0.1)


def test_fleet_trace_validation():
    with pytest.raises(ConfigurationError):
        FleetTraceConfig(tenants=())
    with pytest.raises(ConfigurationError):
        TenantTrace(trace=TraceConfig(), diurnal=(1.0, -1.0))
    with pytest.raises(ConfigurationError):
        TenantTrace(trace=TraceConfig(), period=0.0)
    assert FleetTraceConfig(tenants=(tenant(1), tenant(2))).num_requests == 400
