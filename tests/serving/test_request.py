"""Tests for trace generation: arrivals, length distributions, determinism."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.serving import LengthDistribution, Request, TraceConfig, bursty_trace, poisson_trace


def test_request_validation():
    with pytest.raises(ConfigurationError):
        Request(request_id=0, arrival_time=-1.0, prompt_tokens=10, output_tokens=10)
    with pytest.raises(ConfigurationError):
        Request(request_id=0, arrival_time=0.0, prompt_tokens=0, output_tokens=10)
    with pytest.raises(ConfigurationError):
        Request(request_id=0, arrival_time=0.0, prompt_tokens=10, output_tokens=0)


def test_request_total_context():
    request = Request(request_id=3, arrival_time=1.0, prompt_tokens=100, output_tokens=50)
    assert request.total_context == 150


def test_constant_distribution():
    dist = LengthDistribution.constant(128)
    rng = random.Random(0)
    assert all(dist.sample(rng) == 128 for _ in range(10))
    assert dist.mean_estimate == 128


def test_uniform_distribution_bounds_and_mean():
    dist = LengthDistribution.uniform(50, 150)
    rng = random.Random(1)
    samples = [dist.sample(rng) for _ in range(500)]
    assert all(50 <= sample <= 150 for sample in samples)
    assert sum(samples) / len(samples) == pytest.approx(100, rel=0.1)
    assert dist.mean_estimate == 100


def test_lognormal_distribution_clamps_and_skews():
    dist = LengthDistribution.lognormal(median=100, sigma=0.8, minimum=16, maximum=400)
    rng = random.Random(2)
    samples = [dist.sample(rng) for _ in range(500)]
    assert all(16 <= sample <= 400 for sample in samples)
    # Right-skew: the mean sits above the median.
    assert dist.mean_estimate > 100


def test_distribution_validation():
    with pytest.raises(ConfigurationError):
        LengthDistribution.constant(0)
    with pytest.raises(ConfigurationError):
        LengthDistribution.uniform(10, 5)
    with pytest.raises(ConfigurationError):
        LengthDistribution.lognormal(median=0.5)
    with pytest.raises(ConfigurationError):
        LengthDistribution(kind="zipf")


def test_trace_is_deterministic_and_sorted():
    config = TraceConfig(rate=2.0, num_requests=50, seed=42)
    first = config.generate()
    second = config.generate()
    assert first == second
    assert len(first) == 50
    times = [request.arrival_time for request in first]
    assert times == sorted(times)
    assert [request.request_id for request in first] == list(range(50))


def test_different_seeds_differ():
    base = TraceConfig(rate=2.0, num_requests=20, seed=1).generate()
    other = TraceConfig(rate=2.0, num_requests=20, seed=2).generate()
    assert base != other


def test_poisson_mean_rate():
    requests = poisson_trace(rate=5.0, num_requests=2000, seed=7)
    span = requests[-1].arrival_time
    assert 2000 / span == pytest.approx(5.0, rel=0.1)


def test_bursty_preserves_mean_rate_but_raises_variability():
    poisson = poisson_trace(rate=5.0, num_requests=4000, seed=7)
    bursty = bursty_trace(rate=5.0, num_requests=4000, seed=7, burstiness=8.0, burst_fraction=0.3)
    p_gaps = [b.arrival_time - a.arrival_time for a, b in zip(poisson, poisson[1:])]
    b_gaps = [b.arrival_time - a.arrival_time for a, b in zip(bursty, bursty[1:])]

    def mean(values):
        return sum(values) / len(values)

    def cv(values):
        mu = mean(values)
        return math.sqrt(mean([(v - mu) ** 2 for v in values])) / mu

    assert mean(b_gaps) == pytest.approx(mean(p_gaps), rel=0.15)
    assert cv(b_gaps) > cv(p_gaps) * 1.2  # hyperexponential: strictly burstier


def test_trace_config_validation():
    with pytest.raises(ConfigurationError):
        TraceConfig(rate=0.0)
    with pytest.raises(ConfigurationError):
        TraceConfig(num_requests=0)
    with pytest.raises(ConfigurationError):
        TraceConfig(arrival="uniform")
    with pytest.raises(ConfigurationError):
        TraceConfig(arrival="bursty", burstiness=1.0)
    with pytest.raises(ConfigurationError):
        TraceConfig(arrival="bursty", burst_fraction=0.0)


def test_trace_config_is_hashable():
    config = TraceConfig(rate=1.0, num_requests=10)
    assert hash(config) == hash(TraceConfig(rate=1.0, num_requests=10))
