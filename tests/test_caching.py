"""Tests for the shared two-generation memoization cache."""

import pytest

from repro.caching import Memo


def test_put_get_roundtrip_and_contains():
    memo = Memo(max_size=4)
    assert memo.get("a") is None
    assert memo.get("a", default=7) == 7
    assert memo.put("a", 1) == 1
    assert memo.get("a") == 1
    assert "a" in memo
    assert "b" not in memo
    assert len(memo) == 1


def test_hot_key_survives_crossing_the_bound():
    """Regression for the old clear-on-full policy: a key that keeps being
    read must stay cached while cold keys churn the cache past its bound."""
    memo = Memo(max_size=4)
    memo.put("hot", "value")
    for index in range(40):
        memo.put(("cold", index), index)
        # The interleaved read keeps promoting the hot key into the current
        # generation before the next roll can drop it.
        assert memo.get("hot") == "value", f"hot key evicted after {index + 1} cold puts"


def test_unread_keys_age_out_within_two_generations():
    memo = Memo(max_size=4)
    memo.put("stale", 0)
    # Two full generations of fresh keys (never reading "stale") roll the
    # current generation twice, dropping the old previous wholesale.
    for index in range(8):
        memo.put(("fresh", index), index)
    assert "stale" not in memo
    assert memo.get("stale") is None


def test_retention_is_bounded_by_two_generations():
    memo = Memo(max_size=8)
    for index in range(1000):
        memo.put(index, index)
    assert len(memo) <= 2 * memo.max_size


def test_repeated_put_of_same_key_does_not_roll_generations():
    memo = Memo(max_size=2)
    memo.put("a", 1)
    memo.put("b", 2)
    for _ in range(10):
        memo.put("a", 1)  # key already current: no eviction pressure
    assert memo.get("b") == 2


def test_clear_drops_both_generations():
    memo = Memo(max_size=2)
    memo.put("a", 1)
    memo.put("b", 2)
    memo.put("c", 3)  # rolls a+b into the previous generation
    memo.clear()
    assert len(memo) == 0
    assert memo.get("a") is None
    assert memo.get("c") is None


def test_invalid_max_size_rejected():
    with pytest.raises(ValueError):
        Memo(max_size=0)
