"""Property-based tests (hypothesis) for the core analytical invariants."""

from __future__ import annotations


import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.collectives import ring_all_reduce_time, tree_all_reduce_time
from repro.hardware.accelerator import get_accelerator
from repro.hardware.datatypes import Precision
from repro.memmodel.activations import ActivationModel, RecomputeStrategy
from repro.memmodel.footprint import kv_cache_bytes
from repro.models.transformer import TransformerConfig
from repro.perf.gemm import GemmTimeModel
from repro.perf.roofline import BoundType, classify, roofline_time
from repro.perf.tiling import compulsory_traffic, traffic_through_level
from repro.workload.operators import GEMM
from repro.workload.transformer_layer import LayerExecutionSpec, TransformerLayerBuilder

A100 = get_accelerator("A100")
GEMM_MODEL = GemmTimeModel(accelerator=A100)

# -- strategies ----------------------------------------------------------------

gemm_dims = st.integers(min_value=1, max_value=8192)
positive_bytes = st.floats(min_value=1.0, max_value=1e10, allow_nan=False, allow_infinity=False)
group_sizes = st.integers(min_value=2, max_value=1024)
bandwidths = st.floats(min_value=1e8, max_value=1e13, allow_nan=False, allow_infinity=False)
latencies = st.floats(min_value=0.0, max_value=1e-4, allow_nan=False, allow_infinity=False)


def _small_model(hidden_multiple: int, layers: int, heads: int) -> TransformerConfig:
    heads = max(1, heads)
    hidden = heads * 32 * hidden_multiple
    return TransformerConfig(
        name="prop-model",
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        vocab_size=32000,
        max_seq_len=512,
    )


# -- roofline / GEMM properties ----------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(m=gemm_dims, n=gemm_dims, k=gemm_dims)
def test_gemm_time_positive_and_at_least_compute_and_memory(m, n, k):
    gemm = GEMM(name="g", m=m, n=n, k=k)
    point = GEMM_MODEL.evaluate(gemm)
    assert point.time > 0
    assert point.time >= point.compute_time - 1e-15
    assert point.time >= max(point.level_times.values()) - 1e-15


@settings(max_examples=40, deadline=None)
@given(m=gemm_dims, n=gemm_dims, k=gemm_dims, factor=st.floats(min_value=1.1, max_value=8.0))
def test_gemm_time_monotonic_in_compute_throughput(m, n, k, factor):
    gemm = GEMM(name="g", m=m, n=n, k=k)
    base = GemmTimeModel(accelerator=A100).time(gemm, include_overhead=False)
    faster = GemmTimeModel(accelerator=A100.with_compute_scale(factor)).time(gemm, include_overhead=False)
    assert faster <= base + 1e-12


@settings(max_examples=40, deadline=None)
@given(m=gemm_dims, n=gemm_dims, k=gemm_dims)
def test_gemm_flops_conserved_under_tensor_parallel_split(m, n, k):
    """Splitting the N dimension over t ranks conserves total FLOPs."""
    t = 4
    n_padded = max(t, (n // t) * t)
    full = GEMM(name="g", m=m, n=n_padded, k=k)
    shard = GEMM(name="g", m=m, n=n_padded // t, k=k)
    assert t * shard.flops == pytest.approx(full.flops)


@settings(max_examples=60, deadline=None)
@given(m=gemm_dims, n=gemm_dims, k=gemm_dims, capacity=st.floats(min_value=1e5, max_value=1e9))
def test_tiled_traffic_never_below_compulsory(m, n, k, capacity):
    gemm = GEMM(name="g", m=m, n=n, k=k)
    assert traffic_through_level(gemm, capacity) >= compulsory_traffic(gemm) - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    flops=st.floats(min_value=1.0, max_value=1e15),
    data=positive_bytes,
    throughput=st.floats(min_value=1e9, max_value=1e16),
    bandwidth=bandwidths,
)
def test_roofline_time_bounds(flops, data, throughput, bandwidth):
    time = roofline_time(flops, data, throughput, bandwidth)
    assert time >= flops / throughput - 1e-18
    assert time >= data / bandwidth - 1e-18
    assert time <= flops / throughput + data / bandwidth + 1e-18


@settings(max_examples=40, deadline=None)
@given(compute=st.floats(min_value=1e-9, max_value=1.0), memory=st.floats(min_value=1e-9, max_value=1.0))
def test_classification_is_exhaustive_and_consistent(compute, memory):
    point = classify("k", flops=1.0, compute_time=compute, level_times={"DRAM": memory})
    if compute >= memory:
        assert point.bound is BoundType.COMPUTE
    else:
        assert point.bound is BoundType.MEMORY
    assert point.time == pytest.approx(max(compute, memory))


# -- collective properties -----------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(data=positive_bytes, group=group_sizes, bandwidth=bandwidths, latency=latencies)
def test_tree_never_slower_than_ring(data, group, bandwidth, latency):
    ring = ring_all_reduce_time(data, group, bandwidth, latency)
    tree = tree_all_reduce_time(data, group, bandwidth, latency)
    assert tree <= ring + 1e-15


@settings(max_examples=60, deadline=None)
@given(data=positive_bytes, group=group_sizes, bandwidth=bandwidths, latency=latencies)
def test_all_reduce_monotonic_in_volume_and_bandwidth(data, group, bandwidth, latency):
    base = ring_all_reduce_time(data, group, bandwidth, latency)
    assert ring_all_reduce_time(2 * data, group, bandwidth, latency) >= base
    assert ring_all_reduce_time(data, group, 2 * bandwidth, latency) <= base


@settings(max_examples=60, deadline=None)
@given(data=positive_bytes, group=group_sizes, bandwidth=bandwidths)
def test_all_reduce_bandwidth_term_bounded_by_2k_over_bw(data, group, bandwidth):
    """The ring's transfer term never exceeds 2K/BW (it is bandwidth optimal)."""
    time = ring_all_reduce_time(data, group, bandwidth, 0.0)
    assert time <= 2 * data / bandwidth + 1e-15


# -- memory-model properties ------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    hidden_multiple=st.integers(min_value=1, max_value=4),
    heads=st.integers(min_value=1, max_value=16),
    seq=st.integers(min_value=16, max_value=2048),
    micro_batch=st.integers(min_value=1, max_value=8),
)
def test_recompute_strategy_ordering_holds_everywhere(hidden_multiple, heads, seq, micro_batch):
    model = _small_model(hidden_multiple, layers=4, heads=heads)
    activations = ActivationModel(model=model, micro_batch=micro_batch, seq_len=seq)
    none = activations.activation_bytes(4, RecomputeStrategy.NONE)
    selective = activations.activation_bytes(4, RecomputeStrategy.SELECTIVE)
    full = activations.activation_bytes(4, RecomputeStrategy.FULL)
    # Recomputation never stores more than keeping everything, and the bytes
    # that *persist* across the pipeline shrink monotonically none -> selective
    # -> full.  (The *total* of full recomputation also carries the transient
    # working set of the segment being replayed, which for very small layer
    # counts can exceed selective's savings, so the totals are only compared
    # against the no-recomputation baseline.)
    assert none >= selective > 0
    assert none >= full > 0
    assert (
        activations.stored_activation_bytes(4, RecomputeStrategy.FULL)
        <= activations.stored_activation_bytes(4, RecomputeStrategy.SELECTIVE)
        <= activations.stored_activation_bytes(4, RecomputeStrategy.NONE)
    )


@settings(max_examples=30, deadline=None)
@given(
    heads=st.integers(min_value=1, max_value=16),
    seq=st.integers(min_value=16, max_value=1024),
    tp=st.sampled_from([1, 2, 4, 8]),
)
def test_sequence_parallel_never_increases_activation_memory(heads, seq, tp):
    heads = max(heads, tp)
    heads = (heads // tp) * tp
    model = _small_model(1, layers=2, heads=heads)
    base = ActivationModel(model=model, micro_batch=1, seq_len=seq, tensor_parallel=tp, sequence_parallel=False)
    sp = ActivationModel(model=model, micro_batch=1, seq_len=seq, tensor_parallel=tp, sequence_parallel=True)
    assert sp.total_activation_bytes_per_layer() <= base.total_activation_bytes_per_layer() + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=64),
    context=st.integers(min_value=1, max_value=8192),
    tp=st.sampled_from([1, 2, 4, 8]),
)
def test_kv_cache_linear_in_batch_and_context(batch, context, tp):
    model = _small_model(1, layers=4, heads=8)
    base = kv_cache_bytes(model, batch, context, tensor_parallel=tp)
    assert kv_cache_bytes(model, 2 * batch, context, tensor_parallel=tp) == pytest.approx(2 * base)
    assert kv_cache_bytes(model, batch, 2 * context, tensor_parallel=tp) == pytest.approx(2 * base)
    assert base * tp == pytest.approx(kv_cache_bytes(model, batch, context, tensor_parallel=1))


# -- layer-builder properties --------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    seq=st.integers(min_value=8, max_value=512),
    micro_batch=st.integers(min_value=1, max_value=4),
    tp=st.sampled_from([1, 2, 4, 8]),
)
def test_layer_flops_shrink_with_tensor_parallelism(seq, micro_batch, tp):
    model = _small_model(1, layers=2, heads=8)
    full = TransformerLayerBuilder(
        LayerExecutionSpec(model=model, micro_batch=micro_batch, seq_len=seq, tensor_parallel=1)
    )
    shard = TransformerLayerBuilder(
        LayerExecutionSpec(model=model, micro_batch=micro_batch, seq_len=seq, tensor_parallel=tp)
    )
    full_flops = sum(g.flops for g in full.forward_gemms())
    shard_flops = sum(g.flops for g in shard.forward_gemms())
    assert shard_flops == pytest.approx(full_flops / tp, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(seq=st.integers(min_value=8, max_value=512), tp=st.sampled_from([2, 4, 8]))
def test_tp_collective_volume_independent_of_tp_degree(seq, tp):
    """The Megatron all-reduce payload is the full hidden state regardless of the TP degree."""
    model = _small_model(1, layers=2, heads=8)
    builder = TransformerLayerBuilder(
        LayerExecutionSpec(model=model, micro_batch=1, seq_len=seq, tensor_parallel=tp)
    )
    payloads = [op.data_bytes for op in builder.forward_communication()]
    expected = seq * model.hidden_size * Precision.FP16.bytes_per_element
    assert payloads
    for payload in payloads:
        assert payload == pytest.approx(expected)


@settings(max_examples=20, deadline=None)
@given(kv_len=st.integers(min_value=1, max_value=4096))
def test_decode_gemm_time_monotonic_in_kv_length(kv_len):
    model = _small_model(1, layers=2, heads=8)
    short_spec = LayerExecutionSpec(
        model=model, micro_batch=1, seq_len=1, kv_len=kv_len, with_dropout=False, use_kv_cache=True
    )
    long_spec = LayerExecutionSpec(
        model=model, micro_batch=1, seq_len=1, kv_len=2 * kv_len, with_dropout=False, use_kv_cache=True
    )
    short_time = sum(GEMM_MODEL.time(g) for g in TransformerLayerBuilder(short_spec).forward_gemms())
    long_time = sum(GEMM_MODEL.time(g) for g in TransformerLayerBuilder(long_spec).forward_gemms())
    assert long_time >= short_time - 1e-12
