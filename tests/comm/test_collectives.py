"""Tests for the collective cost equations (Eqs. 3 and 4)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.comm.collectives import (
    CollectiveAlgorithm,
    all_gather_time,
    all_reduce_time,
    broadcast_time,
    point_to_point_time,
    reduce_scatter_time,
    ring_all_reduce_time,
    tree_all_reduce_time,
)

GB = 1e9


def test_ring_all_reduce_matches_equation_3():
    data, group, bandwidth, latency = 1 * GB, 8, 100 * GB, 5e-6
    expected = 2 * data * (group - 1) / (group * bandwidth) + 2 * latency * (group - 1)
    assert ring_all_reduce_time(data, group, bandwidth, latency) == pytest.approx(expected)


def test_tree_all_reduce_matches_equation_4():
    data, group, bandwidth, latency = 1 * GB, 8, 100 * GB, 5e-6
    expected = 2 * data * (group - 1) / (group * bandwidth) + 2 * latency * math.log2(group)
    assert tree_all_reduce_time(data, group, bandwidth, latency) == pytest.approx(expected)


def test_single_device_or_empty_payload_is_free():
    assert ring_all_reduce_time(1 * GB, 1, 100 * GB, 1e-6) == 0.0
    assert tree_all_reduce_time(0.0, 8, 100 * GB, 1e-6) == 0.0
    assert all_gather_time(0.0, 8, 100 * GB) == 0.0


def test_ring_bandwidth_term_independent_of_group_size():
    """The ring's bandwidth term approaches 2K/BW regardless of N (bandwidth optimal)."""
    data, bandwidth = 10 * GB, 100 * GB
    small = ring_all_reduce_time(data, 4, bandwidth, 0.0)
    large = ring_all_reduce_time(data, 64, bandwidth, 0.0)
    assert small == pytest.approx(2 * data * 3 / (4 * bandwidth))
    assert large < 2 * data / bandwidth
    assert large > small


def test_tree_beats_ring_for_small_latency_bound_messages():
    data, group, bandwidth, latency = 10e3, 8, 100 * GB, 5e-6
    assert tree_all_reduce_time(data, group, bandwidth, latency) < ring_all_reduce_time(data, group, bandwidth, latency)


def test_tree_equals_ring_for_huge_messages():
    data, group, bandwidth = 100 * GB, 8, 100 * GB
    ring = ring_all_reduce_time(data, group, bandwidth, 5e-6)
    tree = tree_all_reduce_time(data, group, bandwidth, 5e-6)
    assert tree == pytest.approx(ring, rel=1e-4)


def test_all_reduce_dispatch():
    data, group, bandwidth, latency = 1 * GB, 8, 100 * GB, 5e-6
    assert all_reduce_time(data, group, bandwidth, latency, CollectiveAlgorithm.RING) == pytest.approx(
        ring_all_reduce_time(data, group, bandwidth, latency)
    )
    assert all_reduce_time(data, group, bandwidth, latency, CollectiveAlgorithm.DOUBLE_BINARY_TREE) == pytest.approx(
        tree_all_reduce_time(data, group, bandwidth, latency)
    )


def test_all_gather_and_reduce_scatter_are_half_an_all_reduce():
    data, group, bandwidth = 1 * GB, 8, 100 * GB
    gather = all_gather_time(data, group, bandwidth, 0.0)
    scatter = reduce_scatter_time(data, group, bandwidth, 0.0)
    assert gather == pytest.approx(scatter)
    assert gather == pytest.approx(ring_all_reduce_time(data, group, bandwidth, 0.0) / 2)


def test_point_to_point_and_broadcast():
    assert point_to_point_time(1 * GB, 100 * GB, 1e-6) == pytest.approx(0.01 + 1e-6)
    assert point_to_point_time(0.0, 100 * GB, 1e-6) == 0.0
    assert broadcast_time(1 * GB, 8, 100 * GB, 1e-6) == pytest.approx(0.01 + 3e-6)


def test_time_decreases_with_bandwidth_and_increases_with_volume():
    base = ring_all_reduce_time(1 * GB, 8, 100 * GB, 1e-6)
    assert ring_all_reduce_time(1 * GB, 8, 200 * GB, 1e-6) < base
    assert ring_all_reduce_time(2 * GB, 8, 100 * GB, 1e-6) > base


def test_validation():
    with pytest.raises(ConfigurationError):
        ring_all_reduce_time(-1, 8, 100 * GB)
    with pytest.raises(ConfigurationError):
        ring_all_reduce_time(1, 0, 100 * GB)
    with pytest.raises(ConfigurationError):
        ring_all_reduce_time(1, 8, 0)
    with pytest.raises(ConfigurationError):
        tree_all_reduce_time(1, 8, 100 * GB, latency=-1)


# -- algorithm selection and the small-message (decode all-reduce) regime ---------------


def test_all_reduce_defaults_to_ring():
    data, group, bandwidth, latency = 64e3, 8, 100 * GB, 5e-6
    assert all_reduce_time(data, group, bandwidth, latency) == pytest.approx(
        ring_all_reduce_time(data, group, bandwidth, latency)
    )


def test_inference_collective_model_defaults_to_tree():
    """The inference path must pick the latency-optimal tree algorithm."""
    from repro.core.inference import InferencePerformanceModel
    from repro.core.stepcost import StepCostModel
    from repro.hardware.cluster import build_system

    system = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
    assert InferencePerformanceModel(system=system).collective_model.algorithm is CollectiveAlgorithm.DOUBLE_BINARY_TREE
    assert StepCostModel(system=system).collective_model.algorithm is CollectiveAlgorithm.DOUBLE_BINARY_TREE


def test_collective_model_with_algorithm_switch():
    from repro.comm.fabric import CollectiveModel
    from repro.hardware.cluster import build_system

    system = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
    ring = CollectiveModel(system=system, algorithm=CollectiveAlgorithm.RING)
    tree = ring.with_algorithm(CollectiveAlgorithm.DOUBLE_BINARY_TREE)
    assert ring.algorithm is CollectiveAlgorithm.RING
    assert tree.algorithm is CollectiveAlgorithm.DOUBLE_BINARY_TREE
    # A decode-sized (kilobyte) all-reduce is cheaper under the tree.
    assert tree.all_reduce(10e3, group_size=8) < ring.all_reduce(10e3, group_size=8)
    # A gradient-sized all-reduce is bandwidth dominated: both nearly equal
    # (the gap is the fixed latency-term difference, well under 1%).
    assert tree.all_reduce(1 * GB, group_size=8) == pytest.approx(ring.all_reduce(1 * GB, group_size=8), rel=1e-2)


def test_small_message_gap_is_exactly_the_latency_terms():
    """In the latency regime the ring/tree gap is 2*l*((N-1) - log2(N))."""
    data, group, bandwidth, latency = 1e3, 16, 100 * GB, 5e-6
    ring = ring_all_reduce_time(data, group, bandwidth, latency)
    tree = tree_all_reduce_time(data, group, bandwidth, latency)
    assert ring - tree == pytest.approx(2 * latency * ((group - 1) - math.log2(group)))


def test_tree_advantage_grows_with_group_size():
    data, bandwidth, latency = 1e3, 100 * GB, 5e-6
    gaps = [
        ring_all_reduce_time(data, group, bandwidth, latency) - tree_all_reduce_time(data, group, bandwidth, latency)
        for group in (2, 4, 8, 16, 32)
    ]
    assert gaps == sorted(gaps)
    assert gaps[0] == pytest.approx(0.0)  # N=2: N-1 == log2(N), no advantage yet


def test_zero_latency_makes_algorithms_identical():
    data, group, bandwidth = 1e3, 8, 100 * GB
    assert ring_all_reduce_time(data, group, bandwidth, 0.0) == tree_all_reduce_time(data, group, bandwidth, 0.0)


def test_latency_floor_for_tiny_payloads():
    """A one-byte all-reduce still pays the full latency terms."""
    group, bandwidth, latency = 8, 100 * GB, 5e-6
    ring = ring_all_reduce_time(1.0, group, bandwidth, latency)
    tree = tree_all_reduce_time(1.0, group, bandwidth, latency)
    assert ring >= 2 * latency * (group - 1)
    assert tree >= 2 * latency * math.log2(group)
    # ... but a zero-byte collective is trivially free (no message at all).
    assert ring_all_reduce_time(0.0, group, bandwidth, latency) == 0.0
