"""Batched collective pricing: bit-for-bit scalar equivalence and interning."""

import pytest

from repro.comm.collectives import CollectiveAlgorithm
from repro.comm.fabric import (
    CollectiveBatch,
    CollectiveModel,
    clear_collective_model_cache,
    shared_collective_model,
)
from repro.hardware.cluster import build_system
from repro.units import MIB
from repro.workload.operators import CollectiveKind, CommunicationOp

ALL_KINDS = [
    CollectiveKind.ALL_REDUCE,
    CollectiveKind.ALL_GATHER,
    CollectiveKind.REDUCE_SCATTER,
    CollectiveKind.BROADCAST,
    CollectiveKind.POINT_TO_POINT,
]


@pytest.fixture
def system():
    return build_system("A100", num_devices=16, intra_node="NVLink3", inter_node="HDR-IB")


def _op_zoo():
    """A mixed batch covering every kind, scope, and the trivial corners."""
    ops = []
    for kind in ALL_KINDS:
        for scope in ("intra_node", "inter_node"):
            for group in (2, 4, 8):
                for data_bytes in (512.0, 64 * 1024.0, 4 * MIB, 64 * MIB):
                    ops.append(
                        CommunicationOp(
                            name=f"{kind.value}-{scope}-{group}",
                            collective=kind,
                            data_bytes=data_bytes,
                            group_size=group,
                            scope=scope,
                        )
                    )
    # Trivial rows: empty payload and singleton group.
    ops.append(CommunicationOp(name="empty", collective=CollectiveKind.ALL_REDUCE, data_bytes=0.0, group_size=8))
    ops.append(CommunicationOp(name="solo", collective=CollectiveKind.ALL_REDUCE, data_bytes=4 * MIB, group_size=1))
    return ops


@pytest.mark.parametrize("algorithm", list(CollectiveAlgorithm))
def test_evaluate_batch_matches_scalar_exactly(system, algorithm):
    ops = _op_zoo()
    batched_model = CollectiveModel(system=system, algorithm=algorithm)
    scalar_model = CollectiveModel(system=system, algorithm=algorithm)
    times = batched_model.evaluate_batch(CollectiveBatch.from_ops(ops)).tolist()
    for op, batched_time in zip(ops, times):
        assert batched_time == scalar_model.time(op), op


@pytest.mark.parametrize("algorithm", list(CollectiveAlgorithm))
def test_time_batch_matches_scalar_and_seeds_memo(system, algorithm):
    ops = _op_zoo()
    model = CollectiveModel(system=system, algorithm=algorithm)
    reference = CollectiveModel(system=system, algorithm=algorithm)
    times = model.time_batch(ops)
    assert times == [reference.time(op) for op in ops]
    # Non-trivial rows are now memoized; repeats come from the memo.
    for op in ops:
        if not op.is_trivial:
            assert model.memoized(op)
    assert model.time_batch(ops) == times


def test_time_batch_serves_memoized_rows(system):
    model = CollectiveModel(system=system)
    op = CommunicationOp(
        name="ar", collective=CollectiveKind.ALL_REDUCE, data_bytes=4 * MIB, group_size=8, scope="intra_node"
    )
    scalar = model.time(op)
    assert model.memoized(op)
    assert model.time_batch([op, op]) == [scalar, scalar]


def test_evaluate_batch_trivial_rows_are_zero(system):
    model = CollectiveModel(system=system)
    ops = [
        CommunicationOp(name="empty", collective=CollectiveKind.ALL_GATHER, data_bytes=0.0, group_size=8),
        CommunicationOp(name="solo", collective=CollectiveKind.BROADCAST, data_bytes=1 * MIB, group_size=1),
    ]
    assert model.evaluate_batch(CollectiveBatch.from_ops(ops)).tolist() == [0.0, 0.0]


def test_shared_model_interned_per_system_and_algorithm(system):
    clear_collective_model_cache()
    ring = shared_collective_model(system)
    assert shared_collective_model(system) is ring
    tree = shared_collective_model(system, CollectiveAlgorithm.DOUBLE_BINARY_TREE)
    assert tree is not ring
    assert tree.algorithm is CollectiveAlgorithm.DOUBLE_BINARY_TREE
    assert shared_collective_model(system, CollectiveAlgorithm.DOUBLE_BINARY_TREE) is tree


def test_shared_model_interns_equal_systems(system):
    clear_collective_model_cache()
    twin = build_system("A100", num_devices=16, intra_node="NVLink3", inter_node="HDR-IB")
    assert shared_collective_model(system) is shared_collective_model(twin)


def test_clear_collective_model_cache(system):
    clear_collective_model_cache()
    first = shared_collective_model(system)
    clear_collective_model_cache()
    assert shared_collective_model(system) is not first
