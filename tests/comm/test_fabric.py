"""Tests for the system-level collective model."""

import pytest

from repro.comm.collectives import CollectiveAlgorithm
from repro.comm.fabric import CollectiveModel
from repro.errors import ConfigurationError
from repro.hardware.cluster import build_system
from repro.workload.operators import CollectiveKind, CommunicationOp
from repro.units import MIB


@pytest.fixture
def system():
    return build_system("A100", num_devices=16, intra_node="NVLink3", inter_node="HDR-IB")


@pytest.fixture
def model(system):
    return CollectiveModel(system=system)


def _all_reduce(data_bytes, group=8, scope="intra_node"):
    return CommunicationOp(
        name="ar", collective=CollectiveKind.ALL_REDUCE, data_bytes=data_bytes, group_size=group, scope=scope
    )


def test_fabric_selection_by_scope(model):
    assert model.fabric_for_scope("intra_node").name == "NVLink3"
    assert model.fabric_for_scope("inter_node").name == "HDR-IB"


def test_node_level_fabric_bandwidth_is_shared(model, system):
    inter = model.fabric_for_scope("inter_node")
    intra = model.fabric_for_scope("intra_node")
    assert model.per_device_bandwidth(inter) == pytest.approx(inter.bandwidth / system.devices_per_node)
    assert model.per_device_bandwidth(intra) == pytest.approx(intra.bandwidth)


def test_message_size_utilization_ramp(model):
    assert model.bandwidth_utilization(64 * MIB) == pytest.approx(1.0)
    assert model.bandwidth_utilization(1024) == pytest.approx(model.min_utilization)
    mid = model.bandwidth_utilization(model.saturation_bytes / 2)
    assert model.min_utilization < mid < 1.0


def test_trivial_collectives_are_free(model):
    assert model.time(_all_reduce(0.0)) == 0.0
    assert model.time(_all_reduce(1024, group=1)) == 0.0


def test_software_latency_dominates_small_messages(model):
    small = model.time(_all_reduce(8 * 1024))
    assert small >= model.software_latency
    assert small < 10 * model.software_latency


def test_large_messages_scale_with_volume(model):
    one = model.time(_all_reduce(64 * MIB))
    two = model.time(_all_reduce(128 * MIB))
    assert two > 1.8 * one


def test_intra_node_faster_than_inter_node(model):
    payload = 64 * MIB
    assert model.time(_all_reduce(payload, scope="intra_node")) < model.time(_all_reduce(payload, scope="inter_node"))


def test_tree_algorithm_helps_small_messages(system):
    ring = CollectiveModel(system=system, algorithm=CollectiveAlgorithm.RING)
    tree = ring.with_algorithm(CollectiveAlgorithm.DOUBLE_BINARY_TREE)
    payload = _all_reduce(16 * 1024, group=8)
    assert tree.time(payload) < ring.time(payload)


def test_all_collective_kinds_priced(model):
    kinds = [
        CollectiveKind.ALL_REDUCE,
        CollectiveKind.ALL_GATHER,
        CollectiveKind.REDUCE_SCATTER,
        CollectiveKind.BROADCAST,
        CollectiveKind.POINT_TO_POINT,
    ]
    for kind in kinds:
        op = CommunicationOp(name="c", collective=kind, data_bytes=1 * MIB, group_size=8, scope="intra_node")
        assert model.time(op) > 0


def test_all_gather_cheaper_than_all_reduce(model):
    all_reduce = _all_reduce(64 * MIB)
    all_gather = CommunicationOp(
        name="ag", collective=CollectiveKind.ALL_GATHER, data_bytes=64 * MIB, group_size=8, scope="intra_node"
    )
    assert model.time(all_gather) < model.time(all_reduce)


def test_convenience_helpers(model):
    assert model.all_reduce(64 * MIB, group_size=8) > 0
    assert model.point_to_point(64 * MIB) > 0
    assert model.all_reduce(64 * MIB, group_size=1) == 0.0


def test_validation(system):
    with pytest.raises(ConfigurationError):
        CollectiveModel(system=system, saturation_bytes=0)
    with pytest.raises(ConfigurationError):
        CollectiveModel(system=system, min_utilization=0)
    with pytest.raises(ConfigurationError):
        CollectiveModel(system=system, software_latency=-1)
