"""Tests for the energy and TCO models (the performance-per-TCO extension)."""

import pytest

from repro.core.engine import PerformancePredictionEngine
from repro.cost.energy import EnergyModel
from repro.cost.tco import TCOModel
from repro.errors import ConfigurationError
from repro.hardware.cluster import build_system
from repro.parallelism.config import ParallelismConfig


@pytest.fixture(scope="module")
def a100_system():
    return build_system("A100", num_devices=64, intra_node="NVLink3", inter_node="HDR-IB")


@pytest.fixture(scope="module")
def h100_system():
    return build_system("H100", num_devices=64, intra_node="NVLink4", inter_node="NDR-IB")


@pytest.fixture(scope="module")
def training_report(a100_system):
    engine = PerformancePredictionEngine(a100_system)
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    return engine.predict_training("GPT-175B", config, global_batch_size=64, recompute="selective")


@pytest.fixture(scope="module")
def inference_report(a100_system):
    engine = PerformancePredictionEngine(a100_system)
    return engine.predict_inference("Llama2-13B", tensor_parallel=8)


def test_energy_model_validation(a100_system):
    with pytest.raises(ConfigurationError):
        EnergyModel(system=a100_system, compute_power_fraction=0.3, idle_power_fraction=0.5)
    with pytest.raises(ConfigurationError):
        EnergyModel(system=a100_system, pue=0.9)
    with pytest.raises(ConfigurationError):
        EnergyModel(system=a100_system, host_power_per_device=-1)


def test_training_step_energy_bounds(a100_system, training_report):
    energy_model = EnergyModel(system=a100_system)
    energy = energy_model.training_step_energy(training_report)
    # Bounded above by every device at full board power (plus host and PUE) for the whole step.
    upper = 64 * (400 + energy_model.host_power_per_device) * training_report.step_time * energy_model.pue
    lower = 64 * 400 * energy_model.idle_power_fraction * training_report.step_time
    assert lower < energy < upper


def test_training_energy_per_token_is_reasonable(a100_system, training_report):
    energy_model = EnergyModel(system=a100_system)
    per_token = energy_model.training_energy_per_token(training_report)
    # GPT-175B training costs on the order of a few joules per token on A100-class hardware.
    assert 0.5 < per_token < 100.0


def test_inference_energy_scales_with_tensor_parallel(a100_system):
    engine = PerformancePredictionEngine(a100_system)
    energy_model = EnergyModel(system=a100_system)
    one = energy_model.inference_request_energy(engine.predict_inference("Llama2-13B", tensor_parallel=1))
    eight = energy_model.inference_request_energy(engine.predict_inference("Llama2-13B", tensor_parallel=8))
    # Eight GPUs finish faster but burn more aggregate power; energy should not drop 8x.
    assert eight > one * 0.8


def test_to_kwh():
    assert EnergyModel.to_kwh(3.6e6) == pytest.approx(1.0)


def test_tco_validation(a100_system):
    with pytest.raises(ConfigurationError):
        TCOModel(system=a100_system, device_price=-1)
    with pytest.raises(ConfigurationError):
        TCOModel(system=a100_system, fleet_utilization=0)
    with pytest.raises(ConfigurationError):
        TCOModel(system=a100_system, amortization_years=0)


def test_tco_uses_catalog_price(a100_system, h100_system):
    a100_tco = TCOModel(system=a100_system)
    h100_tco = TCOModel(system=h100_system)
    assert a100_tco.device_price == pytest.approx(15_000.0)
    assert h100_tco.device_price > a100_tco.device_price
    assert a100_tco.capital_cost_per_device > a100_tco.device_price


def test_training_step_cost_components(a100_system, training_report):
    tco = TCOModel(system=a100_system)
    cost = tco.training_step_cost(training_report)
    capital_only = TCOModel(system=a100_system, electricity_cost_per_kwh=0.0).training_step_cost(training_report)
    assert cost > capital_only > 0
    # One ~14s step on 64 A100s should cost on the order of dollars, not cents or thousands.
    assert 0.2 < cost < 100.0


def test_gpt3_full_training_run_cost_order_of_magnitude(a100_system, training_report):
    """Training GPT-3 (300B tokens) lands within an order of magnitude of the paper's ~$10M quote.

    With owned hardware amortized over four years the model predicts roughly
    $0.5-1M; renting cloud GPUs at ~$2-3/GPU-hour (3-4x the amortized rate)
    and a lower achieved utilization recovers the often-quoted multi-million
    figure, so the acceptable band here spans both accounting styles.
    """
    tco = TCOModel(system=a100_system)
    total = tco.full_training_run_cost(training_report, total_training_tokens=300e9)
    assert 3e5 < total < 3e7
    cloud_like = TCOModel(system=a100_system, amortization_years=1.5, fleet_utilization=0.4)
    assert cloud_like.full_training_run_cost(training_report, total_training_tokens=300e9) > 1.5e6


def test_inference_cost_per_million_tokens(a100_system, inference_report):
    tco = TCOModel(system=a100_system)
    cost = tco.inference_cost_per_million_tokens(inference_report)
    # Serving Llama2-13B at batch 1 is expensive per token but within a sane range.
    assert 1.0 < cost < 500.0
    assert tco.inference_performance_per_dollar(inference_report) > 0


def test_newer_generation_improves_performance_per_dollar(a100_system, h100_system):
    """H100 costs twice as much but trains >3x faster, so tokens-per-dollar improves."""
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    a100_report = PerformancePredictionEngine(a100_system).predict_training("GPT-175B", config, global_batch_size=64)
    h100_report = PerformancePredictionEngine(h100_system).predict_training(
        "GPT-175B", config, global_batch_size=64, precision="fp8"
    )
    a100_tokens_per_dollar = TCOModel(system=a100_system).training_performance_per_dollar(a100_report)
    h100_tokens_per_dollar = TCOModel(system=h100_system).training_performance_per_dollar(h100_report)
    assert h100_tokens_per_dollar > a100_tokens_per_dollar


def test_tco_summary_keys(a100_system, training_report):
    summary = TCOModel(system=a100_system).summary(training_report)
    assert set(summary) == {
        "capital_per_device_usd",
        "step_cost_usd",
        "cost_per_million_tokens_usd",
        "tokens_per_usd",
        "step_energy_kwh",
    }
    assert summary["tokens_per_usd"] > 0
