"""Tests for the end-to-end inference performance model."""

import pytest

from repro.core.inference import InferencePerformanceModel
from repro.errors import ConfigurationError, MemoryCapacityError
from repro.hardware.datatypes import Precision
from repro.models.zoo import get_model


@pytest.fixture
def a100_inference(single_node_a100):
    return InferencePerformanceModel(system=single_node_a100)


@pytest.fixture
def h100_inference(h100_node):
    return InferencePerformanceModel(system=h100_node)


def test_report_structure(a100_inference, llama2_13b):
    report = a100_inference.predict(llama2_13b, tensor_parallel=1)
    assert report.total_latency > 0
    assert report.total_latency == pytest.approx(report.prefill.total_time + report.decode.total_time)
    assert report.prefill.kernel_breakdown and report.decode.kernel_breakdown
    assert report.memory.weight_bytes > 0
    assert report.tensor_parallel == 1
    assert report.total_latency_ms == pytest.approx(report.total_latency * 1000)


def test_llama13b_single_a100_matches_nvidia_within_band(a100_inference, llama2_13b):
    """Table 2: Llama2-13B on one A100 is 3884 ms; the prediction lands within 13%."""
    report = a100_inference.predict(llama2_13b, batch_size=1, prompt_tokens=200, generated_tokens=200, tensor_parallel=1)
    assert report.total_latency_ms == pytest.approx(3884, rel=0.13)


def test_decode_dominates_latency(a100_inference, llama2_13b):
    report = a100_inference.predict(llama2_13b, tensor_parallel=1)
    assert report.decode.total_time > 10 * report.prefill.total_time


def test_decode_is_memory_bound_prefill_can_be_compute_bound(a100_inference, llama2_13b):
    report = a100_inference.predict(llama2_13b, tensor_parallel=1)
    assert report.decode.memory_bound_time > report.decode.compute_bound_time
    assert report.prefill.compute_bound_fraction > 0.5  # A100 prefill is mostly compute bound


def test_h100_prefill_is_memory_bound(h100_inference, llama2_13b):
    report = h100_inference.predict(llama2_13b, tensor_parallel=1)
    assert report.prefill.compute_bound_fraction < 0.2


def test_h100_faster_than_a100(a100_inference, h100_inference, llama2_13b):
    a100 = a100_inference.predict(llama2_13b, tensor_parallel=1).total_latency
    h100 = h100_inference.predict(llama2_13b, tensor_parallel=1).total_latency
    assert h100 < a100
    # The gain tracks the DRAM bandwidth ratio (1.935 -> 3.35 TB/s), not the compute ratio.
    assert a100 / h100 < 2.2


def test_inference_scales_poorly_with_gpus(a100_inference, llama2_13b):
    """Strong scaling from 1 to 8 GPUs is far from linear (paper Section 4.3)."""
    one = a100_inference.predict(llama2_13b, tensor_parallel=1).total_latency
    eight = a100_inference.predict(llama2_13b, tensor_parallel=8).total_latency
    assert eight < one
    assert one / eight < 4.0


def test_communication_grows_with_tensor_parallelism(a100_inference, llama2_13b):
    two = a100_inference.predict(llama2_13b, tensor_parallel=2)
    eight = a100_inference.predict(llama2_13b, tensor_parallel=8)
    assert eight.communication_time > two.communication_time
    assert two.communication_time > 0


def test_eight_gpu_communication_exceeds_memory_time(a100_inference, llama2_13b):
    """Paper Section 6.2: at 8 GPUs the communication time is comparable to
    (roughly 1.6x) the memory time for Llama2-13B."""
    report = a100_inference.predict(llama2_13b, tensor_parallel=8)
    ratio = report.decode.communication_time / report.decode.device_time
    assert 0.8 < ratio < 2.5


def test_batch_size_increases_throughput_with_modest_latency_growth(a100_inference, llama2_13b):
    single = a100_inference.predict(llama2_13b, batch_size=1, tensor_parallel=1)
    batched = a100_inference.predict(llama2_13b, batch_size=16, tensor_parallel=1)
    assert batched.total_latency < 3 * single.total_latency
    assert batched.throughput_tokens_per_second() > 5 * single.throughput_tokens_per_second()


def test_generated_tokens_scale_decode_time(a100_inference, llama2_13b):
    short = a100_inference.predict(llama2_13b, generated_tokens=100, tensor_parallel=1)
    long = a100_inference.predict(llama2_13b, generated_tokens=400, tensor_parallel=1)
    assert long.decode.total_time > 3.5 * short.decode.total_time
    assert long.time_per_output_token == pytest.approx(short.time_per_output_token, rel=0.25)


def test_memory_capacity_check(a100_inference):
    llama70 = get_model("Llama2-70B")
    with pytest.raises(MemoryCapacityError):
        a100_inference.predict(llama70, tensor_parallel=1)
    report = a100_inference.predict(llama70, tensor_parallel=2)
    assert report.total_latency > 0


def test_memory_check_can_be_disabled(single_node_a100):
    model = InferencePerformanceModel(system=single_node_a100, check_memory=False)
    report = model.predict(get_model("Llama2-70B"), tensor_parallel=1)
    assert report.total_latency > 0


def test_fp8_reduces_latency(h100_inference, llama2_13b):
    fp16 = h100_inference.predict(llama2_13b, tensor_parallel=1, precision=Precision.FP16)
    fp8 = h100_inference.predict(llama2_13b, tensor_parallel=1, precision=Precision.FP8)
    assert fp8.total_latency < fp16.total_latency * 0.7


def test_breakdown_dict(a100_inference, llama2_13b):
    report = a100_inference.predict(llama2_13b, tensor_parallel=2)
    breakdown = report.breakdown()
    assert breakdown["total"] == pytest.approx(report.total_latency)
    assert breakdown["memory"] + breakdown["communication"] == pytest.approx(report.total_latency)


# -- exact decode pricing -------------------------------------------------------------


def test_exact_decode_equals_average_for_one_token(a100_inference, llama2_13b):
    """With one generated token the exact and average KV lengths coincide exactly."""
    average = a100_inference.predict(llama2_13b, generated_tokens=1, tensor_parallel=1)
    exact = a100_inference.predict(llama2_13b, generated_tokens=1, tensor_parallel=1, decode_mode="exact")
    assert exact == average


def test_exact_decode_close_to_average_for_long_generation(a100_inference, llama2_13b):
    """Per-token attention cost is near-linear in KV length, so the mid-point closed form tracks the exact sum."""
    average = a100_inference.predict(llama2_13b, generated_tokens=200, tensor_parallel=1)
    exact = a100_inference.predict(llama2_13b, generated_tokens=200, tensor_parallel=1, decode_mode="exact")
    assert exact.decode.total_time == pytest.approx(average.decode.total_time, rel=0.02)
    assert exact.decode.total_time != average.decode.total_time  # genuinely different pricing
    assert exact.prefill == average.prefill  # prefill is untouched by the decode mode


def test_exact_decode_breakdown_is_consistent(a100_inference, llama2_13b):
    report = a100_inference.predict(llama2_13b, generated_tokens=64, tensor_parallel=1, decode_mode="exact")
    decode = report.decode
    assert sum(entry.total_time for entry in decode.kernel_breakdown) == pytest.approx(decode.device_time)
    assert decode.memory_bound_time > decode.compute_bound_time  # decode stays memory bound
    names = {entry.name for entry in decode.kernel_breakdown}
    assert {"attention_scores", "attention_context", "lm_head"}.issubset(names)


def test_exact_decode_with_zero_generated_tokens(a100_inference, llama2_13b):
    report = a100_inference.predict(llama2_13b, generated_tokens=0, tensor_parallel=1, decode_mode="exact")
    assert report.decode.total_time == 0.0
    assert report.decode.kernel_breakdown == []


def test_decode_mode_model_default(single_node_a100, llama2_13b):
    model = InferencePerformanceModel(system=single_node_a100, decode_mode="exact")
    default_exact = model.predict(llama2_13b, generated_tokens=32, tensor_parallel=1)
    explicit_exact = model.predict(llama2_13b, generated_tokens=32, tensor_parallel=1, decode_mode="exact")
    assert default_exact == explicit_exact


def test_invalid_decode_mode_rejected(single_node_a100, a100_inference, llama2_13b):
    with pytest.raises(ConfigurationError):
        InferencePerformanceModel(system=single_node_a100, decode_mode="median")
    with pytest.raises(ConfigurationError):
        a100_inference.predict(llama2_13b, decode_mode="median")
