"""Golden regression test: `InferenceReport` outputs are pinned bit-for-bit.

The fixture ``golden_inference_reports.json`` was generated from the scalar
per-phase pricing path *before* the step-cost refactor (PR 3).  JSON floats
round-trip exactly (``repr`` emits the shortest exact representation), so
``==`` comparisons below prove the refactored pipeline reproduces the
pre-refactor numbers bit-identically -- every phase total, every kernel
breakdown entry, and the memory breakdown, for both decode modes.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import PerformancePredictionEngine, build_system
from repro.core.reports import InferenceReport

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_inference_reports.json"

with GOLDEN_PATH.open() as fh:
    GOLDEN_CASES = json.load(fh)


def _case_id(entry) -> str:
    case = entry["case"]
    return f"{case['model']}-{case['gpu']}x{case['tensor_parallel']}-{case['decode_mode']}"


@pytest.mark.parametrize("entry", GOLDEN_CASES, ids=_case_id)
def test_inference_report_matches_golden_bit_for_bit(entry):
    case = entry["case"]
    system = build_system(
        case["gpu"],
        num_devices=case["num_devices"],
        intra_node="NVLink3" if case["gpu"] == "A100" else "NVLink4",
        inter_node="HDR-IB",
    )
    engine = PerformancePredictionEngine(system)
    report = engine.predict_inference(
        case["model"],
        batch_size=case["batch_size"],
        prompt_tokens=case["prompt_tokens"],
        generated_tokens=case["generated_tokens"],
        tensor_parallel=case["tensor_parallel"],
        precision=case["precision"],
        decode_mode=case["decode_mode"],
    )
    expected = entry["report"]
    actual = report.to_dict()

    # Phase scalars first, for a readable failure before the full-dict check.
    for phase in ("prefill", "decode"):
        for field in ("device_time", "communication_time", "compute_bound_time", "memory_bound_time"):
            assert actual[phase][field] == expected[phase][field], (phase, field)
        assert len(actual[phase]["kernel_breakdown"]) == len(expected[phase]["kernel_breakdown"])
        for got, want in zip(actual[phase]["kernel_breakdown"], expected[phase]["kernel_breakdown"]):
            assert got == want, (phase, want["name"])
    assert actual == expected


@pytest.mark.parametrize("entry", GOLDEN_CASES, ids=_case_id)
def test_golden_fixture_round_trips_through_report_json(entry):
    report = InferenceReport.from_dict(entry["report"])
    assert report.to_dict() == entry["report"]
