"""Tests for the per-GEMM bottleneck analysis (Table 4 / Figs. 7-8 machinery)."""

import pytest

from repro.core.bottleneck import (
    attention_layer_bound_breakdown,
    decode_gemm_table,
    gemm_time_by_bound,
    prefill_gemm_table,
)
from repro.hardware.uarch import derive_device


EXPECTED_GEMM_NAMES = {
    "qkv_projection",
    "attention_scores",
    "attention_context",
    "attention_output",
    "mlp_h_to_4h",
    "mlp_4h_to_h",
}


def test_prefill_table_contains_all_paper_gemms(a100, llama2_13b):
    entries = prefill_gemm_table(llama2_13b, a100, prompt_tokens=200)
    names = {entry.name for entry in entries}
    assert EXPECTED_GEMM_NAMES.issubset(names)
    assert all(entry.time > 0 for entry in entries)


def test_prefill_a100_mostly_compute_bound_h100_memory_bound(a100, h100, llama2_13b):
    """Table 4's headline: A100 prefill GEMMs are largely compute bound, H100's are all memory bound."""
    a100_entries = prefill_gemm_table(llama2_13b, a100, prompt_tokens=200)
    h100_entries = prefill_gemm_table(llama2_13b, h100, prompt_tokens=200)
    a100_by_name = {e.name: e for e in a100_entries}
    assert a100_by_name["mlp_h_to_4h"].bound_label == "compute"
    assert a100_by_name["qkv_projection"].bound_label == "compute"
    assert a100_by_name["attention_scores"].bound_label == "memory"
    assert a100_by_name["attention_context"].bound_label == "memory"
    assert all(e.bound_label == "memory" for e in h100_entries)


def test_prefill_attention_gemms_are_fastest(a100, llama2_13b):
    entries = {e.name: e for e in prefill_gemm_table(llama2_13b, a100, prompt_tokens=200)}
    assert entries["attention_scores"].time < entries["mlp_h_to_4h"].time
    assert entries["attention_scores"].time < entries["qkv_projection"].time


def test_prefill_times_are_microsecond_scale(a100, llama2_13b):
    entries = prefill_gemm_table(llama2_13b, a100, prompt_tokens=200)
    for entry in entries:
        assert 0.1 < entry.time_us < 2000


def test_decode_table_all_memory_bound(a100, llama2_13b):
    entries = decode_gemm_table(llama2_13b, a100, kv_len=300)
    assert all(entry.bound_label == "memory" for entry in entries)
    assert all(entry.m == 1 or entry.name == "qkv_projection" for entry in entries)


def test_gemm_time_by_bound_totals(a100, llama2_13b):
    entries = prefill_gemm_table(llama2_13b, a100, prompt_tokens=200)
    totals = gemm_time_by_bound(entries)
    assert totals["total"] == pytest.approx(totals["compute"] + totals["memory"])
    assert 0 <= totals["compute_fraction"] <= 1


def test_batch16_increases_compute_bound_fraction_on_h100(h100, llama2_13b):
    """Fig. 8: on the H100, batch 1 prefill is fully memory bound while batch 16 is mostly compute bound."""
    b1 = gemm_time_by_bound(prefill_gemm_table(llama2_13b, h100, batch_size=1, prompt_tokens=200))
    b16 = gemm_time_by_bound(prefill_gemm_table(llama2_13b, h100, batch_size=16, prompt_tokens=200))
    assert b1["compute_fraction"] < 0.1
    assert b16["compute_fraction"] > 0.6


def test_tensor_parallel_shrinks_gemm_times(a100, llama2_13b):
    single = {e.name: e.time for e in prefill_gemm_table(llama2_13b, a100, tensor_parallel=1)}
    sharded = {e.name: e.time for e in prefill_gemm_table(llama2_13b, a100, tensor_parallel=4)}
    assert sharded["mlp_h_to_4h"] < single["mlp_h_to_4h"]


def test_attention_layer_bound_breakdown_shifts_with_technology(gpt_175b):
    """Fig. 7: advancing the logic node while keeping HBM2 turns compute-bound GEMM time into memory-bound time."""
    old_node = derive_device("N12", dram="HBM2")
    new_node = derive_device("N1", dram="HBM2")
    old = attention_layer_bound_breakdown(gpt_175b, old_node, micro_batch=1, seq_len=2048, tensor_parallel=8)
    new = attention_layer_bound_breakdown(gpt_175b, new_node, micro_batch=1, seq_len=2048, tensor_parallel=8)
    old_memory_fraction = old["memory_bound"] / old["total"]
    new_memory_fraction = new["memory_bound"] / new["total"]
    assert new_memory_fraction > old_memory_fraction
    assert new["total"] < old["total"]
