"""Tests for the report dataclasses."""

import pytest

from repro.core.reports import (
    GemmBottleneckEntry,
    KernelTimeEntry,
    PhaseReport,
    aggregate_kernel_entries,
)
from repro.perf.roofline import BoundType


def _entry(name="k", time=1e-3, count=2, bound=BoundType.COMPUTE):
    return KernelTimeEntry(name=name, time=time, count=count, bound=bound, flops=1e9, bytes_moved=1e6)


def test_kernel_entry_total_time_and_bound():
    entry = _entry(time=2e-3, count=3)
    assert entry.total_time == pytest.approx(6e-3)
    assert entry.is_compute_bound
    assert not _entry(bound=BoundType.MEMORY).is_compute_bound


def test_aggregate_kernel_entries_merges_counts():
    merged = aggregate_kernel_entries([_entry(count=2), _entry(count=3), _entry(name="other", count=1)])
    assert merged["k"].count == 5
    assert merged["other"].count == 1


def test_phase_report_totals_and_fraction():
    phase = PhaseReport(
        name="prefill",
        device_time=0.8,
        communication_time=0.2,
        compute_bound_time=0.6,
        memory_bound_time=0.2,
    )
    assert phase.total_time == pytest.approx(1.0)
    assert phase.compute_bound_fraction == pytest.approx(0.75)
    empty = PhaseReport(name="x", device_time=0, communication_time=0, compute_bound_time=0, memory_bound_time=0)
    assert empty.compute_bound_fraction == 0.0


def test_gemm_bottleneck_entry_labels():
    compute = GemmBottleneckEntry(name="g", time=1e-4, bound=BoundType.COMPUTE, m=1, n=2, k=3)
    memory = GemmBottleneckEntry(name="g", time=1e-4, bound=BoundType.MEMORY, m=1, n=2, k=3)
    cache = GemmBottleneckEntry(name="g", time=1e-4, bound=BoundType.CACHE, m=1, n=2, k=3)
    assert compute.bound_label == "compute"
    assert memory.bound_label == "memory"
    assert cache.bound_label == "memory"
    assert compute.time_us == pytest.approx(100.0)
