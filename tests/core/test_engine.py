"""Tests for the PerformancePredictionEngine facade."""

import pytest

from repro.core.engine import PerformancePredictionEngine
from repro.parallelism.config import ParallelismConfig


@pytest.fixture
def engine(a100_cluster_64):
    return PerformancePredictionEngine(a100_cluster_64)


def test_training_accepts_model_names_and_configs(engine, gpt_175b):
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    by_name = engine.predict_training("GPT-175B", config, global_batch_size=64)
    by_config = engine.predict_training(gpt_175b, config, global_batch_size=64)
    assert by_name.step_time == pytest.approx(by_config.step_time)


def test_inference_accepts_model_names(engine):
    report = engine.predict_inference("Llama2-13B", tensor_parallel=8)
    assert report.model_name == "Llama2-13B"
    assert report.total_latency > 0


def test_training_memory_helper(engine):
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    breakdown = engine.training_memory("GPT-175B", config, global_batch_size=64, recompute="full")
    assert breakdown.total_bytes > 0
    assert breakdown.activation_bytes < breakdown.optimizer_bytes * 5


def test_inference_memory_helper(engine):
    breakdown = engine.inference_memory("Llama2-13B", batch_size=16, context_len=400)
    assert breakdown.kv_cache_bytes > 0
    assert breakdown.weight_bytes > breakdown.kv_cache_bytes


def test_bottleneck_helpers(engine):
    prefill = engine.prefill_bottlenecks("Llama2-13B", prompt_tokens=200)
    decode = engine.decode_bottlenecks("Llama2-13B", kv_len=300)
    assert {e.name for e in prefill} >= {"qkv_projection", "mlp_4h_to_h"}
    assert all(e.bound_label == "memory" for e in decode)


def test_engine_shares_kernel_model(engine):
    assert engine.training_model.kernel_model is engine.kernel_model
    assert engine.inference_model.kernel_model is engine.kernel_model


def test_engine_system_exposed(engine, a100_cluster_64):
    assert engine.system is a100_cluster_64


def test_engine_predict_serving_shares_step_cost_memos():
    from repro.hardware.cluster import build_system
    from repro.serving import LengthDistribution, ServingReport, ServingSLO, TraceConfig

    engine = PerformancePredictionEngine(build_system("A100", num_devices=2))
    trace = TraceConfig(
        rate=2.0,
        num_requests=6,
        prompt_lengths=LengthDistribution.uniform(32, 64),
        output_lengths=LengthDistribution.constant(8),
        seed=3,
    )
    report = engine.predict_serving("Llama2-7B", trace, tensor_parallel=2, slo=ServingSLO(ttft=5.0, tpot=1.0))
    assert isinstance(report, ServingReport)
    assert report.completed_requests == 6
    assert report.tensor_parallel == 2
    assert report.system_name == engine.system.name
    # The simulator prices steps through the engine's inference step-cost
    # layer, so the kernel memos are shared across both prediction paths.
    again = engine.predict_serving("Llama2-7B", trace, tensor_parallel=2, slo=ServingSLO(ttft=5.0, tpot=1.0))
    assert again.to_dict() == report.to_dict()
