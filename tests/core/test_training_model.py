"""Tests for the end-to-end training performance model."""

import pytest

from repro.core.training import TrainingPerformanceModel
from repro.hardware.cluster import build_system, preset_cluster
from repro.hardware.datatypes import Precision
from repro.parallelism.config import ParallelismConfig


@pytest.fixture
def model_64(a100_cluster_64):
    return TrainingPerformanceModel(system=a100_cluster_64)


@pytest.fixture
def config_88():
    return ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)


def test_report_structure(model_64, gpt_175b, config_88):
    report = model_64.predict(gpt_175b, config_88, global_batch_size=64, recompute="full")
    assert report.step_time > 0
    assert report.step_time == pytest.approx(
        report.compute_time
        + report.recompute_time
        + report.communication_time
        + report.other_time
    )
    assert report.communication_time == pytest.approx(
        report.tp_communication_time + report.pp_communication_time + report.dp_communication_time
    )
    assert report.other_time == pytest.approx(report.bubble_time + report.weight_update_time)
    assert report.kernel_breakdown
    assert report.memory.total_bytes > 0
    assert report.parallelism_label == "1-8-8-1"


def test_gpt175b_validation_row_within_paper_band(model_64, gpt_175b, config_88):
    """The GPT-175B / 64 A100 / full-recompute row of Table 1 lands within ~10% of 18.1 s."""
    report = model_64.predict(gpt_175b, config_88, global_batch_size=64, recompute="full")
    assert report.step_time == pytest.approx(18.1, rel=0.10)


def test_full_recompute_slower_than_selective(model_64, gpt_175b, config_88):
    full = model_64.predict(gpt_175b, config_88, global_batch_size=64, recompute="full")
    selective = model_64.predict(gpt_175b, config_88, global_batch_size=64, recompute="selective")
    none = model_64.predict(gpt_175b, config_88, global_batch_size=64, recompute="none")
    assert full.step_time > selective.step_time > none.step_time
    assert full.recompute_time > selective.recompute_time > none.recompute_time == 0.0


def test_throughput_scales_with_devices(gpt_175b):
    """Doubling the data-parallel width roughly doubles training throughput."""
    small = TrainingPerformanceModel(system=build_system("A100", num_devices=64))
    large = TrainingPerformanceModel(system=build_system("A100", num_devices=128))
    config_small = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    config_large = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, data_parallel=2, micro_batch_size=1)
    report_small = small.predict(gpt_175b, config_small, global_batch_size=64)
    report_large = large.predict(gpt_175b, config_large, global_batch_size=128)
    speedup = report_large.throughput_tokens_per_second() / report_small.throughput_tokens_per_second()
    assert 1.6 < speedup <= 2.05


def test_faster_accelerator_gives_faster_step(gpt_175b, config_88):
    a100 = TrainingPerformanceModel(system=build_system("A100", num_devices=64))
    h100 = TrainingPerformanceModel(system=build_system("H100", num_devices=64, intra_node="NVLink4", inter_node="NDR-IB"))
    a100_time = a100.predict(gpt_175b, config_88, global_batch_size=64).step_time
    h100_time = h100.predict(gpt_175b, config_88, global_batch_size=64).step_time
    assert h100_time < a100_time / 1.8


def test_fp8_training_faster_than_fp16_on_h100(gpt_175b, config_88):
    h100 = TrainingPerformanceModel(system=build_system("H100", num_devices=64, intra_node="NVLink4", inter_node="NDR-IB"))
    fp16 = h100.predict(gpt_175b, config_88, global_batch_size=64, precision=Precision.FP16)
    fp8 = h100.predict(gpt_175b, config_88, global_batch_size=64, precision=Precision.FP8)
    assert fp8.step_time < fp16.step_time


def test_more_microbatches_reduce_bubble_fraction(gpt_175b, model_64, config_88):
    small_batch = model_64.predict(gpt_175b, config_88, global_batch_size=16)
    large_batch = model_64.predict(gpt_175b, config_88, global_batch_size=128)
    small_fraction = small_batch.bubble_time / small_batch.step_time
    large_fraction = large_batch.bubble_time / large_batch.step_time
    assert large_fraction < small_fraction


def test_interleaved_schedule_reduces_bubble(gpt_175b, model_64):
    plain = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    interleaved = ParallelismConfig(
        tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1,
        pipeline_schedule="interleaved", virtual_pipeline_stages=4,
    )
    plain_report = model_64.predict(gpt_175b, plain, global_batch_size=64)
    interleaved_report = model_64.predict(gpt_175b, interleaved, global_batch_size=64)
    assert interleaved_report.bubble_time < plain_report.bubble_time


def test_dp_communication_present_only_with_dp(gpt_175b):
    system = build_system("A100", num_devices=128)
    trainer = TrainingPerformanceModel(system=system)
    no_dp = trainer.predict(gpt_175b, ParallelismConfig(tensor_parallel=8, pipeline_parallel=8), global_batch_size=64)
    with_dp = trainer.predict(
        gpt_175b,
        ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, data_parallel=2),
        global_batch_size=64,
    )
    assert no_dp.dp_communication_time == 0.0
    assert with_dp.dp_communication_time > 0.0


def test_sequence_parallelism_does_not_increase_step_time(gpt_175b, model_64):
    base = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    sp = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1, sequence_parallel=True)
    base_report = model_64.predict(gpt_175b, base, global_batch_size=64, recompute="selective")
    sp_report = model_64.predict(gpt_175b, sp, global_batch_size=64, recompute="selective")
    assert sp_report.step_time <= base_report.step_time * 1.05
    assert sp_report.memory.activation_bytes < base_report.memory.activation_bytes


def test_nvs_cluster_reduces_communication(gpt_175b):
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, data_parallel=2, micro_batch_size=1)
    hdr = TrainingPerformanceModel(system=preset_cluster("A100-HDR", num_devices=128))
    nvs = TrainingPerformanceModel(system=preset_cluster("H100-NVS", num_devices=128))
    hdr_report = hdr.predict(gpt_175b, config, global_batch_size=128)
    nvs_report = nvs.predict(gpt_175b, config, global_batch_size=128)
    assert nvs_report.dp_communication_time < hdr_report.dp_communication_time


def test_gemm_bound_breakdown(gpt_175b, model_64):
    breakdown = model_64.gemm_bound_breakdown(gpt_175b, ParallelismConfig(tensor_parallel=8))
    assert breakdown["compute_bound"] > 0
    assert breakdown["memory_bound"] >= 0
    # Training GEMMs on the A100 are predominantly compute bound.
    assert breakdown["compute_bound"] > breakdown["memory_bound"]


def test_breakdown_dict_and_throughput(gpt_175b, model_64, config_88):
    report = model_64.predict(gpt_175b, config_88, global_batch_size=64)
    breakdown = report.breakdown()
    assert breakdown["total"] == pytest.approx(report.step_time)
    assert report.throughput_tokens_per_second() == pytest.approx(64 * 2048 / report.step_time)
    assert report.step_time_ms == pytest.approx(report.step_time * 1000)
