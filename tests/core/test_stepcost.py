"""Tests for the step-cost layer (prefill / decode steps over mixed batches)."""

import pytest

from repro.core.stepcost import StepCost, StepCostModel, ZERO_STEP
from repro.hardware.cluster import build_system
from repro.hardware.datatypes import Precision
from repro.models.zoo import get_model


@pytest.fixture(scope="module")
def system():
    return build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")


@pytest.fixture(scope="module")
def model():
    return get_model("Llama2-7B")


@pytest.fixture(scope="module")
def step_cost(system):
    return StepCostModel(system=system)


def test_empty_steps_are_free(step_cost, model):
    assert step_cost.prefill_step(model, []) is ZERO_STEP
    assert step_cost.decode_step(model, []) is ZERO_STEP
    assert ZERO_STEP.total_time == 0.0
    assert ZERO_STEP.is_idle


def test_step_cost_totals(step_cost, model):
    cost = step_cost.decode_step(model, [100, 200])
    assert cost.total_time == cost.device_time + cost.communication_time
    assert cost.num_requests == 2
    assert cost.tokens == 2
    assert not cost.is_idle
    assert cost.device_time > 0
    assert cost.compute_bound_time + cost.memory_bound_time <= cost.device_time


def test_prefill_step_grows_with_prompt_length(step_cost, model):
    short = step_cost.prefill_step(model, [64])
    long = step_cost.prefill_step(model, [512])
    assert long.total_time > short.total_time
    assert short.tokens == 64 and long.tokens == 512


def test_decode_step_grows_with_kv_length(step_cost, model):
    near = step_cost.decode_step(model, [64] * 4)
    far = step_cost.decode_step(model, [4096] * 4)
    assert far.total_time > near.total_time


def test_decode_step_sublinear_in_batch(step_cost, model):
    """Batching decodes shares the weight streams: 8 together << 8 alone."""
    single = step_cost.decode_step(model, [256])
    batched = step_cost.decode_step(model, [256] * 8)
    assert batched.total_time < 8 * single.total_time
    assert batched.total_time > single.total_time


def test_mixed_kv_between_uniform_bounds(step_cost, model):
    mixed = step_cost.decode_step(model, [100, 200, 300, 400])
    low = step_cost.decode_step(model, [100] * 4)
    high = step_cost.decode_step(model, [400] * 4)
    assert low.total_time < mixed.total_time < high.total_time


def test_decode_step_order_invariant(step_cost, model):
    forward = step_cost.decode_step(model, [100, 200, 300])
    backward = step_cost.decode_step(model, [300, 200, 100])
    assert forward.total_time == backward.total_time


def test_tensor_parallel_adds_communication(step_cost, model):
    alone = step_cost.decode_step(model, [200] * 4, tensor_parallel=1)
    sharded = step_cost.decode_step(model, [200] * 4, tensor_parallel=4)
    assert alone.communication_time == 0.0
    assert sharded.communication_time > 0.0
    # Decode is memory bound: sharding the weights cuts the device time.
    assert sharded.device_time < alone.device_time


def test_lm_head_toggle(step_cost, model):
    with_head = step_cost.decode_step(model, [128] * 2, include_lm_head=True)
    without = step_cost.decode_step(model, [128] * 2, include_lm_head=False)
    assert with_head.device_time > without.device_time


def test_precision_shrinks_traffic(step_cost, model):
    fp16 = step_cost.decode_step(model, [256] * 4, precision=Precision.FP16)
    fp8 = step_cost.decode_step(model, [256] * 4, precision=Precision.FP8)
    assert fp8.device_time < fp16.device_time


def test_prefill_matches_single_request_phase_scale(step_cost, model, system):
    """A one-request prefill step tracks the single-request prefill report."""
    from repro.core.inference import InferencePerformanceModel

    predictor = InferencePerformanceModel(system=system, check_memory=False)
    report = predictor.predict(model, batch_size=1, prompt_tokens=256, generated_tokens=1)
    step = step_cost.prefill_step(model, [256])
    assert step.total_time == pytest.approx(report.prefill.total_time, rel=0.01)


def test_decode_matches_single_request_step(step_cost, model, system):
    """A one-request decode step equals one step of the exact decode phase."""
    from repro.core.inference import InferencePerformanceModel

    predictor = InferencePerformanceModel(system=system, check_memory=False)
    # One generated token at KV length = prompt: exactly one decode step.
    report = predictor.predict(
        model, batch_size=1, prompt_tokens=300, generated_tokens=1, decode_mode="exact"
    )
    step = step_cost.decode_step(model, [300])
    assert step.total_time == pytest.approx(report.decode.total_time, rel=0.01)


def test_step_cost_is_deterministic(system, model):
    a = StepCostModel(system=system).decode_step(model, [123, 456])
    b = StepCostModel(system=system).decode_step(model, [123, 456])
    assert a == b


def test_tp_scope_selection(step_cost, system):
    assert step_cost.tp_scope(1) == "intra_node"
    assert step_cost.tp_scope(system.devices_per_node) == "intra_node"
    assert step_cost.tp_scope(system.devices_per_node + 1) == "inter_node"


def test_step_cost_dataclass_is_value_like():
    cost = StepCost(1.0, 0.5, 0.2, 0.8, num_requests=2, tokens=2)
    assert cost.total_time == 1.5
    assert cost == StepCost(1.0, 0.5, 0.2, 0.8, num_requests=2, tokens=2)


# -- epoch-fused decode pricing ----------------------------------------------------------

def _assert_run_matches_steps(step_cost, model, kv_lens, num_steps, **kwargs):
    """decode_run must equal num_steps sequential decode_step calls exactly."""
    run = step_cost.decode_run(model, kv_lens, num_steps, **kwargs)
    expected = [
        step_cost.decode_step(model, [kv + step for kv in kv_lens], **kwargs)
        for step in range(num_steps)
    ]
    assert run.num_steps == num_steps
    assert run.num_requests == len(kv_lens)
    assert run.step_costs() == expected
    for step, cost in enumerate(expected):
        assert float(run.device_times[step]) == cost.device_time
        assert run.communication_time == cost.communication_time
        assert float(run.compute_bound_times[step]) == cost.compute_bound_time
        assert float(run.memory_bound_times[step]) == cost.memory_bound_time
        assert float(run.total_times[step]) == cost.total_time


def test_decode_run_matches_sequential_decode_steps(step_cost, model):
    _assert_run_matches_steps(step_cost, model, [100, 237, 100, 64], 17)


def test_decode_run_matches_decode_steps_single_request(step_cost, model):
    _assert_run_matches_steps(step_cost, model, [321], 5)


def test_decode_run_matches_decode_steps_with_tensor_parallel(step_cost, model):
    _assert_run_matches_steps(step_cost, model, [64, 640], 9, tensor_parallel=4)


def test_decode_run_matches_decode_steps_without_lm_head(step_cost, model):
    _assert_run_matches_steps(step_cost, model, [80, 81, 82], 7, include_lm_head=False)


def test_decode_run_matches_decode_steps_fp8(step_cost, model):
    _assert_run_matches_steps(step_cost, model, [150, 90], 6, precision=Precision.FP8)


def test_decode_run_agrees_after_scalar_warmup(system, model):
    # Order of first evaluation (batched table fill vs scalar memo) must not
    # change the numbers: warm one model scalar-first, one fused-first.
    scalar_first = StepCostModel(system=system)
    for step in range(4):
        scalar_first.decode_step(model, [200 + step, 50 + step])
    fused_first = StepCostModel(system=system)
    run_a = scalar_first.decode_run(model, [200, 50], 4)
    run_b = fused_first.decode_run(model, [200, 50], 4)
    assert run_a.step_costs() == run_b.step_costs()


def test_decode_run_empty_inputs(step_cost, model):
    assert step_cost.decode_run(model, [], 5).num_steps == 0
    assert step_cost.decode_run(model, [100], 0).num_steps == 0
    assert step_cost.decode_run(model, [100], 0).num_requests == 1


def test_step_cost_cache_counters_grow(system, model):
    probe = StepCostModel(system=system)
    assert probe.cache_hits == 0 and probe.cache_misses == 0
    probe.decode_run(model, [100, 200], 8)
    first_misses = probe.cache_misses
    assert first_misses > 0
    probe.decode_run(model, [100, 200], 8)
    assert probe.cache_misses == first_misses  # identical epoch: all hits
    assert probe.cache_hits > 0
