"""Tests for the task graph."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.graph import TaskGraph
from repro.workload.operators import CollectiveKind, CommunicationOp, ElementwiseOp, GEMM, OperatorKind


def _ops(n=3):
    return [GEMM(name=f"g{i}", m=16, n=16, k=16) for i in range(n)]


def test_add_and_chain():
    graph = TaskGraph("test")
    ids = graph.add_chain(_ops(3), tags=["layer0"])
    assert len(graph) == 3
    assert graph.node(ids[1]).predecessors == [ids[0]]
    assert graph.node(ids[0]).has_tag("layer0")


def test_add_with_missing_dependency_raises():
    graph = TaskGraph()
    with pytest.raises(ConfigurationError):
        graph.add(_ops(1)[0], deps=[42])


def test_topological_order_linear_chain():
    graph = TaskGraph()
    ids = graph.add_chain(_ops(4))
    order = [node.node_id for node in graph.topological_order()]
    assert order == ids


def test_topological_order_diamond():
    graph = TaskGraph()
    a = graph.add(GEMM(name="a", m=8, n=8, k=8))
    b = graph.add(GEMM(name="b", m=8, n=8, k=8), deps=[a])
    c = graph.add(GEMM(name="c", m=8, n=8, k=8), deps=[a])
    d = graph.add(GEMM(name="d", m=8, n=8, k=8), deps=[b, c])
    order = [node.node_id for node in graph.topological_order()]
    assert order.index(a) < order.index(b) < order.index(d)
    assert order.index(a) < order.index(c) < order.index(d)


def test_merge_appends_other_graph():
    first = TaskGraph("first")
    first_ids = first.add_chain(_ops(2))
    second = TaskGraph("second")
    second.add_chain(_ops(2))
    mapping = first.merge(second, deps=[first_ids[-1]])
    assert len(first) == 4
    new_root = mapping[0]
    assert first.node(new_root).predecessors == [first_ids[-1]]


def test_filters_and_aggregates():
    graph = TaskGraph()
    gemm = GEMM(name="g", m=32, n=32, k=32)
    eltwise = ElementwiseOp(name="e", num_elements=100)
    comm = CommunicationOp(name="c", collective=CollectiveKind.ALL_REDUCE, data_bytes=1024, group_size=4)
    graph.add_chain([gemm, eltwise, comm], tags=["fwd"])
    assert len(graph.operators(kind=OperatorKind.GEMM)) == 1
    assert len(graph.operators(tag="fwd")) == 3
    assert len(graph.compute_operators()) == 2
    assert len(graph.communication_operators()) == 1
    assert graph.total_flops == gemm.flops + eltwise.flops
    assert graph.total_communication_bytes == 1024
    assert graph.total_compute_bytes > 0


def test_critical_path_vs_serial_time():
    graph = TaskGraph()
    a = graph.add(GEMM(name="a", m=8, n=8, k=8))
    graph.add(GEMM(name="b", m=8, n=8, k=8), deps=[a])
    graph.add(GEMM(name="c", m=8, n=8, k=8), deps=[a])
    # Unit time per op: serial = 3, critical path = 2 (b and c run in parallel).
    assert graph.serial_time(lambda op: 1.0) == pytest.approx(3.0)
    assert graph.critical_path_time(lambda op: 1.0) == pytest.approx(2.0)


def test_cycle_detection():
    graph = TaskGraph()
    a = graph.add(GEMM(name="a", m=8, n=8, k=8))
    b = graph.add(GEMM(name="b", m=8, n=8, k=8), deps=[a])
    # Manually create a cycle to validate detection.
    graph.node(a).predecessors.append(b)
    with pytest.raises(ConfigurationError):
        graph.topological_order()


def test_empty_graph_behaviour():
    graph = TaskGraph()
    assert len(graph) == 0
    assert graph.total_flops == 0
    assert graph.critical_path_time(lambda op: 1.0) == 0.0
