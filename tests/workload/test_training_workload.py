"""Tests for the training micro-batch task-graph builder."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.operators import OperatorKind
from repro.workload.training import (
    TrainingMicrobatchSpec,
    build_backward_graph,
    build_forward_graph,
    build_training_microbatch_graph,
)


def _spec(model, layers=2, tp=1, include_embedding=False):
    return TrainingMicrobatchSpec(
        model=model,
        micro_batch=1,
        seq_len=128,
        layers_per_stage=layers,
        tensor_parallel=tp,
        include_embedding=include_embedding,
    )


def test_spec_validation(tiny_model):
    with pytest.raises(ConfigurationError):
        TrainingMicrobatchSpec(model=tiny_model, micro_batch=1, seq_len=128, layers_per_stage=0)


def test_forward_graph_scales_with_layers(tiny_model):
    one = build_forward_graph(_spec(tiny_model, layers=1))
    three = build_forward_graph(_spec(tiny_model, layers=3))
    assert three.total_flops == pytest.approx(3 * one.total_flops, rel=1e-6)
    assert len(three) == 3 * len(one)


def test_forward_graph_contains_comm_when_tp(tiny_model):
    graph = build_forward_graph(_spec(tiny_model, layers=2, tp=4))
    comms = graph.communication_operators()
    assert len(comms) == 2 * 2  # two all-reduces per layer
    assert all(op.group_size == 4 for op in comms)


def test_lm_head_only_when_embedding_included(tiny_model):
    without = build_forward_graph(_spec(tiny_model, include_embedding=False))
    with_head = build_forward_graph(_spec(tiny_model, include_embedding=True))
    names_without = [node.operator.name for node in without]
    names_with = [node.operator.name for node in with_head]
    assert "lm_head" not in names_without
    assert "lm_head" in names_with


def test_backward_graph_has_more_flops_than_forward(tiny_model):
    spec = _spec(tiny_model, layers=2)
    forward = build_forward_graph(spec)
    backward = build_backward_graph(spec)
    assert backward.total_flops > 1.8 * forward.total_flops


def test_combined_graph_is_forward_plus_backward(tiny_model):
    spec = _spec(tiny_model, layers=2, tp=2)
    combined = build_training_microbatch_graph(spec)
    forward = build_forward_graph(spec)
    backward = build_backward_graph(spec)
    assert len(combined) == len(forward) + len(backward)
    assert combined.total_flops == pytest.approx(forward.total_flops + backward.total_flops, rel=1e-9)


def test_combined_graph_is_acyclic_and_serial(tiny_model):
    graph = build_training_microbatch_graph(_spec(tiny_model, layers=2))
    order = graph.topological_order()
    assert len(order) == len(graph)
    # The chain structure means the critical path equals the serial time.
    assert graph.critical_path_time(lambda op: 1.0) == pytest.approx(graph.serial_time(lambda op: 1.0))


def test_graph_tags_mark_phases(tiny_model):
    graph = build_training_microbatch_graph(_spec(tiny_model, layers=1))
    forward_ops = graph.operators(tag="forward")
    backward_ops = graph.operators(tag="backward")
    assert forward_ops and backward_ops
    assert len(backward_ops) > len(forward_ops) - 5


def test_graph_has_gemm_and_memory_kernels(tiny_model):
    graph = build_forward_graph(_spec(tiny_model, layers=1))
    kinds = {node.operator.kind for node in graph}
    assert OperatorKind.GEMM in kinds
    assert OperatorKind.NORMALIZATION in kinds
    assert OperatorKind.ELEMENTWISE in kinds
