"""Tests for operator descriptors (GEMM, element-wise, normalization, comm)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.datatypes import Precision
from repro.workload.operators import (
    CollectiveKind,
    CommunicationOp,
    ElementwiseOp,
    GEMM,
    MemoryOp,
    NormalizationOp,
    OperatorKind,
    make_gemv,
)


def test_gemm_flops_and_bytes():
    gemm = GEMM(name="g", m=128, n=256, k=512, precision=Precision.FP16)
    assert gemm.flops == 2 * 128 * 256 * 512
    assert gemm.a_bytes == 128 * 512 * 2
    assert gemm.b_bytes == 512 * 256 * 2
    assert gemm.c_bytes == 128 * 256 * 2
    assert gemm.bytes_read == gemm.a_bytes + gemm.b_bytes
    assert gemm.bytes_written == gemm.c_bytes
    assert gemm.kind is OperatorKind.GEMM


def test_gemm_batched_weight_operand_not_replicated():
    weight = GEMM(name="w", m=16, n=64, k=64, batch=8, weight_operand=True)
    activation = GEMM(name="a", m=16, n=64, k=64, batch=8, weight_operand=False)
    assert weight.flops == activation.flops
    assert weight.b_bytes * 8 == activation.b_bytes
    assert weight.a_bytes == activation.a_bytes


def test_gemm_accumulate_reads_output():
    base = GEMM(name="g", m=32, n=32, k=32)
    accumulating = GEMM(name="g", m=32, n=32, k=32, accumulate=True)
    assert accumulating.bytes_read == base.bytes_read + base.c_bytes


def test_gemm_arithmetic_intensity_grows_with_size():
    small = GEMM(name="s", m=64, n=64, k=64)
    large = GEMM(name="l", m=1024, n=1024, k=1024)
    assert large.arithmetic_intensity > small.arithmetic_intensity


def test_gemm_is_gemv_like():
    assert GEMM(name="v", m=1, n=4096, k=4096).is_gemv_like
    assert GEMM(name="v", m=16, n=4096, k=4096).is_gemv_like
    assert not GEMM(name="f", m=2048, n=4096, k=4096).is_gemv_like


def test_gemm_validation_and_helpers():
    with pytest.raises(ConfigurationError):
        GEMM(name="bad", m=0, n=1, k=1)
    gemm = GEMM(name="g", m=2, n=3, k=4, batch=5)
    assert gemm.shape == (2, 3, 4, 5)
    assert gemm.scaled_batch(2).batch == 10


def test_make_gemv():
    gemv = make_gemv("v", rows=4096, cols=1024)
    assert gemv.m == 1
    assert gemv.n == 4096
    assert gemv.k == 1024
    assert gemv.weight_operand
    assert gemv.is_gemv_like


def test_elementwise_op_bytes_and_flops():
    op = ElementwiseOp(
        name="gelu",
        num_elements=1000,
        flops_per_element=8.0,
        reads_per_element=1.0,
        writes_per_element=1.0,
        precision=Precision.FP16,
    )
    assert op.flops == 8000
    assert op.bytes_read == 2000
    assert op.bytes_written == 2000
    assert op.kind is OperatorKind.ELEMENTWISE


def test_elementwise_dropout_mask_extra_bytes():
    dropout = ElementwiseOp(name="dropout", num_elements=100, extra_bytes_per_element=1.0)
    plain = ElementwiseOp(name="plain", num_elements=100)
    assert dropout.bytes_read == plain.bytes_read + 100


def test_normalization_op():
    op = NormalizationOp(name="softmax", num_elements=500, flops_per_element=5.0, variant="softmax")
    assert op.flops == 2500
    assert op.bytes_total == 2 * 500 * 2
    assert op.kind is OperatorKind.NORMALIZATION


def test_memory_op_read_vs_write():
    read = MemoryOp(name="kv_read", bytes_moved=1024)
    write = MemoryOp(name="kv_write", bytes_moved=1024, is_write=True)
    assert read.bytes_read == 1024 and read.bytes_written == 0
    assert write.bytes_written == 1024 and write.bytes_read == 0
    assert read.flops == 0


def test_communication_op():
    op = CommunicationOp(
        name="ar",
        collective=CollectiveKind.ALL_REDUCE,
        data_bytes=1 << 20,
        group_size=8,
        scope="intra_node",
    )
    assert op.kind is OperatorKind.COMMUNICATION
    assert not op.is_trivial
    assert CommunicationOp(name="t", collective=CollectiveKind.ALL_REDUCE, data_bytes=0, group_size=8).is_trivial
    assert CommunicationOp(name="t", collective=CollectiveKind.ALL_REDUCE, data_bytes=10, group_size=1).is_trivial


def test_communication_op_validation():
    with pytest.raises(ConfigurationError):
        CommunicationOp(name="bad", data_bytes=-1)
    with pytest.raises(ConfigurationError):
        CommunicationOp(name="bad", group_size=0)


def test_zero_element_ops_have_infinite_intensity():
    op = ElementwiseOp(name="noop", num_elements=0)
    assert op.flops == 0
    assert op.arithmetic_intensity == float("inf")
