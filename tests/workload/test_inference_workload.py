"""Tests for the inference (prefill / decode) workload builders."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.inference import (
    InferencePhaseSpec,
    build_decode_step_graph,
    build_prefill_graph,
)
from repro.workload.operators import GEMM


def _spec(model, batch=1, prompt=64, generate=32, tp=1):
    return InferencePhaseSpec(
        model=model,
        batch_size=batch,
        prompt_len=prompt,
        generated_tokens=generate,
        tensor_parallel=tp,
    )


def test_spec_validation(tiny_model):
    with pytest.raises(ConfigurationError):
        InferencePhaseSpec(model=tiny_model, batch_size=0, prompt_len=64, generated_tokens=32)
    with pytest.raises(ConfigurationError):
        InferencePhaseSpec(model=tiny_model, batch_size=1, prompt_len=0, generated_tokens=32)


def test_average_decode_kv_len(tiny_model):
    spec = _spec(tiny_model, prompt=200, generate=200)
    assert 200 <= spec.average_decode_kv_len <= 400
    no_generation = _spec(tiny_model, prompt=200, generate=0)
    assert no_generation.average_decode_kv_len == 200


def test_prefill_graph_covers_all_layers(tiny_model):
    spec = _spec(tiny_model)
    graph = build_prefill_graph(spec)
    layer_tags = {tag for node in graph for tag in node.tags if tag.startswith("layer")}
    assert len(layer_tags) == tiny_model.num_layers


def test_prefill_graph_has_no_dropout(tiny_model):
    graph = build_prefill_graph(_spec(tiny_model))
    assert not any("dropout" in node.operator.name for node in graph)


def test_prefill_includes_lm_head_for_last_token_only(tiny_model):
    spec = _spec(tiny_model, batch=4, prompt=64)
    graph = build_prefill_graph(spec)
    heads = [node.operator for node in graph if node.operator.name == "lm_head"]
    assert len(heads) == 1
    assert isinstance(heads[0], GEMM)
    assert heads[0].m == 4  # only the last position per sequence


def test_decode_step_uses_single_token_queries(tiny_model):
    spec = _spec(tiny_model, batch=2, prompt=64, generate=64)
    graph = build_decode_step_graph(spec)
    qkv = [node.operator for node in graph if node.operator.name == "qkv_projection"]
    assert all(g.m == 2 for g in qkv)
    scores = [node.operator for node in graph if node.operator.name == "attention_scores"]
    assert all(g.m == 1 for g in scores)
    assert all(g.n == spec.average_decode_kv_len for g in scores)


def test_decode_step_kv_len_override(tiny_model):
    graph = build_decode_step_graph(_spec(tiny_model), kv_len=77)
    scores = [node.operator for node in graph if node.operator.name == "attention_scores"]
    assert all(g.n == 77 for g in scores)


def test_decode_flops_much_smaller_than_prefill(tiny_model):
    spec = _spec(tiny_model, prompt=128, generate=16)
    prefill = build_prefill_graph(spec)
    decode = build_decode_step_graph(spec)
    assert decode.total_flops < prefill.total_flops / 16


def test_tp_reduces_per_rank_flops_and_adds_comm(tiny_model):
    single = build_decode_step_graph(_spec(tiny_model, tp=1))
    sharded = build_decode_step_graph(_spec(tiny_model, tp=4))
    assert sharded.total_flops < single.total_flops
    assert len(sharded.communication_operators()) == 2 * tiny_model.num_layers
    assert len(single.communication_operators()) == 0


def test_layers_argument_limits_graph(tiny_model):
    graph = build_prefill_graph(_spec(tiny_model), layers=1)
    layer_tags = {tag for node in graph for tag in node.tags if tag.startswith("layer")}
    assert layer_tags == {"layer0"}
