"""Tests for the per-layer operator builders (Megatron TP sharding)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.datatypes import Precision
from repro.workload.operators import CollectiveKind, GEMM
from repro.workload.transformer_layer import LayerExecutionSpec, TransformerLayerBuilder


def _spec(model, tp=1, sp=False, micro_batch=2, seq=128, **kwargs):
    return LayerExecutionSpec(
        model=model,
        micro_batch=micro_batch,
        seq_len=seq,
        tensor_parallel=tp,
        sequence_parallel=sp,
        **kwargs,
    )


def test_spec_validation(tiny_model):
    with pytest.raises(ConfigurationError):
        _spec(tiny_model, micro_batch=0)
    with pytest.raises(ConfigurationError):
        _spec(tiny_model, tp=3)  # does not divide 8 heads
    spec = _spec(tiny_model)
    assert spec.kv_len == spec.seq_len


def test_attention_gemm_shapes_no_tp(tiny_model):
    spec = _spec(tiny_model, micro_batch=2, seq=128)
    gemms = {g.name: g for g in TransformerLayerBuilder(spec).attention_gemms()}
    qkv = gemms["qkv_projection"]
    assert qkv.m == 2 * 128
    assert qkv.k == tiny_model.hidden_size
    assert qkv.n == 3 * tiny_model.hidden_size
    scores = gemms["attention_scores"]
    assert scores.m == 128 and scores.n == 128 and scores.k == tiny_model.head_dim
    assert scores.batch == 2 * tiny_model.num_heads
    out = gemms["attention_output"]
    assert out.k == tiny_model.hidden_size and out.n == tiny_model.hidden_size


def test_tp_shards_attention_and_mlp(tiny_model):
    full = TransformerLayerBuilder(_spec(tiny_model, tp=1))
    sharded = TransformerLayerBuilder(_spec(tiny_model, tp=4))
    full_flops = sum(g.flops for g in full.forward_gemms())
    sharded_flops = sum(g.flops for g in sharded.forward_gemms())
    # The per-rank FLOPs shrink by the TP degree (the LM head is not included here).
    assert sharded_flops == pytest.approx(full_flops / 4, rel=1e-6)


def test_gqa_qkv_width(tiny_swiglu_model):
    spec = _spec(tiny_swiglu_model, tp=1)
    qkv = TransformerLayerBuilder(spec).attention_gemms()[0]
    expected = tiny_swiglu_model.hidden_size + 2 * tiny_swiglu_model.num_kv_heads * tiny_swiglu_model.head_dim
    assert qkv.n == expected


def test_swiglu_has_three_mlp_gemms(tiny_swiglu_model, tiny_model):
    swiglu = TransformerLayerBuilder(_spec(tiny_swiglu_model)).mlp_gemms()
    gelu = TransformerLayerBuilder(_spec(tiny_model)).mlp_gemms()
    assert len(swiglu) == 3
    assert len(gelu) == 2


def test_forward_gemm_names_match_paper_table4(tiny_model):
    names = [g.name for g in TransformerLayerBuilder(_spec(tiny_model)).forward_gemms()]
    for expected in ("qkv_projection", "attention_scores", "attention_context", "attention_output", "mlp_h_to_4h", "mlp_4h_to_h"):
        assert expected in names


def test_dropout_only_in_training(tiny_model):
    training = TransformerLayerBuilder(_spec(tiny_model, with_dropout=True))
    inference = TransformerLayerBuilder(_spec(tiny_model, with_dropout=False))
    training_names = [op.name for op in training.forward_compute_ops()]
    inference_names = [op.name for op in inference.forward_compute_ops()]
    assert any("dropout" in name for name in training_names)
    assert not any("dropout" in name for name in inference_names)


def test_kv_cache_append_present_when_enabled(tiny_model):
    builder = TransformerLayerBuilder(_spec(tiny_model, use_kv_cache=True, with_dropout=False))
    names = [op.name for op in builder.forward_compute_ops()]
    assert "kv_cache_append" in names


def test_decode_spec_uses_kv_len(tiny_model):
    spec = _spec(tiny_model, seq=1, kv_len=333, with_dropout=False, use_kv_cache=True)
    gemms = {g.name: g for g in TransformerLayerBuilder(spec).attention_gemms()}
    assert gemms["attention_scores"].n == 333
    assert gemms["attention_context"].k == 333
    assert gemms["qkv_projection"].m == spec.micro_batch


def test_forward_communication_all_reduce_count_and_volume(tiny_model):
    spec = _spec(tiny_model, tp=4, micro_batch=2, seq=128)
    comm = TransformerLayerBuilder(spec).forward_communication()
    assert len(comm) == 2
    expected_payload = 2 * 128 * tiny_model.hidden_size * Precision.FP16.bytes_per_element
    for op in comm:
        assert op.collective is CollectiveKind.ALL_REDUCE
        assert op.data_bytes == pytest.approx(expected_payload)
        assert op.group_size == 4


def test_sequence_parallel_swaps_collectives_same_volume(tiny_model):
    plain = TransformerLayerBuilder(_spec(tiny_model, tp=4)).forward_communication()
    sp = TransformerLayerBuilder(_spec(tiny_model, tp=4, sp=True)).forward_communication()
    assert len(sp) == 4  # reduce-scatter + all-gather per block
    kinds = {op.collective for op in sp}
    assert kinds == {CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALL_GATHER}
    assert sum(op.data_bytes for op in sp) == pytest.approx(2 * sum(op.data_bytes for op in plain))
    # A reduce-scatter + all-gather pair moves the same volume as one all-reduce,
    # so SP adds no communication volume overall.


def test_no_communication_without_tp(tiny_model):
    assert TransformerLayerBuilder(_spec(tiny_model, tp=1)).forward_communication() == []


def test_sequence_parallel_shards_norm_elements(tiny_model):
    plain = _spec(tiny_model, tp=4, sp=False)
    sp = _spec(tiny_model, tp=4, sp=True)
    assert sp.norm_elements == plain.norm_elements // 4


def test_backward_ops_flops_are_double_forward(tiny_model):
    builder = TransformerLayerBuilder(_spec(tiny_model, tp=2))
    forward_gemm_flops = sum(g.flops for g in builder.forward_gemms())
    backward_gemm_flops = sum(op.flops for op in builder.backward_compute_ops() if isinstance(op, GEMM))
    assert backward_gemm_flops == pytest.approx(2 * forward_gemm_flops, rel=1e-6)


def test_backward_communication_mirrors_forward(tiny_model):
    builder = TransformerLayerBuilder(_spec(tiny_model, tp=4))
    fwd = builder.forward_communication()
    bwd = builder.backward_communication()
    assert len(fwd) == len(bwd)
    assert sum(op.data_bytes for op in fwd) == pytest.approx(sum(op.data_bytes for op in bwd))
