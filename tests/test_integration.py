"""End-to-end integration tests: the full validation sweeps stay within the paper's bands."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    table1_training_validation,
    table2_inference_validation,
)
from repro.analysis.formatting import summarize_errors
from repro.validation.reference import (
    TABLE1_TRAINING_ROWS,
    TABLE2_INFERENCE_ROWS,
)


@pytest.fixture(scope="module")
def table1_rows():
    return table1_training_validation()


@pytest.fixture(scope="module")
def table2_rows():
    return table2_inference_validation()


def test_table1_covers_every_reference_row(table1_rows):
    assert len(table1_rows) == len(TABLE1_TRAINING_ROWS)


def test_table1_every_row_within_reasonable_band(table1_rows):
    """The paper reports relative errors mostly below 10%; allow a slightly wider 12% band per row."""
    for row in table1_rows:
        assert abs(row["relative_error_%"]) < 12.0, row


def test_table1_mean_error_matches_paper_quality(table1_rows):
    summary = summarize_errors([row["relative_error_%"] for row in table1_rows])
    assert summary["mean_abs_error_%"] < 7.0


def test_table1_selective_faster_than_full(table1_rows):
    by_key = {(row["model"], row["recompute"]): row["predicted_s"] for row in table1_rows if row["num_gpus"] in (8, 64, 280, 512)}
    for model in ("GPT-175B", "GPT-530B", "GPT-1008B"):
        assert by_key[(model, "selective")] < by_key[(model, "full")]


def test_table1_time_grows_with_model_size(table1_rows):
    full_rows = {row["model"]: row["predicted_s"] for row in table1_rows if row["recompute"] == "full" and row["num_gpus"] in (8, 64, 280, 512)}
    assert full_rows["GPT-22B"] < full_rows["GPT-175B"] < full_rows["GPT-530B"] < full_rows["GPT-1008B"]


def test_table2_covers_every_reference_row(table2_rows):
    assert len(table2_rows) == len(TABLE2_INFERENCE_ROWS)


def test_table2_every_row_within_paper_band(table2_rows):
    """The paper matches NVIDIA's numbers within 13%; hold the reproduction to the same band."""
    for row in table2_rows:
        assert abs(row["relative_error_%"]) <= 13.0, row


def test_table2_mean_error_is_small(table2_rows):
    summary = summarize_errors([row["relative_error_%"] for row in table2_rows])
    assert summary["mean_abs_error_%"] < 8.0


def test_table2_h100_predicted_faster_than_a100(table2_rows):
    a100 = {(r["model"], r["num_gpus"]): r["predicted_ms"] for r in table2_rows if r["gpu"] == "A100"}
    h100 = {(r["model"], r["num_gpus"]): r["predicted_ms"] for r in table2_rows if r["gpu"] == "H100"}
    for key in a100:
        assert h100[key] < a100[key]


def test_table2_latency_decreases_with_gpus_but_sublinearly(table2_rows):
    for gpu in ("A100", "H100"):
        rows = sorted(
            (r for r in table2_rows if r["model"] == "Llama2-13B" and r["gpu"] == gpu),
            key=lambda r: r["num_gpus"],
        )
        latencies = [r["predicted_ms"] for r in rows]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies[0] / latencies[-1] < 8  # far from linear scaling over 1 -> 8 GPUs
