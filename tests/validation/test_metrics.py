"""Tests for validation error metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.validation.metrics import (
    absolute_percentage_error,
    geometric_mean,
    max_absolute_percentage_error,
    mean_absolute_percentage_error,
    relative_error,
)


def test_relative_error_signed():
    assert relative_error(11, 10) == pytest.approx(0.1)
    assert relative_error(9, 10) == pytest.approx(-0.1)
    with pytest.raises(ConfigurationError):
        relative_error(1, 0)


def test_absolute_percentage_error():
    assert absolute_percentage_error(11, 10) == pytest.approx(10.0)
    assert absolute_percentage_error(9, 10) == pytest.approx(10.0)


def test_mean_and_max_ape():
    predicted = [11, 9, 10]
    reference = [10, 10, 10]
    assert mean_absolute_percentage_error(predicted, reference) == pytest.approx(20 / 3)
    assert max_absolute_percentage_error(predicted, reference) == pytest.approx(10.0)
    with pytest.raises(ConfigurationError):
        mean_absolute_percentage_error([1], [1, 2])
    with pytest.raises(ConfigurationError):
        mean_absolute_percentage_error([], [])


def test_geometric_mean():
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert geometric_mean([3, 3, 3]) == pytest.approx(3.0)
    with pytest.raises(ConfigurationError):
        geometric_mean([])
    with pytest.raises(ConfigurationError):
        geometric_mean([1, -1])
