"""Tests for the published reference tables."""

import pytest

from repro.models.zoo import get_model
from repro.parallelism.config import parse_parallelism_label
from repro.validation.reference import (
    CASE_STUDY_CONFIGS,
    GPU_GENERATION_SCALING_SYSTEMS,
    GPU_GENERATION_SPEEDUP_CLAIMS,
    TABLE1_TRAINING_ROWS,
    TABLE2_INFERENCE_ROWS,
    find_inference_row,
    find_training_row,
)


def test_table1_row_count_and_models():
    assert len(TABLE1_TRAINING_ROWS) == 11
    models = {row.model for row in TABLE1_TRAINING_ROWS}
    assert {"GPT-22B", "GPT-175B", "GPT-310B", "GPT-530B", "GPT-1008B"} == models


def test_table1_configurations_are_internally_consistent():
    """DP x TP x PP equals the GPU count and the model zoo accepts every configuration."""
    for row in TABLE1_TRAINING_ROWS:
        config = parse_parallelism_label(row.parallelism_label, micro_batch_size=row.micro_batch_size)
        assert config.total_devices == row.num_gpus, row
        config.validate_for_model(get_model(row.model))
        assert row.global_batch_size % config.data_parallel == 0


def test_table1_reference_times_positive_and_paper_errors_small():
    for row in TABLE1_TRAINING_ROWS:
        assert row.reference_seconds > 0
        paper_error = abs(row.paper_prediction_seconds - row.reference_seconds) / row.reference_seconds
        assert paper_error < 0.11


def test_table2_row_count_and_coverage():
    assert len(TABLE2_INFERENCE_ROWS) == 22
    assert {row.gpu for row in TABLE2_INFERENCE_ROWS} == {"A100", "H100"}
    assert {row.model for row in TABLE2_INFERENCE_ROWS} == {"Llama2-7B", "Llama2-13B", "Llama2-70B"}
    # The 70B model never runs on a single GPU in the reference data (it does not fit).
    assert all(row.num_gpus >= 2 for row in TABLE2_INFERENCE_ROWS if row.model == "Llama2-70B")


def test_table2_latencies_decrease_with_more_gpus():
    for model in ("Llama2-7B", "Llama2-13B", "Llama2-70B"):
        for gpu in ("A100", "H100"):
            rows = sorted(
                (row for row in TABLE2_INFERENCE_ROWS if row.model == model and row.gpu == gpu),
                key=lambda row: row.num_gpus,
            )
            latencies = [row.nvidia_latency_ms for row in rows]
            assert latencies == sorted(latencies, reverse=True)


def test_table2_h100_faster_than_a100():
    for row in TABLE2_INFERENCE_ROWS:
        if row.gpu == "A100":
            partner = find_inference_row(row.model, row.num_gpus, "H100")
            assert partner is not None
            assert partner.nvidia_latency_ms < row.nvidia_latency_ms


def test_find_helpers():
    row = find_training_row("GPT-175B", 64, "full")
    assert row is not None and row.reference_seconds == pytest.approx(18.1)
    assert find_training_row("GPT-175B", 999, "full") is None
    assert find_inference_row("Llama2-13B", 1, "A100").nvidia_latency_ms == pytest.approx(3884)
    assert find_inference_row("Llama2-13B", 3, "A100") is None


def test_case_study_configs_match_paper_table3():
    gpt175 = CASE_STUDY_CONFIGS["GPT-175B"]
    assert gpt175.num_gpus == 8192
    assert gpt175.batch_sizes == (1024, 4096)
    assert gpt175.seq_len == 2048
    gpt7 = CASE_STUDY_CONFIGS["GPT-7B"]
    assert gpt7.num_gpus == 1024
    assert gpt7.parallelism_label == "64-4-4-4"


def test_gpu_generation_scaling_list():
    names = [name for name, _ in GPU_GENERATION_SCALING_SYSTEMS]
    assert names[0] == "A100-HDR"
    assert names[-1] == "B200-NVS-L"
    assert set(GPU_GENERATION_SPEEDUP_CLAIMS) <= set(names)
    for low, high in GPU_GENERATION_SPEEDUP_CLAIMS.values():
        assert 1.0 < low < high
