"""Serving sweeps share one StepCostModel per system (and its memo caches).

The satellite fix this guards: a frontier sweep evaluates many serving
scenarios on the same system, and each evaluation must reuse the engine's
step-cost pricing layer -- its operator lists, collective times, and
per-KV-length attention tables -- instead of rebuilding them per scenario.
The ``cache_hits`` / ``cache_misses`` counters on ``StepCostModel`` expose
the reuse directly.
"""

from repro.hardware.cluster import build_system
from repro.serving import LengthDistribution, ServingConfig, TraceConfig
from repro.sweep import Scenario, SweepRunner
from repro.sweep.scenario import engine_for

SYSTEM = build_system("A100", num_devices=1, name="A100-serving-cache")
MODEL = "Llama2-7B"


def serving_config(rate: float, seed: int = 41) -> ServingConfig:
    return ServingConfig(
        trace=TraceConfig(
            rate=rate,
            num_requests=8,
            prompt_lengths=LengthDistribution.uniform(64, 256),
            output_lengths=LengthDistribution.constant(16),
            seed=seed,
        )
    )


def test_engine_and_step_cost_are_shared_per_system():
    engine = engine_for(SYSTEM)
    assert engine_for(SYSTEM) is engine
    # predict_serving threads the engine's own step-cost layer into the
    # simulator rather than letting it build a fresh one.
    assert engine.step_cost is engine.inference_model.step_cost


def test_frontier_sweep_hits_step_cost_caches_across_scenarios():
    engine = engine_for(SYSTEM)
    step_cost = engine.step_cost
    runner = SweepRunner()

    first = runner.evaluate(Scenario.serving(SYSTEM, MODEL, serving_config(rate=1.0)))
    hits_after_first = step_cost.cache_hits
    misses_after_first = step_cost.cache_misses
    assert first.completed_requests == 8
    assert misses_after_first > 0  # cold: the caches had to be built once

    # The next point of the frontier (same seeded lengths, higher rate --
    # exactly what serving_latency_throughput_frontier sweeps) must be served
    # largely from the warm caches: hits grow much faster than misses.
    second = runner.evaluate(Scenario.serving(SYSTEM, MODEL, serving_config(rate=4.0)))
    assert second.completed_requests == 8
    assert engine.step_cost is step_cost  # still the same shared instance
    new_hits = step_cost.cache_hits - hits_after_first
    new_misses = step_cost.cache_misses - misses_after_first
    assert new_hits > 0
    assert new_hits > new_misses


def test_repeated_scenario_is_served_from_the_sweep_cache():
    runner = SweepRunner()
    scenario = Scenario.serving(SYSTEM, MODEL, serving_config(rate=2.0))
    first = runner.evaluate(scenario)
    engine = engine_for(SYSTEM)
    hits_before = engine.step_cost.cache_hits
    second = runner.evaluate(scenario)
    # The runner's result cache answers without re-simulating at all.
    assert engine.step_cost.cache_hits == hits_before
    assert first.to_dict() == second.to_dict()
