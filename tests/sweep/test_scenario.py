"""Tests for the frozen scenario spec and its canonical cache key."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.accelerator import get_accelerator
from repro.hardware.cluster import build_system
from repro.parallelism.config import ParallelismConfig
from repro.sweep import Scenario, ScenarioKind, SweepRunner, evaluate_scenario
from repro.core.reports import InferenceReport, TrainingReport


@pytest.fixture
def parallelism():
    return ParallelismConfig(data_parallel=2, tensor_parallel=4, micro_batch_size=1)


def test_scenarios_are_hashable_and_value_equal(single_node_a100, tiny_model, parallelism):
    first = Scenario.training(single_node_a100, tiny_model, parallelism, global_batch_size=4)
    # A structurally identical system built from scratch, not the same object.
    twin_system = build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")
    second = Scenario.training(twin_system, tiny_model, parallelism, global_batch_size=4)
    assert first == second
    assert hash(first) == hash(second)
    assert len({first, second}) == 1


def test_cache_key_stable_and_tag_independent(single_node_a100, tiny_model, parallelism):
    base = Scenario.training(single_node_a100, tiny_model, parallelism, global_batch_size=4)
    tagged = base.with_tag("labelled")
    assert base.cache_key() == tagged.cache_key()
    assert tagged.tag == "labelled"


def test_cache_key_separates_different_scenarios(single_node_a100, tiny_model, parallelism):
    keys = {
        Scenario.training(single_node_a100, tiny_model, parallelism, global_batch_size=4).cache_key(),
        Scenario.training(single_node_a100, tiny_model, parallelism, global_batch_size=8).cache_key(),
        Scenario.inference(single_node_a100, tiny_model).cache_key(),
        Scenario.inference(single_node_a100, tiny_model, batch_size=2).cache_key(),
        Scenario.training_memory(tiny_model, parallelism, global_batch_size=4).cache_key(),
    }
    assert len(keys) == 5


def test_cache_key_sees_system_differences(tiny_model, parallelism):
    a100 = build_system("A100", num_devices=8)
    h100 = build_system("H100", num_devices=8)
    assert (
        Scenario.training(a100, tiny_model, parallelism, global_batch_size=4).cache_key()
        != Scenario.training(h100, tiny_model, parallelism, global_batch_size=4).cache_key()
    )


def test_model_names_resolve_through_the_zoo(single_node_a100):
    scenario = Scenario.inference(single_node_a100, "Llama2-13B")
    assert scenario.model.name == "Llama2-13B"


def test_kind_validation():
    with pytest.raises(ConfigurationError):
        Scenario(kind=ScenarioKind.TRAINING)  # no system / model / parallelism
    with pytest.raises(ConfigurationError):
        Scenario(kind=ScenarioKind.INFERENCE)  # no system


def test_evaluate_training_scenario(single_node_a100, tiny_model, parallelism):
    scenario = Scenario.training(single_node_a100, tiny_model, parallelism, global_batch_size=4)
    report = evaluate_scenario(scenario)
    assert isinstance(report, TrainingReport)
    assert report.step_time > 0


def test_evaluate_inference_scenario(single_node_a100, tiny_model):
    scenario = Scenario.inference(single_node_a100, tiny_model, tensor_parallel=2)
    report = evaluate_scenario(scenario)
    assert isinstance(report, InferenceReport)
    assert report.total_latency > 0


def test_bottleneck_scenarios_key_on_the_accelerator_only(tiny_model):
    """Wrapping into a canonical system makes the cluster shape irrelevant."""
    from_device = Scenario.prefill_bottlenecks(get_accelerator("A100"), tiny_model)
    from_cluster = Scenario.prefill_bottlenecks(build_system("A100", num_devices=64), tiny_model)
    assert from_device.cache_key() == from_cluster.cache_key()


def test_attention_bound_evaluates_to_breakdown(tiny_model):
    scenario = Scenario.attention_bound(get_accelerator("A100"), tiny_model, micro_batch=1, seq_len=256)
    breakdown = evaluate_scenario(scenario)
    assert set(breakdown) >= {"compute_bound", "memory_bound"}


def test_decode_mode_distinguishes_cache_keys(single_node_a100):
    average = Scenario.inference(single_node_a100, "Llama2-13B")
    exact = Scenario.inference(single_node_a100, "Llama2-13B", decode_mode="exact")
    assert average.decode_mode == "average"
    assert average.cache_key() != exact.cache_key()


def test_decode_mode_exact_through_sweep_runner(single_node_a100):
    runner = SweepRunner()
    results = runner.run(
        [
            Scenario.inference(single_node_a100, "Llama2-13B", generated_tokens=50),
            Scenario.inference(single_node_a100, "Llama2-13B", generated_tokens=50, decode_mode="exact"),
        ]
    )
    average, exact = (result.report for result in results)
    assert runner.stats.evaluations == 2  # different cache keys, two evaluations
    assert exact.decode.total_time != average.decode.total_time
    assert exact.decode.total_time == pytest.approx(average.decode.total_time, rel=0.05)


def test_serving_scenario_requires_config(single_node_a100):
    from repro.models.zoo import get_model

    with pytest.raises(ConfigurationError):
        Scenario(kind=ScenarioKind.SERVING, system=single_node_a100, model=get_model("Llama2-7B"))


def test_serving_scenario_cache_key_is_deterministic(single_node_a100):
    from repro.serving import ServingConfig, TraceConfig

    def build(rate):
        return Scenario.serving(
            single_node_a100,
            "Llama2-7B",
            ServingConfig(trace=TraceConfig(rate=rate, num_requests=8)),
        )

    assert build(1.0).cache_key() == build(1.0).cache_key()
    assert build(1.0).cache_key() != build(2.0).cache_key()
    # Seed is part of the trace, hence of the key.
    seeded = Scenario.serving(
        single_node_a100,
        "Llama2-7B",
        ServingConfig(trace=TraceConfig(rate=1.0, num_requests=8, seed=99)),
    )
    assert seeded.cache_key() != build(1.0).cache_key()


def test_serving_scenario_evaluates_and_caches(single_node_a100):
    from repro.serving import LengthDistribution, ServingConfig, ServingReport, TraceConfig

    config = ServingConfig(
        trace=TraceConfig(
            rate=2.0,
            num_requests=6,
            prompt_lengths=LengthDistribution.uniform(32, 64),
            output_lengths=LengthDistribution.constant(8),
        )
    )
    scenario = Scenario.serving(single_node_a100, "Llama2-7B", config, tensor_parallel=2)
    runner = SweepRunner()
    first, second = runner.run([scenario, scenario])
    assert isinstance(first.report, ServingReport)
    assert first.report.completed_requests == 6
    assert runner.stats.evaluations == 1  # identical key deduplicated
    assert second.from_cache
    assert second.report.to_dict() == first.report.to_dict()


def test_fleet_scenario_requires_config(single_node_a100):
    from repro.models.zoo import get_model

    with pytest.raises(ConfigurationError):
        Scenario(kind=ScenarioKind.FLEET, system=single_node_a100, model=get_model("Llama2-7B"))


def test_fleet_scenario_cache_key_is_deterministic(single_node_a100):
    from repro.serving import FleetConfig, TraceConfig

    def build(replicas, router="round_robin"):
        return Scenario.fleet(
            single_node_a100,
            "Llama2-7B",
            FleetConfig(trace=TraceConfig(rate=1.0, num_requests=8), num_replicas=replicas, router=router),
        )

    assert build(2).cache_key() == build(2).cache_key()
    assert build(2).cache_key() != build(4).cache_key()
    assert build(2).cache_key() != build(2, router="least_queue").cache_key()


def test_fleet_scenario_evaluates_and_caches(single_node_a100):
    from repro.serving import FleetConfig, FleetReport, LengthDistribution, TraceConfig

    config = FleetConfig(
        trace=TraceConfig(
            rate=2.0,
            num_requests=6,
            prompt_lengths=LengthDistribution.uniform(32, 64),
            output_lengths=LengthDistribution.constant(8),
        ),
        num_replicas=2,
    )
    scenario = Scenario.fleet(single_node_a100, "Llama2-7B", config)
    runner = SweepRunner()
    first, second = runner.run([scenario, scenario])
    assert isinstance(first.report, FleetReport)
    assert first.report.completed_requests == 6
    assert first.report.num_replicas == 2
    assert runner.stats.evaluations == 1  # identical key deduplicated
    assert second.from_cache
    assert second.report.to_dict() == first.report.to_dict()


# ---------------------------------------------------------------------------
# Cache-key stability across process boundaries (the process executor ships
# scenarios to workers; their keys must not depend on the building process).
# ---------------------------------------------------------------------------

def _remote_cache_key(scenario):
    """Module-level so ProcessPoolExecutor can import it in the worker."""
    return scenario.cache_key()


def _stability_scenarios(system, model, parallelism):
    from repro.serving import (
        FleetConfig,
        FleetTraceConfig,
        LengthDistribution,
        SchedulerConfig,
        ServingConfig,
        ServingSLO,
        TenantTrace,
        TraceConfig,
    )

    serving = ServingConfig(
        trace=TraceConfig(
            rate=2.0,
            num_requests=4,
            prompt_lengths=LengthDistribution.uniform(16, 64),
            output_lengths=LengthDistribution.constant(8),
        ),
        scheduler=SchedulerConfig(max_batch_size=4),
        slo=ServingSLO(),
    )
    fleet = FleetConfig(
        trace=FleetTraceConfig(
            tenants=(
                TenantTrace(trace=serving.trace, name="a", diurnal=(1.0, 2.0)),
                TenantTrace(trace=TraceConfig(rate=1.0, num_requests=4, seed=7), name="b"),
            )
        ),
        num_replicas=2,
        router="least_queue",
    )
    return [
        Scenario.training(system, model, parallelism, global_batch_size=4),
        Scenario.inference(system, model, batch_size=2, decode_mode="exact"),
        Scenario.serving(system, model, serving),
        Scenario.fleet(system, model, fleet),
        Scenario.training_memory(model, parallelism, global_batch_size=4),
        Scenario.prefill_bottlenecks("A100", model, prompt_tokens=64),
        Scenario.attention_bound("A100", model, micro_batch=1, seq_len=128),
        Scenario.gemv_validation(),
    ]


def test_cache_key_survives_pickle_round_trip(single_node_a100, tiny_model, parallelism):
    import pickle

    for scenario in _stability_scenarios(single_node_a100, tiny_model, parallelism):
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        assert clone.cache_key() == scenario.cache_key(), scenario.kind


def test_cache_key_stable_across_process_executor(single_node_a100, tiny_model, parallelism):
    """Keys computed inside worker processes equal the parent's keys."""
    import concurrent.futures

    scenarios = _stability_scenarios(single_node_a100, tiny_model, parallelism)
    local = [scenario.cache_key() for scenario in scenarios]
    with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
        remote = list(pool.map(_remote_cache_key, scenarios))
    assert remote == local


def test_process_executor_results_hit_the_parent_cache(single_node_a100, tiny_model):
    """A process-executed scenario lands in the cache under the same key the
    serial path would use, so the re-run is served without re-evaluating."""
    runner = SweepRunner(executor="process", max_workers=2)
    grid = [Scenario.inference(single_node_a100, tiny_model, batch_size=batch) for batch in (1, 2)]
    runner.run(grid)
    assert runner.stats.evaluations == 2
    runner.run(grid)
    assert runner.stats.evaluations == 2
    assert runner.stats.cache_hits == 2
