"""Tests for the cross-scenario batch planner: bit-identity and fallbacks.

The planner's contract is that a ``SweepRunner`` with ``batch_planning=True``
(the default serial path) produces *exactly* the objects the one-at-a-time
reference loop produces -- same values bit for bit, same captured errors,
same raised error when capture is off, same stats -- while pricing a whole
generation of scenarios through one vectorized roofline call.
"""

import pytest

from repro.errors import MemoryCapacityError
from repro.hardware.datatypes import Precision
from repro.sweep import Scenario, SweepRunner, expand_grid
from repro.sweep.batchplan import (
    clear_plan_caches,
    decode_layer_gemms,
    evaluate_pending_batched,
    plan_scenario,
)
from repro.core.bottleneck import layer_gemms


def _run_both(scenarios, capture_errors=False):
    """Evaluate the same scenarios through the batched and reference paths."""
    batched = SweepRunner(batch_planning=True)
    reference = SweepRunner(batch_planning=False)
    batched_results = batched.run(scenarios, capture_errors=capture_errors)
    reference_results = reference.run(scenarios, capture_errors=capture_errors)
    return batched, batched_results, reference, reference_results


# ---------------------------------------------------------------------------
# Bit-identity across scenario kinds.
# ---------------------------------------------------------------------------


def test_decode_bottlenecks_grid_is_bit_identical(tiny_model):
    scenarios = [
        Scenario.decode_bottlenecks("A100", tiny_model, batch_size=combo["batch_size"], kv_len=combo["kv_len"])
        for combo in expand_grid(batch_size=[1, 2], kv_len=[1, 64, 200, 513])
    ]
    batched, batched_results, _, reference_results = _run_both(scenarios)
    assert batched.stats.batched_scenarios == len(scenarios)
    for ours, theirs in zip(batched_results, reference_results):
        assert ours.value == theirs.value  # exact float equality, entry by entry


def test_prefill_bottlenecks_is_bit_identical(tiny_model, tiny_swiglu_model):
    scenarios = [
        Scenario.prefill_bottlenecks("A100", tiny_model, batch_size=1, prompt_tokens=200),
        Scenario.prefill_bottlenecks("A100", tiny_swiglu_model, batch_size=4, prompt_tokens=128),
        Scenario.prefill_bottlenecks("H100", tiny_model, batch_size=2, prompt_tokens=64),
    ]
    batched, batched_results, _, reference_results = _run_both(scenarios)
    assert batched.stats.batched_scenarios == len(scenarios)
    for ours, theirs in zip(batched_results, reference_results):
        assert ours.value == theirs.value


def test_attention_bound_is_bit_identical(tiny_model):
    scenarios = [
        Scenario.attention_bound("A100", tiny_model, micro_batch=1, seq_len=seq_len)
        for seq_len in (128, 256)
    ]
    batched, batched_results, _, reference_results = _run_both(scenarios)
    assert batched.stats.batched_scenarios == len(scenarios)
    for ours, theirs in zip(batched_results, reference_results):
        assert ours.value == theirs.value


@pytest.mark.parametrize("decode_mode", ["average", "exact"])
def test_inference_is_bit_identical(decode_mode, tiny_model):
    scenarios = [
        Scenario.inference(
            system, tiny_model, batch_size=batch_size, generated_tokens=32, decode_mode=decode_mode
        )
        for system in ("A100", "A100x4")
        for batch_size in (1, 4)
    ]
    batched, batched_results, _, reference_results = _run_both(scenarios)
    assert batched.stats.batched_scenarios == len(scenarios)
    for ours, theirs in zip(batched_results, reference_results):
        assert ours.value == theirs.value


def test_mixed_kinds_interleave_batched_and_fallback(tiny_model):
    """Unbatchable kinds fall back to evaluate_scenario, in input order."""
    scenarios = [
        Scenario.decode_bottlenecks("A100", tiny_model, kv_len=100),
        Scenario.inference_memory(tiny_model, batch_size=2),  # no batchable pricing phase
        Scenario.inference(system="A100", model=tiny_model, generated_tokens=16),
        Scenario.training_memory(tiny_model, "2-2-1-1", global_batch_size=4),
    ]
    batched, batched_results, _, reference_results = _run_both(scenarios)
    assert batched.stats.batched_scenarios == 2  # the bottleneck table + inference
    assert batched.stats.evaluations == len(scenarios)
    for ours, theirs in zip(batched_results, reference_results):
        assert ours.value == theirs.value


# ---------------------------------------------------------------------------
# Error equivalence.
# ---------------------------------------------------------------------------


def test_plan_time_errors_are_captured_like_evaluation_errors(tiny_model):
    # Llama2-70B FP16 weights do not fit one A100: the admission check fires
    # at plan time in the batched path, at evaluation time in the reference.
    scenarios = [
        Scenario.inference("A100", "Llama2-70B", tensor_parallel=1),
        Scenario.inference("A100", tiny_model, generated_tokens=16),
    ]
    batched, batched_results, reference, reference_results = _run_both(scenarios, capture_errors=True)
    assert [r.error for r in batched_results] == [r.error for r in reference_results]
    assert batched_results[0].error is not None
    assert batched_results[1].value == reference_results[1].value
    assert batched.stats.errors == reference.stats.errors == 1


def test_uncaptured_errors_raise_the_earliest_input_error(tiny_model):
    first_bad = Scenario.inference("A100", "Llama2-70B", tensor_parallel=1, prompt_tokens=100)
    good = Scenario.inference("A100", tiny_model, generated_tokens=16)
    second_bad = Scenario.inference("A100", "Llama2-70B", tensor_parallel=1, prompt_tokens=300)
    runner = SweepRunner(batch_planning=True)
    with pytest.raises(MemoryCapacityError):
        runner.run([first_bad, good, second_bad])
    assert runner.stats.evaluations == 3  # everything still evaluated and cached
    results = runner.run([first_bad, good, second_bad], capture_errors=True)
    assert runner.stats.evaluations == 3
    assert [r.from_cache for r in results] == [True, True, True]


# ---------------------------------------------------------------------------
# The planner's entry points.
# ---------------------------------------------------------------------------


def test_evaluate_pending_batched_preserves_input_order(tiny_model):
    scenarios = [
        Scenario.decode_bottlenecks("A100", tiny_model, kv_len=kv_len) for kv_len in (300, 100, 200)
    ]
    pending = {scenario.cache_key(): scenario for scenario in scenarios}
    outcomes = evaluate_pending_batched(pending)
    assert [outcome.key for outcome in outcomes] == list(pending)
    assert all(outcome.batched for outcome in outcomes)
    assert all(outcome.error is None for outcome in outcomes)


def test_plan_scenario_returns_none_for_unbatchable_kinds(tiny_model):
    assert plan_scenario(Scenario.inference_memory(tiny_model)) is None
    assert plan_scenario(Scenario.training_memory(tiny_model, "2-2-1-1", global_batch_size=4)) is None


def test_single_pending_scenario_skips_the_planner(tiny_model):
    runner = SweepRunner(batch_planning=True)
    results = runner.run([Scenario.decode_bottlenecks("A100", tiny_model)])
    assert results[0].ok
    assert runner.stats.batched_scenarios == 0  # one scenario: the direct path


def test_batch_planning_off_never_batches(tiny_model):
    runner = SweepRunner(batch_planning=False)
    runner.run([Scenario.decode_bottlenecks("A100", tiny_model, kv_len=kv) for kv in (50, 60)])
    assert runner.stats.batched_scenarios == 0
    assert runner.stats.evaluations == 2


# ---------------------------------------------------------------------------
# Decode shape templates.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kv_len", [1, 2, 7, 64, 200, 513])
def test_decode_template_matches_full_layer_rebuild(kv_len, tiny_model, tiny_swiglu_model):
    clear_plan_caches()
    for model in (tiny_model, tiny_swiglu_model):  # MHA/GELU and GQA/SwiGLU
        for batch_size, tensor_parallel in ((1, 1), (2, 2)):
            templated = decode_layer_gemms(model, batch_size, kv_len, tensor_parallel, Precision.FP16)
            rebuilt = layer_gemms(model, batch_size, 1, kv_len, tensor_parallel, Precision.FP16, True)
            assert templated == rebuilt
