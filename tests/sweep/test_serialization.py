"""JSON round-trip tests for the report and memory-breakdown classes."""

import json

import pytest

from repro.core.engine import PerformancePredictionEngine
from repro.core.reports import InferenceReport, TrainingReport
from repro.hardware.cluster import build_system
from repro.memmodel.footprint import InferenceMemoryBreakdown, TrainingMemoryBreakdown
from repro.parallelism.config import ParallelismConfig


@pytest.fixture
def engine():
    return PerformancePredictionEngine(build_system("A100", num_devices=8))


@pytest.fixture
def training_report(engine, tiny_model):
    parallelism = ParallelismConfig(data_parallel=2, tensor_parallel=4, micro_batch_size=1)
    return engine.predict_training(tiny_model, parallelism, global_batch_size=4)


@pytest.fixture
def inference_report(engine, tiny_model):
    return engine.predict_inference(tiny_model, batch_size=2, tensor_parallel=2)


def test_training_report_json_round_trip(training_report):
    restored = TrainingReport.from_json(training_report.to_json())
    assert restored == training_report
    assert restored.step_time == pytest.approx(training_report.step_time)
    assert restored.memory == training_report.memory
    assert restored.kernel_breakdown == training_report.kernel_breakdown


def test_training_report_to_dict_is_json_safe(training_report):
    # json.dumps would raise on enums / dataclasses; to_dict must be plain.
    text = json.dumps(training_report.to_dict())
    assert training_report.model_name in text


def test_inference_report_json_round_trip(inference_report):
    restored = InferenceReport.from_json(inference_report.to_json())
    assert restored == inference_report
    assert restored.total_latency == pytest.approx(inference_report.total_latency)
    assert restored.prefill == inference_report.prefill
    assert restored.decode == inference_report.decode


def test_inference_report_preserves_bound_types(inference_report):
    restored = InferenceReport.from_json(inference_report.to_json())
    for original, copied in zip(inference_report.decode.kernel_breakdown, restored.decode.kernel_breakdown):
        assert original.bound is copied.bound


def test_memory_breakdown_round_trips(training_report, inference_report):
    training_memory = TrainingMemoryBreakdown.from_dict(training_report.memory.to_dict())
    assert training_memory == training_report.memory
    inference_memory = InferenceMemoryBreakdown.from_dict(inference_report.memory.to_dict())
    assert inference_memory == inference_report.memory
