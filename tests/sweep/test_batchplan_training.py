"""Training batched pricing and process-sharded planning: bit-identity."""

import pytest

from repro.hardware.datatypes import Precision
from repro.sweep import (
    BatchTimings,
    Scenario,
    SweepRunner,
    clear_engine_cache,
    evaluate_pending_batched,
    evaluate_shard,
)
from repro.sweep.runner import _split_shards


def _run_both(scenarios, capture_errors=False, **runner_kwargs):
    clear_engine_cache()
    batched = SweepRunner(batch_planning=True, **runner_kwargs)
    batched_results = batched.run(scenarios, capture_errors=capture_errors)
    clear_engine_cache()
    reference = SweepRunner(batch_planning=False)
    reference_results = reference.run(scenarios, capture_errors=capture_errors)
    return batched, batched_results, reference, reference_results


# ---------------------------------------------------------------------------
# Training bit-identity: batched collectives + GEMMs vs the scalar loop.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("precision", [Precision.FP16, Precision.FP8])
def test_training_parallelism_grid_is_bit_identical(precision, tiny_model):
    # DP/TP/PP/SP combos: pure DP, pure TP, TP+SP, PP, and a mixed mapping.
    labels = ["1-1-1-1", "2-1-1-1", "1-2-1-1", "1-2-1-2", "1-1-2-1", "2-2-2-1"]
    scenarios = [
        Scenario.training("A100x8", tiny_model, label, global_batch_size=16, precision=precision)
        for label in labels
    ]
    batched, batched_results, _, reference_results = _run_both(scenarios)
    assert batched.stats.batched_scenarios == len(scenarios)
    for ours, theirs in zip(batched_results, reference_results):
        assert ours.value.to_dict() == theirs.value.to_dict()  # exact float equality


def test_training_recompute_and_seq_len_are_bit_identical(tiny_model):
    scenarios = [
        Scenario.training(
            "A100x4", tiny_model, "2-2-1-1", global_batch_size=8, seq_len=seq_len, recompute=recompute
        )
        for seq_len in (128, 256)
        for recompute in ("none", "selective", "full")
    ]
    _, batched_results, _, reference_results = _run_both(scenarios)
    for ours, theirs in zip(batched_results, reference_results):
        assert ours.value.to_dict() == theirs.value.to_dict()


def test_training_mixed_with_other_kinds_is_bit_identical(tiny_model):
    scenarios = [
        Scenario.training("A100x4", tiny_model, "2-2-1-1", global_batch_size=8),
        Scenario.decode_bottlenecks("A100", tiny_model, kv_len=100),
        Scenario.inference_memory(tiny_model, batch_size=2),  # fallback kind
        Scenario.training("A100x4", tiny_model, "4-1-1-1", global_batch_size=8),
    ]
    batched, batched_results, _, reference_results = _run_both(scenarios)
    assert batched.stats.batched_scenarios == 3  # both trainings + the table
    for ours, theirs in zip(batched_results, reference_results):
        if hasattr(ours.value, "to_dict"):
            assert ours.value.to_dict() == theirs.value.to_dict()
        else:
            assert ours.value == theirs.value


# ---------------------------------------------------------------------------
# Process-sharded planning.
# ---------------------------------------------------------------------------


def test_process_sharded_matches_serial_batched(tiny_model):
    scenarios = [
        Scenario.training("A100x4", tiny_model, label, global_batch_size=8)
        for label in ("1-1-1-1", "2-1-1-1", "2-2-1-1", "4-1-1-1")
    ] + [
        Scenario.decode_bottlenecks("A100", tiny_model, kv_len=kv_len)
        for kv_len in (50, 100, 150)
    ]
    sharded, sharded_results, _, _ = _run_both(scenarios, executor="process", max_workers=2)
    clear_engine_cache()
    serial = SweepRunner(batch_planning=True)
    serial_results = serial.run(scenarios)
    assert sharded.stats.batched_scenarios == len(scenarios)
    assert sharded.stats.evaluations == len(scenarios)
    for ours, theirs in zip(sharded_results, serial_results):
        if hasattr(ours.value, "to_dict"):
            assert ours.value.to_dict() == theirs.value.to_dict()
        else:
            assert ours.value == theirs.value


def test_process_sharded_captures_errors_and_writes_disk_store(tiny_model, tmp_path):
    scenarios = [
        Scenario.training("A100x4", tiny_model, "2-2-1-1", global_batch_size=8),
        Scenario.inference("A100", "Llama2-70B", tensor_parallel=1),  # infeasible
        Scenario.decode_bottlenecks("A100", tiny_model, kv_len=75),
    ]
    clear_engine_cache()
    runner = SweepRunner(
        executor="process", max_workers=2, batch_planning=True, disk_cache=tmp_path, capture_errors=True
    )
    results = runner.run(scenarios)
    assert results[0].ok and results[2].ok
    assert results[1].error is not None
    assert runner.stats.errors == 1
    assert runner.disk_cache.count() == len(scenarios)
    # A fresh runner on the same store re-prices nothing.
    warm = SweepRunner(disk_cache=tmp_path, capture_errors=True)
    warm_results = warm.run(scenarios)
    assert warm.stats.evaluations == 0
    assert warm.stats.disk_hits == len(scenarios)
    for ours, theirs in zip(warm_results, results):
        if hasattr(ours.value, "to_dict"):
            assert ours.value.to_dict() == theirs.value.to_dict()
        else:
            assert ours.value == theirs.value


def test_evaluate_shard_returns_outcomes_and_timings(tiny_model):
    scenarios = [
        Scenario.decode_bottlenecks("A100", tiny_model, kv_len=kv_len) for kv_len in (10, 20)
    ]
    items = [(scenario.cache_key(), scenario) for scenario in scenarios]
    outcomes, timings = evaluate_shard(items)
    assert [outcome.key for outcome in outcomes] == [key for key, _ in items]
    assert all(outcome.batched for outcome in outcomes)
    assert timings.plan_seconds >= 0.0
    assert timings.price_seconds >= 0.0
    assert timings.scatter_seconds >= 0.0


def test_split_shards_contiguous_and_balanced():
    items = [(str(index), None) for index in range(7)]
    shards = _split_shards(items, 3)
    assert [len(shard) for shard in shards] == [3, 2, 2]
    assert [pair for shard in shards for pair in shard] == items
    assert _split_shards(items, 10) == [[item] for item in items]
    assert _split_shards(items, 1) == [items]


# ---------------------------------------------------------------------------
# Stage timings.
# ---------------------------------------------------------------------------


def test_batch_timings_accumulate(tiny_model):
    scenarios = [
        Scenario.decode_bottlenecks("A100", tiny_model, kv_len=kv_len) for kv_len in (30, 60)
    ]
    pending = {scenario.cache_key(): scenario for scenario in scenarios}
    timings = BatchTimings()
    evaluate_pending_batched(pending, timings=timings)
    first_plan = timings.plan_seconds
    assert first_plan > 0.0
    evaluate_pending_batched(pending, timings=timings)
    assert timings.plan_seconds > first_plan


def test_runner_stats_surface_stage_timings(tiny_model):
    runner = SweepRunner(batch_planning=True)
    runner.run([Scenario.decode_bottlenecks("A100", tiny_model, kv_len=kv) for kv in (10, 20, 30)])
    snapshot = runner.stats.snapshot()
    assert snapshot["keyhash_seconds"] > 0.0
    assert snapshot["plan_seconds"] > 0.0
    assert snapshot["price_seconds"] > 0.0
    assert snapshot["scatter_seconds"] > 0.0
