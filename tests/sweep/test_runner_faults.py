"""Tests for the sweep runner's crash tolerance and soft-timeout handling.

Real faults (a worker process dying, an evaluation wedging) are injected
through the test-only environment hooks in
:func:`repro.sweep.scenario.apply_test_fault_hooks` -- workers inherit the
environment, so arming a hook in the parent reaches every pool worker.
"""

import pytest

from repro.hardware.cluster import build_system
from repro.sweep import Scenario, SweepRunner


@pytest.fixture
def system():
    return build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")


def grid(system, tiny_model, count=6):
    return [
        Scenario.inference(system, tiny_model, batch_size=1 + index, tag=f"s{index}")
        for index in range(count)
    ]


def arm_crash_once(monkeypatch, tmp_path, tag):
    monkeypatch.setenv("REPRO_TEST_CRASH_TAG", tag)
    monkeypatch.setenv("REPRO_TEST_CRASH_ONCE", str(tmp_path / "crashed.marker"))


@pytest.mark.parametrize("batch_planning", [True, False], ids=["sharded", "per-scenario"])
def test_sweep_survives_worker_crash(monkeypatch, tmp_path, system, tiny_model, batch_planning):
    scenarios = grid(system, tiny_model)
    baseline = [r.value.total_latency for r in SweepRunner().run(scenarios)]

    arm_crash_once(monkeypatch, tmp_path, "s3")
    runner = SweepRunner(executor="process", max_workers=2, batch_planning=batch_planning)
    results = runner.run(scenarios)

    assert (tmp_path / "crashed.marker").exists()  # a worker really died
    assert runner.stats.pool_rebuilds == 1
    assert [r.error for r in results] == [None] * len(scenarios)
    assert [r.value.total_latency for r in results] == pytest.approx(baseline)


def test_crash_recovery_does_not_duplicate_recorded_results(
    monkeypatch, tmp_path, system, tiny_model
):
    scenarios = grid(system, tiny_model)
    arm_crash_once(monkeypatch, tmp_path, "s5")
    runner = SweepRunner(executor="process", max_workers=2)
    results = runner.run(scenarios)
    assert len(results) == len(scenarios)
    # Every scenario evaluated exactly once from the runner's point of view:
    # shards whose outcomes landed before the crash are not re-recorded.
    assert runner.stats.evaluations == len(scenarios)


def test_stalled_scenario_times_out_as_captured_error(monkeypatch, system, tiny_model):
    scenarios = grid(system, tiny_model, count=3)
    monkeypatch.setenv("REPRO_TEST_SLOW_TAG", "s1")
    monkeypatch.setenv("REPRO_TEST_SLOW_SECONDS", "30")
    runner = SweepRunner(
        executor="thread", max_workers=2, capture_errors=True, scenario_timeout=0.2
    )
    results = runner.run(scenarios)
    assert runner.stats.timeouts == 1
    stalled = [r for r in results if r.error is not None]
    assert len(stalled) == 1
    assert stalled[0].scenario.tag == "s1"
    assert "stalled past" in str(stalled[0].error)


def test_timeouts_are_transient_not_cached(monkeypatch, tmp_path, system, tiny_model):
    scenarios = grid(system, tiny_model, count=2)
    store = str(tmp_path / "cache")
    monkeypatch.setenv("REPRO_TEST_SLOW_TAG", "s0")
    monkeypatch.setenv("REPRO_TEST_SLOW_SECONDS", "30")
    first = SweepRunner(
        executor="thread", capture_errors=True, scenario_timeout=0.2, disk_cache=store
    )
    first.run(scenarios)
    assert first.stats.timeouts == 1

    # The stall was environmental: a later run without it re-evaluates the
    # stalled scenario (nothing was cached) and the rest comes off the disk.
    monkeypatch.delenv("REPRO_TEST_SLOW_TAG")
    second = SweepRunner(capture_errors=True, disk_cache=store)
    results = second.run(scenarios)
    assert [r.error for r in results] == [None, None]
    assert second.stats.evaluations == 1
    assert second.stats.disk_hits == 1
