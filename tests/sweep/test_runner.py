"""Tests for the sweep runner: dedup, caching, executors, error capture."""

import pytest

from repro.errors import MemoryCapacityError, ReproError
from repro.hardware.cluster import build_system
from repro.parallelism.config import ParallelismConfig
from repro.sweep import Scenario, SweepRunner, default_runner, expand_grid


@pytest.fixture
def system():
    return build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")


@pytest.fixture
def training_scenario(system, tiny_model):
    parallelism = ParallelismConfig(data_parallel=2, tensor_parallel=4, micro_batch_size=1)
    return Scenario.training(system, tiny_model, parallelism, global_batch_size=4)


def test_same_scenario_twice_evaluates_once(training_scenario):
    runner = SweepRunner()
    results = runner.run([training_scenario, training_scenario])
    assert runner.stats.evaluations == 1
    assert runner.stats.cache_hits == 1
    assert results[0].value == results[1].value
    assert not results[0].from_cache
    assert results[1].from_cache


def test_cache_persists_across_run_calls(training_scenario):
    runner = SweepRunner()
    first = runner.run([training_scenario])[0]
    second = runner.run([training_scenario])[0]
    assert runner.stats.evaluations == 1
    assert second.from_cache
    assert first.value == second.value


def test_differently_tagged_duplicates_share_one_evaluation(training_scenario):
    runner = SweepRunner()
    results = runner.run([training_scenario.with_tag("a"), training_scenario.with_tag("b")])
    assert runner.stats.evaluations == 1
    assert results[0].scenario.tag == "a"
    assert results[1].scenario.tag == "b"


def test_evaluate_single_scenario_uses_cache(training_scenario):
    runner = SweepRunner()
    first = runner.evaluate(training_scenario)
    second = runner.evaluate(training_scenario)
    assert runner.stats.evaluations == 1
    assert runner.stats.cache_hits == 1
    assert first == second


def test_results_preserve_input_order(system, tiny_model):
    runner = SweepRunner()
    scenarios = [Scenario.inference(system, tiny_model, batch_size=batch) for batch in (4, 1, 2)]
    results = runner.run(scenarios)
    assert [r.scenario.batch_size for r in results] == [4, 1, 2]


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_parallel_executors_match_serial(executor, system, tiny_model):
    grid = [
        Scenario.inference(system, tiny_model, batch_size=combo["batch_size"], tensor_parallel=combo["tensor_parallel"])
        for combo in expand_grid(batch_size=[1, 2], tensor_parallel=[1, 2])
    ]
    serial = [r.value.total_latency for r in SweepRunner().run(grid)]
    parallel = [r.value.total_latency for r in SweepRunner(executor=executor, max_workers=2).run(grid)]
    assert parallel == pytest.approx(serial)


def test_unknown_executor_rejected():
    with pytest.raises(ReproError):
        SweepRunner(executor="gpu")


def test_infeasible_scenarios_raise_by_default(system):
    # Llama2-70B FP16 weights do not fit a single A100.
    scenario = Scenario.inference(system, "Llama2-70B", tensor_parallel=1)
    with pytest.raises(MemoryCapacityError):
        SweepRunner().run([scenario])


def test_infeasible_scenarios_captured_on_request(system, tiny_model):
    runner = SweepRunner(capture_errors=True)
    bad = Scenario.inference(system, "Llama2-70B", tensor_parallel=1)
    good = Scenario.inference(system, tiny_model)
    results = runner.run([bad, good])
    assert not results[0].ok
    assert results[0].value is None
    assert "needs" in results[0].error.lower()
    assert results[1].ok
    assert runner.stats.errors == 1


def test_non_library_errors_always_propagate(monkeypatch, training_scenario):
    runner = SweepRunner(capture_errors=True)
    monkeypatch.setattr("repro.sweep.runner.evaluate_scenario", lambda scenario: (_ for _ in ()).throw(TypeError("bug")))
    with pytest.raises(TypeError):
        runner.run([training_scenario])


def test_duplicates_survive_a_disabled_cache(system, tiny_model):
    """cache_size=0 must still dedup within one run() call, not crash."""
    runner = SweepRunner(cache_size=0)
    scenario = Scenario.inference(system, tiny_model)
    results = runner.run([scenario, scenario])
    assert runner.stats.evaluations == 1
    assert results[0].value == results[1].value
    assert results[1].from_cache


def test_duplicates_survive_mid_run_eviction(system, tiny_model):
    """A repeat of an early scenario must not depend on the evictable LRU."""
    runner = SweepRunner(cache_size=1)
    first = Scenario.inference(system, tiny_model, batch_size=1)
    second = Scenario.inference(system, tiny_model, batch_size=2)
    results = runner.run([first, second, first])
    assert runner.stats.evaluations == 2
    assert results[0].value == results[2].value
    assert results[2].from_cache


def test_cache_eviction_keeps_runner_usable(system, tiny_model):
    runner = SweepRunner(cache_size=2)
    scenarios = [Scenario.inference(system, tiny_model, batch_size=batch) for batch in (1, 2, 3)]
    runner.run(scenarios)
    assert runner.stats.evaluations == 3
    # The oldest entry was evicted, so re-running it evaluates again.
    runner.run([scenarios[0]])
    assert runner.stats.evaluations == 4


def test_run_grid_expands_cartesian_product_with_axis_columns(system, tiny_model):
    runner = SweepRunner()
    table = runner.run_grid(
        lambda batch_size, tensor_parallel: Scenario.inference(
            system, tiny_model, batch_size=batch_size, tensor_parallel=tensor_parallel
        ),
        extract=lambda result: {"latency_s": result.value.total_latency},
        batch_size=[1, 2],
        tensor_parallel=[1, 2],
    )
    assert len(table) == 4
    assert runner.stats.evaluations == 4
    # Axis columns are attached in grid order, last axis fastest.
    assert table["batch_size"].tolist() == [1, 1, 2, 2]
    assert table["tensor_parallel"].tolist() == [1, 2, 1, 2]
    assert (table["latency_s"] > 0).all()


def test_run_grid_default_extract_has_error_column(system, tiny_model):
    runner = SweepRunner(capture_errors=True)
    table = runner.run_grid(
        lambda batch_size: Scenario.inference(system, tiny_model, batch_size=batch_size),
        batch_size=[1, 2],
    )
    assert table.keys() == ["batch_size", "error"]
    assert table["error"].tolist() == [None, None]


def test_expand_grid_orders_and_counts():
    combos = list(expand_grid(a=[1, 2], b=["x", "y", "z"]))
    assert len(combos) == 6
    assert combos[0] == {"a": 1, "b": "x"}
    assert combos[-1] == {"a": 2, "b": "z"}
    assert list(expand_grid()) == []


def test_default_runner_is_shared():
    assert default_runner() is default_runner()


def test_expand_grid_order_is_deterministic_and_follows_keywords():
    """Axis order = keyword order (last axis fastest), stable across calls."""
    first = list(expand_grid(a=[1, 2], b=["x", "y"], c=[True]))
    second = list(expand_grid(a=[1, 2], b=["x", "y"], c=[True]))
    assert first == second
    assert first == [
        {"a": 1, "b": "x", "c": True},
        {"a": 1, "b": "y", "c": True},
        {"a": 2, "b": "x", "c": True},
        {"a": 2, "b": "y", "c": True},
    ]
    # Reordering the keywords reorders the sweep, deterministically.
    swapped = list(expand_grid(b=["x", "y"], a=[1, 2], c=[True]))
    assert [(combo["a"], combo["b"]) for combo in swapped] == [(1, "x"), (2, "x"), (1, "y"), (2, "y")]


def test_on_result_streams_every_input_in_order_when_serial(system, tiny_model):
    runner = SweepRunner()
    scenario_a = Scenario.inference(system, tiny_model, batch_size=1)
    scenario_b = Scenario.inference(system, tiny_model, batch_size=2)
    seen = []
    results = runner.run([scenario_a, scenario_b, scenario_a], on_result=seen.append)
    assert len(seen) == 3
    assert [r.scenario.batch_size for r in seen] == [1, 1, 2]  # duplicate fires with its original
    assert [r.from_cache for r in seen] == [False, True, False]
    assert results[2].from_cache


def test_on_result_fires_cached_results_before_evaluations(system, tiny_model):
    runner = SweepRunner()
    warm = Scenario.inference(system, tiny_model, batch_size=1)
    cold = Scenario.inference(system, tiny_model, batch_size=2)
    runner.run([warm])
    seen = []
    runner.run([cold, warm], on_result=seen.append)
    assert [r.scenario.batch_size for r in seen] == [1, 2]  # cache hit first, then the evaluation
    assert [r.from_cache for r in seen] == [True, False]


def test_on_result_with_thread_executor_covers_every_scenario(system, tiny_model):
    runner = SweepRunner(executor="thread", max_workers=2)
    grid = [Scenario.inference(system, tiny_model, batch_size=batch) for batch in (1, 2, 3, 4)]
    seen = []
    results = runner.run(grid, on_result=seen.append)
    assert sorted(r.scenario.batch_size for r in seen) == [1, 2, 3, 4]
    assert [r.scenario.batch_size for r in results] == [1, 2, 3, 4]  # return stays input-ordered


def test_on_result_receives_captured_errors(system, tiny_model):
    runner = SweepRunner(capture_errors=True)
    bad = Scenario.inference(system, "Llama2-70B", tensor_parallel=1)
    seen = []
    runner.run([bad], on_result=seen.append)
    assert len(seen) == 1
    assert seen[0].error is not None


def test_uncaptured_errors_raise_deterministically_after_evaluating_everything(system, tiny_model):
    """With capture off, every pending scenario still evaluates (and caches)
    before the earliest input's error is raised -- in input order, even under
    a pooled executor where completion order varies."""
    first_bad = Scenario.inference(system, "Llama2-70B", tensor_parallel=1, prompt_tokens=100)
    good = Scenario.inference(system, tiny_model)
    second_bad = Scenario.inference(system, "Llama2-70B", tensor_parallel=1, prompt_tokens=300)
    for executor in ("serial", "thread"):
        runner = SweepRunner(executor=executor, max_workers=2)
        with pytest.raises(MemoryCapacityError):
            runner.run([first_bad, good, second_bad])
        assert runner.stats.evaluations == 3  # nothing was skipped
        # Everything landed in the cache before the raise: the captured
        # re-run is served entirely from it.
        results = runner.run([first_bad, good, second_bad], capture_errors=True)
        assert runner.stats.evaluations == 3
        assert [r.from_cache for r in results] == [True, True, True]
        assert results[1].ok and not results[0].ok and not results[2].ok
