"""Concurrent sweeps: several threads sharing ONE runner (the service setup).

The study service drives a single warm ``SweepRunner`` from a pool of worker
threads, so overlapping grids race on the shared LRU, the disk store, and the
stats counters.  These tests pin the contract that makes that safe: results
stay bit-identical to a serial reference, no thread observes a torn cache,
and the stats counters account for every input exactly once.
"""

import json
import threading

import pytest

from repro.hardware.cluster import build_system
from repro.sweep import Scenario, SweepRunner


@pytest.fixture
def system():
    return build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")


def _grid(system, model, batches):
    return [Scenario.inference(system, model, batch_size=batch) for batch in batches]


def _run_threads(runner, grids, results, errors):
    """Run each grid on its own thread, all released by one barrier."""
    barrier = threading.Barrier(len(grids))

    def work(slot, scenarios):
        try:
            barrier.wait()
            results[slot] = runner.run_table(scenarios)
        except Exception as error:  # noqa: BLE001 -- the assertion reports it
            errors.append(error)

    threads = [
        threading.Thread(target=work, args=(slot, grid)) for slot, grid in enumerate(grids)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_two_threads_overlapping_grids_bit_identical(system, tiny_model):
    batches_a = [1, 2, 4]
    batches_b = [2, 4, 8]  # overlaps A on 2 and 4

    # Serial reference on a fresh runner.
    reference = SweepRunner()
    expected_a = reference.run_table(_grid(system, tiny_model, batches_a)).to_json()
    expected_b = reference.run_table(_grid(system, tiny_model, batches_b)).to_json()

    shared = SweepRunner()
    results = [None, None]
    errors = []
    _run_threads(
        shared,
        [_grid(system, tiny_model, batches_a), _grid(system, tiny_model, batches_b)],
        results,
        errors,
    )

    assert errors == []
    assert results[0].to_json() == expected_a
    assert results[1].to_json() == expected_b


def test_concurrent_stats_account_for_every_input(system, tiny_model):
    shared = SweepRunner()
    grids = [
        _grid(system, tiny_model, [1, 2, 4, 2]),  # internal duplicate too
        _grid(system, tiny_model, [2, 4, 8]),
    ]
    total_inputs = sum(len(grid) for grid in grids)
    results = [None, None]
    errors = []
    _run_threads(shared, grids, results, errors)

    assert errors == []
    # Every input is either priced fresh or served from a cache, exactly once.
    # (Overlapping keys may race to a double evaluation; they must never be
    # double-counted for one input or dropped.)
    assert shared.stats.evaluations + shared.stats.cache_hits == total_inputs
    assert shared.stats.evaluations >= 4  # at least the distinct batch sizes
    assert shared.stats.errors == 0

    # A repeat of both grids is now fully warm: zero new evaluations.
    before = shared.stats.evaluations
    for grid in grids:
        shared.run(grid)
    assert shared.stats.evaluations == before


def test_many_threads_hammering_one_grid(system, tiny_model):
    shared = SweepRunner()
    grid_batches = [1, 2, 4, 8]
    thread_count = 6
    results = [None] * thread_count
    errors = []
    _run_threads(
        shared,
        [_grid(system, tiny_model, grid_batches) for _ in range(thread_count)],
        results,
        errors,
    )

    assert errors == []
    tables = [json.loads(table.to_json()) for table in results]
    assert all(table == tables[0] for table in tables[1:])
    assert shared.stats.evaluations + shared.stats.cache_hits == thread_count * len(grid_batches)


def test_concurrent_threads_share_disk_store(system, tiny_model, tmp_path):
    writer = SweepRunner(disk_cache=str(tmp_path))
    writer.run(_grid(system, tiny_model, [1, 2]))

    # A fresh runner over the same store: concurrent readers hit disk, never price.
    reader = SweepRunner(disk_cache=str(tmp_path))
    results = [None, None]
    errors = []
    _run_threads(
        reader,
        [_grid(system, tiny_model, [1, 2]), _grid(system, tiny_model, [1, 2])],
        results,
        errors,
    )
    assert errors == []
    assert reader.stats.evaluations == 0
    assert reader.stats.cache_hits == 4
