"""Tests for the persistent on-disk result store and its runner integration."""

import os
import pickle

import pytest

from repro.sweep import Scenario, SweepRunner
from repro.sweep.diskstore import (
    CACHE_DIR_ENV,
    FORMAT_VERSION,
    DiskResultStore,
    code_fingerprint,
    default_cache_root,
)
from repro.sweep.runner import _resolve_disk_cache


@pytest.fixture
def store(tmp_path):
    return DiskResultStore(root=tmp_path)


def _grid(model, count=4):
    return [Scenario.decode_bottlenecks("A100", model, kv_len=100 + index) for index in range(count)]


# ---------------------------------------------------------------------------
# Store primitives.
# ---------------------------------------------------------------------------


def test_put_get_roundtrip(store):
    assert store.get("abcd") is None
    assert store.put("abcd", value={"x": 1})
    assert store.get("abcd") == ({"x": 1}, None)
    assert store.count() == 1


def test_entries_shard_under_the_fingerprint(store):
    store.put("abcd", value=1)
    path = store.path_for("abcd")
    assert path.exists()
    assert path.parent.name == "ab"
    assert path.parent.parent.name == store.fingerprint
    assert store.fingerprint == code_fingerprint()


def test_corrupted_entry_reads_as_a_miss(store):
    store.put("abcd", value=1)
    store.path_for("abcd").write_bytes(b"not a pickle at all")
    assert store.get("abcd") is None


def test_truncated_entry_reads_as_a_miss(store):
    store.put("abcd", value=list(range(1000)))
    path = store.path_for("abcd")
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])
    assert store.get("abcd") is None


def test_foreign_record_shapes_read_as_a_miss(store):
    path = store.path_for("abcd")
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"weird": "shape"}))
    assert store.get("abcd") is None
    path.write_bytes(pickle.dumps((FORMAT_VERSION + 1, "value", None)))  # future format
    assert store.get("abcd") is None


def test_fingerprint_change_orphans_old_entries(tmp_path):
    old = DiskResultStore(root=tmp_path, fingerprint="aaaa")
    old.put("abcd", value=1)
    new = DiskResultStore(root=tmp_path, fingerprint="bbbb")
    assert new.get("abcd") is None  # a new code version never serves old results
    assert old.get("abcd") == (1, None)  # ...but does not delete them either


def test_unpicklable_values_fail_softly(store):
    assert not store.put("abcd", value=lambda: None)
    assert store.get("abcd") is None
    assert store.count() == 0


def test_cache_dir_env_overrides_the_default_root(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
    assert default_cache_root() == tmp_path / "elsewhere"
    assert DiskResultStore().root == tmp_path / "elsewhere"
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert str(default_cache_root()).endswith(os.path.join(".cache", "repro"))


# ---------------------------------------------------------------------------
# Runner integration.
# ---------------------------------------------------------------------------


def test_second_runner_prices_nothing(tmp_path, tiny_model):
    scenarios = _grid(tiny_model)
    first = SweepRunner(disk_cache=tmp_path)
    first_results = first.run(scenarios)
    assert first.stats.evaluations == len(scenarios)
    assert first.stats.disk_hits == 0

    second = SweepRunner(disk_cache=tmp_path)  # fresh process stand-in: empty LRU
    second_results = second.run(scenarios)
    assert second.stats.evaluations == 0
    assert second.stats.disk_hits == len(scenarios)
    assert second.stats.cache_hits == len(scenarios)
    for ours, theirs in zip(second_results, first_results):
        assert ours.value == theirs.value
        assert ours.from_cache


def test_disk_hits_promote_into_the_lru(tmp_path, tiny_model):
    scenario = _grid(tiny_model, count=1)[0]
    SweepRunner(disk_cache=tmp_path).run([scenario])
    runner = SweepRunner(disk_cache=tmp_path)
    runner.run([scenario])
    runner.run([scenario])
    assert runner.stats.disk_hits == 1  # the repeat was served from memory


def test_captured_errors_persist_and_are_served_from_disk(tmp_path):
    bad = Scenario.inference("A100", "Llama2-70B", tensor_parallel=1)
    first = SweepRunner(disk_cache=tmp_path, capture_errors=True)
    first_results = first.run([bad])
    assert first.stats.errors == 1

    second = SweepRunner(disk_cache=tmp_path, capture_errors=True)
    second_results = second.run([bad])
    assert second.stats.evaluations == 0
    assert second.stats.disk_hits == 1
    assert second.stats.errors == 0  # nothing fresh failed; the error was replayed
    assert second_results[0].error == first_results[0].error


def test_corrupted_store_reprices_instead_of_crashing(tmp_path, tiny_model):
    scenarios = _grid(tiny_model, count=2)
    first = SweepRunner(disk_cache=tmp_path)
    first_results = first.run(scenarios)
    store = first.disk_cache
    store.path_for(scenarios[0].cache_key()).write_bytes(b"garbage")

    second = SweepRunner(disk_cache=tmp_path)
    second_results = second.run(scenarios)
    assert second.stats.evaluations == 1  # only the damaged entry re-priced
    assert second.stats.disk_hits == 1
    assert [r.value for r in second_results] == [r.value for r in first_results]
    # The re-evaluation healed the damaged entry.
    assert store.get(scenarios[0].cache_key()) is not None


def test_process_pool_writers_share_one_store(tmp_path, tiny_model):
    scenarios = _grid(tiny_model)
    writer = SweepRunner(executor="process", max_workers=2, disk_cache=tmp_path)
    writer_results = writer.run(scenarios)
    assert writer.stats.evaluations == len(scenarios)
    assert writer.disk_cache.count() == len(scenarios)

    reader = SweepRunner(disk_cache=tmp_path)
    reader_results = reader.run(scenarios)
    assert reader.stats.evaluations == 0
    assert reader.stats.disk_hits == len(scenarios)
    for ours, theirs in zip(reader_results, writer_results):
        assert ours.value == theirs.value


def test_resolve_disk_cache_forms(tmp_path):
    assert _resolve_disk_cache(None) is None
    assert _resolve_disk_cache(False) is None
    built = DiskResultStore(root=tmp_path)
    assert _resolve_disk_cache(built) is built
    from_path = _resolve_disk_cache(tmp_path / "sub")
    assert isinstance(from_path, DiskResultStore)
    assert from_path.root == tmp_path / "sub"


def test_disk_cache_true_opens_the_default_store(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "default-root"))
    runner = SweepRunner(disk_cache=True)
    assert runner.disk_cache is not None
    assert runner.disk_cache.root == tmp_path / "default-root"


def test_disk_cache_off_by_default(tiny_model):
    runner = SweepRunner()
    assert runner.disk_cache is None


# ---------------------------------------------------------------------------
# Housekeeping: stats / clear / prune.
# ---------------------------------------------------------------------------


def test_stats_report_entries_and_bytes_per_fingerprint(tmp_path):
    current = DiskResultStore(root=tmp_path, fingerprint="current")
    stale = DiskResultStore(root=tmp_path, fingerprint="stale")
    current.put("aa11", value=1)
    current.put("bb22", value=2)
    stale.put("cc33", value=3)
    report = current.stats()
    assert set(report) == {"current", "stale"}
    assert report["current"]["entries"] == 2
    assert report["stale"]["entries"] == 1
    assert report["current"]["bytes"] > 0
    assert report["current"]["current"] == 1
    assert report["stale"]["current"] == 0
    assert current.fingerprints() == ["current", "stale"]


def test_stats_on_empty_root(tmp_path):
    store = DiskResultStore(root=tmp_path / "missing")
    assert store.stats() == {}
    assert store.fingerprints() == []


def test_clear_empties_only_the_current_fingerprint(tmp_path):
    current = DiskResultStore(root=tmp_path, fingerprint="current")
    stale = DiskResultStore(root=tmp_path, fingerprint="stale")
    current.put("aa11", value=1)
    current.put("bb22", value=2)
    stale.put("cc33", value=3)
    assert current.clear() == 2
    assert current.count() == 0
    assert current.get("aa11") is None
    assert stale.count() == 1
    assert current.clear() == 0  # idempotent


def test_prune_drops_stale_fingerprints(tmp_path):
    current = DiskResultStore(root=tmp_path, fingerprint="current")
    for name in ("old1", "old2"):
        DiskResultStore(root=tmp_path, fingerprint=name).put("aa11", value=1)
    current.put("bb22", value=2)
    assert current.prune() == ["old1", "old2"]
    assert current.fingerprints() == ["current"]
    assert current.count() == 1
    assert current.prune(keep_current=False) == ["current"]
    assert current.fingerprints() == []


# ---------------------------------------------------------------------------
# Degraded writes: environmental failures fall back to in-memory caching.
# ---------------------------------------------------------------------------


def _failing_replace(*args, **kwargs):
    raise OSError(28, "No space left on device")


def test_write_failures_warn_once_and_keep_the_sweep_alive(store, monkeypatch, caplog):
    import logging

    monkeypatch.setattr(os, "replace", _failing_replace)
    with caplog.at_level(logging.WARNING, logger="repro.sweep.diskstore"):
        assert store.put("aa11", value=1) is False
        assert store.put("bb22", value=2) is False
    warnings = [r for r in caplog.records if "disk result store write" in r.message]
    assert len(warnings) == 1  # one warning, however many puts fail


def test_writes_disable_after_consecutive_failures(store, monkeypatch):
    from repro.sweep.diskstore import WRITE_FAILURE_LIMIT

    monkeypatch.setattr(os, "replace", _failing_replace)
    for index in range(WRITE_FAILURE_LIMIT):
        assert not store.writes_disabled
        store.put(f"aa{index}", value=index)
    assert store.writes_disabled
    monkeypatch.undo()
    # Disabled is for the store's lifetime: even a healthy disk is not retried...
    assert store.put("bb00", value=1) is False
    assert store.count() == 0
    # ...but reads keep working (a fresh store sees the same directory).
    healthy = DiskResultStore(root=store.root)
    healthy.put("cc00", value=3)
    assert store.get("cc00") == (3, None)


def test_one_write_success_resets_the_failure_count(store, monkeypatch):
    real_replace = os.replace
    monkeypatch.setattr(os, "replace", _failing_replace)
    store.put("aa11", value=1)
    store.put("bb22", value=2)
    monkeypatch.setattr(os, "replace", real_replace)
    assert store.put("cc33", value=3) is True  # success resets the streak
    monkeypatch.setattr(os, "replace", _failing_replace)
    store.put("dd44", value=4)
    store.put("ee55", value=5)
    assert not store.writes_disabled  # never hit the consecutive limit


def test_unpicklable_values_do_not_count_toward_degrade(store):
    for _ in range(10):
        assert store.put("aa11", value=lambda: None) is False
    assert not store.writes_disabled
    assert store.put("bb22", value=2) is True


def test_degraded_store_keeps_runner_results_in_memory(tmp_path, tiny_model, monkeypatch):
    store = DiskResultStore(root=tmp_path)
    monkeypatch.setattr(os, "replace", _failing_replace)
    runner = SweepRunner(disk_cache=store)
    scenarios = _grid(tiny_model)
    first = runner.run(scenarios)
    second = runner.run(scenarios)
    assert runner.stats.evaluations == len(scenarios)  # LRU carried the re-run
    assert [r.value for r in second] == [r.value for r in first]
    assert store.count() == 0  # nothing landed on disk
