"""Vectorized scenario identity: ``cache_keys`` is pinned to ``cache_key``."""

import dataclasses

from repro.serving import FleetConfig, LengthDistribution, ServingConfig, TraceConfig
from repro.sweep import Scenario, ScenarioKind, cache_keys


def _serving_config() -> ServingConfig:
    return ServingConfig(
        trace=TraceConfig(
            rate=1.0,
            num_requests=4,
            prompt_lengths=LengthDistribution.uniform(64, 128),
            output_lengths=LengthDistribution.constant(8),
            seed=7,
        )
    )


def _fleet_config() -> FleetConfig:
    return FleetConfig(trace=_serving_config().trace, num_replicas=2, router="least_queue")


def _one_of_each_kind(tiny_model):
    """One scenario per ScenarioKind, covering every key field at least once."""
    return [
        Scenario.training("A100x4", tiny_model, "2-2-1-1", global_batch_size=8, seq_len=128),
        Scenario.inference("A100", tiny_model, batch_size=4, generated_tokens=16),
        Scenario.serving("A100", "Llama2-7B", _serving_config(), tensor_parallel=1),
        Scenario.fleet("A100", "Llama2-7B", _fleet_config(), tensor_parallel=1),
        Scenario.training_memory(tiny_model, "2-2-1-1", global_batch_size=8),
        Scenario.inference_memory(tiny_model, batch_size=2),
        Scenario.prefill_bottlenecks("A100", tiny_model, batch_size=1, prompt_tokens=128),
        Scenario.decode_bottlenecks("A100", tiny_model, batch_size=2, kv_len=100),
        Scenario.attention_bound("A100", tiny_model, micro_batch=1, seq_len=128),
        Scenario.gemv_validation(num_clusters=2, seed=11),
    ]


def test_cache_keys_covers_every_kind(tiny_model):
    scenarios = _one_of_each_kind(tiny_model)
    assert {scenario.kind for scenario in scenarios} == set(ScenarioKind)


def test_cache_keys_equal_scalar_cache_key(tiny_model):
    scenarios = _one_of_each_kind(tiny_model)
    # Scalar keys computed on twin copies so neither path sees pinned keys.
    twins = [dataclasses.replace(scenario) for scenario in scenarios]
    assert cache_keys(scenarios) == [twin.cache_key() for twin in twins]


def test_cache_keys_pin_and_reuse_per_scenario(tiny_model):
    scenario = Scenario.decode_bottlenecks("A100", tiny_model, kv_len=50)
    (key,) = cache_keys([scenario])
    assert scenario.__dict__.get("_cache_key") == key
    assert scenario.cache_key() == key
    assert cache_keys([scenario]) == [key]


def test_cache_keys_served_from_scalar_pin(tiny_model):
    scenario = Scenario.decode_bottlenecks("A100", tiny_model, kv_len=51)
    key = scenario.cache_key()
    assert cache_keys([scenario]) == [key]


def test_cache_keys_ignore_tag(tiny_model):
    plain = Scenario.decode_bottlenecks("A100", tiny_model, kv_len=52)
    tagged = Scenario.decode_bottlenecks("A100", tiny_model, kv_len=52, tag="sweep-7")
    assert cache_keys([plain, tagged]) == [plain.cache_key()] * 2


def test_cache_keys_distinguish_different_scenarios(tiny_model):
    scenarios = _one_of_each_kind(tiny_model)
    keys = cache_keys(scenarios)
    assert len(set(keys)) == len(keys)
