"""Tests for the columnar SweepTable and SweepRunner.run_table."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryCapacityError
from repro.hardware.cluster import build_system
from repro.sweep import Scenario, SweepRunner, SweepTable


@pytest.fixture
def system():
    return build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")


def _sample_table():
    return SweepTable(
        {
            "model": ["a", "b", "c"],
            "latency_ms": [1.5, 2.5, 3.5],
            "batch": [1, 2, 4],
            "ok": [True, True, False],
        }
    )


def test_columns_are_numpy_arrays():
    table = _sample_table()
    assert isinstance(table["latency_ms"], np.ndarray)
    assert table["latency_ms"].dtype == np.float64
    assert table["batch"].dtype.kind == "i"
    assert table["ok"].dtype == bool
    assert table["model"].dtype == object


def test_row_views_support_mapping_and_attribute_access():
    table = _sample_table()
    assert len(table) == 3
    row = table[1]
    assert row["model"] == "b"
    assert row.latency_ms == 2.5
    assert isinstance(row["latency_ms"], float)  # plain Python scalar, not np.generic
    assert isinstance(row["batch"], int)
    assert sorted(row.keys()) == ["batch", "latency_ms", "model", "ok"]
    assert table[-1]["model"] == "c"
    with pytest.raises(AttributeError):
        _ = row.missing_column


def test_iteration_and_row_materialization():
    table = _sample_table()
    assert [row["model"] for row in table] == ["a", "b", "c"]
    assert table.rows()[0] == {"model": "a", "latency_ms": 1.5, "batch": 1, "ok": True}


def test_derived_columns_and_where():
    table = _sample_table()
    table["latency_s"] = table["latency_ms"] / 1e3
    assert table[0]["latency_s"] == 0.0015
    fast = table.where(table["latency_ms"] < 3.0)
    assert len(fast) == 2
    assert fast["model"].tolist() == ["a", "b"]


def test_length_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        SweepTable({"a": [1, 2], "b": [1, 2, 3]})
    table = _sample_table()
    with pytest.raises(ConfigurationError):
        table["bad"] = [1.0]


def test_json_round_trip():
    table = _sample_table()
    rebuilt = SweepTable.from_json(table.to_json())
    assert rebuilt.keys() == table.keys()
    assert rebuilt.rows() == table.rows()
    assert rebuilt["latency_ms"].dtype == np.float64


def test_from_records_requires_consistent_keys():
    with pytest.raises(ConfigurationError):
        SweepTable.from_records([{"a": 1}, {"b": 2}])
    assert len(SweepTable.from_records([])) == 0


def test_run_table_default_extraction(system):
    runner = SweepRunner()
    scenarios = [Scenario.inference(system, "Llama2-13B", batch_size=batch) for batch in (1, 4)]
    table = runner.run_table(scenarios)
    assert len(table) == 2
    assert table[0]["model"] == "Llama2-13B"
    assert table["error"].tolist() == [None, None]


def test_run_table_custom_extraction(system):
    runner = SweepRunner()
    scenarios = [Scenario.inference(system, "Llama2-13B", batch_size=batch) for batch in (1, 2, 4)]
    table = runner.run_table(
        scenarios,
        extract=lambda result: {
            "batch": result.scenario.batch_size,
            "latency_ms": result.report.total_latency_ms,
        },
    )
    assert table["batch"].tolist() == [1, 2, 4]
    assert (table["latency_ms"] > 0).all()
    # Larger batches never reduce the request latency.
    assert (np.diff(table["latency_ms"]) >= 0).all()


def test_run_capture_errors_override(system):
    runner = SweepRunner()  # capture off by default
    infeasible = Scenario.inference(system, "GPT-175B", batch_size=512, tensor_parallel=1)
    with pytest.raises(MemoryCapacityError):
        runner.run([infeasible])
    results = runner.run([infeasible], capture_errors=True)
    assert results[0].error is not None
    # The override is per call: the runner default still raises.
    with pytest.raises(MemoryCapacityError):
        runner.run([infeasible])


def test_select_projects_columns_in_order():
    table = SweepTable({"a": [1, 2], "b": [3.0, 4.0], "c": ["x", "y"]})
    view = table.select(["c", "a"])
    assert view.keys() == ["c", "a"]
    assert view["a"].tolist() == [1, 2]
    assert len(view) == 2
    # Projection is a new table; mutating it leaves the original intact.
    view["d"] = [9, 9]
    assert "d" not in table.keys()


def test_select_unknown_column_raises():
    table = SweepTable({"a": [1, 2]})
    with pytest.raises(ConfigurationError):
        table.select(["a", "missing"])


def test_to_csv_renders_header_rows_and_none():
    table = SweepTable({"name": ["x", "y"], "value": [1.5, 2.5], "error": [None, "boom"]})
    text = table.to_csv()
    lines = text.strip().split("\n")
    assert lines[0] == "name,value,error"
    assert lines[1] == "x,1.5,"
    assert lines[2] == "y,2.5,boom"


def test_to_csv_quotes_and_float_format(tmp_path):
    table = SweepTable({"label": ['has,"comma"', "plain"], "value": [1 / 3, 2.0]})
    text = table.to_csv(float_format=".3f")
    lines = text.strip().split("\n")
    assert lines[1].startswith('"has,""comma"""')
    assert lines[1].endswith("0.333")

    path = tmp_path / "table.csv"
    written = table.to_csv(path=str(path), float_format=".3f")
    assert path.read_text() == written == text


def test_to_csv_default_floats_round_trip():
    value = 0.1 + 0.2  # not exactly 0.3; repr must preserve it
    table = SweepTable({"v": [value]})
    line = table.to_csv().strip().split("\n")[1]
    assert float(line) == value


def test_to_csv_empty_table():
    assert SweepTable({}).to_csv() == "\n"
