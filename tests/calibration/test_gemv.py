"""Tests for the GEMV calibration flow (Fig. 3 machinery)."""

import pytest

from repro.calibration.gemv import (
    DEFAULT_GEMV_SHAPES,
    cluster_utilization_factors,
    run_gemv_validation,
    synthesize_measurements,
    true_utilization,
)
from repro.errors import ConfigurationError


def test_true_utilization_monotonic_and_bounded():
    sizes = [1e5, 1e6, 1e7, 1e8, 1e9]
    values = [true_utilization(size) for size in sizes]
    assert values == sorted(values)
    assert all(0.4 <= value <= 0.85 for value in values)
    assert true_utilization(0) == pytest.approx(0.45)


def test_synthesize_measurements_deterministic():
    first = synthesize_measurements(seed=7)
    second = synthesize_measurements(seed=7)
    assert [s.measured_time for s in first] == [s.measured_time for s in second]
    different = synthesize_measurements(seed=8)
    assert [s.measured_time for s in first] != [s.measured_time for s in different]


def test_synthesized_times_grow_with_size():
    samples = sorted(synthesize_measurements(), key=lambda s: s.weight_bytes)
    assert samples[-1].measured_time > samples[0].measured_time
    assert len(samples) == len(DEFAULT_GEMV_SHAPES)


def test_cluster_utilization_factors_structure():
    samples = synthesize_measurements()
    model = cluster_utilization_factors(samples, num_clusters=3)
    assert model.table is not None
    assert len(model.table) == 3
    utilizations = [util for _, util in model.table]
    # Larger clusters achieve higher utilization (as in the underlying truth).
    assert utilizations == sorted(utilizations)
    assert all(0.3 < util <= 1.0 for util in utilizations)


def test_cluster_validation():
    with pytest.raises(ConfigurationError):
        cluster_utilization_factors([], num_clusters=3)
    with pytest.raises(ConfigurationError):
        cluster_utilization_factors(synthesize_measurements(), num_clusters=0)


def test_run_gemv_validation_varied_beats_constant():
    """The clustering-calibrated (varied) utilization predicts better than one constant factor (Fig. 3)."""
    result = run_gemv_validation(seed=2024)
    assert result.mean_error_varied_percent < result.mean_error_constant_percent
    assert result.mean_error_varied_percent < 8.0  # the paper reports 5.4% for the varied model
    assert len(result.points) == len(DEFAULT_GEMV_SHAPES)


def test_validation_points_have_positive_predictions():
    result = run_gemv_validation(seed=11)
    for point in result.points:
        assert point.predicted_varied > 0
        assert point.predicted_constant > 0
        assert point.measured_time > 0
        assert point.error_varied_percent >= 0


def test_validation_rows_export():
    result = run_gemv_validation()
    rows = result.as_rows()
    assert len(rows) == len(result.points)
    assert {"rows", "cols", "measured_us", "varied_us", "constant_us"}.issubset(rows[0].keys())
