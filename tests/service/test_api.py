"""Full-route API tests against the in-memory fakes, plus the real-runner
acceptance pins (warm resubmission prices zero; NDJSON row count == scenario
count; the fetched CSV is bit-identical to a direct run).
"""

import json
import threading

import pytest

from repro.studies import Study
from repro.service import (
    FakeClock,
    FakeStudyExecutor,
    InMemoryJobStore,
    ServiceApi,
    ServiceRegistry,
    StudyService,
    fake_catalogs,
)
from repro.sweep import SweepRunner


def _fake_study(total=3):
    return Study(
        name="fake-study",
        kind="gemv_validation",
        axes={"seed": list(range(total))},
    )


def make_api(executor=None, builders=None, clock=None):
    registry = ServiceRegistry(
        runner=None,
        jobs=InMemoryJobStore(),
        clock=clock or FakeClock(),
        catalogs=fake_catalogs(builders or {"fake-study": lambda **kw: _fake_study(**kw)}),
        executor=executor or FakeStudyExecutor(),
        workers=0,
    )
    service = StudyService(registry, start_workers=False)
    return ServiceApi(service), service


def post_spec(api, spec):
    return api.dispatch("POST", "/studies", body=json.dumps(spec).encode())


def drain_events(api, job_id):
    response = api.dispatch("GET", f"/jobs/{job_id}/events")
    assert response.status == 200
    assert response.content_type == "application/x-ndjson"
    return [json.loads(line) for line in response.stream]


# -- submission / lifecycle over the fakes -----------------------------------------------


def test_submit_inline_spec_queues_job_and_links():
    api, service = make_api()
    response = post_spec(api, _fake_study().to_dict())
    assert response.status == 202
    job = response.json_body()["job"]
    assert job["state"] == "queued"
    assert job["total_scenarios"] == 3
    assert job["links"]["table_csv"] == f"/jobs/{job['id']}/table.csv"
    service.run_next()
    status = api.dispatch("GET", f"/jobs/{job['id']}").json_body()["job"]
    assert status["state"] == "done"
    assert status["completed_rows"] == 3


def test_submit_registered_name_with_params():
    api, service = make_api()
    response = post_spec(api, {"study": "fake-study", "params": {"total": 2}})
    assert response.status == 202
    assert response.json_body()["job"]["total_scenarios"] == 2


def test_submit_unknown_registered_name_is_422():
    api, _ = make_api()
    response = post_spec(api, {"study": "nope"})
    assert response.status == 422
    error = response.json_body()["error"]
    assert "nope" in error["message"]
    assert error["type"] == "ConfigurationError"


def test_submit_bad_params_is_422():
    api, _ = make_api()
    response = post_spec(api, {"study": "fake-study", "params": {"bogus_kw": 1}})
    assert response.status == 422
    assert "bogus_kw" in response.json_body()["error"]["message"]


def test_submit_invalid_spec_is_422_naming_the_problem():
    api, _ = make_api()
    response = post_spec(api, {"name": "x", "kind": "inference", "fixed": {"model": "LLAMA2-7B"}})
    assert response.status == 422
    assert "system" in response.json_body()["error"]["message"]


def test_submit_malformed_bodies_are_400():
    api, _ = make_api()
    assert api.dispatch("POST", "/studies", body=b"").status == 400
    assert api.dispatch("POST", "/studies", body=b"{not json").status == 400
    assert api.dispatch("POST", "/studies", body=b"[1, 2]").status == 400


def test_routing_errors():
    api, _ = make_api()
    assert api.dispatch("GET", "/no/such/route").status == 404
    assert api.dispatch("GET", "/jobs/job-99").status == 404
    assert api.dispatch("DELETE", "/healthz").status == 405
    assert api.dispatch("POST", "/jobs").status == 405
    assert api.dispatch("GET", "/registry/nope").status == 404


def test_info_health_stats_and_registry_listings():
    api, _ = make_api()
    assert api.dispatch("GET", "/healthz").json_body() == {"status": "ok"}
    info = api.dispatch("GET", "/").json_body()
    assert info["service"] == "repro-serve"
    assert "POST /studies" in info["endpoints"]
    stats = api.dispatch("GET", "/stats").json_body()
    assert stats["jobs"]["queued"] == 0
    studies = api.dispatch("GET", "/registry/studies").json_body()["studies"]
    assert studies[0]["name"] == "fake-study"
    assert api.dispatch("GET", "/studies").json_body() == {"studies": studies}
    assert api.dispatch("GET", "/registry/models").json_body()["models"] == ["fake-model-7b"]


def test_rows_poll_offsets_and_table_exports():
    api, service = make_api()
    job_id = post_spec(api, _fake_study().to_dict()).json_body()["job"]["id"]
    # Table before completion: 409.
    assert api.dispatch("GET", f"/jobs/{job_id}/table.csv").status == 409
    service.run_next()
    page = api.dispatch("GET", f"/jobs/{job_id}/rows", query={"offset": "1"}).json_body()
    assert page["done"] and page["offset"] == 1 and page["next_offset"] == 3
    assert [row["index"] for row in page["rows"]] == [1, 2]
    assert api.dispatch("GET", f"/jobs/{job_id}/rows", query={"offset": "-1"}).status == 400
    assert api.dispatch("GET", f"/jobs/{job_id}/rows", query={"offset": "x"}).status == 400
    csv = api.dispatch("GET", f"/jobs/{job_id}/table.csv")
    assert csv.status == 200 and csv.content_type == "text/csv"
    assert csv.body.decode().splitlines()[0] == "index,value"
    as_json = api.dispatch("GET", f"/jobs/{job_id}/table.json")
    assert as_json.status == 200
    assert "index" in json.loads(as_json.body)["columns"]


def test_events_stream_rows_then_end():
    api, service = make_api()
    job_id = post_spec(api, _fake_study().to_dict()).json_body()["job"]["id"]
    service.run_next()
    events = drain_events(api, job_id)
    assert [event["event"] for event in events] == ["row", "row", "row", "end"]
    assert events[-1]["state"] == "done"
    assert events[-1]["completed_rows"] == 3
    assert all(event["scenario"]["kind"] == "gemv_validation" for event in events[:-1])


def test_cancel_queued_job_never_runs():
    api, service = make_api()
    job_id = post_spec(api, _fake_study().to_dict()).json_body()["job"]["id"]
    response = api.dispatch("POST", f"/jobs/{job_id}/cancel")
    assert response.status == 200
    assert response.json_body()["job"]["state"] == "cancelled"
    assert service.run_next() is None  # the worker skips the cancelled entry
    assert service.executor.executed == []
    # A second cancel (terminal) is a 409.
    assert api.dispatch("DELETE", f"/jobs/{job_id}").status == 409


def test_cancel_running_job_keeps_completed_rows():
    step = threading.Semaphore(0)
    api, service = make_api(executor=FakeStudyExecutor(step=step))
    job_id = post_spec(api, {"study": "fake-study", "params": {"total": 5}}).json_body()["job"]["id"]
    worker = threading.Thread(target=service.run_next)
    worker.start()
    try:
        step.release(2)  # let exactly two rows complete
        job = service.job(job_id)
        while len(job.rows) < 2:
            service.jobs.wait_rows(job, offset=0, timeout=0.05)
        assert api.dispatch("POST", f"/jobs/{job_id}/cancel").status == 200
        step.release(3)  # unblock; the hook raises at the next row
    finally:
        worker.join(timeout=10)
    assert not worker.is_alive()
    status = api.dispatch("GET", f"/jobs/{job_id}").json_body()["job"]
    assert status["state"] == "cancelled"
    assert status["completed_rows"] == 2
    events = drain_events(api, job_id)
    assert [event["event"] for event in events] == ["row", "row", "end"]
    assert events[-1]["state"] == "cancelled"


def test_failed_execution_reports_the_error():
    api, service = make_api(executor=FakeStudyExecutor(fail_with=RuntimeError("exploded"), fail_after=1))
    job_id = post_spec(api, _fake_study().to_dict()).json_body()["job"]["id"]
    service.run_next()
    status = api.dispatch("GET", f"/jobs/{job_id}").json_body()["job"]
    assert status["state"] == "failed"
    assert "exploded" in status["error"]
    assert status["completed_rows"] == 1
    assert drain_events(api, job_id)[-1]["error"] == status["error"]


def test_clock_drives_timestamps():
    clock = FakeClock(start=100.0)
    api, service = make_api(clock=clock)
    job_id = post_spec(api, _fake_study().to_dict()).json_body()["job"]["id"]
    clock.advance(5.0)
    service.run_next()
    status = api.dispatch("GET", f"/jobs/{job_id}").json_body()["job"]
    assert status["submitted_at"] == 100.0
    assert status["started_at"] == 105.0
    assert api.dispatch("GET", "/stats").json_body()["uptime_s"] == 5.0


# -- acceptance pins on the REAL runner --------------------------------------------------


REAL_SPEC = {
    "name": "batch-scan",
    "kind": "inference",
    "axes": {"batch_size": [1, 2, 4]},
    "fixed": {"system": "A100x2", "model": "LLAMA2-7B"},
}


@pytest.fixture
def real_api():
    runner = SweepRunner()
    registry = ServiceRegistry(runner=runner, jobs=InMemoryJobStore(), workers=0)
    service = StudyService(registry, start_workers=False)
    return ServiceApi(service), service, runner


def test_second_submission_prices_zero_scenarios(real_api):
    api, service, runner = real_api
    first = post_spec(api, REAL_SPEC).json_body()["job"]
    service.run_next()
    assert runner.stats.evaluations == 3
    assert api.dispatch("GET", f"/jobs/{first['id']}").json_body()["job"]["cached_rows"] == 0

    second = post_spec(api, REAL_SPEC).json_body()["job"]
    service.run_next()
    assert runner.stats.evaluations == 3  # nothing new priced
    status = api.dispatch("GET", f"/jobs/{second['id']}").json_body()["job"]
    assert status["state"] == "done"
    assert status["cached_rows"] == status["total_scenarios"] == 3


def test_streamed_row_count_equals_scenario_count(real_api):
    api, service, _ = real_api
    job = post_spec(api, REAL_SPEC).json_body()["job"]
    service.run_next()
    events = drain_events(api, job["id"])
    rows = [event for event in events if event["event"] == "row"]
    assert len(rows) == job["total_scenarios"]
    assert {row["source"] for row in rows} == {"priced"}
    assert all(row["scenario"]["model"] == "Llama2-7B" for row in rows)


def test_fetched_csv_bit_identical_to_direct_run(real_api):
    api, service, _ = real_api
    job_id = post_spec(api, REAL_SPEC).json_body()["job"]["id"]
    service.run_next()
    served = api.dispatch("GET", f"/jobs/{job_id}/table.csv").body.decode()
    direct = Study.from_dict(REAL_SPEC).run(runner=SweepRunner()).to_csv()
    assert served == direct
