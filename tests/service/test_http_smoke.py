"""One real-socket smoke test: the stdlib HTTP transport end to end.

Everything route-level lives in ``test_api.py`` against the fakes; this file
only proves the socket adapter works -- bind, submit over HTTP, stream the
NDJSON events, fetch the CSV, shut down cleanly.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import (
    InMemoryJobStore,
    ServiceApi,
    ServiceRegistry,
    StudyService,
    make_server,
)
from repro.studies import Study
from repro.sweep import SweepRunner

SPEC = {
    "name": "smoke-scan",
    "kind": "inference",
    "axes": {"batch_size": [1, 4]},
    "fixed": {"system": "A100x2", "model": "LLAMA2-7B"},
}


@pytest.fixture
def live_server():
    runner = SweepRunner()
    registry = ServiceRegistry(runner=runner, jobs=InMemoryJobStore(), workers=1)
    service = StudyService(registry)
    server = make_server(ServiceApi(service), host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", runner
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, response.read()


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def test_submit_stream_fetch_over_real_sockets(live_server):
    base, runner = live_server
    status, body = _get(f"{base}/healthz")
    assert status == 200 and json.loads(body) == {"status": "ok"}

    status, submitted = _post(f"{base}/studies", SPEC)
    assert status == 202
    job_id = submitted["job"]["id"]

    # The close-delimited NDJSON stream carries every row, then the end line.
    status, raw = _get(f"{base}/jobs/{job_id}/events")
    assert status == 200
    events = [json.loads(line) for line in raw.decode().splitlines()]
    assert sum(event["event"] == "row" for event in events) == 2
    assert events[-1] == {"event": "end", "state": "done", "completed_rows": 2, "error": None}

    status, csv_body = _get(f"{base}/jobs/{job_id}/table.csv")
    assert status == 200
    direct = Study.from_dict(SPEC).run(runner=SweepRunner()).to_csv()
    assert csv_body.decode() == direct

    # Warm resubmission over the same server prices nothing.
    evaluations_before = runner.stats.evaluations
    _, resubmitted = _post(f"{base}/studies", SPEC)
    resubmit_id = resubmitted["job"]["id"]
    _get(f"{base}/jobs/{resubmit_id}/events")  # blocks until terminal
    status, body = _get(f"{base}/jobs/{resubmit_id}")
    job = json.loads(body)["job"]
    assert job["state"] == "done"
    assert job["cached_rows"] == job["total_scenarios"] == 2
    assert runner.stats.evaluations == evaluations_before

    # A structured 422 travels over the wire too.
    bad = dict(SPEC, extract="no_such_extractor")
    with pytest.raises(urllib.error.HTTPError) as failure:
        _post(f"{base}/studies", bad)
    assert failure.value.code == 422
    assert "no_such_extractor" in json.loads(failure.value.read())["error"]["message"]
