"""Job store unit tests: lifecycle transitions, waiting readers, cancel rules."""

import threading

from repro.service import InMemoryJobStore, JobState


def _job(store, total=3):
    return store.create(study_name="s", spec={"name": "s"}, total_scenarios=total, at=1.0)


def test_create_assigns_sequential_ids_and_listing_order():
    store = InMemoryJobStore()
    first, second = _job(store), _job(store)
    assert [job.id for job in store.list()] == [first.id, second.id]
    assert first.id == "job-1" and second.id == "job-2"
    assert store.get("job-2") is second
    assert store.get("nope") is None


def test_lifecycle_done_path_and_counts():
    store = InMemoryJobStore()
    job = _job(store)
    assert job.state is JobState.QUEUED and not job.state.terminal
    store.mark_running(job, at=2.0)
    assert job.state is JobState.RUNNING and job.started_at == 2.0
    store.append_row(job, {"event": "row", "index": 0}, cached=True, errored=False)
    store.append_row(job, {"event": "row", "index": 1}, cached=False, errored=True)
    store.finish(job, table=None, at=3.0)
    assert job.state is JobState.DONE and job.state.terminal
    assert job.cached_rows == 1 and job.error_rows == 1
    assert store.counts()["done"] == 1
    status = job.status()
    assert status["completed_rows"] == 2
    assert status["links"]["events"] == f"/jobs/{job.id}/events"


def test_cancel_queued_is_immediate_and_terminal_refuses():
    store = InMemoryJobStore()
    job = _job(store)
    assert store.request_cancel(job, at=2.0)
    assert job.state is JobState.CANCELLED
    assert not store.request_cancel(job, at=3.0)  # already terminal


def test_cancel_running_only_sets_the_flag():
    store = InMemoryJobStore()
    job = _job(store)
    store.mark_running(job, at=2.0)
    assert store.request_cancel(job, at=3.0)
    assert job.state is JobState.RUNNING and job.cancel_requested


def test_wait_rows_returns_immediately_when_terminal():
    store = InMemoryJobStore()
    job = _job(store)
    store.fail(job, "boom", at=2.0)
    rows, terminal = store.wait_rows(job, offset=0, timeout=0.01)
    assert rows == [] and terminal
    assert job.error == "boom"


def test_wait_rows_blocks_until_a_row_arrives():
    store = InMemoryJobStore()
    job = _job(store)
    store.mark_running(job, at=2.0)

    def feed():
        store.append_row(job, {"index": 0}, cached=False, errored=False)

    feeder = threading.Timer(0.05, feed)
    feeder.start()
    try:
        rows, terminal = store.wait_rows(job, offset=0, timeout=5.0)
    finally:
        feeder.join()
    assert rows == [{"index": 0}] and not terminal
    # Offsets slice past what was already seen.
    rows, _ = store.wait_rows(job, offset=1, timeout=0.0)
    assert rows == []
