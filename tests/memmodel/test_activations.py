"""Tests for the activation-memory model and recomputation strategies."""

import pytest

from repro.errors import ConfigurationError
from repro.memmodel.activations import ActivationModel, RecomputeStrategy
from repro.models.zoo import get_model


def _model_for(model, tp=1, sp=False, micro_batch=1, seq=2048):
    return ActivationModel(
        model=model,
        micro_batch=micro_batch,
        seq_len=seq,
        tensor_parallel=tp,
        sequence_parallel=sp,
    )


def test_strategy_parse():
    assert RecomputeStrategy.parse("full") is RecomputeStrategy.FULL
    assert RecomputeStrategy.parse("SELECTIVE") is RecomputeStrategy.SELECTIVE
    assert RecomputeStrategy.parse(RecomputeStrategy.NONE) is RecomputeStrategy.NONE
    with pytest.raises(ConfigurationError):
        RecomputeStrategy.parse("partial")


def test_korthikanti_per_layer_formula_no_parallelism():
    """Without parallelism one GPT-175B layer stores sbh*(34 + 5as/h) bytes."""
    gpt = get_model("GPT-175B")
    activations = _model_for(gpt)
    sbh = 2048 * gpt.hidden_size
    expected = sbh * 34 + 5 * gpt.num_heads * 2048**2
    assert activations.total_activation_bytes_per_layer() == pytest.approx(expected, rel=1e-6)


def test_tensor_parallel_shards_only_part_of_the_activations():
    gpt = get_model("GPT-175B")
    full = _model_for(gpt, tp=1).total_activation_bytes_per_layer()
    tp8 = _model_for(gpt, tp=8).total_activation_bytes_per_layer()
    # TP shards the 24sbh + score terms but not the 10sbh term.
    assert full / 8 < tp8 < full


def test_sequence_parallel_shards_everything():
    gpt = get_model("GPT-175B")
    full = _model_for(gpt, tp=1).total_activation_bytes_per_layer()
    tp_sp = _model_for(gpt, tp=8, sp=True).total_activation_bytes_per_layer()
    assert tp_sp == pytest.approx(full / 8, rel=1e-6)


def test_strategy_ordering(tiny_model):
    activations = _model_for(tiny_model, seq=256)
    none = activations.activation_bytes(4, RecomputeStrategy.NONE)
    selective = activations.activation_bytes(4, RecomputeStrategy.SELECTIVE)
    full = activations.activation_bytes(4, RecomputeStrategy.FULL)
    assert none > selective > full > 0


def test_selective_matches_equation_2(tiny_model):
    activations = _model_for(tiny_model, seq=256)
    layers = 4
    expected = layers * (
        activations.total_activation_bytes_per_layer() - activations.selective_saving_bytes_per_layer()
    )
    assert activations.activation_bytes(layers, "selective") == pytest.approx(expected)


def test_full_matches_equation_1(tiny_model):
    activations = _model_for(tiny_model, seq=256)
    layers = 4
    a_inp = activations.input_activation_bytes_per_layer()
    a_tot = activations.total_activation_bytes_per_layer()
    # Default checkpoints every layer.
    expected = layers * a_inp + (a_tot - a_inp)
    assert activations.activation_bytes(layers, "full") == pytest.approx(expected)
    # Explicit checkpoint count.
    expected_two = 2 * a_inp + (layers / 2) * (a_tot - a_inp)
    assert activations.activation_bytes(layers, "full", checkpoints=2) == pytest.approx(expected_two)


def test_full_in_flight_only_multiplies_stored_checkpoints(tiny_model):
    activations = _model_for(tiny_model, seq=256)
    single = activations.activation_bytes(4, "full", in_flight_microbatches=1)
    multi = activations.activation_bytes(4, "full", in_flight_microbatches=4)
    stored = activations.stored_activation_bytes(4, "full")
    transient = activations.transient_recompute_bytes(4, "full")
    assert multi == pytest.approx(4 * stored + transient)
    assert multi < 4 * single


def test_selective_savings_equal_score_terms(tiny_model):
    activations = _model_for(tiny_model, seq=256)
    savings = activations.selective_saving_bytes_per_layer()
    assert savings == pytest.approx(
        activations.softmax_activation_bytes()
        + activations.dropout_mask_bytes()
        + activations.dropout_output_bytes()
    )
    assert savings == pytest.approx(5 * activations._score_unit_bytes)


def test_optimal_checkpoint_count_bounds(tiny_model):
    activations = _model_for(tiny_model, seq=256)
    optimum = activations.optimal_checkpoint_count(32)
    assert 1 <= optimum <= 32


def test_recompute_flops_overhead():
    activations = _model_for(get_model("GPT-7B"))
    assert activations.recompute_flops_overhead("full") == pytest.approx(1.0)
    assert activations.recompute_flops_overhead("none") == 0.0
    assert 0 < activations.recompute_flops_overhead("selective") < 0.1


def test_activation_grows_with_sequence_and_batch(tiny_model):
    short = _model_for(tiny_model, seq=128).total_activation_bytes_per_layer()
    long = _model_for(tiny_model, seq=512).total_activation_bytes_per_layer()
    assert long > 3 * short  # superlinear due to the attention-score terms
    single = _model_for(tiny_model, micro_batch=1, seq=256).total_activation_bytes_per_layer()
    double = _model_for(tiny_model, micro_batch=2, seq=256).total_activation_bytes_per_layer()
    assert double == pytest.approx(2 * single)


def test_summary_keys(tiny_model):
    summary = _model_for(tiny_model, seq=256).summary(4)
    assert summary["none"] > summary["selective"] > summary["full"]
    assert summary["per_layer_total"] > summary["per_layer_input"]


def test_validation(tiny_model):
    with pytest.raises(ConfigurationError):
        ActivationModel(model=tiny_model, micro_batch=0, seq_len=128)
