"""Tests for training and inference memory footprints."""

import pytest

from repro.errors import MemoryCapacityError
from repro.hardware.datatypes import Precision
from repro.memmodel.footprint import (
    check_training_fits,
    inference_memory_breakdown,
    kv_cache_bytes,
    model_weight_bytes,
    training_memory_breakdown,
)
from repro.models.zoo import get_model
from repro.parallelism.config import ParallelismConfig
from repro.units import GB


def test_kv_cache_formula_matches_paper(llama2_13b):
    """KV bytes = 2 * B * context * precision * layers * hidden for MHA models."""
    expected = 2 * 1 * 400 * 2 * llama2_13b.num_layers * llama2_13b.hidden_size
    assert kv_cache_bytes(llama2_13b, batch_size=1, context_len=400) == pytest.approx(expected)


def test_kv_cache_scales_linearly(llama2_13b):
    base = kv_cache_bytes(llama2_13b, 1, 400)
    assert kv_cache_bytes(llama2_13b, 16, 400) == pytest.approx(16 * base)
    assert kv_cache_bytes(llama2_13b, 1, 800) == pytest.approx(2 * base)
    assert kv_cache_bytes(llama2_13b, 1, 400, tensor_parallel=4) == pytest.approx(base / 4)
    assert kv_cache_bytes(llama2_13b, 1, 400, precision=Precision.FP8) == pytest.approx(base / 2)


def test_kv_cache_gqa_is_smaller():
    llama70 = get_model("Llama2-70B")
    gqa = kv_cache_bytes(llama70, 1, 400)
    # With 8 KV heads out of 64, the cache is 8x smaller than full MHA would be.
    full_equivalent = 2 * 1 * 400 * 2 * llama70.num_layers * llama70.hidden_size
    assert gqa == pytest.approx(full_equivalent / 8)


def test_model_weight_bytes_sharding(llama2_13b):
    full = model_weight_bytes(llama2_13b)
    assert full == pytest.approx(llama2_13b.num_parameters * 2, rel=1e-3)
    tp4 = model_weight_bytes(llama2_13b, tensor_parallel=4)
    assert tp4 < full / 3.5


def test_training_breakdown_components(gpt_175b):
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    breakdown = training_memory_breakdown(gpt_175b, config, global_batch_size=64, strategy="full")
    # Parameters and gradients at 2 bytes each, optimizer at 12 bytes per parameter.
    assert breakdown.gradient_bytes == pytest.approx(breakdown.parameter_bytes)
    assert breakdown.optimizer_bytes == pytest.approx(6 * breakdown.parameter_bytes)
    assert breakdown.total_bytes == pytest.approx(
        breakdown.parameter_bytes + breakdown.gradient_bytes + breakdown.optimizer_bytes + breakdown.activation_bytes
    )
    assert breakdown.model_state_bytes < breakdown.total_bytes


def test_training_breakdown_strategy_ordering(gpt_175b):
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    totals = {
        strategy: training_memory_breakdown(gpt_175b, config, global_batch_size=64, strategy=strategy).total_bytes
        for strategy in ("none", "selective", "full")
    }
    assert totals["none"] > totals["selective"] > totals["full"]


def test_fig4_narrative_on_a100(gpt_175b):
    """No recomputation overflows an 80 GB A100; full recomputation fits (Table 1 runs exist)."""
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    none = training_memory_breakdown(gpt_175b, config, global_batch_size=64, strategy="none")
    full = training_memory_breakdown(gpt_175b, config, global_batch_size=64, strategy="full")
    assert not none.fits(80 * GB)
    assert full.fits(80 * GB)


def test_sequence_parallel_reduces_activation_memory(gpt_175b):
    base = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    sp = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1, sequence_parallel=True)
    plain = training_memory_breakdown(gpt_175b, base, global_batch_size=64, strategy="selective")
    sharded = training_memory_breakdown(gpt_175b, sp, global_batch_size=64, strategy="selective")
    assert sharded.activation_bytes < plain.activation_bytes
    assert sharded.parameter_bytes == pytest.approx(plain.parameter_bytes)


def test_in_flight_override(gpt_175b):
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    default = training_memory_breakdown(gpt_175b, config, global_batch_size=64, strategy="none")
    single = training_memory_breakdown(
        gpt_175b, config, global_batch_size=64, strategy="none", in_flight_microbatches=1
    )
    assert default.activation_bytes == pytest.approx(8 * single.activation_bytes)


def test_check_training_fits_raises(gpt_175b):
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    breakdown = training_memory_breakdown(gpt_175b, config, global_batch_size=64, strategy="none")
    with pytest.raises(MemoryCapacityError):
        check_training_fits(breakdown, 80 * GB, label="GPT-175B none")
    check_training_fits(breakdown, 1000 * GB)


def test_inference_breakdown(llama2_13b):
    breakdown = inference_memory_breakdown(llama2_13b, batch_size=1, context_len=400)
    assert breakdown.weight_bytes / GB == pytest.approx(26, rel=0.05)
    assert breakdown.kv_cache_bytes < breakdown.weight_bytes
    assert breakdown.total_bytes > breakdown.weight_bytes
    assert breakdown.fits(80 * GB)
    as_dict = breakdown.as_dict()
    assert set(as_dict) == {"weights", "kv_cache", "activations", "total"}


def test_inference_breakdown_batch_grows_kv_only(llama2_13b):
    small = inference_memory_breakdown(llama2_13b, batch_size=1, context_len=400)
    large = inference_memory_breakdown(llama2_13b, batch_size=16, context_len=400)
    assert large.weight_bytes == pytest.approx(small.weight_bytes)
    assert large.kv_cache_bytes == pytest.approx(16 * small.kv_cache_bytes)


def test_breakdown_as_dict_keys(gpt_175b):
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    as_dict = training_memory_breakdown(gpt_175b, config, global_batch_size=64).as_dict()
    assert set(as_dict) == {"parameters", "gradients", "optimizer", "activations", "total"}
