"""Tests for unit constants and conversions."""

import pytest

from repro import units


def test_data_volume_constants():
    assert units.KIB == 1024
    assert units.MIB == 1024**2
    assert units.GIB == 1024**3
    assert units.GB == 1e9
    assert units.TB == 1e12


def test_bandwidth_and_throughput_constants():
    assert units.GBPS == 1e9
    assert units.TBPS == 1e12
    assert units.TFLOPS == 1e12
    assert units.PFLOPS == 1e15


def test_time_constants_are_consistent():
    assert units.MILLISECOND == pytest.approx(1e-3)
    assert units.MICROSECOND == pytest.approx(1e-6)
    assert units.MILLISECOND / units.MICROSECOND == pytest.approx(1000.0)


def test_to_milliseconds_and_back():
    assert units.to_milliseconds(1.5) == pytest.approx(1500.0)
    assert units.from_milliseconds(units.to_milliseconds(0.123)) == pytest.approx(0.123)


def test_to_microseconds():
    assert units.to_microseconds(2e-6) == pytest.approx(2.0)


def test_to_gigabytes_decimal_vs_binary():
    assert units.to_gigabytes(80e9) == pytest.approx(80.0)
    assert units.to_gibibytes(units.GIB) == pytest.approx(1.0)
    assert units.to_gigabytes(units.GIB) > 1.0


def test_to_teraflops():
    assert units.to_teraflops(312e12) == pytest.approx(312.0)
