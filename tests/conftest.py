"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.hardware.accelerator import get_accelerator
from repro.hardware.cluster import build_system
from repro.models.transformer import MLPActivation, TransformerConfig
from repro.models.zoo import get_model


@pytest.fixture
def a100():
    """The A100-80GB accelerator spec."""
    return get_accelerator("A100")


@pytest.fixture
def h100():
    """The H100-SXM accelerator spec."""
    return get_accelerator("H100")


@pytest.fixture
def tiny_model():
    """A small decoder model that keeps tests fast."""
    return TransformerConfig(
        name="tiny-gpt",
        num_layers=4,
        hidden_size=512,
        num_heads=8,
        vocab_size=32000,
        max_seq_len=256,
    )


@pytest.fixture
def tiny_swiglu_model():
    """A small Llama-style (SwiGLU, GQA) decoder model."""
    return TransformerConfig(
        name="tiny-llama",
        num_layers=4,
        hidden_size=512,
        num_heads=8,
        num_kv_heads=2,
        ffn_hidden_size=1408,
        vocab_size=32000,
        max_seq_len=256,
        mlp_activation=MLPActivation.SWIGLU,
        tie_embeddings=False,
    )


@pytest.fixture
def gpt_175b():
    """The GPT-175B configuration from the model zoo."""
    return get_model("GPT-175B")


@pytest.fixture
def llama2_13b():
    """The Llama2-13B configuration from the model zoo."""
    return get_model("Llama2-13B")


@pytest.fixture
def single_node_a100():
    """An 8-GPU A100 node with NVLink3 inside and HDR InfiniBand outside."""
    return build_system("A100", num_devices=8, intra_node="NVLink3", inter_node="HDR-IB")


@pytest.fixture
def a100_cluster_64():
    """A 64-GPU A100 cluster (8 nodes)."""
    return build_system("A100", num_devices=64, intra_node="NVLink3", inter_node="HDR-IB")


@pytest.fixture
def h100_node():
    """An 8-GPU H100 node with NVLink4 inside and NDR InfiniBand outside."""
    return build_system("H100", num_devices=8, intra_node="NVLink4", inter_node="NDR-IB")
