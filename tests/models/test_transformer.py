"""Tests for the transformer model configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.models.transformer import MLPActivation, TransformerConfig


def _gpt(name="test", layers=4, hidden=1024, heads=16, **kwargs):
    return TransformerConfig(name=name, num_layers=layers, hidden_size=hidden, num_heads=heads, **kwargs)


def test_defaults():
    model = _gpt()
    assert model.num_kv_heads == model.num_heads
    assert model.ffn_hidden_size == 4 * model.hidden_size
    assert model.head_dim == 64
    assert model.num_mlp_matrices == 2


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        _gpt(hidden=1000, heads=16)  # not divisible by heads
    with pytest.raises(ConfigurationError):
        _gpt(layers=0)
    with pytest.raises(ConfigurationError):
        TransformerConfig(name="bad", num_layers=2, hidden_size=512, num_heads=8, num_kv_heads=3)
    with pytest.raises(ConfigurationError):
        _gpt(vocab_size=0)


def test_gqa_kv_hidden_size():
    model = TransformerConfig(name="gqa", num_layers=2, hidden_size=1024, num_heads=16, num_kv_heads=4)
    assert model.kv_hidden_size == 4 * model.head_dim
    assert model.kv_hidden_size < model.hidden_size


def test_parameter_counts_standard_attention():
    model = _gpt(hidden=1024)
    # Q, K, V, and output projections are each h*h for full MHA.
    assert model.attention_parameters_per_layer == 4 * 1024 * 1024
    assert model.mlp_parameters_per_layer == 2 * 1024 * 4096
    assert model.norm_parameters_per_layer == 4 * 1024


def test_parameter_counts_swiglu():
    model = _gpt(mlp_activation=MLPActivation.SWIGLU, ffn_hidden_size=2816)
    assert model.num_mlp_matrices == 3
    assert model.mlp_parameters_per_layer == 3 * 1024 * 2816


def test_total_parameters_match_headline_sizes():
    gpt175 = TransformerConfig(name="gpt175", num_layers=96, hidden_size=12288, num_heads=96, vocab_size=51200)
    assert gpt175.num_parameters == pytest.approx(175e9, rel=0.05)
    gpt530 = TransformerConfig(name="gpt530", num_layers=105, hidden_size=20480, num_heads=128, vocab_size=51200)
    assert gpt530.num_parameters == pytest.approx(530e9, rel=0.05)


def test_llama_like_parameter_count():
    llama13 = TransformerConfig(
        name="llama13",
        num_layers=40,
        hidden_size=5120,
        num_heads=40,
        ffn_hidden_size=13824,
        vocab_size=32000,
        mlp_activation=MLPActivation.SWIGLU,
        tie_embeddings=False,
    )
    assert llama13.num_parameters == pytest.approx(13e9, rel=0.05)


def test_flops_per_token_scales_with_parameters():
    small = _gpt(hidden=1024)
    large = _gpt(hidden=2048, heads=16)
    assert large.flops_per_token_forward() > small.flops_per_token_forward()
    # Roughly 2 FLOPs per parameter per token for short sequences.
    assert small.flops_per_token_forward(seq_len=1) == pytest.approx(
        2 * (small.attention_parameters_per_layer + small.mlp_parameters_per_layer) * small.num_layers
        + 2 * 2 * small.hidden_size * small.num_layers
        + 2 * small.vocab_size * small.hidden_size
    )


def test_flops_per_sequence_training_is_three_times_forward():
    model = _gpt()
    assert model.flops_per_sequence_training(128) == pytest.approx(3 * model.flops_per_sequence_forward(128))


def test_flops_quadratic_term_grows_with_sequence():
    model = _gpt()
    short = model.flops_per_sequence_forward(128) / 128
    long = model.flops_per_sequence_forward(4096) / 4096
    assert long > short


def test_scaled_variant():
    model = _gpt(hidden=1024, heads=16)
    wider = model.scaled("wider", hidden_factor=2.0)
    assert wider.hidden_size == 2048
    assert wider.ffn_hidden_size == 4 * 2048
    deeper = model.scaled("deeper", layer_factor=3.0)
    assert deeper.num_layers == 12


def test_summary_contents():
    summary = _gpt().summary()
    assert summary["layers"] == 4
    assert summary["parameters"] > 0
