"""Tests for the model zoo."""

import pytest

from repro.errors import UnknownModelError
from repro.models.transformer import MLPActivation, TransformerConfig
from repro.models.zoo import get_model, list_models, register_model


def test_gpt_sizes_match_names():
    expectations = {
        "GPT-7B": 7e9,
        "GPT-22B": 22e9,
        "GPT-175B": 175e9,
        "GPT-310B": 310e9,
        "GPT-530B": 530e9,
        "GPT-1008B": 1008e9,
    }
    for name, size in expectations.items():
        model = get_model(name)
        assert model.num_parameters == pytest.approx(size, rel=0.12), name


def test_llama_sizes_match_names():
    for name, size in {"Llama2-7B": 6.7e9, "Llama2-13B": 13e9, "Llama2-70B": 69e9}.items():
        model = get_model(name)
        assert model.num_parameters == pytest.approx(size, rel=0.08), name


def test_llama_models_use_swiglu_and_untied_embeddings():
    for name in ("Llama2-7B", "Llama2-13B", "Llama2-70B"):
        model = get_model(name)
        assert model.mlp_activation is MLPActivation.SWIGLU
        assert not model.tie_embeddings


def test_llama70b_uses_grouped_query_attention():
    model = get_model("Llama2-70B")
    assert model.num_kv_heads == 8
    assert model.num_kv_heads < model.num_heads


def test_gpt_models_use_paper_vocab_and_sequence():
    model = get_model("GPT-175B")
    assert model.vocab_size == 51200
    assert model.max_seq_len == 2048
    assert model.num_layers == 96
    assert model.hidden_size == 12288


def test_aliases_and_case_insensitive_lookup():
    assert get_model("gpt-1t").name == "GPT-1008B"
    assert get_model("GPT3-175B").name == "GPT-175B"
    assert get_model("llama-2-13b").name == "Llama2-13B"


def test_unknown_model_raises():
    with pytest.raises(UnknownModelError):
        get_model("GPT-9000B")


def test_list_models_contains_all_families():
    names = list_models()
    assert any(name.startswith("GPT") for name in names)
    assert any(name.startswith("Llama2") for name in names)
    assert len(names) >= 9


def test_register_model_roundtrip():
    custom = TransformerConfig(name="Custom-1B", num_layers=16, hidden_size=2048, num_heads=16)
    register_model(custom)
    assert get_model("custom-1b").hidden_size == 2048
