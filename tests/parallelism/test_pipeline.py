"""Tests for pipeline schedules and bubble modeling."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.datatypes import Precision
from repro.parallelism.pipeline import (
    PipelineSchedule,
    bubble_fraction,
    pipeline_p2p_volume_per_microbatch,
)


def test_no_pipeline_no_bubble():
    assert bubble_fraction(1, 8) == 0.0


def test_gpipe_and_1f1b_have_same_bubble():
    assert bubble_fraction(8, 64, "gpipe") == pytest.approx(7 / 64)
    assert bubble_fraction(8, 64, "1f1b") == pytest.approx(7 / 64)


def test_interleaved_reduces_bubble():
    plain = bubble_fraction(8, 64, "1f1b")
    interleaved = bubble_fraction(8, 64, "interleaved", virtual_stages=4)
    assert interleaved == pytest.approx(plain / 4)


def test_bubble_decreases_with_more_microbatches():
    fractions = [bubble_fraction(8, m) for m in (8, 16, 64, 256)]
    assert fractions == sorted(fractions, reverse=True)


def test_bubble_validation():
    with pytest.raises(ConfigurationError):
        bubble_fraction(0, 8)
    with pytest.raises(ConfigurationError):
        bubble_fraction(8, 8, "unknown")


def test_schedule_bubble_time_and_fraction():
    schedule = PipelineSchedule(pipeline_parallel=4, num_microbatches=16)
    assert schedule.bubble_fraction == pytest.approx(3 / 16)
    assert schedule.bubble_time(10.0) == pytest.approx(10.0 * 3 / 16)


def test_in_flight_microbatches_by_schedule():
    gpipe = PipelineSchedule(pipeline_parallel=8, num_microbatches=64, schedule="gpipe")
    onefb = PipelineSchedule(pipeline_parallel=8, num_microbatches=64, schedule="1f1b")
    assert gpipe.in_flight_microbatches == 64
    assert onefb.in_flight_microbatches == 8
    small = PipelineSchedule(pipeline_parallel=8, num_microbatches=4, schedule="1f1b")
    assert small.in_flight_microbatches == 4


def test_p2p_volume_formula(gpt_175b):
    volume = pipeline_p2p_volume_per_microbatch(gpt_175b, micro_batch=1, seq_len=2048, precision=Precision.FP16)
    hidden_bytes = 2048 * gpt_175b.hidden_size * 2
    assert volume == pytest.approx(2 * hidden_bytes)


def test_p2p_volume_with_interleaving_and_sp(gpt_175b):
    base = pipeline_p2p_volume_per_microbatch(gpt_175b, 1, 2048)
    interleaved = pipeline_p2p_volume_per_microbatch(gpt_175b, 1, 2048, virtual_stages=4)
    assert interleaved == pytest.approx(4 * base)
    sharded = pipeline_p2p_volume_per_microbatch(gpt_175b, 1, 2048, tensor_parallel=8, sequence_parallel=True)
    assert sharded == pytest.approx(base / 8)


def test_schedule_summary():
    summary = PipelineSchedule(pipeline_parallel=8, num_microbatches=32, schedule="interleaved", virtual_stages=2).summary()
    assert summary["bubble_fraction"] == pytest.approx(7 / 64)
    assert summary["schedule"] == "interleaved"
