"""Tests for the parallelization mapper."""

import pytest

from repro.errors import MappingError
from repro.hardware.cluster import build_system
from repro.hardware.datatypes import Precision
from repro.parallelism.config import ParallelismConfig
from repro.parallelism.mapper import ParallelizationMapper


def test_plan_basic_quantities(gpt_175b, a100_cluster_64):
    mapper = ParallelizationMapper(a100_cluster_64)
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8, micro_batch_size=1)
    plan = mapper.plan_training(gpt_175b, config, global_batch_size=64)
    assert plan.num_microbatches == 64
    assert plan.microbatch_spec.layers_per_stage == 12
    assert plan.microbatch_spec.tensor_parallel == 8
    assert plan.seq_len == gpt_175b.max_seq_len
    assert plan.pipeline.pipeline_parallel == 8


def test_plan_rejects_oversubscription(gpt_175b, single_node_a100):
    mapper = ParallelizationMapper(single_node_a100)
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8)
    with pytest.raises(MappingError):
        mapper.plan_training(gpt_175b, config, global_batch_size=64)


def test_scopes_single_node(tiny_model, single_node_a100):
    mapper = ParallelizationMapper(single_node_a100)
    config = ParallelismConfig(tensor_parallel=4, data_parallel=2)
    plan = mapper.plan_training(tiny_model, config, global_batch_size=8)
    assert plan.tp_scope == "intra_node"
    assert plan.dp_scope == "intra_node"


def test_scopes_multi_node(gpt_175b, a100_cluster_64):
    mapper = ParallelizationMapper(a100_cluster_64)
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8)
    plan = mapper.plan_training(gpt_175b, config, global_batch_size=64)
    assert plan.tp_scope == "intra_node"
    assert plan.pp_scope == "inter_node"
    dp_config = ParallelismConfig(tensor_parallel=8, data_parallel=8)
    dp_plan = mapper.plan_training(gpt_175b, dp_config, global_batch_size=64)
    assert dp_plan.dp_scope == "inter_node"


def test_parameters_per_device_with_and_without_pp(gpt_175b, a100_cluster_64):
    mapper = ParallelizationMapper(a100_cluster_64)
    pp_plan = mapper.plan_training(
        gpt_175b, ParallelismConfig(tensor_parallel=8, pipeline_parallel=8), global_batch_size=64
    )
    tp_only_system = build_system("A100", num_devices=8)
    tp_plan = ParallelizationMapper(tp_only_system).plan_training(
        gpt_175b, ParallelismConfig(tensor_parallel=8), global_batch_size=8
    )
    # Without PP the device holds all layers plus the embedding shard.
    assert tp_plan.parameters_per_device > 7 * pp_plan.parameters_per_device
    assert pp_plan.parameters_per_device * 64 == pytest.approx(gpt_175b.num_parameters, rel=0.05)


def test_pipeline_p2p_bytes(gpt_175b, a100_cluster_64):
    mapper = ParallelizationMapper(a100_cluster_64)
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8)
    plan = mapper.plan_training(gpt_175b, config, global_batch_size=64)
    assert plan.pipeline_p2p_bytes_per_microbatch > 0
    no_pp_system = build_system("A100", num_devices=8)
    no_pp = ParallelizationMapper(no_pp_system).plan_training(
        gpt_175b, ParallelismConfig(tensor_parallel=8), global_batch_size=8
    )
    assert no_pp.pipeline_p2p_bytes_per_microbatch == 0.0


def test_precision_propagates(gpt_175b, a100_cluster_64):
    mapper = ParallelizationMapper(a100_cluster_64)
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8)
    plan = mapper.plan_training(gpt_175b, config, global_batch_size=64, precision=Precision.FP8)
    assert plan.microbatch_spec.precision is Precision.FP8
    assert plan.data_parallel_plan.gradient_precision is Precision.FP8


def test_plan_summary(gpt_175b, a100_cluster_64):
    mapper = ParallelizationMapper(a100_cluster_64)
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8)
    plan = mapper.plan_training(gpt_175b, config, global_batch_size=64)
    summary = plan.summary()
    assert summary["model"] == gpt_175b.name
    assert summary["micro_batches"] == 64
    assert summary["layers_per_stage"] == 12
