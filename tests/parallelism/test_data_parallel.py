"""Tests for the data-parallel gradient-synchronization plan."""

import pytest

from repro.hardware.datatypes import Precision
from repro.parallelism.data_parallel import DataParallelPlan
from repro.parallelism.megatron import TensorParallelShard


def test_parameters_on_device_without_embedding(gpt_175b):
    plan = DataParallelPlan(model=gpt_175b, data_parallel=8, tensor_parallel=8, layers_on_device=12)
    shard = TensorParallelShard(model=gpt_175b, tensor_parallel=8)
    assert plan.parameters_on_device == pytest.approx(12 * shard.parameters_per_layer)


def test_parameters_include_embedding_when_requested(gpt_175b):
    base = DataParallelPlan(model=gpt_175b, data_parallel=8, tensor_parallel=8, layers_on_device=12)
    with_embedding = DataParallelPlan(
        model=gpt_175b, data_parallel=8, tensor_parallel=8, layers_on_device=12, include_embedding=True
    )
    assert with_embedding.parameters_on_device > base.parameters_on_device


def test_gradient_bytes_scale_with_precision(gpt_175b):
    fp16 = DataParallelPlan(model=gpt_175b, data_parallel=4, tensor_parallel=8, layers_on_device=12)
    fp32 = DataParallelPlan(
        model=gpt_175b, data_parallel=4, tensor_parallel=8, layers_on_device=12, gradient_precision=Precision.FP32
    )
    assert fp32.gradient_bytes == pytest.approx(2 * fp16.gradient_bytes)


def test_requires_all_reduce_only_with_dp(gpt_175b):
    assert not DataParallelPlan(model=gpt_175b, data_parallel=1).requires_all_reduce
    assert DataParallelPlan(model=gpt_175b, data_parallel=2).requires_all_reduce


def test_optimizer_update_elements_equals_parameters(gpt_175b):
    plan = DataParallelPlan(model=gpt_175b, data_parallel=2, tensor_parallel=8, layers_on_device=12)
    assert plan.optimizer_update_elements() == pytest.approx(plan.parameters_on_device)
