"""Tests for the sequence-parallelism plan."""

import pytest

from repro.errors import ConfigurationError
from repro.parallelism.sequence import SequenceParallelPlan


def test_disabled_plan_is_neutral():
    plan = SequenceParallelPlan(enabled=False, tensor_parallel=8)
    assert plan.degree == 1
    assert plan.activation_shard_factor == 1.0


def test_enabled_plan_shards_by_tp_degree():
    plan = SequenceParallelPlan(enabled=True, tensor_parallel=8)
    assert plan.degree == 8
    assert plan.activation_shard_factor == pytest.approx(1 / 8)
    assert plan.label == "8"


def test_sp_over_single_device_normalizes_to_disabled():
    plan = SequenceParallelPlan(enabled=True, tensor_parallel=1)
    assert not plan.enabled
    assert plan.degree == 1


def test_sp_adds_no_communication_volume():
    plan = SequenceParallelPlan(enabled=True, tensor_parallel=4)
    assert plan.extra_communication_volume_factor == pytest.approx(1.0)


def test_validation():
    with pytest.raises(ConfigurationError):
        SequenceParallelPlan(enabled=True, tensor_parallel=0)
