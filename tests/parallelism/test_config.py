"""Tests for the parallelism configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.parallelism.config import ParallelismConfig, parse_parallelism_label


def test_defaults_are_serial():
    config = ParallelismConfig()
    assert config.total_devices == 1
    assert config.label == "1-1-1-1"


def test_total_and_model_parallel_devices():
    config = ParallelismConfig(data_parallel=4, tensor_parallel=8, pipeline_parallel=2)
    assert config.total_devices == 64
    assert config.model_parallel_devices == 16


def test_validation_rejects_non_positive_degrees():
    with pytest.raises(ConfigurationError):
        ParallelismConfig(data_parallel=0)
    with pytest.raises(ConfigurationError):
        ParallelismConfig(micro_batch_size=0)
    with pytest.raises(ConfigurationError):
        ParallelismConfig(pipeline_schedule="zigzag")


def test_batch_and_microbatch_math():
    config = ParallelismConfig(data_parallel=4, micro_batch_size=2)
    assert config.batch_per_replica(64) == 16
    assert config.num_microbatches(64) == 8
    with pytest.raises(ConfigurationError):
        config.batch_per_replica(66)
    with pytest.raises(ConfigurationError):
        ParallelismConfig(data_parallel=1, micro_batch_size=3).num_microbatches(8)


def test_layers_per_stage(gpt_175b):
    config = ParallelismConfig(tensor_parallel=8, pipeline_parallel=8)
    assert config.layers_per_stage(gpt_175b) == 12
    with pytest.raises(ConfigurationError):
        ParallelismConfig(pipeline_parallel=7).layers_per_stage(gpt_175b)


def test_layers_per_virtual_stage(gpt_175b):
    config = ParallelismConfig(pipeline_parallel=8, pipeline_schedule="interleaved", virtual_pipeline_stages=4)
    assert config.layers_per_virtual_stage(gpt_175b) == 3
    with pytest.raises(ConfigurationError):
        ParallelismConfig(
            pipeline_parallel=8, pipeline_schedule="interleaved", virtual_pipeline_stages=5
        ).layers_per_virtual_stage(gpt_175b)


def test_validate_for_model_checks_heads(gpt_175b):
    config = ParallelismConfig(tensor_parallel=7)
    with pytest.raises(ConfigurationError):
        config.validate_for_model(gpt_175b)
    ParallelismConfig(tensor_parallel=8, pipeline_parallel=8).validate_for_model(gpt_175b)


def test_interleaved_schedule_normalization():
    config = ParallelismConfig(pipeline_parallel=4, virtual_pipeline_stages=3)
    assert config.pipeline_schedule == "interleaved"
    config = ParallelismConfig(pipeline_parallel=4, pipeline_schedule="interleaved")
    assert config.virtual_pipeline_stages >= 2


def test_label_includes_sp_degree():
    config = ParallelismConfig(data_parallel=2, tensor_parallel=8, pipeline_parallel=4, sequence_parallel=True)
    assert config.label == "2-8-4-8"
    assert ParallelismConfig(tensor_parallel=8).label == "1-8-1-1"


def test_parse_parallelism_label_roundtrip():
    config = parse_parallelism_label("15-8-16-1", micro_batch_size=2)
    assert config.data_parallel == 15
    assert config.tensor_parallel == 8
    assert config.pipeline_parallel == 16
    assert not config.sequence_parallel
    assert config.micro_batch_size == 2
    sp_config = parse_parallelism_label("1-8-8-8")
    assert sp_config.sequence_parallel


def test_parse_parallelism_label_rejects_bad_input():
    with pytest.raises(ConfigurationError):
        parse_parallelism_label("1-8-8")
    with pytest.raises(ConfigurationError):
        parse_parallelism_label("1-8-8-4")  # SP must be 1 or TP


def test_summary_dictionary():
    summary = ParallelismConfig(data_parallel=2, tensor_parallel=4, pipeline_parallel=2).summary()
    assert summary["total_devices"] == 16
    assert summary["dp"] == 2
