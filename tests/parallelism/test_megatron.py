"""Tests for Megatron tensor-parallel sharding bookkeeping."""

import pytest

from repro.hardware.datatypes import Precision
from repro.parallelism.megatron import (
    TensorParallelShard,
    shard_summary,
    tp_backward_communication_volume,
    tp_forward_communication_volume,
)


def test_shard_divides_attention_and_mlp(gpt_175b):
    shard = TensorParallelShard(model=gpt_175b, tensor_parallel=8)
    assert shard.attention_parameters_per_layer == pytest.approx(gpt_175b.attention_parameters_per_layer / 8)
    assert shard.mlp_parameters_per_layer == pytest.approx(gpt_175b.mlp_parameters_per_layer / 8)


def test_norm_parameters_are_replicated(gpt_175b):
    shard = TensorParallelShard(model=gpt_175b, tensor_parallel=8)
    assert shard.norm_parameters_per_layer == gpt_175b.norm_parameters_per_layer


def test_embedding_is_vocab_sharded(gpt_175b):
    shard = TensorParallelShard(model=gpt_175b, tensor_parallel=8)
    assert shard.embedding_parameters == pytest.approx(gpt_175b.embedding_parameters / 8)


def test_parameters_per_rank_sums_layers(gpt_175b):
    shard = TensorParallelShard(model=gpt_175b, tensor_parallel=8)
    twelve_layers = shard.parameters_per_rank(layers=12)
    assert twelve_layers == pytest.approx(12 * shard.parameters_per_layer + shard.embedding_parameters)


def test_total_shards_reconstruct_model(gpt_175b):
    """Summing the per-rank weights over the TP group recovers the full model (minus replicated norms)."""
    tp = 8
    shard = TensorParallelShard(model=gpt_175b, tensor_parallel=tp)
    reconstructed = tp * (
        shard.attention_parameters_per_layer + shard.mlp_parameters_per_layer
    ) * gpt_175b.num_layers + tp * shard.embedding_parameters
    expected = (
        (gpt_175b.attention_parameters_per_layer + gpt_175b.mlp_parameters_per_layer) * gpt_175b.num_layers
        + gpt_175b.embedding_parameters
    )
    assert reconstructed == pytest.approx(expected)


def test_tp_communication_volume_formula(gpt_175b):
    volume = tp_forward_communication_volume(gpt_175b, micro_batch=1, seq_len=2048, precision=Precision.FP16)
    assert volume == pytest.approx(2 * 2048 * gpt_175b.hidden_size * 2)
    assert tp_backward_communication_volume(gpt_175b, 1, 2048) == pytest.approx(volume)


def test_tp_communication_scales_with_batch_and_precision(gpt_175b):
    base = tp_forward_communication_volume(gpt_175b, 1, 2048, Precision.FP16)
    double_batch = tp_forward_communication_volume(gpt_175b, 2, 2048, Precision.FP16)
    fp8 = tp_forward_communication_volume(gpt_175b, 1, 2048, Precision.FP8)
    assert double_batch == pytest.approx(2 * base)
    assert fp8 == pytest.approx(base / 2)


def test_shard_summary_keys(gpt_175b):
    summary = shard_summary(gpt_175b, tensor_parallel=8, layers=12)
    assert set(summary) == {"attention_per_layer", "mlp_per_layer", "norm_per_layer", "per_layer", "embedding", "total"}
    assert summary["total"] > summary["per_layer"]
