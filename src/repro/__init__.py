"""repro: analytical performance modeling of distributed LLM training and inference.

This package reproduces the modeling framework of "Performance Modeling and
Workload Analysis of Distributed Large Language Model Training and Inference"
(IISWC 2024).  The most common entry points are re-exported here:

* :func:`repro.hardware.build_system` / :func:`repro.hardware.get_accelerator`
  to describe hardware,
* :func:`repro.models.get_model` for the GPT / Llama-2 model zoo,
* :class:`repro.parallelism.ParallelismConfig` for DP/TP/PP/SP settings,
* :class:`repro.core.PerformancePredictionEngine` to predict training-step
  times, inference latencies, memory footprints, and bottlenecks,
* :class:`repro.studies.Study` / :func:`repro.studies.get_study` for
  declarative, registry-backed sweeps (every paper table/figure is a
  registered study; ``python -m repro list`` enumerates them),
* :mod:`repro.dse` for technology-node and memory-technology design-space
  exploration.
"""

from .core.engine import PerformancePredictionEngine
from .core.inference import InferencePerformanceModel
from .core.reports import InferenceReport, TrainingReport
from .core.training import TrainingPerformanceModel
from .hardware.accelerator import custom_accelerator, get_accelerator
from .hardware.catalog import get_system, list_systems, register_system
from .hardware.cluster import SystemSpec, build_system, preset_cluster
from .hardware.datatypes import Precision
from .memmodel.activations import RecomputeStrategy
from .models.zoo import get_model, list_models
from .parallelism.config import ParallelismConfig, parse_parallelism_label
from .serving import (
    LengthDistribution,
    SchedulerConfig,
    ServingConfig,
    ServingReport,
    ServingSimulator,
    ServingSLO,
    TraceConfig,
)
from .studies import Study, get_study, list_studies, register_study
from .sweep import Scenario, SweepResult, SweepRunner, SweepTable, expand_grid

__version__ = "1.6.0"

__all__ = [
    "InferencePerformanceModel",
    "InferenceReport",
    "LengthDistribution",
    "ParallelismConfig",
    "PerformancePredictionEngine",
    "Precision",
    "RecomputeStrategy",
    "Scenario",
    "SchedulerConfig",
    "ServingConfig",
    "ServingReport",
    "ServingSLO",
    "ServingSimulator",
    "Study",
    "SweepResult",
    "SweepRunner",
    "SweepTable",
    "SystemSpec",
    "TraceConfig",
    "TrainingPerformanceModel",
    "TrainingReport",
    "expand_grid",
    "build_system",
    "custom_accelerator",
    "get_accelerator",
    "get_model",
    "get_study",
    "get_system",
    "list_models",
    "list_studies",
    "list_systems",
    "parse_parallelism_label",
    "preset_cluster",
    "register_study",
    "register_system",
    "__version__",
]
