"""Total-cost-of-operation (TCO) model: $ per training run and per million tokens.

Combines the amortized capital cost of the accelerators with the electricity
cost derived from :class:`~repro.cost.energy.EnergyModel`, yielding the
performance-per-TCO figures the paper's introduction motivates ("detailed
analysis of the performance per TCO would help identify the pain points
while designing future compute systems or models").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..core.reports import InferenceReport, TrainingReport
from ..errors import ConfigurationError
from ..hardware.cluster import SystemSpec
from .energy import EnergyModel

SECONDS_PER_YEAR = 365.0 * 24.0 * 3600.0

#: Rough street prices (USD) per accelerator, used as defaults for the catalog devices.
DEFAULT_DEVICE_PRICES = {
    "A100-80GB": 15_000.0,
    "H100-SXM": 30_000.0,
    "H200-SXM": 35_000.0,
    "B100": 35_000.0,
    "B200": 45_000.0,
}
DEFAULT_DEVICE_PRICE = 25_000.0
#: Server/network/storage overhead as a fraction of the accelerator price.
DEFAULT_SYSTEM_OVERHEAD_FRACTION = 0.35
#: Electricity price in USD per kWh.
DEFAULT_ELECTRICITY_COST_PER_KWH = 0.12
#: Depreciation horizon in years.
DEFAULT_AMORTIZATION_YEARS = 4.0
#: Average utilization of the fleet over its lifetime.
DEFAULT_FLEET_UTILIZATION = 0.60


@dataclasses.dataclass(frozen=True)
class TCOModel:
    """Amortized cost model for a system running LLM workloads.

    Attributes:
        system: The hardware system.
        energy_model: Energy model used for the operating-cost component.
        device_price: Purchase price of one accelerator in USD (defaults to a
            catalog-based estimate).
        system_overhead_fraction: CPU/network/storage overhead relative to the
            accelerator price.
        electricity_cost_per_kwh: Electricity price in USD/kWh.
        amortization_years: Capital depreciation horizon.
        fleet_utilization: Average fraction of time the fleet does useful work.
    """

    system: SystemSpec
    energy_model: Optional[EnergyModel] = None
    device_price: Optional[float] = None
    system_overhead_fraction: float = DEFAULT_SYSTEM_OVERHEAD_FRACTION
    electricity_cost_per_kwh: float = DEFAULT_ELECTRICITY_COST_PER_KWH
    amortization_years: float = DEFAULT_AMORTIZATION_YEARS
    fleet_utilization: float = DEFAULT_FLEET_UTILIZATION

    def __post_init__(self) -> None:
        if self.energy_model is None:
            object.__setattr__(self, "energy_model", EnergyModel(system=self.system))
        if self.device_price is None:
            price = DEFAULT_DEVICE_PRICES.get(self.system.accelerator.name, DEFAULT_DEVICE_PRICE)
            object.__setattr__(self, "device_price", price)
        if self.device_price <= 0:
            raise ConfigurationError("device_price must be positive")
        if not 0 < self.fleet_utilization <= 1:
            raise ConfigurationError("fleet_utilization must be in (0, 1]")
        if self.amortization_years <= 0:
            raise ConfigurationError("amortization_years must be positive")
        if self.electricity_cost_per_kwh < 0 or self.system_overhead_fraction < 0:
            raise ConfigurationError("costs must be non-negative")

    # -- capital cost --------------------------------------------------------------------

    @property
    def capital_cost_per_device(self) -> float:
        """Accelerator price plus its share of server/network/storage, in USD."""
        return self.device_price * (1.0 + self.system_overhead_fraction)

    @property
    def capital_cost_per_device_second(self) -> float:
        """Amortized capital cost of one busy device-second, in USD."""
        usable_seconds = self.amortization_years * SECONDS_PER_YEAR * self.fleet_utilization
        return self.capital_cost_per_device / usable_seconds

    def device_seconds_cost(self, device_seconds: float, energy_joules: float) -> float:
        """Capital + electricity cost of ``device_seconds`` of work, in USD."""
        capital = device_seconds * self.capital_cost_per_device_second
        electricity = EnergyModel.to_kwh(energy_joules) * self.electricity_cost_per_kwh
        return capital + electricity

    # -- training -------------------------------------------------------------------------

    def training_step_cost(self, report: TrainingReport, num_devices: Optional[int] = None) -> float:
        """Cost of one training step (one global batch), in USD."""
        devices = self.system.num_devices if num_devices is None else num_devices
        device_seconds = devices * report.step_time
        energy = self.energy_model.training_step_energy(report, devices)
        return self.device_seconds_cost(device_seconds, energy)

    def training_cost_per_million_tokens(self, report: TrainingReport, num_devices: Optional[int] = None) -> float:
        """Training cost per million processed tokens, in USD."""
        tokens = report.global_batch_size * report.seq_len
        return self.training_step_cost(report, num_devices) / tokens * 1e6

    def full_training_run_cost(
        self,
        report: TrainingReport,
        total_training_tokens: float,
        num_devices: Optional[int] = None,
    ) -> float:
        """Cost of a full training run over ``total_training_tokens``, in USD."""
        if total_training_tokens <= 0:
            raise ConfigurationError("total_training_tokens must be positive")
        return self.training_cost_per_million_tokens(report, num_devices) * total_training_tokens / 1e6

    # -- inference --------------------------------------------------------------------------

    def inference_request_cost(self, report: InferenceReport) -> float:
        """Cost of one inference request (whole batch), in USD."""
        device_seconds = report.tensor_parallel * report.total_latency
        energy = self.energy_model.inference_request_energy(report)
        return self.device_seconds_cost(device_seconds, energy)

    def inference_cost_per_million_tokens(self, report: InferenceReport) -> float:
        """Serving cost per million generated tokens, in USD."""
        tokens = report.batch_size * report.generated_tokens
        if tokens <= 0:
            raise ConfigurationError("the report generates no tokens")
        return self.inference_request_cost(report) / tokens * 1e6

    # -- performance per TCO -----------------------------------------------------------------

    def training_performance_per_dollar(self, report: TrainingReport, num_devices: Optional[int] = None) -> float:
        """Trained tokens per USD — the paper's performance-per-TCO metric for training."""
        cost = self.training_step_cost(report, num_devices)
        tokens = report.global_batch_size * report.seq_len
        return tokens / cost if cost > 0 else 0.0

    def inference_performance_per_dollar(self, report: InferenceReport) -> float:
        """Generated tokens per USD for inference serving."""
        cost = self.inference_request_cost(report)
        tokens = report.batch_size * report.generated_tokens
        return tokens / cost if cost > 0 else 0.0

    def summary(self, report: TrainingReport) -> Dict[str, float]:
        """Flat cost summary for one training report."""
        return {
            "capital_per_device_usd": self.capital_cost_per_device,
            "step_cost_usd": self.training_step_cost(report),
            "cost_per_million_tokens_usd": self.training_cost_per_million_tokens(report),
            "tokens_per_usd": self.training_performance_per_dollar(report),
            "step_energy_kwh": EnergyModel.to_kwh(self.energy_model.training_step_energy(report)),
        }
