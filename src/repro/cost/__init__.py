"""Energy and total-cost-of-operation models (the paper's stated future-work extension)."""

from .energy import (
    DEFAULT_COMPUTE_POWER_FRACTION,
    DEFAULT_HOST_POWER_PER_DEVICE,
    DEFAULT_IDLE_POWER_FRACTION,
    DEFAULT_PUE,
    EnergyModel,
)
from .tco import (
    DEFAULT_AMORTIZATION_YEARS,
    DEFAULT_DEVICE_PRICES,
    DEFAULT_ELECTRICITY_COST_PER_KWH,
    TCOModel,
)

__all__ = [
    "DEFAULT_AMORTIZATION_YEARS",
    "DEFAULT_COMPUTE_POWER_FRACTION",
    "DEFAULT_DEVICE_PRICES",
    "DEFAULT_ELECTRICITY_COST_PER_KWH",
    "DEFAULT_HOST_POWER_PER_DEVICE",
    "DEFAULT_IDLE_POWER_FRACTION",
    "DEFAULT_PUE",
    "EnergyModel",
    "TCOModel",
]
