"""Energy model for training steps and inference requests.

The paper's introduction frames the whole study in terms of "performance per
total cost of operation (TCO)" and lists an energy and cost model as the next
extension of the framework.  This module provides that extension: a simple
board-power-based energy model that converts the performance reports of
:mod:`repro.core` into energy (joules / kWh) figures.

The model follows the usual data-center accounting: every device burns a
fraction of its TDP while it computes and a lower fraction while it idles in
pipeline bubbles or waits for communication, and the facility multiplies the
IT power by a PUE factor.
"""

from __future__ import annotations

import dataclasses

from ..core.reports import InferenceReport, TrainingReport
from ..errors import ConfigurationError
from ..hardware.cluster import SystemSpec

#: Fraction of TDP a GPU draws while executing compute kernels.
DEFAULT_COMPUTE_POWER_FRACTION = 0.90
#: Fraction of TDP drawn while the device only communicates or idles.
DEFAULT_IDLE_POWER_FRACTION = 0.45
#: Host (CPU, DRAM, NIC, fans) power per accelerator, in watts.
DEFAULT_HOST_POWER_PER_DEVICE = 150.0
#: Typical data-center power usage effectiveness.
DEFAULT_PUE = 1.2

JOULES_PER_KWH = 3.6e6


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Converts performance reports into energy estimates.

    Attributes:
        system: The hardware system the reports were produced for.
        compute_power_fraction: Fraction of the accelerator TDP drawn during
            compute-dominated phases.
        idle_power_fraction: Fraction drawn during exposed communication,
            pipeline bubbles, and other waiting time.
        host_power_per_device: Host-side power attributed to each accelerator.
        pue: Facility power usage effectiveness multiplier.
    """

    system: SystemSpec
    compute_power_fraction: float = DEFAULT_COMPUTE_POWER_FRACTION
    idle_power_fraction: float = DEFAULT_IDLE_POWER_FRACTION
    host_power_per_device: float = DEFAULT_HOST_POWER_PER_DEVICE
    pue: float = DEFAULT_PUE

    def __post_init__(self) -> None:
        if not 0 < self.idle_power_fraction <= self.compute_power_fraction <= 1.0:
            raise ConfigurationError("power fractions must satisfy 0 < idle <= compute <= 1")
        if self.host_power_per_device < 0:
            raise ConfigurationError("host_power_per_device must be non-negative")
        if self.pue < 1.0:
            raise ConfigurationError("PUE cannot be below 1.0")

    # -- building blocks -------------------------------------------------------------

    @property
    def device_tdp(self) -> float:
        """TDP of one accelerator in watts."""
        return self.system.accelerator.tdp_watts

    def _device_energy(self, busy_time: float, waiting_time: float) -> float:
        """Energy of one device split into busy and waiting phases, in joules."""
        busy_power = self.device_tdp * self.compute_power_fraction
        waiting_power = self.device_tdp * self.idle_power_fraction
        host_energy = self.host_power_per_device * (busy_time + waiting_time)
        return (busy_power * busy_time + waiting_power * waiting_time + host_energy) * self.pue

    def device_energy(self, busy_time: float, waiting_time: float, num_devices: int = 1) -> float:
        """Energy of ``num_devices`` devices split into busy/waiting phases, in joules.

        The generic building block behind the training/inference helpers; the
        fleet cost accounting uses it directly with each replica's busy time
        against the fleet makespan.
        """
        if busy_time < 0 or waiting_time < 0:
            raise ConfigurationError("busy_time and waiting_time must be non-negative")
        if num_devices < 1:
            raise ConfigurationError("num_devices must be >= 1")
        return num_devices * self._device_energy(busy_time, waiting_time)

    # -- training ----------------------------------------------------------------------

    def training_step_energy(self, report: TrainingReport, num_devices: int | None = None) -> float:
        """Energy of one training step across the whole system, in joules."""
        devices = self.system.num_devices if num_devices is None else num_devices
        busy = report.compute_time + report.recompute_time
        waiting = report.communication_time + report.other_time
        return devices * self._device_energy(busy, waiting)

    def training_energy_per_token(self, report: TrainingReport, num_devices: int | None = None) -> float:
        """Average energy per trained token, in joules."""
        tokens = report.global_batch_size * report.seq_len
        if tokens <= 0:
            raise ConfigurationError("the report processes no tokens")
        return self.training_step_energy(report, num_devices) / tokens

    # -- inference ---------------------------------------------------------------------

    def inference_request_energy(self, report: InferenceReport) -> float:
        """Energy of one inference request across the TP group, in joules."""
        busy = report.device_time
        waiting = report.communication_time
        return report.tensor_parallel * self._device_energy(busy, waiting)

    def inference_energy_per_token(self, report: InferenceReport) -> float:
        """Energy per generated token, in joules."""
        tokens = report.batch_size * report.generated_tokens
        if tokens <= 0:
            raise ConfigurationError("the report generates no tokens")
        return self.inference_request_energy(report) / tokens

    # -- conversions --------------------------------------------------------------------

    @staticmethod
    def to_kwh(joules: float) -> float:
        """Convert joules to kilowatt-hours."""
        return joules / JOULES_PER_KWH
