"""Parallelization strategies: DP, TP (Megatron), PP schedules, and SP."""

from .config import ParallelismConfig, parse_parallelism_label
from .data_parallel import DataParallelPlan
from .mapper import DistributedTrainingPlan, ParallelizationMapper
from .megatron import (
    TensorParallelShard,
    shard_summary,
    tp_backward_communication_volume,
    tp_forward_communication_volume,
)
from .pipeline import PipelineSchedule, bubble_fraction, pipeline_p2p_volume_per_microbatch
from .sequence import SequenceParallelPlan

__all__ = [
    "DataParallelPlan",
    "DistributedTrainingPlan",
    "ParallelismConfig",
    "ParallelizationMapper",
    "PipelineSchedule",
    "SequenceParallelPlan",
    "TensorParallelShard",
    "bubble_fraction",
    "parse_parallelism_label",
    "pipeline_p2p_volume_per_microbatch",
    "shard_summary",
    "tp_backward_communication_volume",
    "tp_forward_communication_volume",
]
