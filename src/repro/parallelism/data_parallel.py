"""Data parallelism: gradient synchronization volume and optimizer sharding.

Each data-parallel replica computes gradients on its share of the batch; the
gradients are then all-reduced across the DP group before the weight update.
The volume of that all-reduce is the per-rank parameter count times the
gradient element size (FP16 gradients with an FP32 master copy in standard
mixed-precision training).
"""

from __future__ import annotations

import dataclasses

from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from .megatron import TensorParallelShard


@dataclasses.dataclass(frozen=True)
class DataParallelPlan:
    """Gradient-synchronization plan for one device.

    Attributes:
        model: The full model configuration.
        data_parallel: DP degree.
        tensor_parallel: TP degree (determines the per-rank shard).
        layers_on_device: Transformer layers resident on the device.
        gradient_precision: Numeric format of the reduced gradients.
        include_embedding: Whether the device also reduces embedding gradients.
    """

    model: TransformerConfig
    data_parallel: int = 1
    tensor_parallel: int = 1
    layers_on_device: int = 1
    gradient_precision: Precision = Precision.FP16
    include_embedding: bool = False

    @property
    def parameters_on_device(self) -> float:
        """Weights whose gradients this device owns."""
        shard = TensorParallelShard(model=self.model, tensor_parallel=self.tensor_parallel)
        params = self.layers_on_device * shard.parameters_per_layer
        if self.include_embedding:
            params += shard.embedding_parameters
        return params

    @property
    def gradient_bytes(self) -> float:
        """Bytes of gradients this device contributes to the DP all-reduce."""
        return self.parameters_on_device * self.gradient_precision.bytes_per_element

    @property
    def requires_all_reduce(self) -> bool:
        """Whether a gradient all-reduce is needed at all (DP > 1)."""
        return self.data_parallel > 1

    def optimizer_update_elements(self) -> float:
        """Number of master weights the optimizer touches during the update."""
        return self.parameters_on_device
