"""Megatron-style tensor model parallelism: shard sizes and communication volumes.

The Megatron-LM partitioning (Shoeybi et al.) splits the first GEMM of each
block along the weight columns and the second along the rows, so that the
only synchronization needed is a single all-reduce of the block output per
block per pass.  This module captures the *bookkeeping* side of that scheme:
how many parameters end up on each tensor-parallel rank and how many bytes
each rank contributes to the tensor-parallel collectives.  The kernel-level
effect on GEMM shapes is handled by
:class:`~repro.workload.transformer_layer.TransformerLayerBuilder`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig


@dataclasses.dataclass(frozen=True)
class TensorParallelShard:
    """Per-rank parameter counts under Megatron tensor parallelism.

    Attributes:
        model: The full (unsharded) model configuration.
        tensor_parallel: TP degree used for sharding.
    """

    model: TransformerConfig
    tensor_parallel: int = 1

    @property
    def attention_parameters_per_layer(self) -> float:
        """Attention weights held by one rank for one layer."""
        return self.model.attention_parameters_per_layer / self.tensor_parallel

    @property
    def mlp_parameters_per_layer(self) -> float:
        """MLP weights held by one rank for one layer."""
        return self.model.mlp_parameters_per_layer / self.tensor_parallel

    @property
    def norm_parameters_per_layer(self) -> float:
        """Layer-norm parameters (replicated across the TP group)."""
        return float(self.model.norm_parameters_per_layer)

    @property
    def parameters_per_layer(self) -> float:
        """Total weights per rank for one layer."""
        return (
            self.attention_parameters_per_layer
            + self.mlp_parameters_per_layer
            + self.norm_parameters_per_layer
        )

    @property
    def embedding_parameters(self) -> float:
        """Embedding (and LM-head) weights per rank; Megatron shards the vocabulary."""
        return self.model.embedding_parameters / self.tensor_parallel

    def parameters_per_rank(self, layers: int) -> float:
        """Weights one rank holds for ``layers`` transformer layers plus embeddings."""
        return layers * self.parameters_per_layer + self.embedding_parameters


def tp_forward_communication_volume(
    model: TransformerConfig,
    micro_batch: int,
    seq_len: int,
    precision: Precision = Precision.FP16,
) -> float:
    """Bytes all-reduced per layer per micro-batch in the forward pass.

    The Megatron mapping performs two all-reduces of the full hidden state
    (one per block) per layer per forward pass.
    """
    hidden_state_bytes = micro_batch * seq_len * model.hidden_size * precision.bytes_per_element
    return 2.0 * hidden_state_bytes


def tp_backward_communication_volume(
    model: TransformerConfig,
    micro_batch: int,
    seq_len: int,
    precision: Precision = Precision.FP16,
) -> float:
    """Bytes all-reduced per layer per micro-batch in the backward pass."""
    return tp_forward_communication_volume(model, micro_batch, seq_len, precision)


def shard_summary(model: TransformerConfig, tensor_parallel: int, layers: int) -> Dict[str, float]:
    """Convenient flat summary of per-rank parameter counts."""
    shard = TensorParallelShard(model=model, tensor_parallel=tensor_parallel)
    return {
        "attention_per_layer": shard.attention_parameters_per_layer,
        "mlp_per_layer": shard.mlp_parameters_per_layer,
        "norm_per_layer": shard.norm_parameters_per_layer,
        "per_layer": shard.parameters_per_layer,
        "embedding": shard.embedding_parameters,
        "total": shard.parameters_per_rank(layers),
    }
