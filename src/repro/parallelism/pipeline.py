"""Pipeline-parallel schedules and their bubble overheads.

Pipeline parallelism splits the layers across devices; the micro-batches of
one training step stream through the stages.  The start-up and drain phases
leave devices idle ("pipeline bubbles").  The paper adopts the standard
analytical bubble model:

* **GPipe** and **PipeDream-Flush (1F1B)** have a bubble fraction of
  ``(p - 1) / m`` where ``p`` is the pipeline depth and ``m`` the number of
  micro-batches; 1F1B only reduces the *memory* pressure, not the bubble.
* **Interleaved 1F1B** with ``v`` virtual stages (model chunks) per device
  reduces the bubble to ``(p - 1) / (m * v)`` at the cost of ``v``-times more
  point-to-point communication.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..errors import ConfigurationError
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig


def bubble_fraction(
    pipeline_parallel: int,
    num_microbatches: int,
    schedule: str = "1f1b",
    virtual_stages: int = 1,
) -> float:
    """Idle-time fraction added by the pipeline schedule.

    Returns the ratio of bubble time to the ideal (bubble-free) time spent on
    the micro-batches, i.e. ``t_bubble / t_ideal``.
    """
    if pipeline_parallel < 1 or num_microbatches < 1:
        raise ConfigurationError("pipeline_parallel and num_microbatches must be >= 1")
    if pipeline_parallel == 1:
        return 0.0
    if schedule not in ("gpipe", "1f1b", "interleaved"):
        raise ConfigurationError(f"unknown pipeline schedule {schedule!r}")
    effective_chunks = num_microbatches
    if schedule == "interleaved":
        effective_chunks = num_microbatches * max(1, virtual_stages)
    return (pipeline_parallel - 1) / effective_chunks


def pipeline_p2p_volume_per_microbatch(
    model: TransformerConfig,
    micro_batch: int,
    seq_len: int,
    precision: Precision = Precision.FP16,
    virtual_stages: int = 1,
    tensor_parallel: int = 1,
    sequence_parallel: bool = False,
) -> float:
    """Bytes sent point-to-point by one stage per micro-batch (forward + backward).

    Each stage boundary crossing moves the hidden-state activations forward and
    the corresponding gradients backward.  Interleaving multiplies the number
    of boundary crossings per device by the number of virtual stages.  With
    sequence parallelism the activations are already sharded across the TP
    group, so each rank only sends its slice.
    """
    hidden_bytes = micro_batch * seq_len * model.hidden_size * precision.bytes_per_element
    if sequence_parallel and tensor_parallel > 1:
        hidden_bytes /= tensor_parallel
    # One send forward and one send backward per virtual stage boundary.
    return 2.0 * hidden_bytes * max(1, virtual_stages)


@dataclasses.dataclass(frozen=True)
class PipelineSchedule:
    """A pipeline schedule evaluated for a specific step.

    Attributes:
        pipeline_parallel: Pipeline depth ``p``.
        num_microbatches: Micro-batches per step ``m``.
        schedule: ``"gpipe"``, ``"1f1b"`` or ``"interleaved"``.
        virtual_stages: Model chunks per device for the interleaved schedule.
    """

    pipeline_parallel: int
    num_microbatches: int
    schedule: str = "1f1b"
    virtual_stages: int = 1

    @property
    def bubble_fraction(self) -> float:
        """Bubble time relative to ideal micro-batch time."""
        return bubble_fraction(
            self.pipeline_parallel,
            self.num_microbatches,
            schedule=self.schedule,
            virtual_stages=self.virtual_stages,
        )

    def bubble_time(self, ideal_time: float) -> float:
        """Absolute bubble time given the ideal (bubble-free) step time."""
        return ideal_time * self.bubble_fraction

    @property
    def in_flight_microbatches(self) -> int:
        """Micro-batches whose activations are alive simultaneously on stage 0.

        GPipe keeps all micro-batches in flight; 1F1B (and its interleaved
        variant) caps the number at the pipeline depth, which is what makes
        its memory footprint independent of ``m``.
        """
        if self.schedule == "gpipe":
            return self.num_microbatches
        return min(self.pipeline_parallel, self.num_microbatches)

    def summary(self) -> Dict[str, float]:
        """Flat summary for reports."""
        return {
            "schedule": self.schedule,
            "pipeline_parallel": self.pipeline_parallel,
            "num_microbatches": self.num_microbatches,
            "virtual_stages": self.virtual_stages,
            "bubble_fraction": self.bubble_fraction,
            "in_flight_microbatches": self.in_flight_microbatches,
        }
