"""Parallelization mapper: place a workload onto a system under a parallelism config.

The mapper is the glue between the workload layer and the performance
prediction engine.  Given a model, a :class:`ParallelismConfig`, the training
hyper-parameters, and a :class:`~repro.hardware.cluster.SystemSpec`, it
derives the *distributed execution plan*: which fraction of the model and
batch one device executes, how many micro-batches stream through the
pipeline, which fabric each communication group uses, and the per-device
building blocks the engine then prices with the roofline and collective
models.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..errors import MappingError
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from ..workload.training import TrainingMicrobatchSpec
from .config import ParallelismConfig
from .data_parallel import DataParallelPlan
from .megatron import TensorParallelShard
from .pipeline import PipelineSchedule, pipeline_p2p_volume_per_microbatch
from .sequence import SequenceParallelPlan


@dataclasses.dataclass(frozen=True)
class DistributedTrainingPlan:
    """Everything the engine needs to price one distributed training step.

    Attributes:
        model: The transformer architecture.
        parallelism: The DP/TP/PP/SP configuration.
        system: The hardware system the workload runs on.
        global_batch_size: Sequences per optimizer step across all replicas.
        seq_len: Training sequence length.
        precision: Compute precision.
        microbatch_spec: Work one pipeline stage does per micro-batch.
        num_microbatches: Micro-batches per pipeline per step.
        pipeline: The pipeline schedule with its bubble model.
        data_parallel_plan: The DP gradient-synchronization plan.
        sequence_parallel_plan: The SP activation-sharding plan.
        tp_scope: Fabric scope of tensor-parallel collectives.
        dp_scope: Fabric scope of data-parallel collectives.
        pp_scope: Fabric scope of pipeline point-to-point transfers.
    """

    model: TransformerConfig
    parallelism: ParallelismConfig
    system: SystemSpec
    global_batch_size: int
    seq_len: int
    precision: Precision
    microbatch_spec: TrainingMicrobatchSpec
    num_microbatches: int
    pipeline: PipelineSchedule
    data_parallel_plan: DataParallelPlan
    sequence_parallel_plan: SequenceParallelPlan
    tp_scope: str
    dp_scope: str
    pp_scope: str

    @property
    def parameters_per_device(self) -> float:
        """Model weights resident on one device."""
        shard = TensorParallelShard(model=self.model, tensor_parallel=self.parallelism.tensor_parallel)
        layers = self.parallelism.layers_per_stage(self.model)
        include_embedding = self.parallelism.pipeline_parallel == 1
        embedding = shard.embedding_parameters if include_embedding else 0.0
        return layers * shard.parameters_per_layer + embedding

    @property
    def pipeline_p2p_bytes_per_microbatch(self) -> float:
        """Bytes one stage exchanges with its neighbours per micro-batch."""
        if self.parallelism.pipeline_parallel == 1:
            return 0.0
        return pipeline_p2p_volume_per_microbatch(
            self.model,
            micro_batch=self.parallelism.micro_batch_size,
            seq_len=self.seq_len,
            precision=self.precision,
            virtual_stages=self.parallelism.virtual_pipeline_stages,
            tensor_parallel=self.parallelism.tensor_parallel,
            sequence_parallel=self.parallelism.sequence_parallel,
        )

    def summary(self) -> Dict[str, object]:
        """Flat summary for reports and logging."""
        return {
            "model": self.model.name,
            "system": self.system.name,
            "parallelism": self.parallelism.label,
            "global_batch": self.global_batch_size,
            "seq_len": self.seq_len,
            "micro_batches": self.num_microbatches,
            "layers_per_stage": self.parallelism.layers_per_stage(self.model),
            "parameters_per_device": self.parameters_per_device,
        }


class ParallelizationMapper:
    """Maps (model, parallelism, batch) onto a system."""

    def __init__(self, system: SystemSpec):
        self.system = system

    def _scope_for_group(self, group_size: int, spans_nodes: bool) -> str:
        """Decide whether a communication group stays within a node."""
        if spans_nodes and self.system.num_nodes > 1:
            return "inter_node"
        if group_size <= self.system.devices_per_node:
            return "intra_node"
        return "inter_node"

    def plan_training(
        self,
        model: TransformerConfig,
        parallelism: ParallelismConfig,
        global_batch_size: int,
        seq_len: Optional[int] = None,
        precision: Precision = Precision.FP16,
    ) -> DistributedTrainingPlan:
        """Build the distributed execution plan for one training step.

        Raises:
            MappingError: If the configuration needs more devices than the
                system provides or cannot be applied to the model.
        """
        parallelism.validate_for_model(model)
        if parallelism.total_devices > self.system.num_devices:
            raise MappingError(
                f"configuration {parallelism.label} needs {parallelism.total_devices} devices but the "
                f"system {self.system.name!r} only has {self.system.num_devices}"
            )
        sequence_length = model.max_seq_len if seq_len is None else seq_len
        num_microbatches = parallelism.num_microbatches(global_batch_size)
        layers_per_stage = parallelism.layers_per_stage(model)

        microbatch_spec = TrainingMicrobatchSpec(
            model=model,
            micro_batch=parallelism.micro_batch_size,
            seq_len=sequence_length,
            layers_per_stage=layers_per_stage,
            tensor_parallel=parallelism.tensor_parallel,
            sequence_parallel=parallelism.sequence_parallel,
            precision=precision,
            include_embedding=parallelism.pipeline_parallel == 1,
        )
        pipeline = PipelineSchedule(
            pipeline_parallel=parallelism.pipeline_parallel,
            num_microbatches=num_microbatches,
            schedule=parallelism.pipeline_schedule,
            virtual_stages=parallelism.virtual_pipeline_stages,
        )
        dp_plan = DataParallelPlan(
            model=model,
            data_parallel=parallelism.data_parallel,
            tensor_parallel=parallelism.tensor_parallel,
            layers_on_device=layers_per_stage,
            gradient_precision=precision,
            include_embedding=parallelism.pipeline_parallel == 1,
        )
        sp_plan = SequenceParallelPlan(
            enabled=parallelism.sequence_parallel,
            tensor_parallel=parallelism.tensor_parallel,
        )

        # TP (and SP) groups are always placed within a node; DP and PP groups
        # span nodes as soon as the job uses more than one node.
        tp_scope = self._scope_for_group(parallelism.tensor_parallel, spans_nodes=False)
        dp_spans_nodes = parallelism.total_devices > self.system.devices_per_node and parallelism.data_parallel > 1
        pp_spans_nodes = parallelism.total_devices > self.system.devices_per_node and parallelism.pipeline_parallel > 1
        dp_scope = self._scope_for_group(parallelism.data_parallel, spans_nodes=dp_spans_nodes)
        pp_scope = self._scope_for_group(parallelism.pipeline_parallel, spans_nodes=pp_spans_nodes)

        return DistributedTrainingPlan(
            model=model,
            parallelism=parallelism,
            system=self.system,
            global_batch_size=global_batch_size,
            seq_len=sequence_length,
            precision=precision,
            microbatch_spec=microbatch_spec,
            num_microbatches=num_microbatches,
            pipeline=pipeline,
            data_parallel_plan=dp_plan,
            sequence_parallel_plan=sp_plan,
            tp_scope=tp_scope,
            dp_scope=dp_scope,
            pp_scope=pp_scope,
        )
