"""Parallelism configuration: DP / TP / PP / SP degrees and batching.

The paper expresses a training configuration as ``DP-TP-PP-SP`` (Table 1);
sequence parallelism is given the same degree as tensor parallelism when
enabled (`SP = TP`) and degree 1 when disabled.  This module validates a
configuration against a model and batch size and derives the quantities the
rest of the framework needs (micro-batch size, number of micro-batches,
layers per pipeline stage).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..models.transformer import TransformerConfig


@dataclasses.dataclass(frozen=True)
class ParallelismConfig:
    """Degrees of the four parallelism dimensions plus micro-batching.

    Attributes:
        data_parallel: Number of model replicas (DP degree).
        tensor_parallel: Tensor-model-parallel degree (TP).
        pipeline_parallel: Pipeline-parallel degree (PP).
        sequence_parallel: Whether sequence parallelism is enabled (SP = TP).
        micro_batch_size: Sequences per micro-batch per model replica.
        virtual_pipeline_stages: Number of interleaved model chunks per
            pipeline stage (1 means a non-interleaved schedule).
        pipeline_schedule: ``"1f1b"`` (PipeDream-Flush), ``"gpipe"``, or
            ``"interleaved"``.
    """

    data_parallel: int = 1
    tensor_parallel: int = 1
    pipeline_parallel: int = 1
    sequence_parallel: bool = False
    micro_batch_size: int = 1
    virtual_pipeline_stages: int = 1
    pipeline_schedule: str = "1f1b"

    def __post_init__(self) -> None:
        for label, value in (
            ("data_parallel", self.data_parallel),
            ("tensor_parallel", self.tensor_parallel),
            ("pipeline_parallel", self.pipeline_parallel),
            ("micro_batch_size", self.micro_batch_size),
            ("virtual_pipeline_stages", self.virtual_pipeline_stages),
        ):
            if value < 1:
                raise ConfigurationError(f"{label} must be >= 1, got {value}")
        if self.pipeline_schedule not in ("1f1b", "gpipe", "interleaved"):
            raise ConfigurationError(
                f"pipeline_schedule must be one of '1f1b', 'gpipe', 'interleaved'; got {self.pipeline_schedule!r}"
            )
        if self.pipeline_schedule == "interleaved" and self.virtual_pipeline_stages < 2:
            object.__setattr__(self, "virtual_pipeline_stages", 2)
        if self.virtual_pipeline_stages > 1 and self.pipeline_schedule != "interleaved":
            object.__setattr__(self, "pipeline_schedule", "interleaved")

    # -- derived quantities -------------------------------------------------------

    @property
    def total_devices(self) -> int:
        """Number of devices the configuration occupies: DP x TP x PP."""
        return self.data_parallel * self.tensor_parallel * self.pipeline_parallel

    @property
    def model_parallel_devices(self) -> int:
        """Devices holding one model replica: TP x PP."""
        return self.tensor_parallel * self.pipeline_parallel

    def num_microbatches(self, global_batch_size: int) -> int:
        """Number of micro-batches per pipeline per training step."""
        per_replica = self.batch_per_replica(global_batch_size)
        if per_replica % self.micro_batch_size != 0:
            raise ConfigurationError(
                f"per-replica batch ({per_replica}) must be divisible by micro_batch_size "
                f"({self.micro_batch_size})"
            )
        return per_replica // self.micro_batch_size

    def batch_per_replica(self, global_batch_size: int) -> int:
        """Sequences one data-parallel replica processes per step."""
        if global_batch_size % self.data_parallel != 0:
            raise ConfigurationError(
                f"global batch size ({global_batch_size}) must be divisible by the DP degree "
                f"({self.data_parallel})"
            )
        return global_batch_size // self.data_parallel

    def layers_per_stage(self, model: TransformerConfig) -> int:
        """Transformer layers resident on one pipeline stage (one device)."""
        if model.num_layers % self.pipeline_parallel != 0:
            raise ConfigurationError(
                f"{model.name}: number of layers ({model.num_layers}) must be divisible by the PP degree "
                f"({self.pipeline_parallel})"
            )
        return model.num_layers // self.pipeline_parallel

    def layers_per_virtual_stage(self, model: TransformerConfig) -> int:
        """Layers per interleaved model chunk on one device."""
        per_stage = self.layers_per_stage(model)
        if per_stage % self.virtual_pipeline_stages != 0:
            raise ConfigurationError(
                f"layers per stage ({per_stage}) must be divisible by the number of virtual stages "
                f"({self.virtual_pipeline_stages})"
            )
        return per_stage // self.virtual_pipeline_stages

    def validate_for_model(self, model: TransformerConfig) -> None:
        """Raise :class:`ConfigurationError` if the config cannot map onto ``model``."""
        if model.num_heads % self.tensor_parallel != 0:
            raise ConfigurationError(
                f"{model.name}: TP degree {self.tensor_parallel} must divide the head count ({model.num_heads})"
            )
        self.layers_per_stage(model)
        self.layers_per_virtual_stage(model)

    @property
    def label(self) -> str:
        """The paper's ``DP-TP-PP-SP`` label for this configuration."""
        sp = self.tensor_parallel if self.sequence_parallel else 1
        return f"{self.data_parallel}-{self.tensor_parallel}-{self.pipeline_parallel}-{sp}"

    def summary(self) -> Dict[str, object]:
        """Flat summary for reports."""
        return {
            "dp": self.data_parallel,
            "tp": self.tensor_parallel,
            "pp": self.pipeline_parallel,
            "sp": self.sequence_parallel,
            "micro_batch": self.micro_batch_size,
            "schedule": self.pipeline_schedule,
            "virtual_stages": self.virtual_pipeline_stages,
            "total_devices": self.total_devices,
        }


def parse_parallelism_label(
    label: str,
    micro_batch_size: int = 1,
    pipeline_schedule: Optional[str] = None,
) -> ParallelismConfig:
    """Parse the paper's ``"DP-TP-PP-SP"`` notation into a :class:`ParallelismConfig`.

    Example: ``parse_parallelism_label("1-8-8-8")`` gives DP=1, TP=8, PP=8 with
    sequence parallelism enabled.
    """
    parts = label.replace(" ", "").split("-")
    if len(parts) != 4:
        raise ConfigurationError(f"expected 'DP-TP-PP-SP', got {label!r}")
    dp, tp, pp, sp = (int(part) for part in parts)
    if sp not in (1, tp):
        raise ConfigurationError(f"SP degree must be 1 or equal to TP ({tp}); got {sp}")
    schedule = pipeline_schedule or ("1f1b" if pp > 1 else "1f1b")
    return ParallelismConfig(
        data_parallel=dp,
        tensor_parallel=tp,
        pipeline_parallel=pp,
        sequence_parallel=(sp == tp and tp > 1),
        micro_batch_size=micro_batch_size,
        pipeline_schedule=schedule,
    )
