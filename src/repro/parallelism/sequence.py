"""Sequence parallelism: sharding the norm/dropout blocks along the sequence axis.

Tensor parallelism leaves the dropout and layer-norm blocks replicated on
every rank of the TP group; although computationally cheap, their activations
are large.  Sequence parallelism (Korthikanti et al.) shards those blocks
along the sequence dimension across the same group of devices, reducing their
activation footprint by the TP degree without adding communication volume:
each per-block all-reduce is replaced by a reduce-scatter plus an all-gather
whose combined volume equals the original all-reduce.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class SequenceParallelPlan:
    """Effect of sequence parallelism for a given TP group size.

    Attributes:
        enabled: Whether sequence parallelism is turned on.
        tensor_parallel: Size of the tensor-parallel group that SP piggybacks on.
    """

    enabled: bool = False
    tensor_parallel: int = 1

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1:
            raise ConfigurationError("tensor_parallel must be >= 1")
        if self.enabled and self.tensor_parallel == 1:
            # SP over a single device is a no-op; normalize to disabled.
            object.__setattr__(self, "enabled", False)

    @property
    def degree(self) -> int:
        """The sharding degree applied to the norm/dropout activations."""
        return self.tensor_parallel if self.enabled else 1

    @property
    def activation_shard_factor(self) -> float:
        """Factor by which the sharded blocks' activation memory shrinks."""
        return 1.0 / self.degree

    @property
    def extra_communication_volume_factor(self) -> float:
        """Relative change in TP communication volume caused by SP.

        The reduce-scatter + all-gather pair moves the same number of bytes
        as the all-reduce it replaces, so the factor is 1.0 (no overhead).
        """
        return 1.0

    @property
    def label(self) -> str:
        """The degree as it appears in the paper's DP-TP-PP-SP notation."""
        return str(self.degree)
