"""Task graph: a DAG of operators with dependency-aware traversal.

The paper starts from "the task graph of LLM training or inference" and maps
it onto the system.  For a regular decoder transformer the graph is mostly a
chain (per layer: attention block then MLP block, with communication ops in
between), but the structure is kept generic so other schedules (e.g.
overlapped communication) can be expressed.

A :class:`TaskGraph` stores :class:`TaskNode` objects, each wrapping one
:class:`~repro.workload.operators.Operator`, with explicit dependency edges.
The graph offers topological iteration, aggregate FLOP/byte queries and a
critical-path evaluation once per-node execution times are assigned.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from ..errors import ConfigurationError
from .operators import CommunicationOp, Operator, OperatorKind


@dataclasses.dataclass
class TaskNode:
    """One node of the task graph.

    Attributes:
        node_id: Unique integer id within the graph.
        operator: The kernel or communication descriptor.
        predecessors: Ids of nodes this node depends on.
        tags: Free-form labels (e.g. ``"layer0"``, ``"forward"``, ``"mlp"``).
    """

    node_id: int
    operator: Operator
    predecessors: List[int] = dataclasses.field(default_factory=list)
    tags: List[str] = dataclasses.field(default_factory=list)

    def has_tag(self, tag: str) -> bool:
        """Whether the node carries ``tag``."""
        return tag in self.tags


class TaskGraph:
    """A directed acyclic graph of operators."""

    def __init__(self, name: str = "task-graph"):
        self.name = name
        self._nodes: Dict[int, TaskNode] = {}
        self._next_id = 0

    # -- construction ---------------------------------------------------------

    def add(
        self,
        operator: Operator,
        deps: Optional[Sequence[int]] = None,
        tags: Optional[Iterable[str]] = None,
    ) -> int:
        """Add ``operator`` to the graph and return its node id.

        Args:
            operator: The operator descriptor to wrap.
            deps: Ids of nodes that must complete before this one starts.
            tags: Labels attached to the node for later filtering.
        """
        deps = list(deps or [])
        for dep in deps:
            if dep not in self._nodes:
                raise ConfigurationError(f"dependency {dep} does not exist in graph {self.name!r}")
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = TaskNode(
            node_id=node_id,
            operator=operator,
            predecessors=deps,
            tags=list(tags or []),
        )
        return node_id

    def add_chain(self, operators: Sequence[Operator], tags: Optional[Iterable[str]] = None) -> List[int]:
        """Add ``operators`` as a linear chain; each depends on the previous one."""
        ids: List[int] = []
        last: Optional[int] = None
        tag_list = list(tags or [])
        for operator in operators:
            node_id = self.add(operator, deps=[last] if last is not None else [], tags=tag_list)
            ids.append(node_id)
            last = node_id
        return ids

    def merge(self, other: "TaskGraph", deps: Optional[Sequence[int]] = None) -> Dict[int, int]:
        """Append all nodes of ``other`` to this graph.

        Nodes of ``other`` without predecessors are additionally made to
        depend on ``deps``.  Returns a mapping from ``other``'s node ids to
        the new ids in this graph.
        """
        mapping: Dict[int, int] = {}
        for node in other.topological_order():
            new_deps = [mapping[d] for d in node.predecessors]
            if not node.predecessors and deps:
                new_deps = list(deps)
            mapping[node.node_id] = self.add(node.operator, deps=new_deps, tags=node.tags)
        return mapping

    # -- accessors -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[TaskNode]:
        return iter(self._nodes.values())

    def node(self, node_id: int) -> TaskNode:
        """Return the node with id ``node_id``."""
        return self._nodes[node_id]

    @property
    def nodes(self) -> List[TaskNode]:
        """All nodes in insertion order."""
        return [self._nodes[node_id] for node_id in sorted(self._nodes)]

    def operators(self, kind: Optional[OperatorKind] = None, tag: Optional[str] = None) -> List[Operator]:
        """Return operators, optionally filtered by kind and/or tag."""
        result = []
        for node in self.nodes:
            if kind is not None and node.operator.kind is not kind:
                continue
            if tag is not None and not node.has_tag(tag):
                continue
            result.append(node.operator)
        return result

    def compute_operators(self) -> List[Operator]:
        """All non-communication operators."""
        return [node.operator for node in self.nodes if node.operator.kind is not OperatorKind.COMMUNICATION]

    def communication_operators(self) -> List[CommunicationOp]:
        """All communication operators."""
        return [
            node.operator  # type: ignore[misc]
            for node in self.nodes
            if node.operator.kind is OperatorKind.COMMUNICATION
        ]

    # -- aggregate queries -------------------------------------------------------

    @property
    def total_flops(self) -> float:
        """Sum of FLOPs over all compute operators."""
        return sum(op.flops for op in self.compute_operators())

    @property
    def total_compute_bytes(self) -> float:
        """Sum of memory traffic over all compute operators."""
        return sum(op.bytes_total for op in self.compute_operators())

    @property
    def total_communication_bytes(self) -> float:
        """Sum of payload bytes over all communication operators."""
        return sum(op.data_bytes for op in self.communication_operators())

    # -- traversal ----------------------------------------------------------------

    def topological_order(self) -> List[TaskNode]:
        """Nodes in a topological order (raises if the graph has a cycle)."""
        in_degree = {node_id: len(node.predecessors) for node_id, node in self._nodes.items()}
        successors: Dict[int, List[int]] = {node_id: [] for node_id in self._nodes}
        for node in self._nodes.values():
            for dep in node.predecessors:
                successors[dep].append(node.node_id)
        ready = sorted(node_id for node_id, deg in in_degree.items() if deg == 0)
        order: List[TaskNode] = []
        while ready:
            node_id = ready.pop(0)
            order.append(self._nodes[node_id])
            for succ in successors[node_id]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self._nodes):
            raise ConfigurationError(f"task graph {self.name!r} contains a cycle")
        return order

    def critical_path_time(self, time_of: Callable[[Operator], float]) -> float:
        """Length of the critical path when each operator takes ``time_of(op)`` seconds.

        For a serial chain this equals the sum of all operator times; for
        graphs with parallel branches only the longest dependency chain counts.
        """
        finish: Dict[int, float] = {}
        for node in self.topological_order():
            start = max((finish[dep] for dep in node.predecessors), default=0.0)
            finish[node.node_id] = start + time_of(node.operator)
        return max(finish.values(), default=0.0)

    def serial_time(self, time_of: Callable[[Operator], float]) -> float:
        """Total time when every operator executes back to back on one device."""
        return sum(time_of(node.operator) for node in self.nodes)
