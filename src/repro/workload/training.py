"""Training workload builder: the task graph of one training micro-batch.

The builder produces, for one pipeline stage on one device, the chain of
forward and backward operators (including the tensor-parallel collectives)
for a configurable number of transformer layers.  Pipeline scheduling,
data-parallel gradient reduction, and activation recomputation overheads are
applied on top of this graph by the performance-prediction engine.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..errors import ConfigurationError
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from .graph import TaskGraph
from .operators import GEMM, Operator
from .transformer_layer import LayerExecutionSpec, TransformerLayerBuilder


@dataclasses.dataclass(frozen=True)
class TrainingMicrobatchSpec:
    """Description of the work one device does for one training micro-batch.

    Attributes:
        model: The transformer architecture.
        micro_batch: Micro-batch size (sequences) per model replica.
        seq_len: Training sequence length.
        layers_per_stage: Number of transformer layers resident on the device
            (``num_layers / pipeline_parallel`` for a non-interleaved schedule).
        tensor_parallel: Tensor-parallel degree.
        sequence_parallel: Whether sequence parallelism is enabled.
        precision: Compute precision for activations and weights.
        include_embedding: Whether the device also runs the embedding lookup
            and the LM head GEMM (first/last pipeline stage).
    """

    model: TransformerConfig
    micro_batch: int
    seq_len: int
    layers_per_stage: int
    tensor_parallel: int = 1
    sequence_parallel: bool = False
    precision: Precision = Precision.FP16
    include_embedding: bool = False

    def __post_init__(self) -> None:
        if self.layers_per_stage < 1:
            raise ConfigurationError("layers_per_stage must be at least 1")

    def layer_spec(self) -> LayerExecutionSpec:
        """The per-layer execution spec implied by this micro-batch spec."""
        return LayerExecutionSpec(
            model=self.model,
            micro_batch=self.micro_batch,
            seq_len=self.seq_len,
            tensor_parallel=self.tensor_parallel,
            sequence_parallel=self.sequence_parallel,
            precision=self.precision,
            with_dropout=True,
        )


def _lm_head_gemm(spec: TrainingMicrobatchSpec) -> GEMM:
    """The logits GEMM of the last pipeline stage, sharded over the TP group."""
    vocab_per_rank = max(1, spec.model.vocab_size // spec.tensor_parallel)
    return GEMM(
        name="lm_head",
        precision=spec.precision,
        m=spec.micro_batch * spec.seq_len,
        n=vocab_per_rank,
        k=spec.model.hidden_size,
        weight_operand=True,
    )


def build_forward_graph(spec: TrainingMicrobatchSpec, tp_scope: str = "intra_node") -> TaskGraph:
    """Forward-pass task graph of one micro-batch on one pipeline stage."""
    graph = TaskGraph(name=f"{spec.model.name}-forward")
    builder = TransformerLayerBuilder(spec.layer_spec())
    last: Optional[int] = None
    for layer_index in range(spec.layers_per_stage):
        tags = [f"layer{layer_index}", "forward"]
        ops: List[Operator] = list(builder.forward_compute_ops())
        ops.extend(builder.forward_communication(scope=tp_scope))
        for op in ops:
            last = graph.add(op, deps=[last] if last is not None else [], tags=tags)
    if spec.include_embedding:
        last = graph.add(_lm_head_gemm(spec), deps=[last] if last is not None else [], tags=["lm_head", "forward"])
    return graph


def build_backward_graph(spec: TrainingMicrobatchSpec, tp_scope: str = "intra_node") -> TaskGraph:
    """Backward-pass task graph of one micro-batch on one pipeline stage."""
    graph = TaskGraph(name=f"{spec.model.name}-backward")
    builder = TransformerLayerBuilder(spec.layer_spec())
    last: Optional[int] = None
    if spec.include_embedding:
        head = _lm_head_gemm(spec)
        dgrad = GEMM(
            name="lm_head_dgrad",
            precision=head.precision,
            m=head.m,
            n=head.k,
            k=head.n,
            weight_operand=True,
        )
        wgrad = GEMM(
            name="lm_head_wgrad",
            precision=head.precision,
            m=head.k,
            n=head.n,
            k=head.m,
            accumulate=True,
        )
        for op in (dgrad, wgrad):
            last = graph.add(op, deps=[last] if last is not None else [], tags=["lm_head", "backward"])
    for layer_index in range(spec.layers_per_stage):
        tags = [f"layer{layer_index}", "backward"]
        ops: List[Operator] = list(builder.backward_compute_ops())
        ops.extend(builder.backward_communication(scope=tp_scope))
        for op in ops:
            last = graph.add(op, deps=[last] if last is not None else [], tags=tags)
    return graph


def build_training_microbatch_graph(spec: TrainingMicrobatchSpec, tp_scope: str = "intra_node") -> TaskGraph:
    """Forward + backward task graph of one micro-batch on one pipeline stage."""
    graph = build_forward_graph(spec, tp_scope=tp_scope)
    backward = build_backward_graph(spec, tp_scope=tp_scope)
    tail = [graph.nodes[-1].node_id] if len(graph) else None
    graph.merge(backward, deps=tail)
    return graph
