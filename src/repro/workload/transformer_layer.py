"""Per-layer operator builders for decoder transformer layers.

The builders translate a :class:`~repro.models.transformer.TransformerConfig`
plus execution parameters (micro-batch size, sequence length, tensor/sequence
parallel degrees, precision, phase) into the concrete list of operators that
run *on one device*.  The Megatron-LM partitioning (Section 3.2 of the paper)
is applied here: attention heads and MLP columns are split across the
tensor-parallel group, and the dropout/layer-norm blocks are optionally split
along the sequence dimension when sequence parallelism is enabled.

Naming of the GEMMs follows the paper's Table 4:

=====================  =========================================
``qkv_projection``     merged-head ``X . W_{K/Q/V} = K, Q, V``
``attention_scores``   single-head ``Q . K^T = R``
``attention_context``  single-head ``softmax(R) . V = Z``
``attention_output``   ``Z . W = O``
``mlp_h_to_4h``        ``O . W_MLP1 = O1`` (gate/up for SwiGLU)
``mlp_4h_to_h``        ``O1 . W_MLP2 = O2``
=====================  =========================================
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..errors import ConfigurationError
from ..hardware.datatypes import Precision
from ..models.transformer import MLPActivation, TransformerConfig
from .operators import (
    CollectiveKind,
    CommunicationOp,
    ElementwiseOp,
    GEMM,
    MemoryOp,
    NormalizationOp,
    Operator,
)

#: Arithmetic cost per element assumed for the common pointwise kernels.
GELU_FLOPS_PER_ELEMENT = 8.0
SILU_FLOPS_PER_ELEMENT = 6.0
DROPOUT_FLOPS_PER_ELEMENT = 2.0
RESIDUAL_FLOPS_PER_ELEMENT = 1.0
SOFTMAX_FLOPS_PER_ELEMENT = 5.0
LAYERNORM_FLOPS_PER_ELEMENT = 8.0
#: Dropout stores a 1-byte mask per element in addition to its data streams.
DROPOUT_MASK_BYTES = 1.0


@dataclasses.dataclass(frozen=True)
class LayerExecutionSpec:
    """Execution parameters for one transformer layer on one device.

    Attributes:
        model: The transformer architecture.
        micro_batch: Per-device micro-batch size (sequences).
        seq_len: Number of query tokens processed by the layer.
        kv_len: Number of key/value tokens attended to.  Equals ``seq_len``
            for training/prefill; equals the KV-cache length during decode.
        tensor_parallel: Degree of tensor (model) parallelism.
        sequence_parallel: Whether the dropout/layer-norm blocks are split
            along the sequence dimension across the tensor-parallel group.
        precision: Numeric format of activations and weights.
        with_dropout: Whether dropout kernels are present (training only).
        use_kv_cache: Whether the key/value projections of previous tokens are
            read from the KV-cache instead of being recomputed (decode phase).
    """

    model: TransformerConfig
    micro_batch: int
    seq_len: int
    kv_len: int = 0
    tensor_parallel: int = 1
    sequence_parallel: bool = False
    precision: Precision = Precision.FP16
    with_dropout: bool = True
    use_kv_cache: bool = False

    def __post_init__(self) -> None:
        if self.micro_batch < 1 or self.seq_len < 1:
            raise ConfigurationError("micro_batch and seq_len must be positive")
        if self.tensor_parallel < 1:
            raise ConfigurationError("tensor_parallel must be >= 1")
        if self.model.num_heads % self.tensor_parallel != 0:
            raise ConfigurationError(
                f"tensor parallel degree {self.tensor_parallel} must divide "
                f"the number of attention heads ({self.model.num_heads})"
            )
        if self.kv_len == 0:
            object.__setattr__(self, "kv_len", self.seq_len)

    # -- convenience dimensions -------------------------------------------------

    @property
    def tokens(self) -> int:
        """Query tokens processed per device: micro_batch x seq_len."""
        return self.micro_batch * self.seq_len

    @property
    def heads_per_device(self) -> int:
        """Attention heads processed by one tensor-parallel rank."""
        return self.model.num_heads // self.tensor_parallel

    @property
    def kv_heads_per_device(self) -> int:
        """Key/value heads per tensor-parallel rank (at least 1)."""
        return max(1, self.model.num_kv_heads // self.tensor_parallel)

    @property
    def hidden_per_device(self) -> int:
        """Attention hidden width owned by one rank."""
        return self.heads_per_device * self.model.head_dim

    @property
    def ffn_per_device(self) -> int:
        """MLP hidden width owned by one rank."""
        return max(1, self.model.ffn_hidden_size // self.tensor_parallel)

    @property
    def norm_elements(self) -> int:
        """Elements seen by each layer-norm / dropout block on this rank.

        With sequence parallelism these blocks are sharded along the sequence
        dimension, dividing the element count by the tensor-parallel degree.
        """
        elements = self.tokens * self.model.hidden_size
        if self.sequence_parallel and self.tensor_parallel > 1:
            elements //= self.tensor_parallel
        return elements


class TransformerLayerBuilder:
    """Builds the per-device operator list of one transformer layer."""

    def __init__(self, spec: LayerExecutionSpec):
        self.spec = spec

    # -- attention block -------------------------------------------------------

    def attention_gemms(self) -> List[GEMM]:
        """The four GEMMs of the multi-head-attention block on one rank."""
        spec = self.spec
        model = spec.model
        qkv_width = spec.hidden_per_device + 2 * spec.kv_heads_per_device * model.head_dim
        gemms = [
            GEMM(
                name="qkv_projection",
                precision=spec.precision,
                m=spec.tokens,
                n=qkv_width,
                k=model.hidden_size,
                weight_operand=True,
            ),
            GEMM(
                name="attention_scores",
                precision=spec.precision,
                m=spec.seq_len,
                n=spec.kv_len,
                k=model.head_dim,
                batch=spec.micro_batch * spec.heads_per_device,
            ),
            GEMM(
                name="attention_context",
                precision=spec.precision,
                m=spec.seq_len,
                n=model.head_dim,
                k=spec.kv_len,
                batch=spec.micro_batch * spec.heads_per_device,
            ),
            GEMM(
                name="attention_output",
                precision=spec.precision,
                m=spec.tokens,
                n=model.hidden_size,
                k=spec.hidden_per_device,
                weight_operand=True,
            ),
        ]
        return gemms

    def attention_auxiliary_ops(self) -> List[Operator]:
        """Softmax, attention dropout, and the KV-cache update of one rank."""
        spec = self.spec
        score_elements = spec.micro_batch * spec.heads_per_device * spec.seq_len * spec.kv_len
        ops: List[Operator] = [
            NormalizationOp(
                name="attention_softmax",
                precision=spec.precision,
                num_elements=score_elements,
                flops_per_element=SOFTMAX_FLOPS_PER_ELEMENT,
                variant="softmax",
            )
        ]
        if spec.with_dropout:
            ops.append(
                ElementwiseOp(
                    name="attention_dropout",
                    precision=spec.precision,
                    num_elements=score_elements,
                    flops_per_element=DROPOUT_FLOPS_PER_ELEMENT,
                    extra_bytes_per_element=DROPOUT_MASK_BYTES,
                )
            )
        if spec.use_kv_cache:
            # Append the freshly computed K/V of the new tokens to the cache.
            new_kv_bytes = (
                2.0
                * spec.micro_batch
                * spec.seq_len
                * spec.kv_heads_per_device
                * spec.model.head_dim
                * spec.precision.bytes_per_element
            )
            ops.append(MemoryOp(name="kv_cache_append", precision=spec.precision, bytes_moved=new_kv_bytes, is_write=True))
        return ops

    # -- MLP block ---------------------------------------------------------------

    def mlp_gemms(self) -> List[GEMM]:
        """The MLP GEMMs of one rank (two for GELU models, three for SwiGLU)."""
        spec = self.spec
        model = spec.model
        gemms: List[GEMM] = []
        if model.mlp_activation is MLPActivation.SWIGLU:
            for suffix in ("gate", "up"):
                gemms.append(
                    GEMM(
                        name=f"mlp_h_to_4h_{suffix}" if suffix == "up" else "mlp_h_to_4h",
                        precision=spec.precision,
                        m=spec.tokens,
                        n=spec.ffn_per_device,
                        k=model.hidden_size,
                        weight_operand=True,
                    )
                )
        else:
            gemms.append(
                GEMM(
                    name="mlp_h_to_4h",
                    precision=spec.precision,
                    m=spec.tokens,
                    n=spec.ffn_per_device,
                    k=model.hidden_size,
                    weight_operand=True,
                )
            )
        gemms.append(
            GEMM(
                name="mlp_4h_to_h",
                precision=spec.precision,
                m=spec.tokens,
                n=model.hidden_size,
                k=spec.ffn_per_device,
                weight_operand=True,
            )
        )
        return gemms

    def mlp_auxiliary_ops(self) -> List[Operator]:
        """The MLP non-linearity (GELU or SiLU-and-multiply) of one rank."""
        spec = self.spec
        elements = spec.tokens * spec.ffn_per_device
        if spec.model.mlp_activation is MLPActivation.SWIGLU:
            return [
                ElementwiseOp(
                    name="mlp_silu_mul",
                    precision=spec.precision,
                    num_elements=elements,
                    flops_per_element=SILU_FLOPS_PER_ELEMENT,
                    reads_per_element=2.0,
                )
            ]
        return [
            ElementwiseOp(
                name="mlp_gelu",
                precision=spec.precision,
                num_elements=elements,
                flops_per_element=GELU_FLOPS_PER_ELEMENT,
            )
        ]

    # -- norms, dropouts, residuals ------------------------------------------------

    def block_boundary_ops(self) -> List[Operator]:
        """Layer-norms, residual additions and dropouts around the two blocks.

        These are the kernels that sequence parallelism shards along the
        sequence dimension (Korthikanti et al.): two layer-norms, two residual
        additions, and (during training) two hidden-state dropouts per layer.
        """
        spec = self.spec
        elements = spec.norm_elements
        ops: List[Operator] = [
            NormalizationOp(
                name="input_layernorm",
                precision=spec.precision,
                num_elements=elements,
                flops_per_element=LAYERNORM_FLOPS_PER_ELEMENT,
                variant="layernorm",
            ),
            NormalizationOp(
                name="post_attention_layernorm",
                precision=spec.precision,
                num_elements=elements,
                flops_per_element=LAYERNORM_FLOPS_PER_ELEMENT,
                variant="layernorm",
            ),
            ElementwiseOp(
                name="attention_residual_add",
                precision=spec.precision,
                num_elements=elements,
                flops_per_element=RESIDUAL_FLOPS_PER_ELEMENT,
                reads_per_element=2.0,
            ),
            ElementwiseOp(
                name="mlp_residual_add",
                precision=spec.precision,
                num_elements=elements,
                flops_per_element=RESIDUAL_FLOPS_PER_ELEMENT,
                reads_per_element=2.0,
            ),
        ]
        if spec.with_dropout:
            ops.extend(
                [
                    ElementwiseOp(
                        name="attention_output_dropout",
                        precision=spec.precision,
                        num_elements=elements,
                        flops_per_element=DROPOUT_FLOPS_PER_ELEMENT,
                        extra_bytes_per_element=DROPOUT_MASK_BYTES,
                    ),
                    ElementwiseOp(
                        name="mlp_output_dropout",
                        precision=spec.precision,
                        num_elements=elements,
                        flops_per_element=DROPOUT_FLOPS_PER_ELEMENT,
                        extra_bytes_per_element=DROPOUT_MASK_BYTES,
                    ),
                ]
            )
        return ops

    # -- communication ----------------------------------------------------------------

    def forward_communication(self, scope: str = "intra_node") -> List[CommunicationOp]:
        """Tensor-parallel collectives of one layer's forward pass.

        The Megatron mapping requires one all-reduce after the attention
        output projection and one after the MLP down projection.  With
        sequence parallelism each all-reduce is replaced by a reduce-scatter
        plus an all-gather of the same total volume.
        """
        spec = self.spec
        if spec.tensor_parallel <= 1:
            return []
        payload = spec.tokens * spec.model.hidden_size * spec.precision.bytes_per_element
        if spec.sequence_parallel:
            ops = []
            for block in ("attention", "mlp"):
                ops.append(
                    CommunicationOp(
                        name=f"{block}_reduce_scatter",
                        collective=CollectiveKind.REDUCE_SCATTER,
                        data_bytes=payload,
                        group_size=spec.tensor_parallel,
                        scope=scope,
                    )
                )
                ops.append(
                    CommunicationOp(
                        name=f"{block}_all_gather",
                        collective=CollectiveKind.ALL_GATHER,
                        data_bytes=payload,
                        group_size=spec.tensor_parallel,
                        scope=scope,
                    )
                )
            return ops
        return [
            CommunicationOp(
                name="attention_all_reduce",
                collective=CollectiveKind.ALL_REDUCE,
                data_bytes=payload,
                group_size=spec.tensor_parallel,
                scope=scope,
            ),
            CommunicationOp(
                name="mlp_all_reduce",
                collective=CollectiveKind.ALL_REDUCE,
                data_bytes=payload,
                group_size=spec.tensor_parallel,
                scope=scope,
            ),
        ]

    # -- assembled views ---------------------------------------------------------------

    def forward_gemms(self) -> List[GEMM]:
        """All GEMMs of one layer's forward pass."""
        return self.attention_gemms() + self.mlp_gemms()

    def forward_compute_ops(self) -> List[Operator]:
        """All compute kernels (GEMMs + memory-bound kernels) of the forward pass."""
        ops: List[Operator] = []
        ops.append(self.block_boundary_ops()[0])  # input layernorm first
        ops.extend(self.attention_gemms()[:2])
        ops.extend(self.attention_auxiliary_ops())
        ops.extend(self.attention_gemms()[2:])
        boundary = self.block_boundary_ops()
        ops.extend(boundary[2:3])  # attention residual
        ops.append(boundary[1])    # post-attention layernorm
        ops.extend(self.mlp_gemms()[:-1])
        ops.extend(self.mlp_auxiliary_ops())
        ops.append(self.mlp_gemms()[-1])
        ops.extend(boundary[3:4])  # mlp residual
        ops.extend(boundary[4:])   # dropouts, if any
        return ops

    def backward_compute_ops(self) -> List[Operator]:
        """Backward-pass kernels of one layer.

        Every forward GEMM spawns two backward GEMMs (activation gradient and
        weight gradient) of the same FLOP count; memory-bound kernels cost
        roughly the same backward as forward and are duplicated with a
        ``_grad`` suffix.
        """
        ops: List[Operator] = []
        for gemm in self.forward_gemms():
            ops.append(
                GEMM(
                    name=f"{gemm.name}_dgrad",
                    precision=gemm.precision,
                    m=gemm.m,
                    n=gemm.k,
                    k=gemm.n,
                    batch=gemm.batch,
                    weight_operand=gemm.weight_operand,
                )
            )
            ops.append(
                GEMM(
                    name=f"{gemm.name}_wgrad",
                    precision=gemm.precision,
                    m=gemm.k,
                    n=gemm.n,
                    k=gemm.m,
                    batch=gemm.batch,
                    weight_operand=False,
                    accumulate=True,
                )
            )
        for op in self.forward_compute_ops():
            if isinstance(op, GEMM):
                continue
            ops.append(dataclasses.replace(op, name=f"{op.name}_grad"))
        return ops

    def backward_communication(self, scope: str = "intra_node") -> List[CommunicationOp]:
        """Tensor-parallel collectives of one layer's backward pass.

        The Megatron mapping needs the mirror-image collectives of the
        forward pass (same count and volume).
        """
        ops = []
        for op in self.forward_communication(scope=scope):
            ops.append(dataclasses.replace(op, name=f"{op.name}_bwd"))
        return ops


def build_layer_spec(
    model: TransformerConfig,
    micro_batch: int,
    seq_len: int,
    tensor_parallel: int = 1,
    sequence_parallel: bool = False,
    precision: Precision = Precision.FP16,
    training: bool = True,
    kv_len: int = 0,
    use_kv_cache: bool = False,
) -> LayerExecutionSpec:
    """Convenience constructor for :class:`LayerExecutionSpec`."""
    return LayerExecutionSpec(
        model=model,
        micro_batch=micro_batch,
        seq_len=seq_len,
        kv_len=kv_len,
        tensor_parallel=tensor_parallel,
        sequence_parallel=sequence_parallel,
        precision=precision,
        with_dropout=training,
        use_kv_cache=use_kv_cache,
    )
