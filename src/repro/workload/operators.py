"""Operator descriptors: the kernels that make up a transformer layer.

The paper groups transformer computation into three kernel classes
(Section 1.2): tensor contractions (GEMM/GEMV), normalization (softmax,
layer-norm), and element-wise operations (non-linearities, biases, dropout,
residual additions).  Each descriptor knows its FLOP count and the bytes it
must move to/from memory, which is exactly what the roofline model needs.

All sizes are *logical* (per device, after parallelization has been applied
by the mapper); the descriptors themselves are agnostic of parallelism.
"""

from __future__ import annotations

import dataclasses
import enum

from ..errors import ConfigurationError
from ..hardware.datatypes import Precision


class OperatorKind(enum.Enum):
    """Coarse kernel class of an operator."""

    GEMM = "gemm"
    NORMALIZATION = "normalization"
    ELEMENTWISE = "elementwise"
    COMMUNICATION = "communication"
    MEMORY = "memory"


@dataclasses.dataclass(frozen=True)
class Operator:
    """Base class for every kernel descriptor.

    Attributes:
        name: Human-readable kernel name, e.g. ``"mlp_h_to_4h"``.
        precision: Numeric format of the kernel's operands.
    """

    name: str
    precision: Precision = Precision.FP16

    @property
    def kind(self) -> OperatorKind:
        """Kernel class; subclasses override."""
        raise NotImplementedError

    @property
    def flops(self) -> float:
        """Floating-point operations executed by the kernel."""
        raise NotImplementedError

    @property
    def bytes_read(self) -> float:
        """Bytes the kernel must read from memory (ignoring cache reuse)."""
        raise NotImplementedError

    @property
    def bytes_written(self) -> float:
        """Bytes the kernel writes back to memory."""
        raise NotImplementedError

    @property
    def bytes_total(self) -> float:
        """Total memory traffic of the kernel."""
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic."""
        total = self.bytes_total
        return self.flops / total if total > 0 else float("inf")


@dataclasses.dataclass(frozen=True)
class GEMM(Operator):
    """A general matrix-matrix multiply ``C[m, n] = A[m, k] @ B[k, n]``.

    ``batch`` models batched GEMMs (e.g. per-head attention score GEMMs
    executed for every head and every sequence in the batch).

    Attributes:
        m, n, k: GEMM dimensions.
        batch: Number of independent GEMMs with these dimensions.
        weight_operand: Whether the ``B`` operand is a model weight.  Weight
            operands are shared across the batch dimension, and during
            autoregressive decoding they dominate the memory traffic.
        accumulate: Whether the output is accumulated into an existing buffer
            (doubles the write-side traffic of the C operand).
    """

    m: int = 1
    n: int = 1
    k: int = 1
    batch: int = 1
    weight_operand: bool = False
    accumulate: bool = False

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k, self.batch) < 1:
            raise ConfigurationError(f"GEMM {self.name}: m, n, k and batch must be >= 1")

    def __hash__(self) -> int:
        # GEMMs key the kernel-time memo caches and get hashed several times
        # per engine step; caching the (immutable) field-tuple hash keeps
        # those lookups cheap.  Consistent with the generated __eq__.
        value = self.__dict__.get("_hash")
        if value is None:
            value = hash(
                (
                    self.name,
                    self.precision,
                    self.m,
                    self.n,
                    self.k,
                    self.batch,
                    self.weight_operand,
                    self.accumulate,
                )
            )
            object.__setattr__(self, "_hash", value)
        return value

    @property
    def kind(self) -> OperatorKind:
        return OperatorKind.GEMM

    @property
    def element_bytes(self) -> float:
        """Bytes per element at the kernel's precision."""
        return self.precision.bytes_per_element

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k * self.batch

    @property
    def a_bytes(self) -> float:
        """Bytes of the activation (A) operand across the whole batch."""
        return self.m * self.k * self.batch * self.element_bytes

    @property
    def b_bytes(self) -> float:
        """Bytes of the B operand (weights are not replicated across the batch)."""
        replication = 1 if self.weight_operand else self.batch
        return self.k * self.n * replication * self.element_bytes

    @property
    def c_bytes(self) -> float:
        """Bytes of the output (C) operand across the whole batch."""
        return self.m * self.n * self.batch * self.element_bytes

    @property
    def bytes_read(self) -> float:
        read = self.a_bytes + self.b_bytes
        if self.accumulate:
            read += self.c_bytes
        return read

    @property
    def bytes_written(self) -> float:
        return self.c_bytes

    @property
    def is_gemv_like(self) -> bool:
        """True when one output dimension is tiny (skinny GEMM / GEMV)."""
        return min(self.m, self.n) <= 16

    @property
    def shape(self) -> tuple:
        """The ``(m, n, k, batch)`` tuple, handy in tests and reports."""
        return (self.m, self.n, self.k, self.batch)

    def scaled_batch(self, factor: int) -> "GEMM":
        """Return a copy with the batch count multiplied by ``factor``."""
        return dataclasses.replace(self, batch=self.batch * factor)


def make_gemv(name: str, rows: int, cols: int, precision: Precision = Precision.FP16, batch: int = 1) -> GEMM:
    """Create a matrix-vector multiply ``y[rows] = W[rows, cols] @ x[cols]``."""
    return GEMM(
        name=name,
        precision=precision,
        m=1,
        n=rows,
        k=cols,
        batch=batch,
        weight_operand=True,
    )


@dataclasses.dataclass(frozen=True)
class ElementwiseOp(Operator):
    """An element-wise kernel (GELU, bias add, dropout, residual add, ...).

    Attributes:
        num_elements: Number of elements processed.
        flops_per_element: Arithmetic cost per element (e.g. ~8 for GELU).
        reads_per_element: Operand streams read per element (2 for a residual add).
        writes_per_element: Output streams written per element.
        extra_bytes_per_element: Extra traffic per element outside the main
            streams (e.g. a 1-byte dropout mask).
    """

    num_elements: int = 0
    flops_per_element: float = 1.0
    reads_per_element: float = 1.0
    writes_per_element: float = 1.0
    extra_bytes_per_element: float = 0.0

    def __post_init__(self) -> None:
        if self.num_elements < 0:
            raise ConfigurationError(f"{self.name}: num_elements must be non-negative")

    @property
    def kind(self) -> OperatorKind:
        return OperatorKind.ELEMENTWISE

    @property
    def flops(self) -> float:
        return self.num_elements * self.flops_per_element

    @property
    def bytes_read(self) -> float:
        per_element = self.reads_per_element * self.precision.bytes_per_element + self.extra_bytes_per_element
        return self.num_elements * per_element

    @property
    def bytes_written(self) -> float:
        return self.num_elements * self.writes_per_element * self.precision.bytes_per_element


@dataclasses.dataclass(frozen=True)
class NormalizationOp(Operator):
    """A normalization kernel: softmax, layer-norm, or RMS-norm.

    Attributes:
        num_elements: Number of elements normalized.
        flops_per_element: Arithmetic cost per element (softmax ~5, layernorm ~8).
        variant: ``"softmax"``, ``"layernorm"`` or ``"rmsnorm"``; informational.
    """

    num_elements: int = 0
    flops_per_element: float = 5.0
    variant: str = "softmax"

    def __post_init__(self) -> None:
        if self.num_elements < 0:
            raise ConfigurationError(f"{self.name}: num_elements must be non-negative")

    @property
    def kind(self) -> OperatorKind:
        return OperatorKind.NORMALIZATION

    @property
    def flops(self) -> float:
        return self.num_elements * self.flops_per_element

    @property
    def bytes_read(self) -> float:
        return self.num_elements * self.precision.bytes_per_element

    @property
    def bytes_written(self) -> float:
        return self.num_elements * self.precision.bytes_per_element


@dataclasses.dataclass(frozen=True)
class MemoryOp(Operator):
    """A pure data-movement kernel, e.g. reading or appending the KV-cache."""

    bytes_moved: float = 0.0
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.bytes_moved < 0:
            raise ConfigurationError(f"{self.name}: bytes_moved must be non-negative")

    @property
    def kind(self) -> OperatorKind:
        return OperatorKind.MEMORY

    @property
    def flops(self) -> float:
        return 0.0

    @property
    def bytes_read(self) -> float:
        return 0.0 if self.is_write else self.bytes_moved

    @property
    def bytes_written(self) -> float:
        return self.bytes_moved if self.is_write else 0.0


class CollectiveKind(enum.Enum):
    """Type of a communication collective."""

    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    POINT_TO_POINT = "point_to_point"
    BROADCAST = "broadcast"


@dataclasses.dataclass(frozen=True)
class CommunicationOp(Operator):
    """A collective or point-to-point communication between devices.

    Attributes:
        collective: The collective type.
        data_bytes: Payload size per participating device in bytes.
        group_size: Number of devices participating.
        scope: ``"intra_node"`` or ``"inter_node"``; decides which fabric is used.
    """

    collective: CollectiveKind = CollectiveKind.ALL_REDUCE
    data_bytes: float = 0.0
    group_size: int = 1
    scope: str = "intra_node"

    def __post_init__(self) -> None:
        if self.data_bytes < 0:
            raise ConfigurationError(f"{self.name}: data_bytes must be non-negative")
        if self.group_size < 1:
            raise ConfigurationError(f"{self.name}: group_size must be at least 1")

    @property
    def kind(self) -> OperatorKind:
        return OperatorKind.COMMUNICATION

    @property
    def flops(self) -> float:
        return 0.0

    @property
    def bytes_read(self) -> float:
        return self.data_bytes

    @property
    def bytes_written(self) -> float:
        return self.data_bytes

    @property
    def is_trivial(self) -> bool:
        """A collective over one device (or no data) costs nothing."""
        return self.group_size <= 1 or self.data_bytes == 0
