"""Inference workload builders: prefill (summarization) and decode (generation).

Inference has two phases with very different characteristics (Section 6 of
the paper):

* **Prefill / summarization** processes the whole prompt at once.  Its GEMMs
  look like (smaller) training GEMMs and can be compute-bound depending on
  the accelerator and batch size.
* **Autoregressive decode / generation** produces one token at a time.  With
  KV-caching the per-token GEMMs degenerate into skinny GEMMs / GEMVs whose
  time is dominated by streaming the model weights and the KV-cache from
  DRAM, i.e. they are memory-bound.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..errors import ConfigurationError
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from .graph import TaskGraph
from .operators import GEMM, Operator
from .transformer_layer import LayerExecutionSpec, TransformerLayerBuilder


@dataclasses.dataclass(frozen=True)
class InferencePhaseSpec:
    """Description of one inference phase on one tensor-parallel rank.

    Attributes:
        model: The transformer architecture.
        batch_size: Number of sequences processed together.
        prompt_len: Prompt (summarization) length in tokens.
        generated_tokens: Number of tokens produced in the generation phase.
        tensor_parallel: Tensor-parallel degree (inference typically uses only TP).
        precision: Numeric format of weights and activations.
        include_lm_head: Whether to include the logits GEMM.
    """

    model: TransformerConfig
    batch_size: int
    prompt_len: int
    generated_tokens: int
    tensor_parallel: int = 1
    precision: Precision = Precision.FP16
    include_lm_head: bool = True

    def __post_init__(self) -> None:
        if self.batch_size < 1 or self.prompt_len < 1 or self.generated_tokens < 0:
            raise ConfigurationError("batch_size and prompt_len must be positive; generated_tokens non-negative")

    def prefill_layer_spec(self) -> LayerExecutionSpec:
        """Layer execution spec for the prefill phase."""
        return LayerExecutionSpec(
            model=self.model,
            micro_batch=self.batch_size,
            seq_len=self.prompt_len,
            kv_len=self.prompt_len,
            tensor_parallel=self.tensor_parallel,
            sequence_parallel=False,
            precision=self.precision,
            with_dropout=False,
            use_kv_cache=True,
        )

    def decode_layer_spec(self, kv_len: int) -> LayerExecutionSpec:
        """Layer execution spec for one decode step attending to ``kv_len`` tokens."""
        return LayerExecutionSpec(
            model=self.model,
            micro_batch=self.batch_size,
            seq_len=1,
            kv_len=max(1, kv_len),
            tensor_parallel=self.tensor_parallel,
            sequence_parallel=False,
            precision=self.precision,
            with_dropout=False,
            use_kv_cache=True,
        )

    @property
    def average_decode_kv_len(self) -> int:
        """KV length of the "average" decode step, used for closed-form totals.

        The cache grows from ``prompt_len`` to ``prompt_len + generated_tokens``;
        the mid-point captures the average cost per generated token.
        """
        return self.prompt_len + max(0, self.generated_tokens - 1) // 2


def _lm_head_gemm(spec: InferencePhaseSpec, tokens: int) -> GEMM:
    """The logits GEMM over ``tokens`` query tokens, sharded over the TP group."""
    vocab_per_rank = max(1, spec.model.vocab_size // spec.tensor_parallel)
    return GEMM(
        name="lm_head",
        precision=spec.precision,
        m=tokens,
        n=vocab_per_rank,
        k=spec.model.hidden_size,
        weight_operand=True,
    )


def build_prefill_graph(
    spec: InferencePhaseSpec,
    layers: Optional[int] = None,
    tp_scope: str = "intra_node",
) -> TaskGraph:
    """Task graph of the prefill phase over ``layers`` transformer layers."""
    num_layers = spec.model.num_layers if layers is None else layers
    graph = TaskGraph(name=f"{spec.model.name}-prefill")
    builder = TransformerLayerBuilder(spec.prefill_layer_spec())
    last = None
    for layer_index in range(num_layers):
        tags = [f"layer{layer_index}", "prefill"]
        ops: list[Operator] = list(builder.forward_compute_ops())
        ops.extend(builder.forward_communication(scope=tp_scope))
        for op in ops:
            last = graph.add(op, deps=[last] if last is not None else [], tags=tags)
    if spec.include_lm_head:
        # Only the last token's logits are needed to start generation.
        head = _lm_head_gemm(spec, tokens=spec.batch_size)
        graph.add(head, deps=[last] if last is not None else [], tags=["lm_head", "prefill"])
    return graph


def build_decode_step_graph(
    spec: InferencePhaseSpec,
    kv_len: Optional[int] = None,
    layers: Optional[int] = None,
    tp_scope: str = "intra_node",
) -> TaskGraph:
    """Task graph of one autoregressive decode step.

    Args:
        spec: The inference phase description.
        kv_len: KV-cache length this step attends to; defaults to the average
            over the generation phase.
        layers: Number of layers to include; defaults to the full model.
        tp_scope: Scope of the tensor-parallel collectives.
    """
    num_layers = spec.model.num_layers if layers is None else layers
    cache_len = spec.average_decode_kv_len if kv_len is None else kv_len
    graph = TaskGraph(name=f"{spec.model.name}-decode")
    builder = TransformerLayerBuilder(spec.decode_layer_spec(cache_len))
    last = None
    for layer_index in range(num_layers):
        tags = [f"layer{layer_index}", "decode"]
        ops: list[Operator] = list(builder.forward_compute_ops())
        ops.extend(builder.forward_communication(scope=tp_scope))
        for op in ops:
            last = graph.add(op, deps=[last] if last is not None else [], tags=tags)
    if spec.include_lm_head:
        head = _lm_head_gemm(spec, tokens=spec.batch_size)
        graph.add(head, deps=[last] if last is not None else [], tags=["lm_head", "decode"])
    return graph
