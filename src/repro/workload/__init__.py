"""Workload layer: operators, task graphs, and phase builders."""

from .graph import TaskGraph, TaskNode
from .inference import InferencePhaseSpec, build_decode_step_graph, build_prefill_graph
from .operators import (
    CollectiveKind,
    CommunicationOp,
    ElementwiseOp,
    GEMM,
    MemoryOp,
    NormalizationOp,
    Operator,
    OperatorKind,
    make_gemv,
)
from .training import (
    TrainingMicrobatchSpec,
    build_backward_graph,
    build_forward_graph,
    build_training_microbatch_graph,
)
from .transformer_layer import LayerExecutionSpec, TransformerLayerBuilder, build_layer_spec

__all__ = [
    "CollectiveKind",
    "CommunicationOp",
    "ElementwiseOp",
    "GEMM",
    "InferencePhaseSpec",
    "LayerExecutionSpec",
    "MemoryOp",
    "NormalizationOp",
    "Operator",
    "OperatorKind",
    "TaskGraph",
    "TaskNode",
    "TrainingMicrobatchSpec",
    "TransformerLayerBuilder",
    "build_backward_graph",
    "build_decode_step_graph",
    "build_forward_graph",
    "build_layer_spec",
    "build_prefill_graph",
    "build_training_microbatch_graph",
    "make_gemv",
]
