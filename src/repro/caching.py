"""Bounded memoization shared by the kernel, collective, and planning layers.

The performance models attach :class:`Memo` caches (outside their dataclass
fields) keyed by frozen operator descriptors.  This module centralizes the
bound/eviction policy so all of them stay in sync.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, TypeVar

Value = TypeVar("Value")

#: Default entry bound of a per-model memoization cache.
DEFAULT_MEMO_SIZE = 65536

_MISSING = object()


class Memo:
    """Bounded memo dict with two-generation (segmented) eviction.

    :meth:`put` fills the *current* generation; when that reaches
    ``max_size``, the current generation is demoted to *previous* (dropping
    the old previous wholesale) and a fresh current generation starts.
    :meth:`get` promotes previous-generation hits back into current, so a hot
    working set survives crossing the bound -- a clear-on-full policy would
    drop the hottest keys together with the coldest ones exactly when a
    churning workload needs them.  Eviction stays O(1) amortized with no
    per-hit bookkeeping (an LRU would pay a move-to-end on every hit), at the
    cost of retaining at most ``2 * max_size`` entries.
    """

    __slots__ = ("max_size", "_current", "_previous")

    def __init__(self, max_size: int = DEFAULT_MEMO_SIZE):
        if max_size < 1:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self._current: Dict[Hashable, object] = {}
        self._previous: Dict[Hashable, object] = {}

    def get(self, key: Hashable, default: Optional[Value] = None) -> Optional[Value]:
        """Return the cached value, promoting previous-generation hits."""
        value = self._current.get(key, _MISSING)
        if value is not _MISSING:
            return value  # type: ignore[return-value]
        value = self._previous.get(key, _MISSING)
        if value is not _MISSING:
            self._store(key, value)
            return value  # type: ignore[return-value]
        return default

    def put(self, key: Hashable, value: Value) -> Value:
        """Store ``value`` under ``key`` and return it (memo-and-return idiom)."""
        self._store(key, value)
        return value

    def _store(self, key: Hashable, value: object) -> None:
        current = self._current
        if len(current) >= self.max_size and key not in current:
            self._previous = current
            current = self._current = {}
        current[key] = value

    def __contains__(self, key: Hashable) -> bool:
        return key in self._current or key in self._previous

    def __len__(self) -> int:
        """Number of distinct retained keys (both generations)."""
        if not self._previous:
            return len(self._current)
        return len(self._current.keys() | self._previous.keys())

    def clear(self) -> None:
        """Drop every entry of both generations."""
        self._current = {}
        self._previous = {}
