"""Tiny bounded-memoization helper shared by the kernel and collective models.

The performance models attach plain-dict caches (outside their dataclass
fields) keyed by frozen operator descriptors.  This module centralizes the
bound/eviction policy so all of them stay in sync.
"""

from __future__ import annotations

from typing import Dict, Hashable, TypeVar

Value = TypeVar("Value")

#: Default entry bound of a per-model memoization cache.
DEFAULT_MEMO_SIZE = 65536


def memo_put(cache: Dict[Hashable, Value], key: Hashable, value: Value, max_size: int = DEFAULT_MEMO_SIZE) -> Value:
    """Store ``value`` under ``key``, clearing the cache first when full.

    A full clear is deliberate: the caches hold repeated queries of a small
    working set, so reaching the bound at all means the keys are churning and
    tracking recency would cost more than re-evaluating.
    """
    if len(cache) >= max_size:
        cache.clear()
    cache[key] = value
    return value
