"""Request traces for the serving simulator: arrivals and length distributions.

A serving workload is a sequence of timed :class:`Request` objects.  Traces
are generated from a frozen, fully-seeded :class:`TraceConfig`, so a trace --
and therefore a whole simulation -- is a pure function of its configuration:
the same config always produces the same requests, which is what lets
:meth:`Scenario.serving <repro.sweep.scenario.Scenario.serving>` carry a
deterministic cache key.

Two arrival processes are modeled:

* ``"poisson"``: independent exponential inter-arrival gaps at ``rate``
  requests/second -- the classic open-loop load model.
* ``"bursty"``: a hyperexponential renewal process with the same *mean* rate
  but a higher coefficient of variation: with probability
  ``burst_fraction`` a gap is drawn from a fast (``burstiness x rate``)
  exponential, otherwise from a slow one chosen to preserve the mean.
  Bursts of back-to-back arrivals stress admission control and tail latency
  without changing the average offered load.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import List, Optional

from ..errors import ConfigurationError

#: Supported arrival processes.
ARRIVAL_KINDS = ("poisson", "bursty")
#: Supported length-distribution kinds.
LENGTH_KINDS = ("constant", "uniform", "lognormal")


@dataclasses.dataclass(frozen=True)
class Request:
    """One inference request of a serving trace.

    Attributes:
        request_id: Position of the request in the trace (0-based).
        arrival_time: Arrival time in seconds from the start of the trace.
        prompt_tokens: Prompt length in tokens.
        output_tokens: Tokens the request generates before completing.
    """

    request_id: int
    arrival_time: float
    prompt_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.arrival_time < 0 or self.prompt_tokens < 1 or self.output_tokens < 1:
            raise ConfigurationError("requests need arrival_time >= 0 and positive prompt/output tokens")

    @property
    def total_context(self) -> int:
        """KV context the request occupies when fully generated."""
        return self.prompt_tokens + self.output_tokens


@dataclasses.dataclass(frozen=True)
class LengthDistribution:
    """Seeded sampler spec for prompt / output lengths.

    Use the classmethod constructors: :meth:`constant`, :meth:`uniform`, or
    :meth:`lognormal`.  Samples are clamped to ``[minimum, maximum]`` and
    rounded to integers.
    """

    kind: str = "constant"
    value: int = 200
    low: int = 1
    high: int = 1
    median: float = 0.0
    sigma: float = 0.0
    minimum: int = 1
    maximum: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in LENGTH_KINDS:
            raise ConfigurationError(f"length distribution kind must be one of {LENGTH_KINDS}, got {self.kind!r}")
        if self.minimum < 1:
            raise ConfigurationError("length minimum must be >= 1")
        if self.maximum is not None and self.maximum < self.minimum:
            raise ConfigurationError("length maximum must be >= minimum")

    @classmethod
    def constant(cls, value: int) -> "LengthDistribution":
        """Every sample is exactly ``value`` tokens."""
        if value < 1:
            raise ConfigurationError("constant length must be >= 1")
        return cls(kind="constant", value=value)

    @classmethod
    def uniform(cls, low: int, high: int) -> "LengthDistribution":
        """Integer-uniform samples in ``[low, high]``."""
        if low < 1 or high < low:
            raise ConfigurationError("uniform lengths need 1 <= low <= high")
        return cls(kind="uniform", low=low, high=high)

    @classmethod
    def lognormal(
        cls, median: float, sigma: float = 0.5, minimum: int = 1, maximum: Optional[int] = None
    ) -> "LengthDistribution":
        """Log-normal samples with the given median (heavy right tail).

        Real prompt/output length distributions are strongly right-skewed;
        ``sigma`` controls the spread of the underlying normal.
        """
        if median < 1 or sigma < 0:
            raise ConfigurationError("lognormal lengths need median >= 1 and sigma >= 0")
        return cls(kind="lognormal", median=median, sigma=sigma, minimum=minimum, maximum=maximum)

    def sample(self, rng: random.Random) -> int:
        """Draw one length from the distribution using ``rng``."""
        if self.kind == "constant":
            raw = float(self.value)
        elif self.kind == "uniform":
            raw = float(rng.randint(self.low, self.high))
        else:
            raw = math.exp(rng.gauss(math.log(self.median), self.sigma))
        length = int(round(raw))
        length = max(self.minimum, length)
        if self.maximum is not None:
            length = min(self.maximum, length)
        return length

    @property
    def mean_estimate(self) -> float:
        """Analytic mean of the distribution (pre-clamping), for sizing heuristics."""
        if self.kind == "constant":
            return float(self.value)
        if self.kind == "uniform":
            return (self.low + self.high) / 2.0
        return self.median * math.exp(self.sigma**2 / 2.0)


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """Frozen, seeded description of one serving workload.

    Attributes:
        rate: Mean arrival rate in requests/second.
        num_requests: Trace length in requests.
        arrival: Arrival process, ``"poisson"`` or ``"bursty"``.
        prompt_lengths: Prompt-length distribution.
        output_lengths: Output-length distribution.
        seed: RNG seed; together with the other fields it makes the trace
            (and any simulation over it) deterministic.
        burstiness: Bursty arrivals only -- rate multiplier of in-burst gaps.
        burst_fraction: Bursty arrivals only -- probability an inter-arrival
            gap belongs to a burst.
    """

    rate: float = 1.0
    num_requests: int = 100
    arrival: str = "poisson"
    prompt_lengths: LengthDistribution = dataclasses.field(default_factory=lambda: LengthDistribution.constant(200))
    output_lengths: LengthDistribution = dataclasses.field(default_factory=lambda: LengthDistribution.constant(200))
    seed: int = 2024
    burstiness: float = 4.0
    burst_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.num_requests < 1:
            raise ConfigurationError("num_requests must be >= 1")
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigurationError(f"arrival must be one of {ARRIVAL_KINDS}, got {self.arrival!r}")
        if self.burstiness <= 1.0:
            raise ConfigurationError("burstiness must be > 1")
        if not 0 < self.burst_fraction < 1:
            raise ConfigurationError("burst_fraction must be in (0, 1)")

    def _next_gap(self, rng: random.Random) -> float:
        if self.arrival == "poisson":
            return rng.expovariate(self.rate)
        # Hyperexponential: fast gaps inside bursts, slow gaps between them,
        # with the slow rate solved so the overall mean stays 1/rate.
        fast_rate = self.burstiness * self.rate
        p = self.burst_fraction
        slow_rate = self.rate * (1.0 - p) * self.burstiness / (self.burstiness - p)
        return rng.expovariate(fast_rate if rng.random() < p else slow_rate)

    def generate(self) -> List[Request]:
        """Materialize the trace (deterministic for a given config)."""
        rng = random.Random(self.seed)
        requests: List[Request] = []
        now = 0.0
        for index in range(self.num_requests):
            now += self._next_gap(rng)
            requests.append(
                Request(
                    request_id=index,
                    arrival_time=now,
                    prompt_tokens=self.prompt_lengths.sample(rng),
                    output_tokens=self.output_lengths.sample(rng),
                )
            )
        return requests


def poisson_trace(
    rate: float,
    num_requests: int,
    prompt_lengths: Optional[LengthDistribution] = None,
    output_lengths: Optional[LengthDistribution] = None,
    seed: int = 2024,
) -> List[Request]:
    """Convenience: generate a Poisson trace directly."""
    return TraceConfig(
        rate=rate,
        num_requests=num_requests,
        arrival="poisson",
        prompt_lengths=prompt_lengths or LengthDistribution.constant(200),
        output_lengths=output_lengths or LengthDistribution.constant(200),
        seed=seed,
    ).generate()


def bursty_trace(
    rate: float,
    num_requests: int,
    prompt_lengths: Optional[LengthDistribution] = None,
    output_lengths: Optional[LengthDistribution] = None,
    seed: int = 2024,
    burstiness: float = 4.0,
    burst_fraction: float = 0.25,
) -> List[Request]:
    """Convenience: generate a bursty (hyperexponential) trace directly."""
    return TraceConfig(
        rate=rate,
        num_requests=num_requests,
        arrival="bursty",
        prompt_lengths=prompt_lengths or LengthDistribution.constant(200),
        output_lengths=output_lengths or LengthDistribution.constant(200),
        seed=seed,
        burstiness=burstiness,
        burst_fraction=burst_fraction,
    ).generate()
