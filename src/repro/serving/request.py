"""Request traces for the serving simulator: arrivals and length distributions.

A serving workload is a sequence of timed :class:`Request` objects.  Traces
are generated from a frozen, fully-seeded :class:`TraceConfig`, so a trace --
and therefore a whole simulation -- is a pure function of its configuration:
the same config always produces the same requests, which is what lets
:meth:`Scenario.serving <repro.sweep.scenario.Scenario.serving>` carry a
deterministic cache key.

Two arrival processes are modeled:

* ``"poisson"``: independent exponential inter-arrival gaps at ``rate``
  requests/second -- the classic open-loop load model.
* ``"bursty"``: a hyperexponential renewal process with the same *mean* rate
  but a higher coefficient of variation: with probability
  ``burst_fraction`` a gap is drawn from a fast (``burstiness x rate``)
  exponential, otherwise from a slow one chosen to preserve the mean.
  Bursts of back-to-back arrivals stress admission control and tail latency
  without changing the average offered load.

Two generation paths share these configs:

* :meth:`TraceConfig.generate` keeps the original ``random.Random`` stream
  (every existing seed reproduces its exact historical trace): raw draws are
  collected in one pass through the same RNG calls in the same per-request
  order, and everything downstream -- the arrival-time running sum, length
  rounding and clamping, column assembly -- is vectorized with NumPy.  A
  golden-trace fixture pins the stream.
* The fleet-scale path (:class:`FleetTraceConfig` of :class:`TenantTrace`
  entries) samples arrivals and lengths entirely inside NumPy
  (``np.random.Generator``), so million-request multi-tenant traces
  materialize their columns in milliseconds; per-tenant diurnal load comes
  from inverting a piecewise-constant intensity profile (the exact
  non-homogeneous-Poisson construction for ``"poisson"`` arrivals, a
  time-warp of the renewal process for ``"bursty"``).
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

#: Supported arrival processes.
ARRIVAL_KINDS = ("poisson", "bursty")
#: Supported length-distribution kinds.
LENGTH_KINDS = ("constant", "uniform", "lognormal")


@dataclasses.dataclass(frozen=True)
class Request:
    """One inference request of a serving trace.

    Attributes:
        request_id: Position of the request in the trace (0-based).
        arrival_time: Arrival time in seconds from the start of the trace.
        prompt_tokens: Prompt length in tokens.
        output_tokens: Tokens the request generates before completing.
    """

    request_id: int
    arrival_time: float
    prompt_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.arrival_time < 0 or self.prompt_tokens < 1 or self.output_tokens < 1:
            raise ConfigurationError("requests need arrival_time >= 0 and positive prompt/output tokens")

    @property
    def total_context(self) -> int:
        """KV context the request occupies when fully generated."""
        return self.prompt_tokens + self.output_tokens


@dataclasses.dataclass(frozen=True, eq=False)
class TraceColumns:
    """Columnar view of a trace: one NumPy column per :class:`Request` field.

    The request id of row ``i`` is ``i`` (columns are stored in arrival
    order).  ``tenant_ids`` carries the :class:`FleetTraceConfig` tenant
    index of each request (all zeros for single-tenant traces); the fleet's
    prefix-affinity router keys on it.
    """

    arrival_times: np.ndarray
    prompt_tokens: np.ndarray
    output_tokens: np.ndarray
    tenant_ids: np.ndarray

    def __post_init__(self) -> None:
        n = self.arrival_times.shape[0]
        if not (self.prompt_tokens.shape[0] == self.output_tokens.shape[0] == self.tenant_ids.shape[0] == n):
            raise ConfigurationError("trace columns must have equal lengths")

    def __len__(self) -> int:
        return int(self.arrival_times.shape[0])

    def to_requests(self) -> List[Request]:
        """Materialize the columns as :class:`Request` objects (row ``i`` -> id ``i``)."""
        arrivals = self.arrival_times.tolist()
        prompts = self.prompt_tokens.tolist()
        outputs = self.output_tokens.tolist()
        return [
            Request(
                request_id=index,
                arrival_time=arrivals[index],
                prompt_tokens=prompts[index],
                output_tokens=outputs[index],
            )
            for index in range(len(arrivals))
        ]


@dataclasses.dataclass(frozen=True)
class LengthDistribution:
    """Seeded sampler spec for prompt / output lengths.

    Use the classmethod constructors: :meth:`constant`, :meth:`uniform`, or
    :meth:`lognormal`.  Samples are clamped to ``[minimum, maximum]`` and
    rounded to integers.
    """

    kind: str = "constant"
    value: int = 200
    low: int = 1
    high: int = 1
    median: float = 0.0
    sigma: float = 0.0
    minimum: int = 1
    maximum: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in LENGTH_KINDS:
            raise ConfigurationError(f"length distribution kind must be one of {LENGTH_KINDS}, got {self.kind!r}")
        if self.minimum < 1:
            raise ConfigurationError("length minimum must be >= 1")
        if self.maximum is not None and self.maximum < self.minimum:
            raise ConfigurationError("length maximum must be >= minimum")

    @classmethod
    def constant(cls, value: int) -> "LengthDistribution":
        """Every sample is exactly ``value`` tokens."""
        if value < 1:
            raise ConfigurationError("constant length must be >= 1")
        return cls(kind="constant", value=value)

    @classmethod
    def uniform(cls, low: int, high: int) -> "LengthDistribution":
        """Integer-uniform samples in ``[low, high]``."""
        if low < 1 or high < low:
            raise ConfigurationError("uniform lengths need 1 <= low <= high")
        return cls(kind="uniform", low=low, high=high)

    @classmethod
    def lognormal(
        cls, median: float, sigma: float = 0.5, minimum: int = 1, maximum: Optional[int] = None
    ) -> "LengthDistribution":
        """Log-normal samples with the given median (heavy right tail).

        Real prompt/output length distributions are strongly right-skewed;
        ``sigma`` controls the spread of the underlying normal.
        """
        if median < 1 or sigma < 0:
            raise ConfigurationError("lognormal lengths need median >= 1 and sigma >= 0")
        return cls(kind="lognormal", median=median, sigma=sigma, minimum=minimum, maximum=maximum)

    def sample_raw(self, rng: random.Random) -> float:
        """Draw one *unrounded* length, consuming exactly the historical RNG calls."""
        if self.kind == "constant":
            return float(self.value)
        if self.kind == "uniform":
            return float(rng.randint(self.low, self.high))
        return math.exp(rng.gauss(math.log(self.median), self.sigma))

    def finalize(self, raw: np.ndarray) -> np.ndarray:
        """Vectorized round + clamp of raw samples into integer token counts.

        ``np.round`` is round-half-even on the float64 value, exactly like the
        scalar ``int(round(raw))`` the per-request path used.
        """
        lengths = np.round(raw).astype(np.int64)
        lengths = np.maximum(lengths, self.minimum)
        if self.maximum is not None:
            lengths = np.minimum(lengths, self.maximum)
        return lengths

    def sample(self, rng: random.Random) -> int:
        """Draw one length from the distribution using ``rng``."""
        raw = self.sample_raw(rng)
        length = int(round(raw))
        length = max(self.minimum, length)
        if self.maximum is not None:
            length = min(self.maximum, length)
        return length

    def sample_array(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` lengths in one NumPy pass (the fleet-trace fast path)."""
        if self.kind == "constant":
            return np.full(size, int(self.value), dtype=np.int64)
        if self.kind == "uniform":
            raw = rng.integers(self.low, self.high + 1, size=size).astype(np.float64)
        else:
            raw = np.exp(rng.normal(math.log(self.median), self.sigma, size=size))
        return self.finalize(raw)

    @property
    def mean_estimate(self) -> float:
        """Analytic mean of the distribution (pre-clamping), for sizing heuristics."""
        if self.kind == "constant":
            return float(self.value)
        if self.kind == "uniform":
            return (self.low + self.high) / 2.0
        return self.median * math.exp(self.sigma**2 / 2.0)


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """Frozen, seeded description of one serving workload.

    Attributes:
        rate: Mean arrival rate in requests/second.
        num_requests: Trace length in requests.
        arrival: Arrival process, ``"poisson"`` or ``"bursty"``.
        prompt_lengths: Prompt-length distribution.
        output_lengths: Output-length distribution.
        seed: RNG seed; together with the other fields it makes the trace
            (and any simulation over it) deterministic.
        burstiness: Bursty arrivals only -- rate multiplier of in-burst gaps.
        burst_fraction: Bursty arrivals only -- probability an inter-arrival
            gap belongs to a burst.
    """

    rate: float = 1.0
    num_requests: int = 100
    arrival: str = "poisson"
    prompt_lengths: LengthDistribution = dataclasses.field(default_factory=lambda: LengthDistribution.constant(200))
    output_lengths: LengthDistribution = dataclasses.field(default_factory=lambda: LengthDistribution.constant(200))
    seed: int = 2024
    burstiness: float = 4.0
    burst_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.num_requests < 1:
            raise ConfigurationError("num_requests must be >= 1")
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigurationError(f"arrival must be one of {ARRIVAL_KINDS}, got {self.arrival!r}")
        if self.burstiness <= 1.0:
            raise ConfigurationError("burstiness must be > 1")
        if not 0 < self.burst_fraction < 1:
            raise ConfigurationError("burst_fraction must be in (0, 1)")

    def _next_gap(self, rng: random.Random) -> float:
        if self.arrival == "poisson":
            return rng.expovariate(self.rate)
        # Hyperexponential: fast gaps inside bursts, slow gaps between them,
        # with the slow rate solved so the overall mean stays 1/rate.
        fast_rate = self.burstiness * self.rate
        p = self.burst_fraction
        slow_rate = self.rate * (1.0 - p) * self.burstiness / (self.burstiness - p)
        return rng.expovariate(fast_rate if rng.random() < p else slow_rate)

    def generate_columns(self) -> TraceColumns:
        """Materialize the trace as NumPy columns (deterministic for a config).

        The raw draws go through the same ``random.Random`` stream, in the
        same per-request order (gap, prompt, output), as the historical
        per-request loop, so the values are *pinned*: every seed keeps
        producing its exact pre-vectorization trace (golden fixture in
        ``tests/serving/test_request.py``).  The transforms around the draws
        are columnar: one ``np.cumsum`` turns gaps into arrival times
        (bit-identical to the sequential ``+=`` accumulation), and the
        length rounding/clamping runs once per column instead of once per
        request.
        """
        rng = random.Random(self.seed)
        n = self.num_requests
        gaps = np.empty(n, dtype=np.float64)
        prompts_raw = np.empty(n, dtype=np.float64)
        outputs_raw = np.empty(n, dtype=np.float64)
        next_gap = self._next_gap
        prompt_raw = self.prompt_lengths.sample_raw
        output_raw = self.output_lengths.sample_raw
        for index in range(n):
            gaps[index] = next_gap(rng)
            prompts_raw[index] = prompt_raw(rng)
            outputs_raw[index] = output_raw(rng)
        return TraceColumns(
            arrival_times=np.cumsum(gaps),
            prompt_tokens=self.prompt_lengths.finalize(prompts_raw),
            output_tokens=self.output_lengths.finalize(outputs_raw),
            tenant_ids=np.zeros(n, dtype=np.int64),
        )

    def generate(self) -> List[Request]:
        """Materialize the trace (deterministic for a given config)."""
        return self.generate_columns().to_requests()


# ---------------------------------------------------------------------------
# Fleet traces: multi-tenant, diurnal, generated entirely inside NumPy.
# ---------------------------------------------------------------------------


def _invert_piecewise_intensity(
    cumulative: np.ndarray, rate: float, multipliers: Tuple[float, ...], period: float
) -> np.ndarray:
    """Map unit-rate cumulative arrivals through a piecewise-constant intensity.

    ``cumulative[i]`` is the integrated intensity at which arrival ``i``
    occurs; with intensity ``rate * m(t)`` (``m`` piecewise constant over
    ``len(multipliers)`` equal bins per ``period``), the arrival time solves
    ``Lambda(t) = cumulative[i]`` in closed form per bin -- fully vectorized
    via ``searchsorted`` over the per-bin cumulative intensity.
    """
    if not multipliers:
        return cumulative / rate
    bins = len(multipliers)
    width = period / bins
    weights = np.asarray(multipliers, dtype=np.float64)
    # Integrated intensity at the bin edges of one period: Lambda(edge_k).
    edges = np.concatenate(([0.0], np.cumsum(rate * weights * width)))
    per_period = edges[-1]
    periods = np.floor_divide(cumulative, per_period)
    remainder = cumulative - periods * per_period
    bin_index = np.clip(np.searchsorted(edges, remainder, side="right") - 1, 0, bins - 1)
    within = (remainder - edges[bin_index]) / (rate * weights[bin_index])
    return periods * period + bin_index * width + within


@dataclasses.dataclass(frozen=True)
class TenantTrace:
    """One tenant of a fleet workload: a base trace plus a diurnal rate profile.

    Attributes:
        trace: The tenant's seeded arrival/length configuration (its ``rate``
            is the *mean* rate; seeds should differ across tenants).
        name: Tenant label carried into logs and reports.
        diurnal: Rate multipliers over equal-width bins of one ``period``
            (e.g. 24 hourly multipliers); empty means a flat profile.  The
            instantaneous arrival rate is ``trace.rate * diurnal[bin(t)]``.
        period: Length of one diurnal cycle in seconds (default: one day).
    """

    trace: TraceConfig
    name: str = "tenant"
    diurnal: Tuple[float, ...] = ()
    period: float = 86400.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "diurnal", tuple(float(m) for m in self.diurnal))
        if any(m <= 0 for m in self.diurnal):
            raise ConfigurationError("diurnal multipliers must be positive")
        if self.period <= 0:
            raise ConfigurationError("diurnal period must be positive")

    def generate_columns(self, tenant_id: int = 0) -> TraceColumns:
        """Sample this tenant's trace in one NumPy pass (seeded, vectorized).

        Arrivals: unit-rate renewal gaps (exponential, or hyperexponential
        for ``"bursty"``) are cumulated and pushed through the inverse of the
        integrated diurnal intensity -- the standard inversion construction
        of a non-homogeneous Poisson process, applied identically to the
        bursty renewal stream (a time warp that preserves burst structure).
        """
        trace = self.trace
        rng = np.random.Generator(np.random.PCG64(trace.seed))
        n = trace.num_requests
        if trace.arrival == "poisson":
            unit_gaps = rng.exponential(1.0, size=n)
        else:
            in_burst = rng.random(size=n) < trace.burst_fraction
            p = trace.burst_fraction
            fast = trace.burstiness
            slow = (1.0 - p) * trace.burstiness / (trace.burstiness - p)
            unit_gaps = rng.exponential(1.0, size=n) / np.where(in_burst, fast, slow)
        arrivals = _invert_piecewise_intensity(
            np.cumsum(unit_gaps), trace.rate, self.diurnal, self.period
        )
        return TraceColumns(
            arrival_times=arrivals,
            prompt_tokens=trace.prompt_lengths.sample_array(rng, n),
            output_tokens=trace.output_lengths.sample_array(rng, n),
            tenant_ids=np.full(n, tenant_id, dtype=np.int64),
        )


@dataclasses.dataclass(frozen=True)
class FleetTraceConfig:
    """Frozen multi-tenant fleet workload: per-tenant traces merged by arrival.

    Every tenant samples independently (vectorized, from its own seed) and
    the streams merge into one arrival-ordered trace; request ids number the
    merged order and ``tenant_ids`` records provenance.  Generating a
    million-request trace takes milliseconds -- the whole path is NumPy.
    """

    tenants: Tuple[TenantTrace, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not self.tenants:
            raise ConfigurationError("a fleet trace needs at least one tenant")

    @property
    def num_requests(self) -> int:
        """Total requests across all tenants."""
        return sum(tenant.trace.num_requests for tenant in self.tenants)

    def generate_columns(self) -> TraceColumns:
        """Materialize the merged multi-tenant trace as NumPy columns."""
        parts = [
            tenant.generate_columns(tenant_id=index) for index, tenant in enumerate(self.tenants)
        ]
        if len(parts) == 1:
            return parts[0]
        arrivals = np.concatenate([part.arrival_times for part in parts])
        order = np.argsort(arrivals, kind="stable")  # ties keep tenant order
        return TraceColumns(
            arrival_times=arrivals[order],
            prompt_tokens=np.concatenate([part.prompt_tokens for part in parts])[order],
            output_tokens=np.concatenate([part.output_tokens for part in parts])[order],
            tenant_ids=np.concatenate([part.tenant_ids for part in parts])[order],
        )

    def generate(self) -> List[Request]:
        """Materialize the merged trace as :class:`Request` objects."""
        return self.generate_columns().to_requests()


def poisson_trace(
    rate: float,
    num_requests: int,
    prompt_lengths: Optional[LengthDistribution] = None,
    output_lengths: Optional[LengthDistribution] = None,
    seed: int = 2024,
) -> List[Request]:
    """Convenience: generate a Poisson trace directly."""
    return TraceConfig(
        rate=rate,
        num_requests=num_requests,
        arrival="poisson",
        prompt_lengths=prompt_lengths or LengthDistribution.constant(200),
        output_lengths=output_lengths or LengthDistribution.constant(200),
        seed=seed,
    ).generate()


def bursty_trace(
    rate: float,
    num_requests: int,
    prompt_lengths: Optional[LengthDistribution] = None,
    output_lengths: Optional[LengthDistribution] = None,
    seed: int = 2024,
    burstiness: float = 4.0,
    burst_fraction: float = 0.25,
) -> List[Request]:
    """Convenience: generate a bursty (hyperexponential) trace directly."""
    return TraceConfig(
        rate=rate,
        num_requests=num_requests,
        arrival="bursty",
        prompt_lengths=prompt_lengths or LengthDistribution.constant(200),
        output_lengths=output_lengths or LengthDistribution.constant(200),
        seed=seed,
        burstiness=burstiness,
        burst_fraction=burst_fraction,
    ).generate()
