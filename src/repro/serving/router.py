"""Routing policies that assign fleet arrivals to engine replicas.

A router sees every arrival before any replica does and picks its replica.
Policies come in two strengths:

* **Stateless** policies (round-robin, prefix-affinity) depend only on the
  request's position or tenant, never on replica state.  They implement
  :meth:`RouterPolicy.assign_batch`, which maps a whole trace's columns to a
  replica index array in one NumPy pass -- the fleet simulator then runs
  each replica's partition as an independent drain, with no interleaving.
* **Stateful** policies (least-KV-load, least-queue) inspect live replica
  state, so the fleet must advance every replica to each arrival before
  asking :meth:`RouterPolicy.select`.  ``assign_batch`` returns ``None`` to
  request that interleaved path.

Every policy implements :meth:`select` (the one-at-a-time form), so the
interleaved path works for all of them -- the equivalence between the two
paths for stateless policies is pinned in ``tests/serving/test_fleet.py``.
Ties in the stateful policies break on replica index, keeping the whole
fleet simulation deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Type

import numpy as np

from ..errors import ConfigurationError
from .request import Request, TraceColumns

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .simulator import ReplicaEngine


class RouterPolicy:
    """Base class for fleet routing policies."""

    #: Registry key; subclasses must override.
    name = ""

    def reset(self, num_replicas: int) -> None:
        """Forget any routing state before a fresh simulation."""

    def assign_batch(self, columns: TraceColumns, num_replicas: int) -> Optional[np.ndarray]:
        """Vectorized assignment of every request to a replica index, or ``None``.

        Returning an index array (shape ``(len(columns),)``) lets the fleet
        partition the trace up front and drain replicas independently; return
        ``None`` when the policy needs live replica state per arrival.
        """
        return None

    def select(self, request: Request, tenant_id: int, engines: Sequence["ReplicaEngine"]) -> int:
        """Pick the replica index for one arrival (replicas advanced to it)."""
        raise NotImplementedError


class RoundRobinRouter(RouterPolicy):
    """Cycle through replicas in request order, ignoring load entirely."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self, num_replicas: int) -> None:
        self._next = 0

    def assign_batch(self, columns: TraceColumns, num_replicas: int) -> np.ndarray:
        return np.arange(len(columns), dtype=np.int64) % num_replicas

    def select(self, request: Request, tenant_id: int, engines: Sequence["ReplicaEngine"]) -> int:
        # Modding the cursor on read (not just on advance) keeps the pick in
        # range when the candidate list shrinks between calls -- the elastic
        # fleet routes over live membership, so ``len(engines)`` can drop.
        index = self._next % len(engines)
        self._next = (index + 1) % len(engines)
        return index


class PrefixAffinityRouter(RouterPolicy):
    """Pin each tenant to one replica so shared-prefix KV reuse stays local.

    This is a *stub* of real prefix-cache-aware routing: the simulator does
    not yet model prefix-cache hits, so the policy only captures the routing
    side (tenant ``t`` always lands on replica ``t % N``) -- the placement a
    prefix cache would want, and a useful worst case for load imbalance.
    """

    name = "prefix_affinity"

    def assign_batch(self, columns: TraceColumns, num_replicas: int) -> np.ndarray:
        return columns.tenant_ids % num_replicas

    def select(self, request: Request, tenant_id: int, engines: Sequence["ReplicaEngine"]) -> int:
        return tenant_id % len(engines)


class LeastKVLoadRouter(RouterPolicy):
    """Send each arrival to the replica holding the fewest reserved KV bytes.

    KV reservations proxy for memory pressure *and* decode batch width, so
    this balances the quantity that actually throttles admission.  Ties break
    on queued requests, then replica index.
    """

    name = "least_kv_load"

    def select(self, request: Request, tenant_id: int, engines: Sequence["ReplicaEngine"]) -> int:
        return min(
            range(len(engines)),
            key=lambda index: (
                engines[index].scheduler.kv_reserved_bytes,
                engines[index].queued_requests,
                index,
            ),
        )


class LeastQueueRouter(RouterPolicy):
    """Send each arrival to the replica with the shortest admission queue.

    Queue depth is what a real gateway can observe cheaply; ties break on
    active batch size, then replica index.
    """

    name = "least_queue"

    def select(self, request: Request, tenant_id: int, engines: Sequence["ReplicaEngine"]) -> int:
        return min(
            range(len(engines)),
            key=lambda index: (
                engines[index].queued_requests,
                len(engines[index].scheduler.active),
                index,
            ),
        )


#: Registered policies by name (the ``FleetConfig.router`` vocabulary).
ROUTER_POLICIES: Dict[str, Type[RouterPolicy]] = {
    policy.name: policy
    for policy in (RoundRobinRouter, PrefixAffinityRouter, LeastKVLoadRouter, LeastQueueRouter)
}


def get_router(name: str) -> RouterPolicy:
    """Instantiate a registered routing policy by name."""
    try:
        policy = ROUTER_POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown router policy {name!r}; choose from {sorted(ROUTER_POLICIES)}"
        ) from None
    return policy()
