"""Serving-simulation results: per-request metrics and the aggregate report.

The report carries the quantities a serving team actually runs capacity
planning on: time-to-first-token (TTFT) and time-per-output-token (TPOT)
percentiles, request/token throughput, goodput under a latency SLO, and
device utilization.  Like every other report in :mod:`repro.core.reports`,
it stores plain floats and round-trips through ``to_dict``/``from_dict``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError, ReproError


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of a sample.

    Thin wrapper over :func:`numpy.percentile` that validates ``q`` with the
    library's error type.  An empty sample has no percentiles: it raises a
    :class:`~repro.errors.ReproError` (e.g. a fleet replica that received
    zero requests) instead of surfacing NumPy's opaque ``IndexError`` --
    callers that want a sentinel for "no completed requests" must supply it
    themselves, the way the report aggregation does.
    """
    if not 0 <= q <= 100:
        raise ConfigurationError("percentile q must be in [0, 100]")
    if len(values) == 0:
        raise ReproError(
            "percentile of an empty sample: no completed requests to aggregate "
            "(a replica that received zero requests reports 0.0 explicitly)"
        )
    return float(np.percentile(values, q))


@dataclasses.dataclass(frozen=True)
class ServingSLO:
    """Latency service-level objective a request must meet to count as goodput.

    Attributes:
        ttft: Maximum time-to-first-token, in seconds.
        tpot: Maximum average time per output token, in seconds.
    """

    ttft: float = 2.0
    tpot: float = 0.2

    def __post_init__(self) -> None:
        if self.ttft <= 0 or self.tpot <= 0:
            raise ConfigurationError("SLO thresholds must be positive")

    def met_by(self, metrics: "RequestMetrics") -> bool:
        """Whether one completed request satisfies both thresholds."""
        return bool(self.met_mask(metrics.ttft, metrics.tpot))

    def met_mask(self, ttfts, tpots):
        """Vectorized :meth:`met_by` over TTFT/TPOT columns.

        Accepts NumPy arrays (returns a boolean mask) or scalars (returns a
        bool); the report aggregation computes goodput through this single
        definition of the predicate.
        """
        return (ttfts <= self.ttft) & (tpots <= self.tpot)


@dataclasses.dataclass(frozen=True)
class RequestMetrics:
    """Latency decomposition of one completed request.

    Attributes:
        request_id: Trace id of the request.
        arrival_time: Arrival time in the simulation clock.
        queue_time: Arrival to admission (waiting for memory / batch slots).
        ttft: Arrival to first token (queueing + prefill).
        tpot: Average seconds per output token after the first.
        e2e_latency: Arrival to last token.
        prompt_tokens: Prompt length.
        output_tokens: Generated length.
    """

    request_id: int
    arrival_time: float
    queue_time: float
    ttft: float
    tpot: float
    e2e_latency: float
    prompt_tokens: int
    output_tokens: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict view."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RequestMetrics":
        """Rebuild metrics from :meth:`to_dict` output."""
        return cls(**{field.name: data[field.name] for field in dataclasses.fields(cls)})


@dataclasses.dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one serving simulation.

    All times in seconds; throughputs are per second of simulated time.
    """

    model_name: str
    system_name: str
    tensor_parallel: int

    num_requests: int
    completed_requests: int
    rejected_requests: int

    simulated_time: float
    busy_time: float
    prefill_time: float
    decode_time: float
    prefill_steps: int
    decode_steps: int

    ttft_p50: float
    ttft_p99: float
    tpot_p50: float
    tpot_p99: float
    queue_p50: float
    queue_p99: float

    request_throughput: float
    output_token_throughput: float
    goodput: float
    slo_attainment: float

    mean_decode_batch: float
    peak_kv_bytes: float

    per_request: List[RequestMetrics] = dataclasses.field(default_factory=list)

    @property
    def device_utilization(self) -> float:
        """Fraction of simulated time the device was executing a step."""
        return self.busy_time / self.simulated_time if self.simulated_time > 0 else 0.0

    @property
    def prefill_fraction(self) -> float:
        """Fraction of busy time spent in prefill steps."""
        return self.prefill_time / self.busy_time if self.busy_time > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat headline view for tables and logs."""
        return {
            "completed": self.completed_requests,
            "ttft_p50_s": self.ttft_p50,
            "ttft_p99_s": self.ttft_p99,
            "tpot_p50_s": self.tpot_p50,
            "tpot_p99_s": self.tpot_p99,
            "requests_per_s": self.request_throughput,
            "tokens_per_s": self.output_token_throughput,
            "goodput_rps": self.goodput,
            "utilization": self.device_utilization,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict view of the whole report, per-request metrics included."""
        data = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name != "per_request"
        }
        data["per_request"] = [metrics.to_dict() for metrics in self.per_request]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ServingReport":
        """Rebuild a report from :meth:`to_dict` output."""
        data = dict(data)
        data["per_request"] = [RequestMetrics.from_dict(entry) for entry in data.get("per_request", [])]
        return cls(**data)

    def to_json(self, **kwargs: object) -> str:
        """Serialize the report to a JSON string."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ServingReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
