"""Fleet-scale serving simulation: N engine replicas behind a router.

Production serving is never one engine -- it is a fleet of identical
replicas behind a routing tier, fed by many tenants whose load breathes
over the day.  This module scales the single-replica event-horizon
simulator (:mod:`repro.serving.simulator`) to that setting without
reintroducing any per-step Python work:

* Every replica is a :class:`~repro.serving.simulator.ReplicaEngine` --
  the same :class:`~repro.serving.scheduler.ContinuousBatchingScheduler`
  plus epoch-fused :meth:`~repro.core.stepcost.StepCostModel.decode_run`
  loop -- and all replicas share **one** :class:`StepCostModel` per system,
  so its step-cost caches amortize across the whole fleet.
* **Stateless** routers (round-robin, prefix-affinity) assign the entire
  trace in one vectorized pass; each replica then drains its partition as
  an independent single-replica simulation.  This is the fleet's fast path
  (and what makes an N=1 fleet bit-identical to :class:`ServingSimulator`).
* **Stateful** routers (least-KV-load, least-queue) need live replica state
  at each arrival, so the fleet runs an event-horizon loop at cluster
  level: the next event is the next arrival, and every replica advances to
  it through epoch-fused decode runs cut at that horizon
  (``ReplicaEngine.advance(until=...)``).  The epoch cuts change nothing
  but grouping, so per-replica results stay exact.

The outcome is a :class:`FleetReport`: per-replica
:class:`~repro.serving.report.ServingReport` objects plus fleet-level
latency percentiles, SLO goodput, load imbalance, and dollar cost per
token via :class:`~repro.cost.tco.TCOModel`.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.stepcost import StepCostModel
from ..cost.tco import TCOModel
from ..errors import ConfigurationError
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from .report import RequestMetrics, ServingReport, ServingSLO, percentile
from .request import FleetTraceConfig, Request, TraceColumns, TraceConfig
from .router import ROUTER_POLICIES, RouterPolicy, get_router
from .scheduler import SchedulerConfig
from .simulator import _ARRIVAL_PROBE_STEPS, _MAX_EPOCH_STEPS, ReplicaEngine, ServingSimulator


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """Frozen description of one fleet simulation.

    Attributes:
        trace: The workload -- a single-tenant :class:`TraceConfig` or a
            multi-tenant :class:`FleetTraceConfig`.
        num_replicas: Engine replicas in the fleet (each runs the model at
            the scenario's tensor parallelism).
        router: Registered routing policy name
            (:data:`~repro.serving.router.ROUTER_POLICIES`).
        scheduler: Per-replica batching / admission-control knobs.
        slo: Latency SLO for goodput accounting (fleet and per replica).
        include_lm_head: Whether steps price the logits GEMM.
        max_epoch_steps: Per-replica fused-epoch cap
            (:class:`~repro.serving.simulator.ServingSimulator` default).
        arrival_probe_steps: Per-replica probe cap while an admissible
            arrival is pending.
    """

    trace: Union[TraceConfig, FleetTraceConfig]
    num_replicas: int = 2
    router: str = "round_robin"
    scheduler: SchedulerConfig = dataclasses.field(default_factory=SchedulerConfig)
    slo: ServingSLO = dataclasses.field(default_factory=ServingSLO)
    include_lm_head: bool = True
    max_epoch_steps: int = _MAX_EPOCH_STEPS
    arrival_probe_steps: int = _ARRIVAL_PROBE_STEPS

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ConfigurationError("a fleet needs at least one replica")
        if self.router not in ROUTER_POLICIES:
            raise ConfigurationError(
                f"unknown router policy {self.router!r}; choose from {sorted(ROUTER_POLICIES)}"
            )
        if self.max_epoch_steps < 1 or self.arrival_probe_steps < 1:
            raise ConfigurationError("max_epoch_steps and arrival_probe_steps must be >= 1")


@dataclasses.dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one fleet simulation.

    Latency percentiles pool every completed request across replicas;
    throughputs divide fleet totals by the fleet **makespan** (the latest
    replica clock).  ``load_imbalance`` is ``max/mean - 1`` over per-replica
    busy time: 0.0 for a perfectly balanced fleet, 1.0 when the busiest
    replica does twice the average work.  Costs price every replica's
    devices for the full makespan (idle replicas still burn capital and
    idle power) through :class:`~repro.cost.tco.TCOModel`.
    """

    model_name: str
    system_name: str
    tensor_parallel: int
    num_replicas: int
    router: str

    num_requests: int
    completed_requests: int
    rejected_requests: int

    simulated_time: float
    busy_time: float
    prefill_steps: int
    decode_steps: int

    ttft_p50: float
    ttft_p99: float
    tpot_p50: float
    tpot_p99: float
    queue_p50: float
    queue_p99: float

    request_throughput: float
    output_token_throughput: float
    goodput: float
    slo_attainment: float
    load_imbalance: float

    total_device_seconds: float
    energy_joules: float
    cost_usd: float
    cost_per_million_tokens: float

    replicas: List[ServingReport] = dataclasses.field(default_factory=list)

    @property
    def device_utilization(self) -> float:
        """Fleet-wide fraction of device time spent executing steps."""
        wall = self.num_replicas * self.simulated_time
        return self.busy_time / wall if wall > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat headline view for tables and logs."""
        return {
            "replicas": self.num_replicas,
            "completed": self.completed_requests,
            "ttft_p50_s": self.ttft_p50,
            "ttft_p99_s": self.ttft_p99,
            "tpot_p99_s": self.tpot_p99,
            "requests_per_s": self.request_throughput,
            "tokens_per_s": self.output_token_throughput,
            "goodput_rps": self.goodput,
            "slo_attainment": self.slo_attainment,
            "load_imbalance": self.load_imbalance,
            "utilization": self.device_utilization,
            "cost_per_million_tokens_usd": self.cost_per_million_tokens,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict view, per-replica reports included."""
        data = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name != "replicas"
        }
        data["replicas"] = [report.to_dict() for report in self.replicas]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetReport":
        """Rebuild a report from :meth:`to_dict` output."""
        data = dict(data)
        data["replicas"] = [ServingReport.from_dict(entry) for entry in data.get("replicas", [])]
        return cls(**data)

    def to_json(self, **kwargs: object) -> str:
        """Serialize the report to a JSON string."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FleetReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


class FleetSimulator:
    """Simulates N identical engine replicas of one model behind a router.

    Every replica shares one :class:`StepCostModel` (pass ``step_cost`` to
    share it wider, e.g. across the scenarios of a sweep).  ``router``
    accepts a :class:`RouterPolicy` *instance* to override the configured
    policy -- the equivalence tests use it to force the interleaved path.
    """

    def __init__(
        self,
        system: SystemSpec,
        model: TransformerConfig,
        fleet: FleetConfig,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        step_cost: Optional[StepCostModel] = None,
        tco: Optional[TCOModel] = None,
        fused: bool = True,
        router: Optional[RouterPolicy] = None,
    ):
        self.system = system
        self.model = model
        self.fleet = fleet
        self.tensor_parallel = tensor_parallel
        self.precision = precision
        self.tco = tco if tco is not None else TCOModel(system=system)
        self.router = router if router is not None else get_router(fleet.router)
        # One simulator parameterizes every replica: engines share its
        # configuration and, critically, its step-cost model and caches.
        self.simulator = ServingSimulator(
            system=system,
            model=model,
            tensor_parallel=tensor_parallel,
            precision=precision,
            step_cost=step_cost,
            scheduler_config=fleet.scheduler,
            slo=fleet.slo,
            include_lm_head=fleet.include_lm_head,
            fused=fused,
            max_epoch_steps=fleet.max_epoch_steps,
            arrival_probe_steps=fleet.arrival_probe_steps,
        )

    def run(self, workload: Optional[Union[TraceColumns, Sequence[Request]]] = None) -> FleetReport:
        """Simulate the fleet to completion and aggregate the report.

        ``workload`` defaults to the configured trace; pass
        :class:`TraceColumns` or an explicit request list to reuse a
        generated trace across simulations (requests must carry distinct
        ids; they are processed in arrival order).
        """
        if workload is None:
            columns = self.fleet.trace.generate_columns()
            requests = columns.to_requests()
        elif isinstance(workload, TraceColumns):
            columns = workload
            requests = columns.to_requests()
        else:
            requests = sorted(workload, key=lambda request: (request.arrival_time, request.request_id))
            if not requests:
                raise ConfigurationError("fleet simulation needs at least one request")
            columns = TraceColumns(
                arrival_times=np.array([request.arrival_time for request in requests], dtype=np.float64),
                prompt_tokens=np.array([request.prompt_tokens for request in requests], dtype=np.int64),
                output_tokens=np.array([request.output_tokens for request in requests], dtype=np.int64),
                tenant_ids=np.zeros(len(requests), dtype=np.int64),
            )
        if not requests:
            raise ConfigurationError("fleet simulation needs at least one request")

        num_replicas = self.fleet.num_replicas
        engines = [self.simulator.engine() for _ in range(num_replicas)]
        self.router.reset(num_replicas)

        assignment = self.router.assign_batch(columns, num_replicas)
        if assignment is not None:
            self._run_partitioned(engines, requests, np.asarray(assignment))
        else:
            self._run_interleaved(engines, requests, columns.tenant_ids)

        replica_reports = [self.simulator.report(engine) for engine in engines]
        return self._aggregate(replica_reports)

    # -- execution paths ----------------------------------------------------------------

    def _run_partitioned(
        self, engines: List[ReplicaEngine], requests: List[Request], assignment: np.ndarray
    ) -> None:
        """Stateless-router fast path: drain each replica's partition independently."""
        if assignment.shape[0] != len(requests):
            raise ConfigurationError("router assignment must cover every request")
        for request, replica in zip(requests, assignment.tolist()):
            engines[replica].submit(request)
        for engine in engines:
            engine.advance()

    def _run_interleaved(
        self, engines: List[ReplicaEngine], requests: List[Request], tenant_ids: np.ndarray
    ) -> None:
        """Stateful-router path: cluster-level event-horizon loop.

        For each arrival (the fleet's next event), every replica advances to
        the arrival time through fused epochs cut at that horizon, the router
        inspects the resulting replica states, and the request lands on the
        chosen replica.  A final unbounded advance drains the fleet.
        """
        tenants = tenant_ids.tolist()
        for index, request in enumerate(requests):
            horizon = request.arrival_time
            for engine in engines:
                engine.advance(until=horizon)
            replica = self.router.select(request, tenants[index], engines)
            engines[replica].submit(request)
        for engine in engines:
            engine.advance()

    # -- aggregation --------------------------------------------------------------------

    def _aggregate(self, replica_reports: List[ServingReport]) -> FleetReport:
        """Pool per-replica reports into the fleet view."""
        fleet = self.fleet
        makespan = max(report.simulated_time for report in replica_reports)
        busy = np.array([report.busy_time for report in replica_reports], dtype=np.float64)
        completed = sum(report.completed_requests for report in replica_reports)
        output_tokens = sum(
            metrics.output_tokens for report in replica_reports for metrics in report.per_request
        )

        per_request: List[RequestMetrics] = [
            metrics for report in replica_reports for metrics in report.per_request
        ]
        if per_request:
            ttfts = np.fromiter((m.ttft for m in per_request), dtype=np.float64, count=len(per_request))
            tpots = np.fromiter((m.tpot for m in per_request), dtype=np.float64, count=len(per_request))
            queues = np.fromiter(
                (m.queue_time for m in per_request), dtype=np.float64, count=len(per_request)
            )
            good = int(np.count_nonzero(fleet.slo.met_mask(ttfts, tpots)))
            percentiles = {
                "ttft_p50": percentile(ttfts, 50),
                "ttft_p99": percentile(ttfts, 99),
                "tpot_p50": percentile(tpots, 50),
                "tpot_p99": percentile(tpots, 99),
                "queue_p50": percentile(queues, 50),
                "queue_p99": percentile(queues, 99),
            }
        else:
            good = 0
            percentiles = {
                "ttft_p50": 0.0,
                "ttft_p99": 0.0,
                "tpot_p50": 0.0,
                "tpot_p99": 0.0,
                "queue_p50": 0.0,
                "queue_p99": 0.0,
            }

        mean_busy = float(busy.mean())
        load_imbalance = float(busy.max() / mean_busy - 1.0) if mean_busy > 0 else 0.0

        # Cost the whole fleet for the whole makespan: every replica's TP
        # group exists (and burns idle power) until the last replica drains.
        total_device_seconds = fleet.num_replicas * self.tensor_parallel * makespan
        energy_model = self.tco.energy_model
        energy_joules = sum(
            energy_model.device_energy(
                busy_time=report.busy_time,
                waiting_time=max(makespan - report.busy_time, 0.0),
                num_devices=self.tensor_parallel,
            )
            for report in replica_reports
        )
        cost_usd = self.tco.device_seconds_cost(total_device_seconds, energy_joules)
        cost_per_million_tokens = cost_usd / output_tokens * 1e6 if output_tokens > 0 else 0.0

        return FleetReport(
            model_name=self.model.name,
            system_name=self.system.name,
            tensor_parallel=self.tensor_parallel,
            num_replicas=fleet.num_replicas,
            router=self.router.name,
            num_requests=sum(report.num_requests for report in replica_reports),
            completed_requests=completed,
            rejected_requests=sum(report.rejected_requests for report in replica_reports),
            simulated_time=makespan,
            busy_time=float(busy.sum()),
            prefill_steps=sum(report.prefill_steps for report in replica_reports),
            decode_steps=sum(report.decode_steps for report in replica_reports),
            request_throughput=completed / makespan if makespan > 0 else 0.0,
            output_token_throughput=output_tokens / makespan if makespan > 0 else 0.0,
            goodput=good / makespan if makespan > 0 else 0.0,
            slo_attainment=good / completed if completed else 0.0,
            load_imbalance=load_imbalance,
            total_device_seconds=total_device_seconds,
            energy_joules=float(energy_joules),
            cost_usd=float(cost_usd),
            cost_per_million_tokens=float(cost_per_million_tokens),
            replicas=replica_reports,
            **percentiles,
        )
