"""Fleet-scale serving simulation: N engine replicas behind a router.

Production serving is never one engine -- it is a fleet of identical
replicas behind a routing tier, fed by many tenants whose load breathes
over the day.  This module scales the single-replica event-horizon
simulator (:mod:`repro.serving.simulator`) to that setting without
reintroducing any per-step Python work:

* Every replica is a :class:`~repro.serving.simulator.ReplicaEngine` --
  the same :class:`~repro.serving.scheduler.ContinuousBatchingScheduler`
  plus epoch-fused :meth:`~repro.core.stepcost.StepCostModel.decode_run`
  loop -- and all replicas share **one** :class:`StepCostModel` per system,
  so its step-cost caches amortize across the whole fleet.
* **Stateless** routers (round-robin, prefix-affinity) assign the entire
  trace in one vectorized pass; each replica then drains its partition as
  an independent single-replica simulation.  This is the fleet's fast path
  (and what makes an N=1 fleet bit-identical to :class:`ServingSimulator`).
* **Stateful** routers (least-KV-load, least-queue) need live replica state
  at each arrival, so the fleet runs an event-horizon loop at cluster
  level: the next event is the next arrival, and every replica advances to
  it through epoch-fused decode runs cut at that horizon
  (``ReplicaEngine.advance(until=...)``).  The epoch cuts change nothing
  but grouping, so per-replica results stay exact.

The outcome is a :class:`FleetReport`: per-replica
:class:`~repro.serving.report.ServingReport` objects plus fleet-level
latency percentiles, SLO goodput, load imbalance, and dollar cost per
token via :class:`~repro.cost.tco.TCOModel`.

Fleets can additionally be *failure-aware and elastic*: a
:class:`~repro.serving.faults.FaultConfig` injects deterministic replica
crash/recovery events (lost requests re-enter the router under a
:class:`~repro.serving.faults.RetryPolicy`), and an autoscaler
(:class:`~repro.serving.faults.QueueDepthAutoscaler` /
:class:`~repro.serving.faults.SLOAutoscaler`) joins and drains replicas on
rolling windows.  Both ride one event-heap loop (:meth:`FleetSimulator
._run_resilient`) layered on the same ``advance(until=...)`` engine core;
with faults disabled and no autoscaler the original two code paths run
unchanged, keeping the zero-fault fleet bit-identical to earlier releases.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.stepcost import StepCostModel
from ..cost.tco import TCOModel
from ..errors import ConfigurationError
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from .faults import AutoscalerConfig, FaultConfig, RetryPolicy
from .report import RequestMetrics, ServingReport, ServingSLO, percentile
from .request import FleetTraceConfig, Request, TraceColumns, TraceConfig
from .router import ROUTER_POLICIES, RouterPolicy, get_router
from .scheduler import SchedulerConfig
from .simulator import _ARRIVAL_PROBE_STEPS, _MAX_EPOCH_STEPS, ReplicaEngine, ServingSimulator

# Event kinds of the resilient fleet loop, in tie-break priority order at
# equal timestamps: recoveries land before crashes, crashes before scaling
# decisions, and routing happens last so it sees the settled membership.
_EVENT_UP = 0
_EVENT_DOWN = 1
_EVENT_SCALE = 2
_EVENT_ARRIVAL = 3


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """Frozen description of one fleet simulation.

    Attributes:
        trace: The workload -- a single-tenant :class:`TraceConfig` or a
            multi-tenant :class:`FleetTraceConfig`.
        num_replicas: Engine replicas in the fleet (each runs the model at
            the scenario's tensor parallelism).
        router: Registered routing policy name
            (:data:`~repro.serving.router.ROUTER_POLICIES`).
        scheduler: Per-replica batching / admission-control knobs.
        slo: Latency SLO for goodput accounting (fleet and per replica).
        include_lm_head: Whether steps price the logits GEMM.
        max_epoch_steps: Per-replica fused-epoch cap
            (:class:`~repro.serving.simulator.ServingSimulator` default).
        arrival_probe_steps: Per-replica probe cap while an admissible
            arrival is pending.
        faults: Optional replica crash/recovery process; ``None`` (or a
            config with infinite MTBF) keeps the fleet fault-free on the
            original code paths.
        retry: What happens to requests a crash evicts (only consulted
            when faults fire).
        autoscaler: Optional elastic-membership controller; ``num_replicas``
            is the *initial* fleet size and must sit inside the scaler's
            ``[min_replicas, max_replicas]`` band.
    """

    trace: Union[TraceConfig, FleetTraceConfig]
    num_replicas: int = 2
    router: str = "round_robin"
    scheduler: SchedulerConfig = dataclasses.field(default_factory=SchedulerConfig)
    slo: ServingSLO = dataclasses.field(default_factory=ServingSLO)
    include_lm_head: bool = True
    max_epoch_steps: int = _MAX_EPOCH_STEPS
    arrival_probe_steps: int = _ARRIVAL_PROBE_STEPS
    faults: Optional[FaultConfig] = None
    retry: RetryPolicy = dataclasses.field(default_factory=RetryPolicy)
    autoscaler: Optional[AutoscalerConfig] = None

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ConfigurationError("a fleet needs at least one replica")
        if self.router not in ROUTER_POLICIES:
            raise ConfigurationError(
                f"unknown router policy {self.router!r}; choose from {sorted(ROUTER_POLICIES)}"
            )
        if self.max_epoch_steps < 1 or self.arrival_probe_steps < 1:
            raise ConfigurationError("max_epoch_steps and arrival_probe_steps must be >= 1")
        if self.autoscaler is not None and not (
            self.autoscaler.min_replicas <= self.num_replicas <= self.autoscaler.max_replicas
        ):
            raise ConfigurationError(
                "num_replicas must lie inside the autoscaler's [min_replicas, max_replicas] band"
            )

    @property
    def resilient(self) -> bool:
        """Whether faults or elasticity force the event-heap loop."""
        return (self.faults is not None and self.faults.enabled) or self.autoscaler is not None


@dataclasses.dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one fleet simulation.

    Latency percentiles pool every completed request across replicas;
    throughputs divide fleet totals by the fleet **makespan** (the latest
    replica clock).  ``load_imbalance`` is ``max/mean - 1`` over per-replica
    busy time: 0.0 for a perfectly balanced fleet, 1.0 when the busiest
    replica does twice the average work.  Costs price every replica's
    devices for the full makespan (idle replicas still burn capital and
    idle power) through :class:`~repro.cost.tco.TCOModel`.
    """

    model_name: str
    system_name: str
    tensor_parallel: int
    num_replicas: int
    router: str

    num_requests: int
    completed_requests: int
    rejected_requests: int

    simulated_time: float
    busy_time: float
    prefill_steps: int
    decode_steps: int

    ttft_p50: float
    ttft_p99: float
    tpot_p50: float
    tpot_p99: float
    queue_p50: float
    queue_p99: float

    request_throughput: float
    output_token_throughput: float
    goodput: float
    slo_attainment: float
    load_imbalance: float

    total_device_seconds: float
    energy_joules: float
    cost_usd: float
    cost_per_million_tokens: float

    # Resilience/elasticity outcomes.  A fault-free, fixed-size fleet
    # reports the defaults (availability 1.0, zero counters, peak at the
    # configured size); TTFT/queue percentiles above are *interruption
    # aware* -- retried requests measure from their original arrival, so
    # retry backoff is priced as added queue delay.
    availability: float = 1.0
    replica_failures: int = 0
    retried_requests: int = 0
    failed_requests: int = 0
    wasted_prefill_tokens: int = 0
    lost_output_tokens: int = 0
    peak_replicas: int = 0
    scale_up_events: int = 0
    scale_down_events: int = 0

    replicas: List[ServingReport] = dataclasses.field(default_factory=list)

    @property
    def device_utilization(self) -> float:
        """Fleet-wide fraction of device time spent executing steps.

        Derived from ``total_device_seconds`` so the denominator tracks
        actual membership time in elastic fleets; for a fixed-size fleet it
        equals the classic ``num_replicas * makespan`` wall-clock.
        """
        wall = self.total_device_seconds / self.tensor_parallel if self.tensor_parallel else 0.0
        return self.busy_time / wall if wall > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat headline view for tables and logs."""
        return {
            "replicas": self.num_replicas,
            "completed": self.completed_requests,
            "ttft_p50_s": self.ttft_p50,
            "ttft_p99_s": self.ttft_p99,
            "tpot_p99_s": self.tpot_p99,
            "requests_per_s": self.request_throughput,
            "tokens_per_s": self.output_token_throughput,
            "goodput_rps": self.goodput,
            "slo_attainment": self.slo_attainment,
            "load_imbalance": self.load_imbalance,
            "utilization": self.device_utilization,
            "availability": self.availability,
            "failures": self.replica_failures,
            "retries": self.retried_requests,
            "cost_per_million_tokens_usd": self.cost_per_million_tokens,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict view, per-replica reports included."""
        data = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name != "replicas"
        }
        data["replicas"] = [report.to_dict() for report in self.replicas]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetReport":
        """Rebuild a report from :meth:`to_dict` output."""
        data = dict(data)
        data["replicas"] = [ServingReport.from_dict(entry) for entry in data.get("replicas", [])]
        return cls(**data)

    def to_json(self, **kwargs: object) -> str:
        """Serialize the report to a JSON string."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FleetReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


@dataclasses.dataclass
class _ResilienceOutcome:
    """What the resilient loop learned beyond the per-replica reports."""

    num_requests: int
    member_times: List[float]
    availability: float
    replica_failures: int
    retried_requests: int
    failed_requests: int
    wasted_prefill_tokens: int
    lost_output_tokens: int
    peak_replicas: int
    scale_up_events: int
    scale_down_events: int
    original_arrival: Dict[int, float]


class FleetSimulator:
    """Simulates N identical engine replicas of one model behind a router.

    Every replica shares one :class:`StepCostModel` (pass ``step_cost`` to
    share it wider, e.g. across the scenarios of a sweep).  ``router``
    accepts a :class:`RouterPolicy` *instance* to override the configured
    policy -- the equivalence tests use it to force the interleaved path.
    """

    def __init__(
        self,
        system: SystemSpec,
        model: TransformerConfig,
        fleet: FleetConfig,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        step_cost: Optional[StepCostModel] = None,
        tco: Optional[TCOModel] = None,
        fused: bool = True,
        router: Optional[RouterPolicy] = None,
    ):
        self.system = system
        self.model = model
        self.fleet = fleet
        self.tensor_parallel = tensor_parallel
        self.precision = precision
        self.tco = tco if tco is not None else TCOModel(system=system)
        self.router = router if router is not None else get_router(fleet.router)
        # One simulator parameterizes every replica: engines share its
        # configuration and, critically, its step-cost model and caches.
        self.simulator = ServingSimulator(
            system=system,
            model=model,
            tensor_parallel=tensor_parallel,
            precision=precision,
            step_cost=step_cost,
            scheduler_config=fleet.scheduler,
            slo=fleet.slo,
            include_lm_head=fleet.include_lm_head,
            fused=fused,
            max_epoch_steps=fleet.max_epoch_steps,
            arrival_probe_steps=fleet.arrival_probe_steps,
        )

    def run(self, workload: Optional[Union[TraceColumns, Sequence[Request]]] = None) -> FleetReport:
        """Simulate the fleet to completion and aggregate the report.

        ``workload`` defaults to the configured trace; pass
        :class:`TraceColumns` or an explicit request list to reuse a
        generated trace across simulations (requests must carry distinct
        ids; they are processed in arrival order).
        """
        if workload is None:
            columns = self.fleet.trace.generate_columns()
            requests = columns.to_requests()
        elif isinstance(workload, TraceColumns):
            columns = workload
            requests = columns.to_requests()
        else:
            requests = sorted(workload, key=lambda request: (request.arrival_time, request.request_id))
            if not requests:
                raise ConfigurationError("fleet simulation needs at least one request")
            columns = TraceColumns(
                arrival_times=np.array([request.arrival_time for request in requests], dtype=np.float64),
                prompt_tokens=np.array([request.prompt_tokens for request in requests], dtype=np.int64),
                output_tokens=np.array([request.output_tokens for request in requests], dtype=np.int64),
                tenant_ids=np.zeros(len(requests), dtype=np.int64),
            )
        if not requests:
            raise ConfigurationError("fleet simulation needs at least one request")

        if self.fleet.resilient:
            return self._run_resilient(requests, columns.tenant_ids)

        num_replicas = self.fleet.num_replicas
        engines = [self.simulator.engine() for _ in range(num_replicas)]
        self.router.reset(num_replicas)

        assignment = self.router.assign_batch(columns, num_replicas)
        if assignment is not None:
            self._run_partitioned(engines, requests, np.asarray(assignment))
        else:
            self._run_interleaved(engines, requests, columns.tenant_ids)

        replica_reports = [self.simulator.report(engine) for engine in engines]
        return self._aggregate(replica_reports)

    # -- execution paths ----------------------------------------------------------------

    def _run_partitioned(
        self, engines: List[ReplicaEngine], requests: List[Request], assignment: np.ndarray
    ) -> None:
        """Stateless-router fast path: drain each replica's partition independently."""
        if assignment.shape[0] != len(requests):
            raise ConfigurationError("router assignment must cover every request")
        for request, replica in zip(requests, assignment.tolist()):
            engines[replica].submit(request)
        for engine in engines:
            engine.advance()

    def _run_interleaved(
        self, engines: List[ReplicaEngine], requests: List[Request], tenant_ids: np.ndarray
    ) -> None:
        """Stateful-router path: cluster-level event-horizon loop.

        For each arrival (the fleet's next event), every replica advances to
        the arrival time through fused epochs cut at that horizon, the router
        inspects the resulting replica states, and the request lands on the
        chosen replica.  A final unbounded advance drains the fleet.
        """
        tenants = tenant_ids.tolist()
        for index, request in enumerate(requests):
            horizon = request.arrival_time
            for engine in engines:
                engine.advance(until=horizon)
            replica = self.router.select(request, tenants[index], engines)
            engines[replica].submit(request)
        for engine in engines:
            engine.advance()

    def _run_resilient(self, requests: List[Request], tenant_ids: np.ndarray) -> FleetReport:
        """Failure-aware / elastic path: one event heap over the whole fleet.

        Events (arrivals and retries, replica crashes and recoveries,
        autoscaler ticks) pop in time order; every up replica advances to
        each event's horizon through the same fused-epoch
        ``advance(until=...)`` core the stateful-router path uses, so the
        pricing of the surviving work is unchanged.  A crash evacuates the
        replica (:meth:`ReplicaEngine.fail`) and its requests re-enter the
        router under the retry policy; a drain (autoscaler scale-down)
        merely stops new routing and lets the replica finish its queue.
        """
        fleet = self.fleet
        faults = fleet.faults if fleet.faults is not None and fleet.faults.enabled else None
        retry = fleet.retry
        scaler = fleet.autoscaler
        max_slots = max(fleet.num_replicas, scaler.max_replicas if scaler is not None else 0)

        engines: List[Optional[ReplicaEngine]] = [None] * max_slots
        member = [False] * max_slots
        up = [True] * max_slots
        draining = [False] * max_slots
        drain_asked = [0.0] * max_slots
        member_since = [0.0] * max_slots
        member_time = [0.0] * max_slots
        down_since = [0.0] * max_slots
        down_time = [0.0] * max_slots
        traces = [faults.replica_trace(slot) for slot in range(max_slots)] if faults else None

        tenants = {
            request.request_id: int(tenant) for request, tenant in zip(requests, tenant_ids)
        }
        original_arrival: Dict[int, float] = {}
        attempts: Dict[int, int] = {}
        parked: List[Request] = []
        counters = {
            "failures": 0, "retries": 0, "failed": 0, "wasted_prefill": 0,
            "lost_output": 0, "scale_ups": 0, "scale_downs": 0,
        }

        # (time, kind, seq, payload) -- the unique seq keeps payloads out of
        # heap comparisons and makes same-time ordering deterministic.
        heap: List[Tuple[float, int, int, object]] = [
            (request.arrival_time, _EVENT_ARRIVAL, index, request)
            for index, request in enumerate(requests)
        ]
        heapq.heapify(heap)
        seq = itertools.count(len(requests))

        def join(slot: int, now: float) -> None:
            if engines[slot] is None:
                engines[slot] = self.simulator.engine()
            member[slot] = True
            draining[slot] = False
            member_since[slot] = now
            if not up[slot]:
                down_since[slot] = now

        def leave(slot: int, now: float) -> None:
            member[slot] = False
            member_time[slot] += max(now - member_since[slot], 0.0)
            if not up[slot]:
                down_time[slot] += max(now - down_since[slot], 0.0)

        def active_members() -> List[int]:
            return [slot for slot in range(max_slots) if member[slot] and not draining[slot]]

        def routable_slots() -> List[int]:
            return [slot for slot in active_members() if up[slot]]

        def settled() -> int:
            done = counters["failed"]
            for engine in engines:
                if engine is not None:
                    done += len(engine.completed) + len(engine.scheduler.rejected)
            return done

        def finish_drains() -> None:
            # A draining replica leaves once its queue empties; membership
            # (and its device-time bill) ends when the work does, never
            # before the drain was requested.
            for slot in range(max_slots):
                if member[slot] and draining[slot]:
                    engine = engines[slot]
                    if engine is not None and engine.drained:
                        leave(slot, max(drain_asked[slot], engine.now))
                        draining[slot] = False

        def route(request: Request, now: float) -> None:
            slots = routable_slots()
            if not slots:
                parked.append(request)
                return
            choices = [engines[slot] for slot in slots]
            pick = self.router.select(request, tenants.get(request.request_id, 0), choices)
            engines[slots[pick]].submit(request)

        def lose(request: Request, now: float) -> None:
            rid = request.request_id
            tries = attempts.get(rid, 1)
            if tries >= retry.max_attempts:
                counters["failed"] += 1
                return
            original_arrival.setdefault(rid, request.arrival_time)
            attempts[rid] = tries + 1
            counters["retries"] += 1
            retry_at = now + retry.delay(tries)
            clone = dataclasses.replace(request, arrival_time=retry_at)
            heapq.heappush(heap, (retry_at, _EVENT_ARRIVAL, next(seq), clone))

        for slot in range(fleet.num_replicas):
            join(slot, 0.0)
        peak = fleet.num_replicas
        self.router.reset(fleet.num_replicas)

        if faults:
            for slot in range(max_slots):
                trace = traces[slot]
                if not trace.exhausted:
                    heapq.heappush(heap, (trace.up_duration(), _EVENT_DOWN, next(seq), slot))
        if scaler is not None:
            heapq.heappush(heap, (scaler.interval, _EVENT_SCALE, next(seq), None))

        total = len(requests)
        while heap:
            now, kind, _, payload = heapq.heappop(heap)
            for slot in range(max_slots):
                engine = engines[slot]
                if engine is not None and up[slot]:
                    engine.advance(until=now)
            finish_drains()

            if kind == _EVENT_ARRIVAL:
                route(payload, now)
            elif kind == _EVENT_DOWN:
                slot = payload
                trace = traces[slot]
                trace.failures += 1
                heapq.heappush(heap, (now + trace.repair_duration(), _EVENT_UP, next(seq), slot))
                if up[slot]:
                    up[slot] = False
                    if member[slot]:
                        down_since[slot] = now
                    engine = engines[slot]
                    if engine is not None:
                        lost_states, lost_queue = engine.fail()
                        if member[slot] or lost_states or lost_queue:
                            counters["failures"] += 1
                        for state in lost_states:
                            counters["wasted_prefill"] += state.request.prompt_tokens
                            counters["lost_output"] += state.generated
                            lose(state.request, now)
                        for request in lost_queue:
                            lose(request, now)
                    elif member[slot]:
                        counters["failures"] += 1
            elif kind == _EVENT_UP:
                slot = payload
                if not up[slot]:
                    up[slot] = True
                    if member[slot]:
                        down_time[slot] += max(now - down_since[slot], 0.0)
                trace = traces[slot] if traces else None
                if trace is not None and not trace.exhausted and settled() < total:
                    heapq.heappush(heap, (now + trace.up_duration(), _EVENT_DOWN, next(seq), slot))
                if parked:
                    for request in parked:
                        heapq.heappush(heap, (now, _EVENT_ARRIVAL, next(seq), request))
                    parked.clear()
            elif kind == _EVENT_SCALE:
                serving = active_members()
                routable = routable_slots()
                queued = sum(engines[slot].queued_requests for slot in routable) + len(parked)
                depth = queued / len(routable) if routable else float(1 + queued)
                attainment = self._window_attainment(engines, now - scaler.interval)
                decision = scaler.decide(depth, attainment)
                if decision > 0 and len(serving) < scaler.max_replicas:
                    candidates = [slot for slot in range(max_slots) if member[slot] and draining[slot]]
                    candidates += sorted(
                        (slot for slot in range(max_slots) if not member[slot]),
                        key=lambda slot: (not up[slot], slot),
                    )
                    slot = candidates[0]
                    if member[slot]:
                        draining[slot] = False  # cancel an in-progress drain
                    else:
                        join(slot, now)
                    counters["scale_ups"] += 1
                    peak = max(peak, len(serving) + 1)
                elif decision < 0 and len(serving) > scaler.min_replicas:
                    slot = serving[-1]
                    draining[slot] = True
                    drain_asked[slot] = now
                    counters["scale_downs"] += 1
                if settled() < total:
                    heapq.heappush(heap, (now + scaler.interval, _EVENT_SCALE, next(seq), None))

            if settled() >= total and not parked:
                break

        for slot in range(max_slots):
            engine = engines[slot]
            if engine is not None and up[slot]:
                engine.advance()
        finish_drains()
        if parked:  # defensive: no replica ever came back for them
            counters["failed"] += len(parked)
            parked.clear()

        makespan = max(
            (engine.now for engine in engines if engine is not None), default=0.0
        )
        for slot in range(max_slots):
            if member[slot]:
                leave(slot, makespan)

        report_slots = [slot for slot in range(max_slots) if engines[slot] is not None]
        replica_reports = [self.simulator.report(engines[slot]) for slot in report_slots]
        total_member = sum(member_time[slot] for slot in report_slots)
        total_down = sum(down_time[slot] for slot in report_slots)
        outcome = _ResilienceOutcome(
            num_requests=total,
            member_times=[member_time[slot] for slot in report_slots],
            availability=1.0 - total_down / total_member if total_member > 0 else 1.0,
            replica_failures=counters["failures"],
            retried_requests=counters["retries"],
            failed_requests=counters["failed"],
            wasted_prefill_tokens=counters["wasted_prefill"],
            lost_output_tokens=counters["lost_output"],
            peak_replicas=peak,
            scale_up_events=counters["scale_ups"],
            scale_down_events=counters["scale_downs"],
            original_arrival=original_arrival,
        )
        return self._aggregate(replica_reports, resilience=outcome)

    def _window_attainment(
        self, engines: Sequence[Optional[ReplicaEngine]], window_start: float
    ) -> Optional[float]:
        """SLO attainment of completions after ``window_start`` (``None`` if none).

        Replica-local TTFT/TPOT -- what a production controller observes --
        against the fleet SLO.  Per-engine ``completed`` lists are in
        retirement order, so each scan walks back only through the window.
        """
        ttfts: List[float] = []
        tpots: List[float] = []
        for engine in engines:
            if engine is None:
                continue
            for state in reversed(engine.completed):
                if state.finish_time is None or state.finish_time <= window_start:
                    break
                ttfts.append(state.first_token_time - state.request.arrival_time)
                decode_tokens = state.request.output_tokens - 1
                tpots.append(
                    (state.finish_time - state.first_token_time) / decode_tokens
                    if decode_tokens > 0
                    else 0.0
                )
        if not ttfts:
            return None
        met = np.count_nonzero(
            self.fleet.slo.met_mask(np.asarray(ttfts), np.asarray(tpots))
        )
        return float(met) / len(ttfts)

    # -- aggregation --------------------------------------------------------------------

    def _aggregate(
        self,
        replica_reports: List[ServingReport],
        resilience: Optional[_ResilienceOutcome] = None,
    ) -> FleetReport:
        """Pool per-replica reports into the fleet view.

        With a :class:`_ResilienceOutcome` the pooled TTFT/queue metrics are
        re-based to each request's *original* arrival (retry backoff shows
        up as queue delay) and device time bills actual membership instead
        of ``num_replicas * makespan``; without one the computation is
        bit-identical to the pre-fault fleet.
        """
        fleet = self.fleet
        makespan = max(report.simulated_time for report in replica_reports)
        busy = np.array([report.busy_time for report in replica_reports], dtype=np.float64)
        completed = sum(report.completed_requests for report in replica_reports)
        output_tokens = sum(
            metrics.output_tokens for report in replica_reports for metrics in report.per_request
        )

        per_request: List[RequestMetrics] = [
            metrics for report in replica_reports for metrics in report.per_request
        ]
        if per_request:
            ttfts = np.fromiter((m.ttft for m in per_request), dtype=np.float64, count=len(per_request))
            tpots = np.fromiter((m.tpot for m in per_request), dtype=np.float64, count=len(per_request))
            queues = np.fromiter(
                (m.queue_time for m in per_request), dtype=np.float64, count=len(per_request)
            )
            if resilience is not None and resilience.original_arrival:
                # A retried request's replica-local clock starts at its last
                # re-submission; shift it back to the original arrival.
                first = resilience.original_arrival
                shifts = np.fromiter(
                    (m.arrival_time - first.get(m.request_id, m.arrival_time) for m in per_request),
                    dtype=np.float64,
                    count=len(per_request),
                )
                ttfts = ttfts + shifts
                queues = queues + shifts
            good = int(np.count_nonzero(fleet.slo.met_mask(ttfts, tpots)))
            percentiles = {
                "ttft_p50": percentile(ttfts, 50),
                "ttft_p99": percentile(ttfts, 99),
                "tpot_p50": percentile(tpots, 50),
                "tpot_p99": percentile(tpots, 99),
                "queue_p50": percentile(queues, 50),
                "queue_p99": percentile(queues, 99),
            }
        else:
            good = 0
            percentiles = {
                "ttft_p50": 0.0,
                "ttft_p99": 0.0,
                "tpot_p50": 0.0,
                "tpot_p99": 0.0,
                "queue_p50": 0.0,
                "queue_p99": 0.0,
            }

        mean_busy = float(busy.mean())
        load_imbalance = float(busy.max() / mean_busy - 1.0) if mean_busy > 0 else 0.0

        # Cost the whole fleet for the whole makespan: every replica's TP
        # group exists (and burns idle power) until the last replica drains.
        # Elastic fleets bill each replica only for its membership time.
        energy_model = self.tco.energy_model
        if resilience is None:
            total_device_seconds = fleet.num_replicas * self.tensor_parallel * makespan
            on_times = [makespan] * len(replica_reports)
        else:
            total_device_seconds = self.tensor_parallel * sum(resilience.member_times)
            on_times = resilience.member_times
        energy_joules = sum(
            energy_model.device_energy(
                busy_time=report.busy_time,
                waiting_time=max(on_time - report.busy_time, 0.0),
                num_devices=self.tensor_parallel,
            )
            for report, on_time in zip(replica_reports, on_times)
        )
        cost_usd = self.tco.device_seconds_cost(total_device_seconds, energy_joules)
        cost_per_million_tokens = cost_usd / output_tokens * 1e6 if output_tokens > 0 else 0.0

        if resilience is None:
            num_requests = sum(report.num_requests for report in replica_reports)
            extras = {"peak_replicas": fleet.num_replicas}
        else:
            num_requests = resilience.num_requests
            extras = {
                "availability": resilience.availability,
                "replica_failures": resilience.replica_failures,
                "retried_requests": resilience.retried_requests,
                "failed_requests": resilience.failed_requests,
                "wasted_prefill_tokens": resilience.wasted_prefill_tokens,
                "lost_output_tokens": resilience.lost_output_tokens,
                "peak_replicas": resilience.peak_replicas,
                "scale_up_events": resilience.scale_up_events,
                "scale_down_events": resilience.scale_down_events,
            }

        return FleetReport(
            model_name=self.model.name,
            system_name=self.system.name,
            tensor_parallel=self.tensor_parallel,
            num_replicas=fleet.num_replicas,
            router=self.router.name,
            num_requests=num_requests,
            completed_requests=completed,
            rejected_requests=sum(report.rejected_requests for report in replica_reports),
            simulated_time=makespan,
            busy_time=float(busy.sum()),
            prefill_steps=sum(report.prefill_steps for report in replica_reports),
            decode_steps=sum(report.decode_steps for report in replica_reports),
            request_throughput=completed / makespan if makespan > 0 else 0.0,
            output_token_throughput=output_tokens / makespan if makespan > 0 else 0.0,
            goodput=good / makespan if makespan > 0 else 0.0,
            slo_attainment=good / completed if completed else 0.0,
            load_imbalance=load_imbalance,
            total_device_seconds=total_device_seconds,
            energy_joules=float(energy_joules),
            cost_usd=float(cost_usd),
            cost_per_million_tokens=float(cost_per_million_tokens),
            replicas=replica_reports,
            **percentiles,
            **extras,
        )
