"""Continuous-batching scheduler with KV-cache memory admission control.

The scheduler implements the iteration-level batching policy of modern
serving engines (Orca / vLLM style): requests join and leave the running
batch between engine steps instead of waiting for a whole batch to drain.
Admission is gated on the per-device memory budget: the model weights are
resident, and every admitted request *reserves* KV-cache capacity for its
full context (prompt + all output tokens), so an admitted request can always
run to completion without preemption or swapping -- the conservative
admission policy that keeps the simulation free of eviction dynamics.

Memory accounting goes through :mod:`repro.memmodel.footprint`
(:func:`~repro.memmodel.footprint.model_weight_bytes` and
:func:`~repro.memmodel.footprint.kv_cache_bytes`), the same model the
single-request path uses for its capacity check.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, List, Optional

from ..errors import ConfigurationError
from ..hardware.datatypes import Precision
from ..memmodel.footprint import kv_cache_bytes, model_weight_bytes
from ..models.transformer import TransformerConfig
from .request import Request


@dataclasses.dataclass(frozen=True)
class SchedulerConfig:
    """Batching and admission-control knobs of the serving engine.

    Attributes:
        max_batch_size: Maximum requests decoded together in one step.
        max_prefill_requests: Maximum requests prefilled in one step (bounds
            the head-of-line blocking one giant prefill inflicts on the
            running decodes).
        memory_capacity_bytes: Per-device memory budget; ``None`` uses the
            accelerator's DRAM capacity.
        memory_headroom: Fraction of the budget held back for transient
            activations and fragmentation.
    """

    max_batch_size: int = 32
    max_prefill_requests: int = 8
    memory_capacity_bytes: Optional[float] = None
    memory_headroom: float = 0.05

    def __post_init__(self) -> None:
        if self.max_batch_size < 1 or self.max_prefill_requests < 1:
            raise ConfigurationError("max_batch_size and max_prefill_requests must be >= 1")
        if not 0 <= self.memory_headroom < 1:
            raise ConfigurationError("memory_headroom must be in [0, 1)")


@dataclasses.dataclass
class RequestState:
    """Mutable bookkeeping of one request inside the engine.

    Attributes:
        request: The immutable trace request.
        kv_reserved_bytes: KV-cache bytes reserved at admission.
        admitted_time: Simulation time the request left the waiting queue.
        first_token_time: Simulation time the prefill (and first token)
            completed; ``None`` while waiting or prefilling.
        finish_time: Simulation time the last token completed.
        generated: Output tokens produced so far.
    """

    request: Request
    kv_reserved_bytes: float = 0.0
    admitted_time: float = 0.0
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    generated: int = 0

    @property
    def decode_kv_len(self) -> int:
        """KV length the next decode step attends to.

        After the prefill produced token 1, the cache holds the prompt; each
        later step appends one token, so step ``g`` (1-based tokens generated)
        attends ``prompt + g - 1`` tokens -- matching the exact decode path of
        the single-request model.
        """
        return self.request.prompt_tokens + max(0, self.generated - 1)

    @property
    def done(self) -> bool:
        """Whether every output token has been generated."""
        return self.generated >= self.request.output_tokens


class ContinuousBatchingScheduler:
    """Iteration-level scheduler: FIFO admission under a KV-memory budget."""

    def __init__(
        self,
        model: TransformerConfig,
        config: SchedulerConfig,
        device_memory_bytes: float,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
    ):
        self.model = model
        self.config = config
        self.tensor_parallel = tensor_parallel
        self.precision = precision
        capacity = (
            config.memory_capacity_bytes if config.memory_capacity_bytes is not None else device_memory_bytes
        )
        self.weight_bytes = model_weight_bytes(model, precision=precision, tensor_parallel=tensor_parallel)
        self.kv_budget_bytes = capacity * (1.0 - config.memory_headroom) - self.weight_bytes
        if self.kv_budget_bytes <= 0:
            raise ConfigurationError(
                f"{model.name} weights ({self.weight_bytes / 1e9:.1f} GB per device at TP="
                f"{tensor_parallel}) exceed the {capacity / 1e9:.1f} GB memory budget"
            )
        self.waiting: Deque[Request] = collections.deque()
        self.active: List[RequestState] = []
        self.kv_reserved_bytes = 0.0
        self.peak_kv_reserved_bytes = 0.0
        self.rejected: List[Request] = []
        self._reservation_memo: Dict[int, float] = {}

    # -- memory accounting -------------------------------------------------------------

    def kv_reservation(self, request: Request) -> float:
        """KV bytes reserved for one request: its full (prompt + output) context.

        Memoized on the total context length: model, precision, and tensor
        parallelism are fixed per scheduler, so the reservation is a pure
        function of ``total_context`` and traces draw from a handful of
        distinct lengths.
        """
        context = request.total_context
        reservation = self._reservation_memo.get(context)
        if reservation is None:
            reservation = kv_cache_bytes(
                self.model,
                batch_size=1,
                context_len=context,
                precision=self.precision,
                tensor_parallel=self.tensor_parallel,
            )
            self._reservation_memo[context] = reservation
        return reservation

    def fits(self, request: Request) -> bool:
        """Whether the request's full-context reservation fits right now."""
        return self.kv_reserved_bytes + self.kv_reservation(request) <= self.kv_budget_bytes

    # -- queue operations --------------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        """Add an arrived request to the waiting queue (FIFO)."""
        self.waiting.append(request)

    def admit(self, now: float) -> List[RequestState]:
        """Admit waiting requests in FIFO order while they fit.

        Admission stops at the first request that does not fit (no queue
        jumping -- head-of-line order is preserved), at the batch-size cap,
        or at the per-step prefill cap.  Requests whose reservation exceeds
        even an *empty* budget can never run and are dropped to
        :attr:`rejected`.
        """
        admitted: List[RequestState] = []
        while self.waiting and len(admitted) < self.config.max_prefill_requests:
            if len(self.active) + len(admitted) >= self.config.max_batch_size:
                break
            candidate = self.waiting[0]
            reservation = self.kv_reservation(candidate)
            if reservation > self.kv_budget_bytes:
                self.waiting.popleft()
                self.rejected.append(candidate)
                continue
            if not self.fits(candidate):
                break
            self.waiting.popleft()
            self.kv_reserved_bytes += reservation
            self.peak_kv_reserved_bytes = max(self.peak_kv_reserved_bytes, self.kv_reserved_bytes)
            admitted.append(RequestState(request=candidate, kv_reserved_bytes=reservation, admitted_time=now))
        self.active.extend(admitted)
        return admitted

    def _release(self, state: RequestState, now: float) -> None:
        """Mark one request finished and release its KV reservation."""
        state.finish_time = now
        self.kv_reserved_bytes -= state.kv_reserved_bytes

    def complete(self, state: RequestState, now: float) -> None:
        """Retire a single request (convenience; the loop uses :meth:`retire_finished`)."""
        self._release(state, now)
        self.active.remove(state)

    def retire_finished(self, now: float) -> List[RequestState]:
        """Retire every active request that has generated all its tokens.

        The running batch is rebuilt in one pass (instead of one O(batch)
        removal per retiree), and callers are expected to gate the call on
        :meth:`min_remaining_tokens` so the scan does not run on steps where
        nothing can possibly finish.
        """
        finished = [state for state in self.active if state.done]
        if not finished:
            return finished
        for state in finished:
            self._release(state, now)
        if len(finished) == len(self.active):
            self.active.clear()
        else:
            self.active = [state for state in self.active if not state.done]
        return finished

    def evacuate(self) -> "tuple[List[RequestState], List[Request]]":
        """Crash support: drop every running and waiting request.

        Returns the evicted ``(active_states, waiting_requests)`` and
        releases all KV reservations -- a crashed replica loses its KV
        cache wholesale.  ``rejected``, the reservation memo, and the peak
        watermark survive: they describe history, not live state.
        """
        active = self.active
        waiting = list(self.waiting)
        self.active = []
        self.waiting.clear()
        self.kv_reserved_bytes = 0.0
        return active, waiting

    # -- event horizon -----------------------------------------------------------------

    def min_remaining_tokens(self) -> int:
        """Decode steps until the earliest active request generates its last token.

        This is the retirement horizon of an epoch-fused decode run: for that
        many steps the batch composition cannot shrink.  Requires a non-empty
        running batch.
        """
        return min(state.request.output_tokens - state.generated for state in self.active)

    @property
    def admission_blocked(self) -> bool:
        """Whether no request can join the running batch before a retirement.

        True when the batch is at its size cap, or when the waiting queue is
        head-of-line blocked on KV memory: admission is FIFO and reservations
        are only released by retirements, so in either case neither the
        queued requests nor any new arrival can be admitted until an active
        request finishes.  (Only meaningful right after an :meth:`admit` call
        that returned nothing -- the simulator's decode branch.)
        """
        return bool(self.waiting) or len(self.active) >= self.config.max_batch_size

    @property
    def has_waiting(self) -> bool:
        """Whether any request is queued for admission."""
        return bool(self.waiting)

    @property
    def has_active(self) -> bool:
        """Whether any request is in the running batch."""
        return bool(self.active)
