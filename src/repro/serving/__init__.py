"""Request-level serving simulation on top of the step-cost pricing core.

The subsystem turns the single-request analytical model into a traffic-level
one: seeded arrival traces (:mod:`repro.serving.request`) flow through a
continuous-batching scheduler with KV-memory admission control
(:mod:`repro.serving.scheduler`); a discrete-event loop
(:mod:`repro.serving.simulator`) advances in prefill steps and *epoch-fused*
decode runs priced by :class:`~repro.core.stepcost.StepCostModel` (all steps
to the next batch-composition change in one vectorized call, bit-identical
to the per-step reference loop); and the outcome is a
:class:`~repro.serving.report.ServingReport` with TTFT/TPOT percentiles,
throughput, goodput under an SLO, and device utilization.

Typical use goes through the engine facade or the sweep subsystem::

    engine = PerformancePredictionEngine(system)
    report = engine.predict_serving("Llama2-13B", TraceConfig(rate=2.0, num_requests=100))

    table = runner.run_table([Scenario.serving(system, "Llama2-13B", config) ...])
"""

from .report import RequestMetrics, ServingReport, ServingSLO, percentile
from .request import (
    LengthDistribution,
    Request,
    TraceConfig,
    bursty_trace,
    poisson_trace,
)
from .scheduler import ContinuousBatchingScheduler, RequestState, SchedulerConfig
from .simulator import ServingConfig, ServingSimulator

__all__ = [
    "ContinuousBatchingScheduler",
    "LengthDistribution",
    "Request",
    "RequestMetrics",
    "RequestState",
    "SchedulerConfig",
    "ServingConfig",
    "ServingReport",
    "ServingSLO",
    "ServingSimulator",
    "TraceConfig",
    "bursty_trace",
    "percentile",
    "poisson_trace",
]
