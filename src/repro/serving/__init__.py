"""Request-level serving simulation on top of the step-cost pricing core.

The subsystem turns the single-request analytical model into a traffic-level
one: seeded arrival traces (:mod:`repro.serving.request`) flow through a
continuous-batching scheduler with KV-memory admission control
(:mod:`repro.serving.scheduler`); a discrete-event loop
(:mod:`repro.serving.simulator`) advances in prefill steps and *epoch-fused*
decode runs priced by :class:`~repro.core.stepcost.StepCostModel` (all steps
to the next batch-composition change in one vectorized call, bit-identical
to the per-step reference loop); and the outcome is a
:class:`~repro.serving.report.ServingReport` with TTFT/TPOT percentiles,
throughput, goodput under an SLO, and device utilization.

At cluster scale, :mod:`repro.serving.fleet` runs N engine replicas behind
pluggable routing policies (:mod:`repro.serving.router`) over multi-tenant
diurnal traces (:class:`~repro.serving.request.FleetTraceConfig`), producing
a :class:`~repro.serving.fleet.FleetReport` with fleet-level latency
percentiles, load imbalance, and cost per token.  Fleets optionally run
*failure-aware and elastic*: :mod:`repro.serving.faults` supplies seeded
crash/recovery traces (:class:`~repro.serving.faults.FaultConfig`), retry
semantics (:class:`~repro.serving.faults.RetryPolicy`), and queue-depth /
SLO autoscalers, and the fleet loop prices re-prefills, availability, and
interruption-aware latency through the same epoch-fused core.

Typical use goes through the engine facade or the sweep subsystem::

    engine = PerformancePredictionEngine(system)
    report = engine.predict_serving("Llama2-13B", TraceConfig(rate=2.0, num_requests=100))
    fleet = engine.predict_fleet("Llama2-13B", FleetConfig(trace=trace, num_replicas=8))

    table = runner.run_table([Scenario.serving(system, "Llama2-13B", config) ...])
"""

from .faults import (
    AutoscalerConfig,
    FaultConfig,
    QueueDepthAutoscaler,
    ReplicaFaultTrace,
    RetryPolicy,
    SLOAutoscaler,
    decode_autoscaler,
)
from .fleet import FleetConfig, FleetReport, FleetSimulator
from .report import RequestMetrics, ServingReport, ServingSLO, percentile
from .request import (
    FleetTraceConfig,
    LengthDistribution,
    Request,
    TenantTrace,
    TraceColumns,
    TraceConfig,
    bursty_trace,
    poisson_trace,
)
from .router import (
    ROUTER_POLICIES,
    LeastKVLoadRouter,
    LeastQueueRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    RouterPolicy,
    get_router,
)
from .scheduler import ContinuousBatchingScheduler, RequestState, SchedulerConfig
from .simulator import ReplicaEngine, ServingConfig, ServingSimulator

__all__ = [
    "ROUTER_POLICIES",
    "AutoscalerConfig",
    "ContinuousBatchingScheduler",
    "FaultConfig",
    "FleetConfig",
    "FleetReport",
    "FleetSimulator",
    "FleetTraceConfig",
    "LeastKVLoadRouter",
    "LeastQueueRouter",
    "LengthDistribution",
    "PrefixAffinityRouter",
    "QueueDepthAutoscaler",
    "ReplicaEngine",
    "ReplicaFaultTrace",
    "Request",
    "RequestMetrics",
    "RequestState",
    "RetryPolicy",
    "RoundRobinRouter",
    "RouterPolicy",
    "SLOAutoscaler",
    "SchedulerConfig",
    "ServingConfig",
    "ServingReport",
    "ServingSLO",
    "ServingSimulator",
    "TenantTrace",
    "TraceColumns",
    "TraceConfig",
    "bursty_trace",
    "decode_autoscaler",
    "get_router",
    "percentile",
    "poisson_trace",
]
