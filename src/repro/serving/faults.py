"""Fault injection, retry, and autoscaling policies for the fleet simulator.

Production fleets are not the ideal hardware the paper prices: replicas
crash and recover, lost requests are retried, and the replica count itself
breathes with load.  This module supplies the *policy* objects; the event
machinery that applies them lives in :mod:`repro.serving.fleet`.

Three concerns, three frozen configs:

* :class:`FaultConfig` -- a seeded generator of deterministic per-replica
  crash/recovery traces.  Up-times and repair durations are exponential
  (mean time between failures / mean time to repair), and every replica
  slot draws from its own :class:`numpy.random.Generator` stream seeded by
  ``(seed, slot)``, so a fault timeline is a pure function of the config
  and the slot index -- independent of event interleaving, replica count,
  or router policy.
* :class:`RetryPolicy` -- what happens to the requests a crash evicts:
  how many submissions a request gets in total and the exponential backoff
  priced as added queue delay before each re-submission.
* :class:`QueueDepthAutoscaler` / :class:`SLOAutoscaler` -- rolling-window
  controllers that add or drain replicas on queue depth or SLO attainment,
  reusing the same join/leave membership machinery failures require.

All three are frozen dataclasses so they participate directly in scenario
cache keys (:mod:`repro.sweep.scenario` canonicalizes nested frozen
dataclasses) and study JSON specs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "FaultConfig",
    "ReplicaFaultTrace",
    "RetryPolicy",
    "QueueDepthAutoscaler",
    "SLOAutoscaler",
    "AutoscalerConfig",
    "decode_autoscaler",
]


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Seeded replica crash/recovery process.

    Attributes:
        mtbf: Mean time between failures per replica (seconds of simulated
            up-time, exponential).  ``math.inf`` (the default) disables
            fault injection entirely.
        mttr: Mean time to repair (seconds, exponential).
        seed: Base seed; replica slot ``i`` draws from the independent
            stream ``SeedSequence((seed, i))``.
        max_failures_per_replica: Optional cap on crashes per replica slot
            (``None`` = unbounded).  Useful for single-shot fault tests.
    """

    mtbf: float = math.inf
    mttr: float = 30.0
    seed: int = 2024
    max_failures_per_replica: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.mtbf > 0:
            raise ConfigurationError("mtbf must be positive (use math.inf to disable faults)")
        if not self.mttr > 0 or math.isinf(self.mttr):
            raise ConfigurationError("mttr must be positive and finite")
        if self.max_failures_per_replica is not None and self.max_failures_per_replica < 0:
            raise ConfigurationError("max_failures_per_replica must be >= 0")

    @property
    def enabled(self) -> bool:
        """Whether this config injects any faults at all."""
        return math.isfinite(self.mtbf)

    def replica_trace(self, slot: int) -> "ReplicaFaultTrace":
        """The deterministic fault stream of one replica slot."""
        return ReplicaFaultTrace(self, slot)

    def timeline(self, slot: int, horizon: float) -> List[Tuple[float, float]]:
        """Materialize ``(down_at, up_at)`` intervals with ``down_at < horizon``.

        Inspection/testing helper; the simulator consumes the same draws
        lazily through :meth:`replica_trace`.
        """
        intervals: List[Tuple[float, float]] = []
        if not self.enabled:
            return intervals
        trace = self.replica_trace(slot)
        for down_at, up_at in trace.intervals():
            if down_at >= horizon:
                break
            intervals.append((down_at, up_at))
        return intervals


class ReplicaFaultTrace:
    """Lazy alternating up/down interval stream for one replica slot.

    Draws alternate strictly: up-duration, repair-duration, up-duration, ...
    so the timeline depends only on ``(config.seed, slot)`` -- never on how
    the fleet loop happens to interleave events.
    """

    def __init__(self, config: FaultConfig, slot: int):
        self.config = config
        self.slot = slot
        self.failures = 0
        self._rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence((config.seed, slot))))

    @property
    def exhausted(self) -> bool:
        """Whether the per-replica failure cap stops further crashes."""
        cap = self.config.max_failures_per_replica
        return cap is not None and self.failures >= cap

    def up_duration(self) -> float:
        """Draw the next up-time (exponential, mean ``mtbf``)."""
        return float(self._rng.exponential(self.config.mtbf))

    def repair_duration(self) -> float:
        """Draw the next repair time (exponential, mean ``mttr``)."""
        return float(self._rng.exponential(self.config.mttr))

    def intervals(self) -> Iterator[Tuple[float, float]]:
        """Yield ``(down_at, up_at)`` pairs from time zero onwards."""
        now = 0.0
        while not self.exhausted:
            down_at = now + self.up_duration()
            up_at = down_at + self.repair_duration()
            self.failures += 1
            yield down_at, up_at
            now = up_at


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """What a crash does to the requests it evicts.

    A request gets ``max_attempts`` submissions in total (the original one
    included).  Retry ``k`` (1-based) re-enters the router at
    ``crash_time + backoff * multiplier ** (k - 1)`` -- the backoff is
    priced as added queue delay against the request's *original* arrival,
    and the re-prefill itself flows through the normal step-cost path of
    whichever replica the router picks next.  Requests out of attempts are
    counted as failed.

    Attributes:
        max_attempts: Total submissions per request (>= 1; 1 = no retries).
        backoff: Base delay in seconds before the first retry.
        multiplier: Exponential backoff factor between successive retries.
    """

    max_attempts: int = 3
    backoff: float = 1.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff < 0:
            raise ConfigurationError("backoff must be >= 0")
        if self.multiplier < 1:
            raise ConfigurationError("multiplier must be >= 1")

    def delay(self, attempts_so_far: int) -> float:
        """Backoff before the next submission after ``attempts_so_far`` tries."""
        return self.backoff * self.multiplier ** (attempts_so_far - 1)


@dataclasses.dataclass(frozen=True)
class QueueDepthAutoscaler:
    """Add/drain replicas on instantaneous queue depth per routable replica.

    Every ``interval`` simulated seconds the controller looks at the mean
    number of queued (waiting + pending) requests per routable replica:
    above ``high`` it joins one replica, below ``low`` it drains one
    (gracefully -- the drained replica finishes its queue but receives no
    new work).  One action per tick, clamped to ``[min_replicas,
    max_replicas]``.
    """

    policy: str = dataclasses.field(default="queue_depth", init=False)
    min_replicas: int = 1
    max_replicas: int = 8
    interval: float = 30.0
    high: float = 4.0
    low: float = 0.5

    def __post_init__(self) -> None:
        _validate_scaler_bounds(self)
        if not self.high > self.low >= 0:
            raise ConfigurationError("need high > low >= 0")

    def decide(self, queue_depth: float, slo_attainment: Optional[float]) -> int:
        """Return +1 (join), -1 (drain), or 0 for this tick's window stats."""
        if queue_depth > self.high:
            return 1
        if queue_depth < self.low:
            return -1
        return 0


@dataclasses.dataclass(frozen=True)
class SLOAutoscaler:
    """Add/drain replicas on rolling-window SLO attainment.

    Every ``interval`` simulated seconds the controller computes the SLO
    attainment of the requests that completed inside the window (replica-
    local TTFT/TPOT -- what a real controller can observe): attainment
    below ``target`` joins a replica; attainment at or above ``relax``
    with an empty queue drains one.  A window with queued work but no
    completions scales up (the fleet is stalled, not idle).
    """

    policy: str = dataclasses.field(default="slo", init=False)
    min_replicas: int = 1
    max_replicas: int = 8
    interval: float = 30.0
    target: float = 0.9
    relax: float = 0.99

    def __post_init__(self) -> None:
        _validate_scaler_bounds(self)
        if not 0 < self.target <= self.relax <= 1:
            raise ConfigurationError("need 0 < target <= relax <= 1")

    def decide(self, queue_depth: float, slo_attainment: Optional[float]) -> int:
        """Return +1 (join), -1 (drain), or 0 for this tick's window stats."""
        if slo_attainment is None:
            return 1 if queue_depth > 0 else 0
        if slo_attainment < self.target:
            return 1
        if slo_attainment >= self.relax and queue_depth < 1:
            return -1
        return 0


#: Either autoscaler flavour -- the type FleetConfig accepts.
AutoscalerConfig = Union[QueueDepthAutoscaler, SLOAutoscaler]

_AUTOSCALER_CLASSES = {"queue_depth": QueueDepthAutoscaler, "slo": SLOAutoscaler}


def _validate_scaler_bounds(scaler: AutoscalerConfig) -> None:
    if not 1 <= scaler.min_replicas <= scaler.max_replicas:
        raise ConfigurationError("need 1 <= min_replicas <= max_replicas")
    if not scaler.interval > 0:
        raise ConfigurationError("autoscaler interval must be positive")


def decode_autoscaler(spec: dict) -> AutoscalerConfig:
    """Rebuild an autoscaler from its ``dataclasses.asdict`` form.

    The ``policy`` field (an ``init=False`` discriminator baked into each
    dataclass) selects the class; remaining keys are its constructor
    arguments.  Used by the study JSON spec decoder.
    """
    spec = dict(spec)
    policy = spec.pop("policy", "queue_depth")
    cls = _AUTOSCALER_CLASSES.get(policy)
    if cls is None:
        raise ConfigurationError(
            f"unknown autoscaler policy {policy!r}; choose from {sorted(_AUTOSCALER_CLASSES)}"
        )
    return cls(**spec)
