"""Discrete-event serving simulation priced by the step-cost layer.

The simulator advances a virtual clock in *engine steps*, exactly the way a
continuous-batching inference server does:

1. Requests whose arrival time has passed join the waiting queue.
2. If the scheduler can admit waiting requests (KV memory + batch slots),
   the engine runs one **prefill step** over the admitted prompts, which
   produces each request's first token (TTFT).
3. Otherwise the engine runs **decode steps** over every active request at
   its current KV length; each step produces one token per request, and
   finished requests retire and release their KV reservation.
4. With no runnable work, the clock jumps to the next arrival.

Decode steps are not priced one at a time.  Between two composition changes
of the running batch -- the next retirement, or the next arrival that could
actually be admitted -- every step is identical except for the KV lengths
advancing by one.  The fused loop computes that *epoch horizon* from the
scheduler (:meth:`~repro.serving.scheduler.ContinuousBatchingScheduler.min_remaining_tokens`
/ :attr:`~repro.serving.scheduler.ContinuousBatchingScheduler.admission_blocked`)
and prices the whole epoch in one
:meth:`~repro.core.stepcost.StepCostModel.decode_run` call; per-step
timestamps then come from sequential cumulative sums, which keeps every
clock value **bit-identical** to the step-by-step loop (available as
``fused=False`` and used as the reference in the equivalence tests).  The
simulation is fully deterministic: the trace is seeded, the pricing is
analytic, and ties are broken by queue order.

The loop itself lives in :class:`ReplicaEngine`, a *resumable* form of the
event loop: requests are submitted incrementally and the engine advances
until drained or until a caller-supplied horizon time.  A single-replica
simulation (:meth:`ServingSimulator.run`) submits the whole trace and drains
in one call; the fleet simulator (:mod:`repro.serving.fleet`) interleaves
many engines, advancing each to the next routed arrival.  Cutting an epoch
at an extra boundary never changes results -- per-step costs and sequential
timestamp sums are independent of how steps are grouped, and an admission
re-check on an unchanged queue is a no-op -- which is what keeps an N=1
fleet bit-identical to this simulator (pinned in
``tests/serving/test_fleet.py``).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.stepcost import StepCostModel
from ..errors import ConfigurationError
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from .report import RequestMetrics, ServingReport, ServingSLO, percentile
from .request import Request, TraceConfig
from .scheduler import ContinuousBatchingScheduler, RequestState, SchedulerConfig

#: Default upper bound on the steps one fused epoch prices at once.  Caps the
#: term matrices of :meth:`StepCostModel.decode_run` (bounding memory); epochs
#: longer than this simply continue in the next loop iteration.  Tunable per
#: simulator via ``max_epoch_steps``.
_MAX_EPOCH_STEPS = 1024

#: Default priced-horizon cap while a pending arrival could still be admitted
#: mid-epoch.  The arrival's step index is unknown until the steps are
#: priced, so pricing the full retirement horizon could discard almost all
#: of it; a short probe bounds the waste, and uninterrupted probes commit
#: and continue through the main loop like any capped epoch.  Tunable per
#: simulator via ``arrival_probe_steps``.
_ARRIVAL_PROBE_STEPS = 64


def _running_sum(start: float, values: np.ndarray) -> np.ndarray:
    """Sequential running sum ``[start, start + v0, start + v0 + v1, ...]``.

    ``np.cumsum`` accumulates strictly left to right (it is ``add.accumulate``,
    which never uses pairwise summation), so entry ``i + 1`` is bit-identical
    to ``i + 1`` scalar ``+=`` updates of an accumulator that began at
    ``start`` -- the property the fused loop relies on for exact timestamps.
    """
    buffer = np.empty(values.shape[0] + 1, dtype=np.float64)
    buffer[0] = start
    buffer[1:] = values
    return np.cumsum(buffer)


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Frozen bundle of everything one serving simulation depends on.

    Attributes:
        trace: The seeded workload description.
        scheduler: Batching / admission-control knobs.
        slo: Latency SLO used for the goodput metrics.
        include_lm_head: Whether steps price the logits GEMM.
    """

    trace: TraceConfig
    scheduler: SchedulerConfig = dataclasses.field(default_factory=SchedulerConfig)
    slo: ServingSLO = dataclasses.field(default_factory=ServingSLO)
    include_lm_head: bool = True


class ReplicaEngine:
    """Resumable continuous-batching event loop over one engine replica.

    The engine owns the scheduler, the virtual clock, and the step/time
    accumulators of one replica.  Requests are :meth:`submit`-ted in arrival
    order (possibly incrementally, between :meth:`advance` calls -- the fleet
    routes each arrival when it happens) and the loop advances through
    prefill steps and epoch-fused decode runs priced by the simulator's
    shared :class:`~repro.core.stepcost.StepCostModel`.

    ``advance(until=t)`` pauses once the clock reaches ``t`` (engine steps
    are atomic, so the clock may overshoot by the final step of an epoch) or
    once the replica has no runnable work; ``advance()`` drains everything
    submitted so far.  Extra epoch boundaries introduced by ``until`` cuts
    are invisible in the results: per-step pricing and the sequential
    timestamp sums do not depend on epoch grouping.
    """

    def __init__(self, simulator: "ServingSimulator"):
        self.simulator = simulator
        self.scheduler = ContinuousBatchingScheduler(
            model=simulator.model,
            config=simulator.scheduler_config,
            device_memory_bytes=simulator.system.accelerator.dram_capacity,
            tensor_parallel=simulator.tensor_parallel,
            precision=simulator.precision,
        )
        self.pending: Deque[Request] = collections.deque()
        self.submitted = 0
        self.now = 0.0
        self.busy_time = 0.0
        self.prefill_time = 0.0
        self.decode_time = 0.0
        self.prefill_steps = 0
        self.decode_steps = 0
        self.decode_batch_total = 0
        self.completed: List[RequestState] = []

    def submit(self, request: Request) -> None:
        """Hand one request to the replica (callers submit in arrival order)."""
        self.pending.append(request)
        self.submitted += 1

    @property
    def queued_requests(self) -> int:
        """Requests routed here but not yet admitted (pending + waiting)."""
        return len(self.pending) + len(self.scheduler.waiting)

    @property
    def drained(self) -> bool:
        """Whether the replica has no runnable or queued work left."""
        return not self.pending and not self.scheduler.has_active and not self.scheduler.has_waiting

    def fail(self) -> "Tuple[List[RequestState], List[Request]]":
        """Crash the replica: every in-flight and queued request is lost.

        The scheduler evacuates (KV cache gone, reservations released) and
        the pending queue empties; the fleet layer re-routes the returned
        ``(active_states, lost_requests)`` under its retry policy.  The
        clock and the time/step accumulators survive -- work the replica
        already priced stays priced (wasted prefill is exactly the point),
        and ``completed`` keeps earlier successes.  ``submitted`` also
        stays: this replica *did* receive those requests, so the
        per-replica report counts them even if they complete elsewhere
        after the retry.
        """
        active, lost = self.scheduler.evacuate()
        lost.extend(self.pending)
        self.pending.clear()
        return active, lost

    def advance(self, until: Optional[float] = None) -> None:
        """Run the event loop until drained, or until the clock reaches ``until``."""
        simulator = self.simulator
        scheduler = self.scheduler
        pending = self.pending
        step_cost = simulator.step_cost
        while until is None or self.now < until:
            while pending and pending[0].arrival_time <= self.now:
                scheduler.enqueue(pending.popleft())

            admitted = scheduler.admit(self.now)
            if admitted:
                cost = step_cost.prefill_step(
                    simulator.model,
                    [state.request.prompt_tokens for state in admitted],
                    tensor_parallel=simulator.tensor_parallel,
                    precision=simulator.precision,
                    include_lm_head=simulator.include_lm_head,
                )
                self.now += cost.total_time
                self.busy_time += cost.total_time
                self.prefill_time += cost.total_time
                self.prefill_steps += 1
                for state in admitted:
                    state.generated = 1
                    state.first_token_time = self.now
                # Only single-token requests can finish on their prefill.
                if any(state.request.output_tokens == 1 for state in admitted):
                    self.completed.extend(scheduler.retire_finished(self.now))
            elif scheduler.has_active:
                active = scheduler.active
                retire_in = scheduler.min_remaining_tokens()
                kv_lens = [state.decode_kv_len for state in active]
                if simulator.fused:
                    # Event-horizon epoch: price every step up to the next
                    # retirement in one vectorized call, then cut the epoch
                    # at the first arrival that could change scheduling (and,
                    # when resuming incrementally, at the caller's horizon).
                    interruptible = bool(pending) and not scheduler.admission_blocked
                    probing = interruptible or until is not None
                    horizon = min(
                        retire_in,
                        simulator.arrival_probe_steps if probing else simulator.max_epoch_steps,
                    )
                    epoch = step_cost.decode_run(
                        simulator.model,
                        kv_lens,
                        horizon,
                        tensor_parallel=simulator.tensor_parallel,
                        precision=simulator.precision,
                        include_lm_head=simulator.include_lm_head,
                    )
                    totals = epoch.total_times
                    end_times = _running_sum(self.now, totals)
                    steps = horizon
                    if interruptible:
                        # First step after which the pending arrival is due
                        # (arrival_time <= clock), exactly the stepwise
                        # loop's enqueue predicate.
                        cut = int(
                            np.searchsorted(end_times[1:], pending[0].arrival_time, side="left")
                        )
                        if cut < horizon:
                            steps = cut + 1
                    if until is not None:
                        # Hand control back at the first step boundary at or
                        # past the caller's horizon.
                        cut = int(np.searchsorted(end_times[1:], until, side="left"))
                        if cut < horizon:
                            steps = min(steps, cut + 1)
                    self.now = float(end_times[steps])
                    # busy_time and decode_time advance by the same step
                    # totals but from different starting values; one stacked
                    # cumsum keeps both accumulations sequential (bit-exact).
                    accumulators = np.empty((2, steps + 1), dtype=np.float64)
                    accumulators[0, 0] = self.busy_time
                    accumulators[1, 0] = self.decode_time
                    accumulators[:, 1:] = totals[:steps]
                    finals = accumulators.cumsum(axis=1)[:, -1]
                    self.busy_time = float(finals[0])
                    self.decode_time = float(finals[1])
                    self.decode_steps += steps
                    self.decode_batch_total += len(kv_lens) * steps
                    for state in active:
                        state.generated += steps
                    if steps == retire_in:
                        self.completed.extend(scheduler.retire_finished(self.now))
                else:
                    cost = step_cost.decode_step(
                        simulator.model,
                        kv_lens,
                        tensor_parallel=simulator.tensor_parallel,
                        precision=simulator.precision,
                        include_lm_head=simulator.include_lm_head,
                    )
                    self.now += cost.total_time
                    self.busy_time += cost.total_time
                    self.decode_time += cost.total_time
                    self.decode_steps += 1
                    self.decode_batch_total += len(kv_lens)
                    for state in active:
                        state.generated += 1
                    if retire_in == 1:
                        self.completed.extend(scheduler.retire_finished(self.now))
            elif pending:
                self.now = max(self.now, pending[0].arrival_time)
            else:
                return  # no active work, nothing waiting that fits, queue drained

            # Waiting requests that cannot ever be admitted were dropped by
            # admit(); if only such requests remain and nothing is active,
            # the next loop iteration exits through the branches above.


class ServingSimulator:
    """Simulates request-level serving of one model on one system.

    ``fused=True`` (the default) prices decode steps in epoch-fused batches
    through :meth:`StepCostModel.decode_run`; ``fused=False`` keeps the
    one-``decode_step``-call-per-token reference loop.  Both produce
    bit-identical reports.  ``max_epoch_steps`` / ``arrival_probe_steps``
    bound how many decode steps one fused epoch prices (memory vs. discarded
    probing trade-off); any values produce bit-identical results, they only
    change how the work is grouped.
    """

    def __init__(
        self,
        system: SystemSpec,
        model: TransformerConfig,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        step_cost: Optional[StepCostModel] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        slo: Optional[ServingSLO] = None,
        include_lm_head: bool = True,
        fused: bool = True,
        max_epoch_steps: int = _MAX_EPOCH_STEPS,
        arrival_probe_steps: int = _ARRIVAL_PROBE_STEPS,
    ):
        if tensor_parallel < 1:
            raise ConfigurationError("tensor_parallel must be >= 1")
        if max_epoch_steps < 1 or arrival_probe_steps < 1:
            raise ConfigurationError("max_epoch_steps and arrival_probe_steps must be >= 1")
        self.system = system
        self.model = model
        self.tensor_parallel = tensor_parallel
        self.precision = precision
        self.step_cost = step_cost if step_cost is not None else StepCostModel(system=system)
        self.scheduler_config = scheduler_config or SchedulerConfig()
        self.slo = slo or ServingSLO()
        self.include_lm_head = include_lm_head
        self.fused = fused
        self.max_epoch_steps = max_epoch_steps
        self.arrival_probe_steps = arrival_probe_steps

    def engine(self) -> ReplicaEngine:
        """A fresh resumable event loop with this simulator's configuration."""
        return ReplicaEngine(self)

    def run(self, workload: Union[TraceConfig, Sequence[Request]]) -> ServingReport:
        """Simulate the workload to completion and aggregate the report.

        ``workload`` is either a :class:`TraceConfig` (generated here) or an
        explicit request sequence.  Requests that can never fit the memory
        budget are rejected and excluded from latency percentiles but counted
        in :attr:`ServingReport.rejected_requests`.
        """
        requests = list(workload.generate() if isinstance(workload, TraceConfig) else workload)
        if not requests:
            raise ConfigurationError("serving simulation needs at least one request")
        requests.sort(key=lambda request: (request.arrival_time, request.request_id))

        engine = self.engine()
        for request in requests:
            engine.submit(request)
        engine.advance()
        return self.report(engine)

    # -- aggregation -------------------------------------------------------------------

    def report(self, engine: ReplicaEngine) -> ServingReport:
        """Aggregate one (drained) engine's state into a :class:`ServingReport`.

        An engine that received zero requests produces a valid all-zero
        report (a fleet replica no arrival was routed to), with the latency
        percentiles pinned to 0.0 explicitly -- :func:`percentile` itself
        raises on empty samples.
        """
        completed = sorted(engine.completed, key=lambda state: state.request.request_id)
        simulated_time = engine.now
        if completed:
            # One pass over the completed states into NumPy columns; the
            # derived metric arrays feed both the per-request records and the
            # percentile/goodput reductions below.
            arrivals = np.array([state.request.arrival_time for state in completed])
            admitted = np.array([state.admitted_time for state in completed])
            first_token = np.array([state.first_token_time for state in completed])
            finish = np.array([state.finish_time for state in completed])
            output_tokens_column = np.array(
                [state.request.output_tokens for state in completed], dtype=np.int64
            )
            queues = admitted - arrivals
            ttfts = first_token - arrivals
            decode_tokens = output_tokens_column - 1
            tpots = np.where(
                decode_tokens > 0,
                (finish - first_token) / np.maximum(decode_tokens, 1),
                0.0,
            )
            e2e_latencies = finish - arrivals
            per_request = [
                RequestMetrics(
                    request_id=state.request.request_id,
                    arrival_time=state.request.arrival_time,
                    queue_time=float(queues[index]),
                    ttft=float(ttfts[index]),
                    tpot=float(tpots[index]),
                    e2e_latency=float(e2e_latencies[index]),
                    prompt_tokens=state.request.prompt_tokens,
                    output_tokens=state.request.output_tokens,
                )
                for index, state in enumerate(completed)
            ]
            output_tokens = int(output_tokens_column.sum())
            good = int(np.count_nonzero(self.slo.met_mask(ttfts, tpots)))
            percentiles = {
                "ttft_p50": percentile(ttfts, 50),
                "ttft_p99": percentile(ttfts, 99),
                "tpot_p50": percentile(tpots, 50),
                "tpot_p99": percentile(tpots, 99),
                "queue_p50": percentile(queues, 50),
                "queue_p99": percentile(queues, 99),
            }
        else:
            per_request = []
            output_tokens = 0
            good = 0
            percentiles = {
                "ttft_p50": 0.0,
                "ttft_p99": 0.0,
                "tpot_p50": 0.0,
                "tpot_p99": 0.0,
                "queue_p50": 0.0,
                "queue_p99": 0.0,
            }

        return ServingReport(
            model_name=self.model.name,
            system_name=self.system.name,
            tensor_parallel=self.tensor_parallel,
            num_requests=engine.submitted,
            completed_requests=len(per_request),
            rejected_requests=len(engine.scheduler.rejected),
            simulated_time=simulated_time,
            busy_time=engine.busy_time,
            prefill_time=engine.prefill_time,
            decode_time=engine.decode_time,
            prefill_steps=engine.prefill_steps,
            decode_steps=engine.decode_steps,
            request_throughput=len(per_request) / simulated_time if simulated_time > 0 else 0.0,
            output_token_throughput=output_tokens / simulated_time if simulated_time > 0 else 0.0,
            goodput=good / simulated_time if simulated_time > 0 else 0.0,
            slo_attainment=good / len(per_request) if per_request else 0.0,
            mean_decode_batch=(
                engine.decode_batch_total / engine.decode_steps if engine.decode_steps else 0.0
            ),
            peak_kv_bytes=engine.scheduler.peak_kv_reserved_bytes,
            per_request=per_request,
            **percentiles,
        )
