"""Discrete-event serving simulation priced by the step-cost layer.

The simulator advances a virtual clock in *engine steps*, exactly the way a
continuous-batching inference server does:

1. Requests whose arrival time has passed join the waiting queue.
2. If the scheduler can admit waiting requests (KV memory + batch slots),
   the engine runs one **prefill step** over the admitted prompts, which
   produces each request's first token (TTFT).
3. Otherwise the engine runs one **decode step** over every active request
   at its current KV length; each produces one token, and finished requests
   retire and release their KV reservation.
4. With no runnable work, the clock jumps to the next arrival.

Every step is priced analytically by
:class:`~repro.core.stepcost.StepCostModel` -- one vectorized roofline call
per step over the mixed batch of per-request shapes -- so simulating
thousands of requests takes seconds, not GPU-hours.  The simulation is fully
deterministic: the trace is seeded, the pricing is analytic, and ties are
broken by queue order.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

from ..core.stepcost import StepCostModel
from ..errors import ConfigurationError
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from .report import RequestMetrics, ServingReport, ServingSLO, percentile
from .request import Request, TraceConfig
from .scheduler import ContinuousBatchingScheduler, RequestState, SchedulerConfig


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Frozen bundle of everything one serving simulation depends on.

    Attributes:
        trace: The seeded workload description.
        scheduler: Batching / admission-control knobs.
        slo: Latency SLO used for the goodput metrics.
        include_lm_head: Whether steps price the logits GEMM.
    """

    trace: TraceConfig
    scheduler: SchedulerConfig = dataclasses.field(default_factory=SchedulerConfig)
    slo: ServingSLO = dataclasses.field(default_factory=ServingSLO)
    include_lm_head: bool = True


class ServingSimulator:
    """Simulates request-level serving of one model on one system."""

    def __init__(
        self,
        system: SystemSpec,
        model: TransformerConfig,
        tensor_parallel: int = 1,
        precision: Precision = Precision.FP16,
        step_cost: Optional[StepCostModel] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        slo: Optional[ServingSLO] = None,
        include_lm_head: bool = True,
    ):
        if tensor_parallel < 1:
            raise ConfigurationError("tensor_parallel must be >= 1")
        self.system = system
        self.model = model
        self.tensor_parallel = tensor_parallel
        self.precision = precision
        self.step_cost = step_cost if step_cost is not None else StepCostModel(system=system)
        self.scheduler_config = scheduler_config or SchedulerConfig()
        self.slo = slo or ServingSLO()
        self.include_lm_head = include_lm_head

    def run(self, workload: Union[TraceConfig, Sequence[Request]]) -> ServingReport:
        """Simulate the workload to completion and aggregate the report.

        ``workload`` is either a :class:`TraceConfig` (generated here) or an
        explicit request sequence.  Requests that can never fit the memory
        budget are rejected and excluded from latency percentiles but counted
        in :attr:`ServingReport.rejected_requests`.
        """
        requests = list(workload.generate() if isinstance(workload, TraceConfig) else workload)
        if not requests:
            raise ConfigurationError("serving simulation needs at least one request")
        requests.sort(key=lambda request: (request.arrival_time, request.request_id))

        scheduler = ContinuousBatchingScheduler(
            model=self.model,
            config=self.scheduler_config,
            device_memory_bytes=self.system.accelerator.dram_capacity,
            tensor_parallel=self.tensor_parallel,
            precision=self.precision,
        )

        now = 0.0
        next_arrival = 0
        busy_time = 0.0
        prefill_time = 0.0
        decode_time = 0.0
        prefill_steps = 0
        decode_steps = 0
        decode_batch_total = 0
        completed: List[RequestState] = []

        while True:
            while next_arrival < len(requests) and requests[next_arrival].arrival_time <= now:
                scheduler.enqueue(requests[next_arrival])
                next_arrival += 1

            admitted = scheduler.admit(now)
            if admitted:
                cost = self.step_cost.prefill_step(
                    self.model,
                    [state.request.prompt_tokens for state in admitted],
                    tensor_parallel=self.tensor_parallel,
                    precision=self.precision,
                    include_lm_head=self.include_lm_head,
                )
                now += cost.total_time
                busy_time += cost.total_time
                prefill_time += cost.total_time
                prefill_steps += 1
                for state in admitted:
                    state.generated = 1
                    state.first_token_time = now
                completed.extend(scheduler.retire_finished(now))
            elif scheduler.has_active:
                kv_lens = [state.decode_kv_len for state in scheduler.active]
                cost = self.step_cost.decode_step(
                    self.model,
                    kv_lens,
                    tensor_parallel=self.tensor_parallel,
                    precision=self.precision,
                    include_lm_head=self.include_lm_head,
                )
                now += cost.total_time
                busy_time += cost.total_time
                decode_time += cost.total_time
                decode_steps += 1
                decode_batch_total += len(kv_lens)
                for state in list(scheduler.active):
                    state.generated += 1
                completed.extend(scheduler.retire_finished(now))
            elif next_arrival < len(requests):
                now = max(now, requests[next_arrival].arrival_time)
            else:
                break  # no active work, nothing waiting that fits, trace drained

            # Waiting requests that cannot ever be admitted were dropped by
            # admit(); if only such requests remain and nothing is active,
            # the next loop iteration exits through the branches above.

        return self._aggregate(
            requests=requests,
            completed=completed,
            rejected=scheduler.rejected,
            simulated_time=now,
            busy_time=busy_time,
            prefill_time=prefill_time,
            decode_time=decode_time,
            prefill_steps=prefill_steps,
            decode_steps=decode_steps,
            decode_batch_total=decode_batch_total,
            peak_kv_bytes=scheduler.peak_kv_reserved_bytes,
        )

    # -- aggregation -------------------------------------------------------------------

    def _aggregate(
        self,
        requests,
        completed,
        rejected,
        simulated_time,
        busy_time,
        prefill_time,
        decode_time,
        prefill_steps,
        decode_steps,
        decode_batch_total,
        peak_kv_bytes,
    ) -> ServingReport:
        per_request: List[RequestMetrics] = []
        for state in sorted(completed, key=lambda state: state.request.request_id):
            request = state.request
            ttft = state.first_token_time - request.arrival_time
            decode_tokens = request.output_tokens - 1
            tpot = (
                (state.finish_time - state.first_token_time) / decode_tokens if decode_tokens > 0 else 0.0
            )
            per_request.append(
                RequestMetrics(
                    request_id=request.request_id,
                    arrival_time=request.arrival_time,
                    queue_time=state.admitted_time - request.arrival_time,
                    ttft=ttft,
                    tpot=tpot,
                    e2e_latency=state.finish_time - request.arrival_time,
                    prompt_tokens=request.prompt_tokens,
                    output_tokens=request.output_tokens,
                )
            )

        ttfts = [metrics.ttft for metrics in per_request]
        tpots = [metrics.tpot for metrics in per_request]
        queues = [metrics.queue_time for metrics in per_request]
        output_tokens = sum(metrics.output_tokens for metrics in per_request)
        good = sum(1 for metrics in per_request if self.slo.met_by(metrics))

        return ServingReport(
            model_name=self.model.name,
            system_name=self.system.name,
            tensor_parallel=self.tensor_parallel,
            num_requests=len(requests),
            completed_requests=len(per_request),
            rejected_requests=len(rejected),
            simulated_time=simulated_time,
            busy_time=busy_time,
            prefill_time=prefill_time,
            decode_time=decode_time,
            prefill_steps=prefill_steps,
            decode_steps=decode_steps,
            ttft_p50=percentile(ttfts, 50),
            ttft_p99=percentile(ttfts, 99),
            tpot_p50=percentile(tpots, 50),
            tpot_p99=percentile(tpots, 99),
            queue_p50=percentile(queues, 50),
            queue_p99=percentile(queues, 99),
            request_throughput=len(per_request) / simulated_time if simulated_time > 0 else 0.0,
            output_token_throughput=output_tokens / simulated_time if simulated_time > 0 else 0.0,
            goodput=good / simulated_time if simulated_time > 0 else 0.0,
            slo_attainment=good / len(per_request) if per_request else 0.0,
            mean_decode_batch=decode_batch_total / decode_steps if decode_steps else 0.0,
            peak_kv_bytes=peak_kv_bytes,
            per_request=per_request,
        )
