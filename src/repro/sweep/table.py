"""Columnar sweep results: struct-of-arrays tables backed by NumPy.

Large sweeps used to materialize one Python dict (or dataclass) per grid
point, which dominates the runtime of result post-processing once grids reach
thousands of rows.  :class:`SweepTable` stores one NumPy array per column
instead; derived metrics (relative errors, speedups, fractions) become single
vectorized expressions, and the table still *reads* like the old row lists:

* ``len(table)`` is the row count, ``table["step_time"]`` is the NumPy column,
* iterating yields lightweight :class:`SweepRow` views that support both
  mapping access (``row["step_time"]``) and attribute access
  (``row.step_time``), so existing row-oriented code keeps working without
  per-row dict materialization,
* ``table.to_json()`` serializes the columns, and
  :meth:`SweepTable.from_json` round-trips them.

Array-shape contract: every column is a one-dimensional array of the common
length ``len(table)``; numeric columns keep their NumPy dtype, everything
else is stored as an object column of plain Python values.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError


def _object_column(values: Sequence[object]) -> np.ndarray:
    """Build an object column holding the given Python values verbatim."""
    array = np.empty(len(values), dtype=object)
    array[:] = [value.item() if isinstance(value, np.generic) else value for value in values]
    return array


def _as_column(values: object) -> np.ndarray:
    """Normalize a column to a 1-D NumPy array.

    Numeric/boolean data keeps its native dtype; strings, ``None`` and mixed
    payloads become object columns of plain Python values.
    """
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise ConfigurationError(f"SweepTable columns must be one-dimensional, got shape {values.shape}")
        if values.dtype.kind in "USV" or values.dtype == object:
            return _object_column(values.tolist())
        return values
    values = list(values)
    try:
        array = np.asarray(values)
    except (ValueError, TypeError):
        return _object_column(values)
    if array.ndim != 1 or array.dtype.kind in "USV" or array.dtype == object:
        return _object_column(values)
    return array


class SweepRow(Mapping):
    """Read-only view of one table row; mapping *and* attribute access.

    NumPy scalars are converted to plain Python scalars on access, so rows
    behave exactly like the dict rows they replace (hashing, formatting,
    ``isinstance(value, float)`` checks).
    """

    __slots__ = ("_table", "_index")

    def __init__(self, table: "SweepTable", index: int):
        self._table = table
        self._index = index

    def __getitem__(self, key: str) -> object:
        value = self._table.columns[key][self._index]
        return value.item() if isinstance(value, np.generic) else value

    def __getattr__(self, name: str) -> object:
        try:
            return self[name]
        except KeyError:
            raise AttributeError(f"row has no column {name!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._table.columns)

    def __len__(self) -> int:
        return len(self._table.columns)

    def __repr__(self) -> str:
        return f"SweepRow({self.to_dict()!r})"

    def to_dict(self) -> Dict[str, object]:
        """Materialize the row as a plain dict (explicit, not implicit)."""
        return {name: self[name] for name in self._table.columns}


class SweepTable:
    """Struct-of-arrays sweep results: a dict of equal-length NumPy columns.

    Attributes:
        columns: Mapping from column name to 1-D array; all arrays share the
            table's row count.
    """

    def __init__(self, columns: "Mapping[str, object]"):
        self.columns: Dict[str, np.ndarray] = {name: _as_column(values) for name, values in columns.items()}
        lengths = {array.shape[0] for array in self.columns.values()}
        if len(lengths) > 1:
            raise ConfigurationError(f"SweepTable columns differ in length: { {n: a.shape[0] for n, a in self.columns.items()} }")
        self._length = lengths.pop() if lengths else 0

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, object]]) -> "SweepTable":
        """Columnize an iterable of per-row mappings (the transposing ingest)."""
        records = list(records)
        if not records:
            return cls({})
        names = list(records[0].keys())
        for record in records:
            if list(record.keys()) != names:
                raise ConfigurationError("all records must share the same keys, in the same order")
        return cls({name: [record[name] for record in records] for name in names})

    # -- container protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[SweepRow]:
        for index in range(self._length):
            yield SweepRow(self, index)

    def __getitem__(self, key: "str | int | slice"):
        """``table[name]`` -> column array; ``table[i]`` -> row view; slices -> row list."""
        if isinstance(key, str):
            return self.columns[key]
        if isinstance(key, slice):
            return [SweepRow(self, index) for index in range(*key.indices(self._length))]
        index = int(key)
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"row index {key} out of range for {self._length} rows")
        return SweepRow(self, index)

    def __setitem__(self, name: str, values: object) -> None:
        """Add or replace a column (used for derived, vectorized metrics)."""
        column = _as_column(values)
        if self.columns and column.shape[0] != self._length:
            raise ConfigurationError(f"column {name!r} has {column.shape[0]} rows, table has {self._length}")
        self.columns[name] = column
        self._length = column.shape[0]

    def __repr__(self) -> str:
        return f"SweepTable({self._length} rows x {len(self.columns)} columns: {list(self.columns)})"

    # -- views ------------------------------------------------------------------------

    def keys(self) -> List[str]:
        """Column names, in insertion order."""
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        """The NumPy array backing one column."""
        return self.columns[name]

    def rows(self) -> List[Dict[str, object]]:
        """Materialize every row as a plain dict (compat/export helper)."""
        return [row.to_dict() for row in self]

    def where(self, mask: "np.ndarray | Sequence[bool]") -> "SweepTable":
        """Select the rows where ``mask`` is true, as a new table."""
        mask = np.asarray(mask, dtype=bool)
        return SweepTable({name: array[mask] for name, array in self.columns.items()})

    def select(self, columns: Sequence[str]) -> "SweepTable":
        """Project onto the given columns, in the given order, as a new table.

        Raises :class:`~repro.errors.ConfigurationError` for unknown names so
        a typo fails loudly instead of silently dropping a column.
        """
        missing = [name for name in columns if name not in self.columns]
        if missing:
            raise ConfigurationError(f"unknown columns {missing}; table has {list(self.columns)}")
        return SweepTable({name: self.columns[name] for name in columns})

    # -- serialization ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, List[object]]:
        """JSON-safe dict view: ``{"columns": {name: [values...]}}``."""
        return {"columns": {name: array.tolist() for name, array in self.columns.items()}}

    def to_json(self, **kwargs: object) -> str:
        """Serialize the table's columns to a JSON string."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepTable":
        """Rebuild a table from :meth:`to_dict` output."""
        return cls(data["columns"])

    @classmethod
    def from_json(cls, text: str) -> "SweepTable":
        """Rebuild a table from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def to_csv(self, path: "str | None" = None, float_format: Optional[str] = None) -> str:
        """Render the table as RFC-4180 CSV (and optionally write it to ``path``).

        One header row of column names, then one line per table row.  Values
        containing commas, quotes, or newlines are quoted; ``None`` renders as
        an empty field.  ``float_format`` (e.g. ``".6g"``) formats floats;
        by default floats use ``repr`` so the CSV round-trips exactly.
        """
        import csv
        import io

        def _format(value: object) -> object:
            if value is None:
                return ""
            if float_format is not None and isinstance(value, float):
                return format(value, float_format)
            return value

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(list(self.columns))
        for row in self:
            writer.writerow([_format(row[name]) for name in self.columns])
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text
