"""Cross-scenario batched pricing for the sweep runner.

A cold sweep spends most of its time inside per-GEMM roofline evaluations:
every scenario builds its workload graph and prices each kernel through the
scalar Python path, even though the whole generation of scenarios usually
shares one system (and therefore one :class:`~repro.perf.gemm.GemmTimeModel`).
This module adds a *planning pass* in front of the runner's serial evaluation
loop:

1. :func:`plan_scenario` builds a scenario's workload graph without pricing
   it, returning the GEMM queries the evaluation will make plus a closure
   that assembles the final result.
2. :func:`price_plans` collects those queries across **all** plans sharing a
   gemm model and prices them in one
   :meth:`~repro.perf.batched.BatchedGemmTimeModel.evaluate_batch` call.
3. Each plan then finishes into exactly the object
   :func:`~repro.sweep.scenario.evaluate_scenario` would have produced.

The results are bit-for-bit identical to per-scenario evaluation: the batched
backend mirrors the scalar model's floating-point operation order (the
contract pinned by ``tests/perf/test_batched.py``), and every plan assembles
its result either from the very :class:`~repro.perf.roofline.RooflinePoint`
objects the batch materializes (columnar mode) or by re-running the normal
evaluation path against a memo warmed with those points (warm mode).
Equivalence across scenario kinds is pinned by
``tests/sweep/test_batchplan.py``.

Training scenarios batch both query families: the planner collects every
forward/backward/lm-head GEMM *and* every TP/PP/DP collective of a
generation of :meth:`TrainingPerformanceModel.predict` graphs (via
:meth:`~repro.core.training.TrainingPerformanceModel.predict_queries`),
prices the GEMMs in one :meth:`evaluate_batch` per gemm model and the
collectives in one :meth:`CollectiveModel.evaluate_batch` per collective
model, seeds the shared memos, and re-runs the normal prediction warm.

Scenario kinds without a batchable pricing phase (serving, the memory
breakdowns, the GEMV validation) are left to the normal
:func:`evaluate_scenario` path; :func:`evaluate_pending_batched` interleaves
both so the runner sees one outcome per pending scenario, in input order.
:func:`evaluate_shard` wraps it as a process-pool entry point, so a pending
generation can also be sharded across cores (plan + price per shard, merge
in the parent).
"""

from __future__ import annotations

import dataclasses
import time as _time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..caching import Memo
from ..comm.fabric import CollectiveBatch, CollectiveModel
from ..core.bottleneck import attention_layer_bound_breakdown, attention_layer_gemms, layer_gemms
from ..core.reports import GemmBottleneckEntry
from ..errors import ReproError
from ..hardware.datatypes import Precision
from ..models.transformer import TransformerConfig
from ..perf.batched import BOUND_CACHE, BOUND_COMPUTE, BOUND_MEMORY, BatchedRooflineResult, GemmBatch
from ..perf.gemm import GemmTimeModel
from ..perf.roofline import BoundType
from ..workload.operators import GEMM, CommunicationOp
from .scenario import Scenario, ScenarioKind, apply_test_fault_hooks, engine_for, evaluate_scenario

#: Bound-code -> enum mapping of the batched backend's result rows.
_BOUND_TYPES = {BOUND_COMPUTE: BoundType.COMPUTE, BOUND_MEMORY: BoundType.MEMORY, BOUND_CACHE: BoundType.CACHE}

#: Default decode KV length mirrored from ``evaluate_scenario``'s dispatch.
_DEFAULT_DECODE_KV_LEN = 200


@dataclasses.dataclass
class BatchOutcome:
    """One pending scenario's evaluation outcome from the planning pass.

    Attributes:
        key: The scenario's cache key (the runner's pending-map key).
        value: The evaluation result, or ``None`` on error.
        error: The captured library error, if any.
        batched: Whether the scenario was priced through the batch planner
            (``False`` for kinds that fell back to ``evaluate_scenario``).
    """

    key: str
    value: object = None
    error: Optional[ReproError] = None
    batched: bool = False


@dataclasses.dataclass
class BatchTimings:
    """Wall-clock seconds spent in each cold-path stage of one planning pass.

    Attributes:
        plan_seconds: Building the workload graphs (:func:`plan_scenario`).
        price_seconds: The vectorized pricing calls (:func:`price_plans`).
        scatter_seconds: Result assembly, plus the ``evaluate_scenario``
            fallback of unbatchable kinds.
    """

    plan_seconds: float = 0.0
    price_seconds: float = 0.0
    scatter_seconds: float = 0.0

    def add(self, other: "BatchTimings") -> None:
        """Accumulate another pass's timings (e.g. across process shards)."""
        self.plan_seconds += other.plan_seconds
        self.price_seconds += other.price_seconds
        self.scatter_seconds += other.scatter_seconds


@dataclasses.dataclass
class ScenarioPlan:
    """A planned (but unpriced) scenario evaluation.

    Attributes:
        scenario: The scenario being planned.
        gemm_model: The (shared, memoizing) scalar GEMM model the scenario's
            evaluation prices kernels through; plans are grouped by this
            object so one batch warms one memo.
        gemms: Every GEMM query the evaluation will make.
        columnar: Assembly mode.  Columnar plans consume the batch result's
            rows directly (``assemble(result, rows)``); warm plans re-run the
            normal evaluation path after the shared memo has been seeded
            (``assemble()``).
        assemble: The result-assembly closure (see ``columnar``).
        rows: Row indices of :attr:`gemms` inside the shared batch
            (columnar plans only; filled by :func:`price_plans`).
        result: The shared batch result (columnar plans only).
        collective_model: The (shared, memoizing) collective model the
            scenario's evaluation prices communication through (training
            plans only); collective queries are grouped by this object.
        comm_ops: Every non-trivial collective query the evaluation will
            make (training plans only).
    """

    scenario: Scenario
    gemm_model: GemmTimeModel
    gemms: List[GEMM]
    columnar: bool
    assemble: Callable[..., object]
    rows: Optional[List[int]] = None
    result: Optional[BatchedRooflineResult] = None
    collective_model: Optional[CollectiveModel] = None
    comm_ops: Optional[List[CommunicationOp]] = None

    def finish(self) -> object:
        """Assemble the final result object (after :func:`price_plans`)."""
        if self.columnar:
            return self.assemble(self.result, self.rows)
        return self.assemble()


# ---------------------------------------------------------------------------
# Decode GEMM templates: the per-KV-length decode layer without a rebuild.
# ---------------------------------------------------------------------------

#: Template miss marker (a ``Memo`` cannot store ``None`` distinguishably).
_NO_TEMPLATE = object()
#: ``(model, batch, tp, precision) -> (base_gemms, varying) | _NO_TEMPLATE``.
_DECODE_TEMPLATE_MEMO = Memo(max_size=1024)
#: GEMM fields allowed to vary with the KV length.
_KV_FIELDS = ("m", "n", "k", "batch")


def _build_decode_template(
    model: TransformerConfig, batch_size: int, tensor_parallel: int, precision: Precision
):
    """Derive how one decode layer's GEMM shapes depend on the KV length.

    Builds the layer at two probe KV lengths (2 and 3) and diffs the GEMM
    lists: a valid template has every differing dimension equal to the KV
    length itself (the attention score/context kernels), everything else
    static.  The template is then validated against a genuinely rebuilt
    layer at a third KV length, so any model whose shapes depend on the KV
    length non-identically (rounding, grouping) safely falls back to
    per-KV rebuilds instead of producing wrong shapes.
    """
    base = layer_gemms(model, batch_size, 1, 2, tensor_parallel, precision, True)
    probe = layer_gemms(model, batch_size, 1, 3, tensor_parallel, precision, True)
    if len(base) != len(probe):
        return _NO_TEMPLATE
    varying: List[Tuple[int, str]] = []
    for index, (low, high) in enumerate(zip(base, probe)):
        diffs = [
            field.name
            for field in dataclasses.fields(GEMM)
            if getattr(low, field.name) != getattr(high, field.name)
        ]
        if not diffs:
            continue
        if any(name not in _KV_FIELDS for name in diffs):
            return _NO_TEMPLATE
        for name in diffs:
            if getattr(low, name) != 2 or getattr(high, name) != 3:
                return _NO_TEMPLATE
            varying.append((index, name))
    template = (tuple(base), tuple(varying))
    check_kv = 5
    if _instantiate_decode_template(template, check_kv) != layer_gemms(
        model, batch_size, 1, check_kv, tensor_parallel, precision, True
    ):
        return _NO_TEMPLATE
    return template


def _instantiate_decode_template(template, kv_len: int) -> List[GEMM]:
    base, varying = template
    gemms = list(base)
    updates: Dict[int, Dict[str, int]] = {}
    for index, name in varying:
        updates.setdefault(index, {})[name] = kv_len
    for index, fields in updates.items():
        gemms[index] = dataclasses.replace(gemms[index], **fields)
    return gemms


def decode_layer_gemms(
    model: TransformerConfig,
    batch_size: int,
    kv_len: int,
    tensor_parallel: int,
    precision: Precision,
) -> List[GEMM]:
    """The decode-step GEMMs at ``kv_len``, via the cached shape template.

    Equal (``==``) to ``layer_gemms(model, batch_size, 1, kv_len, ...,
    use_kv_cache=True)`` -- a KV sweep rebuilds the layer graph once instead
    of once per KV length.  Falls back to the rebuild when the template
    cannot be validated (see :func:`_build_decode_template`) or the KV
    length is out of the template's range.
    """
    if kv_len >= 1:
        key = (model, batch_size, tensor_parallel, precision)
        template = _DECODE_TEMPLATE_MEMO.get(key)
        if template is None:
            template = _build_decode_template(model, batch_size, tensor_parallel, precision)
            _DECODE_TEMPLATE_MEMO.put(key, template)
        if template is not _NO_TEMPLATE:
            return _instantiate_decode_template(template, kv_len)
    return layer_gemms(model, batch_size, 1, kv_len, tensor_parallel, precision, True)


def clear_plan_caches() -> None:
    """Drop the planner's shape-template cache (cold-benchmark support)."""
    _DECODE_TEMPLATE_MEMO.clear()


# ---------------------------------------------------------------------------
# Planning: scenario -> ScenarioPlan.
# ---------------------------------------------------------------------------


def plan_scenario(scenario: Scenario) -> Optional[ScenarioPlan]:
    """Build the plan of one scenario, or ``None`` for unbatchable kinds.

    Raises the same :class:`~repro.errors.ReproError` subclasses the direct
    evaluation would raise at graph-construction time (e.g. the inference
    memory admission check), so callers can capture plan-time errors exactly
    like evaluation errors.
    """
    kind = scenario.kind
    if kind is ScenarioKind.PREFILL_BOTTLENECKS:
        engine = engine_for(scenario.system)
        gemms = layer_gemms(
            scenario.model,
            batch_size=scenario.batch_size,
            seq_len=scenario.prompt_tokens,
            kv_len=scenario.prompt_tokens,
            tensor_parallel=scenario.tensor_parallel,
            precision=scenario.precision,
            use_kv_cache=False,
        )
        return _columnar_plan(scenario, engine.kernel_model.gemm_model, gemms)
    if kind is ScenarioKind.DECODE_BOTTLENECKS:
        engine = engine_for(scenario.system)
        gemms = decode_layer_gemms(
            scenario.model,
            batch_size=scenario.batch_size,
            kv_len=scenario.kv_len if scenario.kv_len is not None else _DEFAULT_DECODE_KV_LEN,
            tensor_parallel=scenario.tensor_parallel,
            precision=scenario.precision,
        )
        return _columnar_plan(scenario, engine.kernel_model.gemm_model, gemms)
    if kind is ScenarioKind.ATTENTION_BOUND:
        engine = engine_for(scenario.system)
        gemms = attention_layer_gemms(
            scenario.model,
            micro_batch=scenario.batch_size,
            seq_len=scenario.seq_len,
            tensor_parallel=scenario.tensor_parallel,
            precision=scenario.precision,
        )

        def assemble_attention(scenario: Scenario = scenario, engine=engine) -> object:
            return attention_layer_bound_breakdown(
                scenario.model,
                accelerator=scenario.system.accelerator,
                micro_batch=scenario.batch_size,
                seq_len=scenario.seq_len,
                tensor_parallel=scenario.tensor_parallel,
                precision=scenario.precision,
                kernel_model=engine.kernel_model,
            )

        return ScenarioPlan(
            scenario=scenario,
            gemm_model=engine.kernel_model.gemm_model,
            gemms=gemms,
            columnar=False,
            assemble=assemble_attention,
        )
    if kind is ScenarioKind.TRAINING:
        engine = engine_for(scenario.system)
        training_model = engine.training_model
        gemms, comm_ops = training_model.predict_queries(
            scenario.model,
            scenario.parallelism,
            global_batch_size=scenario.global_batch_size,
            seq_len=scenario.seq_len,
            precision=scenario.precision,
            recompute=scenario.recompute,
        )

        def assemble_training(scenario: Scenario = scenario, engine=engine) -> object:
            return engine.predict_training(
                scenario.model,
                scenario.parallelism,
                global_batch_size=scenario.global_batch_size,
                seq_len=scenario.seq_len,
                precision=scenario.precision,
                recompute=scenario.recompute,
            )

        return ScenarioPlan(
            scenario=scenario,
            gemm_model=engine.kernel_model.gemm_model,
            gemms=gemms,
            columnar=False,
            assemble=assemble_training,
            collective_model=training_model.collective_model,
            comm_ops=comm_ops,
        )
    if kind is ScenarioKind.INFERENCE:
        engine = engine_for(scenario.system)
        inference_plan = engine.inference_model.plan(
            scenario.model,
            batch_size=scenario.batch_size,
            prompt_tokens=scenario.prompt_tokens,
            generated_tokens=scenario.generated_tokens,
            tensor_parallel=scenario.tensor_parallel,
            precision=scenario.precision,
            decode_mode=scenario.decode_mode,
        )
        return ScenarioPlan(
            scenario=scenario,
            gemm_model=engine.kernel_model.gemm_model,
            gemms=inference_plan.gemm_queries(),
            columnar=False,
            assemble=lambda plan=inference_plan, model=engine.inference_model: model.finish(plan),
        )
    return None


def _entries_from_rows(
    gemms: List[GEMM], result: BatchedRooflineResult, rows: List[int]
) -> List[GemmBottleneckEntry]:
    """Assemble bottleneck-table entries straight from batch-result rows.

    Produces exactly what ``entries_from_points(gemms, evaluate_many(gemms))``
    would, without materializing :class:`RooflinePoint` objects: the row's
    ``kernel_time`` *is* ``point.time`` (same max over the same floats), the
    bound code maps to the same enum, and the arithmetic intensity replicates
    :attr:`RooflinePoint.arithmetic_intensity` -- ``flops / DRAM bytes``,
    falling back to the level sum (in level order, matching the scalar
    ``sum()``) when no level is named ``DRAM``, and ``inf`` on zero bytes.
    """
    index = np.asarray(rows, dtype=np.intp)
    times = result.kernel_time[index].tolist()
    codes = result.bound_codes[index].tolist()
    flops = result.flops[index].tolist()
    if "DRAM" in result.level_names:
        dram_bytes = result.level_bytes["DRAM"][index]
    else:
        dram_bytes = np.zeros(len(index), dtype=np.float64)
        for name in result.level_names:
            dram_bytes = dram_bytes + result.level_bytes[name][index]
    dram_bytes = dram_bytes.tolist()
    return [
        GemmBottleneckEntry(
            name=gemm.name,
            time=time,
            bound=_BOUND_TYPES[code],
            m=gemm.m,
            n=gemm.n,
            k=gemm.k,
            batch=gemm.batch,
            arithmetic_intensity=gemm_flops / gemm_dram if gemm_dram > 0 else float("inf"),
        )
        for gemm, time, code, gemm_flops, gemm_dram in zip(gemms, times, codes, flops, dram_bytes)
    ]


def _columnar_plan(scenario: Scenario, gemm_model: GemmTimeModel, gemms: List[GEMM]) -> ScenarioPlan:
    """A bottleneck-table plan: entries assembled straight from batch rows."""

    def assemble(result: Optional[BatchedRooflineResult], rows: List[int], gemms=gemms) -> object:
        return _entries_from_rows(gemms, result, rows)

    return ScenarioPlan(
        scenario=scenario, gemm_model=gemm_model, gemms=gemms, columnar=True, assemble=assemble
    )


# ---------------------------------------------------------------------------
# Pricing: all plans' GEMMs in one batched call per gemm model.
# ---------------------------------------------------------------------------


def price_plans(plans: Sequence[ScenarioPlan]) -> None:
    """Price every plan's queries, one batched call per query family.

    GEMMs: columnar plans receive their deduplicated row indices and the
    shared batch result; warm plans get the shared memo of their gemm model
    seeded with every point their assembly will ask for (rows already
    memoized are skipped -- the memo'd points are identical by the backend's
    exact-equality contract).  Collectives (training plans): one
    :meth:`CollectiveModel.evaluate_batch` call per collective model seeds
    the shared time memo the same way.
    """
    groups: Dict[int, List[ScenarioPlan]] = {}
    models: Dict[int, GemmTimeModel] = {}
    for plan in plans:
        group_id = id(plan.gemm_model)
        groups.setdefault(group_id, []).append(plan)
        models[group_id] = plan.gemm_model
    for group_id, group in groups.items():
        gemm_model = models[group_id]
        rows: List[GEMM] = []
        index_of: Dict[GEMM, int] = {}
        memoize_rows: List[int] = []
        memoize_seen: set = set()
        for plan in group:
            if plan.columnar:
                plan.rows = []
                for gemm in plan.gemms:
                    index = index_of.get(gemm)
                    if index is None:
                        index = len(rows)
                        rows.append(gemm)
                        index_of[gemm] = index
                    plan.rows.append(index)
            else:
                for gemm in plan.gemms:
                    if gemm_model.memoized(gemm):
                        continue
                    index = index_of.get(gemm)
                    if index is None:
                        index = len(rows)
                        rows.append(gemm)
                        index_of[gemm] = index
                    if index not in memoize_seen:
                        memoize_seen.add(index)
                        memoize_rows.append(index)
        if not rows:
            continue
        result = gemm_model.batched.evaluate_batch(GemmBatch.from_gemms(rows))
        for index in memoize_rows:
            gemm_model.memoize(rows[index], result.point_at(index))
        for plan in group:
            if plan.columnar:
                plan.result = result
    comm_groups: Dict[int, List[ScenarioPlan]] = {}
    collective_models: Dict[int, CollectiveModel] = {}
    for plan in plans:
        if not plan.comm_ops:
            continue
        group_id = id(plan.collective_model)
        comm_groups.setdefault(group_id, []).append(plan)
        collective_models[group_id] = plan.collective_model
    for group_id, group in comm_groups.items():
        collective_model = collective_models[group_id]
        ops: List[CommunicationOp] = []
        op_index: Dict[CommunicationOp, int] = {}
        for plan in group:
            for op in plan.comm_ops:
                if op.is_trivial or op in op_index or collective_model.memoized(op):
                    continue
                op_index[op] = len(ops)
                ops.append(op)
        if not ops:
            continue
        times = collective_model.evaluate_batch(CollectiveBatch.from_ops(ops))
        for op, op_time in zip(ops, times.tolist()):
            collective_model.memoize(op, op_time)


# ---------------------------------------------------------------------------
# The runner's serial-path entry point.
# ---------------------------------------------------------------------------


def evaluate_pending_batched(
    pending: Mapping[str, Scenario],
    timings: Optional[BatchTimings] = None,
    on_outcome: Optional[Callable[[BatchOutcome], None]] = None,
) -> List[BatchOutcome]:
    """Evaluate a generation of pending scenarios through the batch planner.

    Returns one :class:`BatchOutcome` per pending entry, **in input order**
    (the same order the runner's serial loop would have recorded them).
    Library errors -- whether raised at plan time, at assembly time, or by
    the ``evaluate_scenario`` fallback -- are captured on the outcome;
    non-library exceptions propagate, exactly like the serial loop.

    When ``timings`` is given, the wall-clock seconds of each cold-path
    stage are accumulated onto it (plan/price land before the scatter loop
    starts, so an interrupted generation still reports its batched stages).
    When ``on_outcome`` is given it fires once per outcome, in input order,
    as each one is assembled -- the runner's serial path uses it to persist
    completed results before an interrupt can lose them (unbatchable
    scenarios, e.g. serving fleets, evaluate one by one in that loop, so
    streaming there is what makes ``repro run`` resumable mid-study).
    """
    outcomes: Dict[str, Optional[BatchOutcome]] = {}
    planned: List[Tuple[str, ScenarioPlan]] = []
    started = _time.perf_counter()
    for key, scenario in pending.items():
        try:
            plan = plan_scenario(scenario)
        except ReproError as error:
            outcomes[key] = BatchOutcome(key=key, error=error, batched=True)
            continue
        if plan is None:
            outcomes[key] = None  # falls back to evaluate_scenario below
        else:
            planned.append((key, plan))
    priced = _time.perf_counter()
    price_plans([plan for _, plan in planned])
    scattered = _time.perf_counter()
    if timings is not None:
        timings.plan_seconds += priced - started
        timings.price_seconds += scattered - priced
    for key, plan in planned:
        try:
            outcomes[key] = BatchOutcome(key=key, value=plan.finish(), batched=True)
        except ReproError as error:
            outcomes[key] = BatchOutcome(key=key, error=error, batched=True)
    ordered: List[BatchOutcome] = []
    try:
        for key, scenario in pending.items():
            outcome = outcomes[key]
            if outcome is None:
                try:
                    outcome = BatchOutcome(key=key, value=evaluate_scenario(scenario))
                except ReproError as error:
                    outcome = BatchOutcome(key=key, error=error)
            ordered.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
    finally:
        if timings is not None:
            timings.scatter_seconds += _time.perf_counter() - scattered
    return ordered


def evaluate_shard(items: Sequence[Tuple[str, Scenario]]) -> Tuple[List[BatchOutcome], BatchTimings]:
    """Process-pool entry point: batch-evaluate one shard of a generation.

    Takes ``(key, scenario)`` pairs (a :class:`Mapping` does not survive
    pickling order-stably on all container types, a list of pairs does) and
    returns the outcomes in input order plus the shard's stage timings.
    Each worker process plans and prices its shard independently; the parent
    merges outcomes and accumulates timings, so summed stage seconds across
    shards can exceed the sweep's wall-clock.
    """
    apply_test_fault_hooks([scenario for _, scenario in items])
    timings = BatchTimings()
    outcomes = evaluate_pending_batched(dict(items), timings=timings)
    return outcomes, timings
