"""Scenario/sweep subsystem: one cached, parallel evaluation pipeline.

Public surface:

* :class:`~repro.sweep.scenario.Scenario` -- frozen, hashable spec of one
  evaluation (system + model + parallelism + workload knobs) with a
  canonical cache key.
* :class:`~repro.sweep.runner.SweepRunner` -- deduplicates, caches, and
  executes scenario grids serially or across a thread/process pool.
* :func:`~repro.sweep.runner.expand_grid` -- cartesian-product helper.
* :func:`~repro.sweep.runner.default_runner` -- the process-wide shared
  runner the analysis and DSE layers route through.
* :class:`~repro.sweep.table.SweepTable` -- columnar (struct-of-NumPy-arrays)
  sweep results produced by :meth:`SweepRunner.run_table
  <repro.sweep.runner.SweepRunner.run_table>` and the analysis drivers.
"""

from .runner import (
    SweepResult,
    SweepRunner,
    SweepStats,
    axis_label,
    default_runner,
    expand_grid,
    merge_axis_records,
)
from .scenario import Scenario, ScenarioKind, engine_for, evaluate_scenario
from .table import SweepRow, SweepTable

__all__ = [
    "Scenario",
    "ScenarioKind",
    "SweepResult",
    "SweepRow",
    "SweepRunner",
    "SweepStats",
    "SweepTable",
    "axis_label",
    "default_runner",
    "engine_for",
    "evaluate_scenario",
    "expand_grid",
    "merge_axis_records",
]
