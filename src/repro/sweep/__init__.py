"""Scenario/sweep subsystem: one cached, parallel evaluation pipeline.

Public surface:

* :class:`~repro.sweep.scenario.Scenario` -- frozen, hashable spec of one
  evaluation (system + model + parallelism + workload knobs) with a
  canonical cache key.
* :class:`~repro.sweep.runner.SweepRunner` -- deduplicates, caches, and
  executes scenario grids serially or across a thread/process pool; the
  serial path prices each generation of unique scenarios through the
  cross-scenario batch planner (:mod:`repro.sweep.batchplan`), and the
  process executor shards that planning pass across workers.
* :class:`~repro.sweep.diskstore.DiskResultStore` -- persistent on-disk
  result store (``SweepRunner(disk_cache=...)``), keyed by the scenarios'
  deterministic cache keys plus a code fingerprint.
* :func:`~repro.sweep.runner.expand_grid` -- cartesian-product helper.
* :func:`~repro.sweep.runner.default_runner` -- the process-wide shared
  runner the analysis and DSE layers route through.
* :class:`~repro.sweep.table.SweepTable` -- columnar (struct-of-NumPy-arrays)
  sweep results produced by :meth:`SweepRunner.run_table
  <repro.sweep.runner.SweepRunner.run_table>` and the analysis drivers.
"""

from .batchplan import BatchTimings, evaluate_pending_batched, evaluate_shard, plan_scenario, price_plans
from .diskstore import DiskResultStore, code_fingerprint, default_cache_root
from .runner import (
    SweepResult,
    SweepRunner,
    SweepStats,
    axis_label,
    default_runner,
    expand_grid,
    merge_axis_records,
)
from .scenario import Scenario, ScenarioKind, cache_keys, clear_engine_cache, engine_for, evaluate_scenario
from .table import SweepRow, SweepTable

__all__ = [
    "BatchTimings",
    "DiskResultStore",
    "Scenario",
    "ScenarioKind",
    "SweepResult",
    "SweepRow",
    "SweepRunner",
    "SweepStats",
    "SweepTable",
    "axis_label",
    "cache_keys",
    "clear_engine_cache",
    "code_fingerprint",
    "default_cache_root",
    "default_runner",
    "engine_for",
    "evaluate_pending_batched",
    "evaluate_scenario",
    "evaluate_shard",
    "expand_grid",
    "merge_axis_records",
    "plan_scenario",
    "price_plans",
]
