"""Frozen, hashable scenario specifications for the sweep subsystem.

A :class:`Scenario` bundles everything one evaluation of the performance
model needs -- the system, the model, the parallelization, and the workload
knobs -- into a single immutable value object with a canonical
:meth:`~Scenario.cache_key`.  Every paper table/figure, every DSE objective,
and every example script can therefore express its work as a list of
scenarios, and the :class:`~repro.sweep.runner.SweepRunner` can deduplicate,
cache, and parallelize the evaluations without knowing what is being swept.

The module also hosts :func:`evaluate_scenario`, the single dispatch point
from a scenario to the underlying engine call, plus a small per-process
engine cache so scenarios sharing a :class:`~repro.hardware.cluster.SystemSpec`
reuse one :class:`~repro.core.engine.PerformancePredictionEngine` (and with
it the memoized kernel/collective models).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import operator
import os
import time as _time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..caching import Memo
from ..comm.fabric import clear_collective_model_cache
from ..core.bottleneck import attention_layer_bound_breakdown
from ..core.engine import PerformancePredictionEngine
from ..errors import ConfigurationError
from ..hardware.accelerator import AcceleratorSpec
from ..hardware.catalog import device_system, get_system
from ..hardware.cluster import SystemSpec
from ..hardware.datatypes import Precision
from ..memmodel.activations import RecomputeStrategy
from ..memmodel.footprint import inference_memory_breakdown, training_memory_breakdown
from ..models.transformer import TransformerConfig
from ..models.zoo import get_model
from ..parallelism.config import ParallelismConfig, parse_parallelism_label
from ..serving.fleet import FleetConfig
from ..serving.simulator import ServingConfig


class ScenarioKind(enum.Enum):
    """What one scenario evaluation produces."""

    TRAINING = "training"                        # -> TrainingReport
    INFERENCE = "inference"                      # -> InferenceReport
    SERVING = "serving"                          # -> ServingReport
    FLEET = "fleet"                              # -> FleetReport
    TRAINING_MEMORY = "training_memory"          # -> TrainingMemoryBreakdown
    INFERENCE_MEMORY = "inference_memory"        # -> InferenceMemoryBreakdown
    PREFILL_BOTTLENECKS = "prefill_bottlenecks"  # -> List[GemmBottleneckEntry]
    DECODE_BOTTLENECKS = "decode_bottlenecks"    # -> List[GemmBottleneckEntry]
    ATTENTION_BOUND = "attention_bound"          # -> Dict[str, float]
    GEMV_VALIDATION = "gemv_validation"          # -> GemvValidationResult


#: Scenario kinds that need a system (and hence an engine) to evaluate.
_SYSTEM_KINDS = frozenset(
    {
        ScenarioKind.TRAINING,
        ScenarioKind.INFERENCE,
        ScenarioKind.SERVING,
        ScenarioKind.FLEET,
        ScenarioKind.PREFILL_BOTTLENECKS,
        ScenarioKind.DECODE_BOTTLENECKS,
        ScenarioKind.ATTENTION_BOUND,
    }
)
#: Scenario kinds that need a model.
_MODEL_KINDS = _SYSTEM_KINDS | {ScenarioKind.TRAINING_MEMORY, ScenarioKind.INFERENCE_MEMORY}


def _resolve_model(model: "TransformerConfig | str") -> TransformerConfig:
    return get_model(model) if isinstance(model, str) else model


def _resolve_system(system: "SystemSpec | str") -> SystemSpec:
    """Resolve catalog names (``"A100"``, ``"H100x4"``, presets) to a system."""
    return get_system(system) if isinstance(system, str) else system


def _resolve_parallelism(parallelism: "ParallelismConfig | str", micro_batch_size: int = 1) -> ParallelismConfig:
    """Accept the paper's ``"DP-TP-PP-SP"`` label besides a built config."""
    if isinstance(parallelism, str):
        return parse_parallelism_label(parallelism, micro_batch_size=micro_batch_size)
    return parallelism


def _canonical_extras(extras: Optional[Mapping[str, object]]) -> Tuple[Tuple[str, object], ...]:
    """Canonicalize evaluator-specific parameters into a sorted, hashable tuple."""
    if not extras:
        return ()
    items = tuple(sorted(extras.items()))
    for key, value in items:
        hash(value)  # raises for unhashable extras up front
        _ = key
    return items


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One point of a sweep: system + model + parallelism + workload knobs.

    Prefer the classmethod constructors (:meth:`training`, :meth:`inference`,
    ...) over the raw constructor: they resolve catalog names, apply the
    kind-specific defaults, and read like the engine API.

    Attributes:
        kind: What evaluating the scenario produces.
        system: The hardware system (``None`` for engine-free kinds such as
            the memory breakdowns and the GEMV validation).
        model: The transformer architecture under study.
        parallelism: DP/TP/PP/SP configuration (training kinds only).
        precision: Numeric precision of the workload.
        recompute: Activation-recomputation strategy (training kinds only).
        global_batch_size: Training global batch size.
        seq_len: Sequence length override (training) or the layer sequence
            length (attention-bound); ``None`` uses the model default.
        batch_size: Inference batch size, or the micro-batch of the
            attention-bound breakdown.
        prompt_tokens: Prompt length of an inference request.
        generated_tokens: Generated tokens of an inference request.
        context_len: KV context length for inference memory (defaults to
            ``prompt_tokens + generated_tokens``).
        kv_len: KV length of one decode step (decode bottlenecks).
        tensor_parallel: TP degree of inference-style kinds.
        decode_mode: Decode pricing mode of inference scenarios
            (``"average"`` or ``"exact"``); part of the cache key.
        serving_config: Serving-simulation configuration (trace + scheduler
            + SLO); serving scenarios only.  Fully seeded, so it keys the
            cache deterministically.
        fleet_config: Fleet-simulation configuration (trace + replicas +
            router); fleet scenarios only.  Fully seeded like the serving
            config, so it keys the cache deterministically.
        tag: Free-form label carried into results; excluded from the cache
            key so differently-tagged duplicates still share one evaluation.
        extras: Canonicalized evaluator-specific parameters (e.g. the GEMV
            validation's ``num_clusters``/``seed``).
    """

    kind: ScenarioKind
    system: Optional[SystemSpec] = None
    model: Optional[TransformerConfig] = None
    parallelism: Optional[ParallelismConfig] = None
    precision: Precision = Precision.FP16
    recompute: RecomputeStrategy = RecomputeStrategy.SELECTIVE
    global_batch_size: int = 1
    seq_len: Optional[int] = None
    batch_size: int = 1
    prompt_tokens: int = 200
    generated_tokens: int = 200
    context_len: Optional[int] = None
    kv_len: Optional[int] = None
    tensor_parallel: int = 1
    decode_mode: str = "average"
    serving_config: Optional[ServingConfig] = None
    fleet_config: Optional[FleetConfig] = None
    tag: str = ""
    extras: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind in _SYSTEM_KINDS and self.system is None:
            raise ConfigurationError(f"{self.kind.value} scenarios need a system")
        if self.kind in _MODEL_KINDS and self.model is None:
            raise ConfigurationError(f"{self.kind.value} scenarios need a model")
        if self.kind in (ScenarioKind.TRAINING, ScenarioKind.TRAINING_MEMORY) and self.parallelism is None:
            raise ConfigurationError(f"{self.kind.value} scenarios need a parallelism configuration")
        if self.kind is ScenarioKind.ATTENTION_BOUND and self.seq_len is None:
            raise ConfigurationError("attention_bound scenarios need a seq_len")
        if self.kind is ScenarioKind.SERVING and self.serving_config is None:
            raise ConfigurationError("serving scenarios need a serving configuration")
        if self.kind is ScenarioKind.FLEET and self.fleet_config is None:
            raise ConfigurationError("fleet scenarios need a fleet configuration")

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def training(
        cls,
        system: "SystemSpec | str",
        model: "TransformerConfig | str",
        parallelism: "ParallelismConfig | str",
        global_batch_size: int,
        seq_len: Optional[int] = None,
        precision: "Precision | str" = Precision.FP16,
        recompute: "RecomputeStrategy | str" = RecomputeStrategy.SELECTIVE,
        micro_batch_size: int = 1,
        tag: str = "",
    ) -> "Scenario":
        """A training-step prediction (evaluates to a :class:`TrainingReport`).

        ``system`` accepts a built spec or a catalog name
        (:func:`~repro.hardware.catalog.get_system`); ``parallelism`` accepts
        a config or the paper's ``"DP-TP-PP-SP"`` label
        (``micro_batch_size`` applies to the label form only).
        """
        return cls(
            kind=ScenarioKind.TRAINING,
            system=_resolve_system(system),
            model=_resolve_model(model),
            parallelism=_resolve_parallelism(parallelism, micro_batch_size=micro_batch_size),
            global_batch_size=global_batch_size,
            seq_len=seq_len,
            precision=Precision.parse(precision),
            recompute=RecomputeStrategy.parse(recompute),
            tag=tag,
        )

    @classmethod
    def inference(
        cls,
        system: "SystemSpec | str",
        model: "TransformerConfig | str",
        batch_size: int = 1,
        prompt_tokens: int = 200,
        generated_tokens: int = 200,
        tensor_parallel: int = 1,
        precision: "Precision | str" = Precision.FP16,
        decode_mode: str = "average",
        tag: str = "",
    ) -> "Scenario":
        """An end-to-end inference prediction (evaluates to an :class:`InferenceReport`).

        ``decode_mode="exact"`` prices every generated token at its true KV
        length through the batched roofline backend; ``"average"`` (default)
        uses the mid-point closed form.
        """
        return cls(
            kind=ScenarioKind.INFERENCE,
            system=_resolve_system(system),
            model=_resolve_model(model),
            batch_size=batch_size,
            prompt_tokens=prompt_tokens,
            generated_tokens=generated_tokens,
            tensor_parallel=tensor_parallel,
            precision=Precision.parse(precision),
            decode_mode=decode_mode,
            tag=tag,
        )

    @classmethod
    def serving(
        cls,
        system: "SystemSpec | str",
        model: "TransformerConfig | str",
        serving: ServingConfig,
        tensor_parallel: int = 1,
        precision: "Precision | str" = Precision.FP16,
        tag: str = "",
    ) -> "Scenario":
        """A request-level serving simulation (evaluates to a :class:`ServingReport`).

        ``serving`` bundles the seeded arrival trace, the continuous-batching
        scheduler knobs, and the latency SLO; because the trace is a pure
        function of its seed, the scenario's :meth:`cache_key` is
        deterministic and repeated simulations are served from the cache.
        """
        return cls(
            kind=ScenarioKind.SERVING,
            system=_resolve_system(system),
            model=_resolve_model(model),
            serving_config=serving,
            tensor_parallel=tensor_parallel,
            precision=Precision.parse(precision),
            tag=tag,
        )

    @classmethod
    def fleet(
        cls,
        system: "SystemSpec | str",
        model: "TransformerConfig | str",
        fleet: FleetConfig,
        tensor_parallel: int = 1,
        precision: "Precision | str" = Precision.FP16,
        tag: str = "",
    ) -> "Scenario":
        """A multi-replica fleet simulation (evaluates to a :class:`FleetReport`).

        ``fleet`` bundles the (single- or multi-tenant) seeded trace, the
        replica count, the routing policy, and the per-replica scheduler/SLO
        knobs; like serving scenarios, the trace is a pure function of its
        seeds, so the :meth:`cache_key` is deterministic.  ``tensor_parallel``
        is the TP degree of *each* replica.
        """
        return cls(
            kind=ScenarioKind.FLEET,
            system=_resolve_system(system),
            model=_resolve_model(model),
            fleet_config=fleet,
            tensor_parallel=tensor_parallel,
            precision=Precision.parse(precision),
            tag=tag,
        )

    @classmethod
    def training_memory(
        cls,
        model: "TransformerConfig | str",
        parallelism: "ParallelismConfig | str",
        global_batch_size: int,
        seq_len: Optional[int] = None,
        precision: "Precision | str" = Precision.FP16,
        recompute: "RecomputeStrategy | str" = RecomputeStrategy.SELECTIVE,
        micro_batch_size: int = 1,
        tag: str = "",
    ) -> "Scenario":
        """A per-device training memory breakdown (no system required)."""
        return cls(
            kind=ScenarioKind.TRAINING_MEMORY,
            model=_resolve_model(model),
            parallelism=_resolve_parallelism(parallelism, micro_batch_size=micro_batch_size),
            global_batch_size=global_batch_size,
            seq_len=seq_len,
            precision=Precision.parse(precision),
            recompute=RecomputeStrategy.parse(recompute),
            tag=tag,
        )

    @classmethod
    def inference_memory(
        cls,
        model: "TransformerConfig | str",
        batch_size: int = 1,
        context_len: int = 400,
        tensor_parallel: int = 1,
        precision: "Precision | str" = Precision.FP16,
        tag: str = "",
    ) -> "Scenario":
        """A per-device inference memory breakdown (no system required)."""
        return cls(
            kind=ScenarioKind.INFERENCE_MEMORY,
            model=_resolve_model(model),
            batch_size=batch_size,
            context_len=context_len,
            tensor_parallel=tensor_parallel,
            precision=Precision.parse(precision),
            tag=tag,
        )

    @classmethod
    def prefill_bottlenecks(
        cls,
        accelerator: "AcceleratorSpec | SystemSpec | str",
        model: "TransformerConfig | str",
        batch_size: int = 1,
        prompt_tokens: int = 200,
        tensor_parallel: int = 1,
        precision: "Precision | str" = Precision.FP16,
        tag: str = "",
    ) -> "Scenario":
        """The per-GEMM bound-type table of the prefill phase (paper Table 4)."""
        return cls(
            kind=ScenarioKind.PREFILL_BOTTLENECKS,
            system=_device_system(accelerator),
            model=_resolve_model(model),
            batch_size=batch_size,
            prompt_tokens=prompt_tokens,
            tensor_parallel=tensor_parallel,
            precision=Precision.parse(precision),
            tag=tag,
        )

    @classmethod
    def decode_bottlenecks(
        cls,
        accelerator: "AcceleratorSpec | SystemSpec | str",
        model: "TransformerConfig | str",
        batch_size: int = 1,
        kv_len: int = 200,
        tensor_parallel: int = 1,
        precision: "Precision | str" = Precision.FP16,
        tag: str = "",
    ) -> "Scenario":
        """The per-GEMM bound-type table of one decode step."""
        return cls(
            kind=ScenarioKind.DECODE_BOTTLENECKS,
            system=_device_system(accelerator),
            model=_resolve_model(model),
            batch_size=batch_size,
            kv_len=kv_len,
            tensor_parallel=tensor_parallel,
            precision=Precision.parse(precision),
            tag=tag,
        )

    @classmethod
    def attention_bound(
        cls,
        accelerator: "AcceleratorSpec | SystemSpec | str",
        model: "TransformerConfig | str",
        micro_batch: int,
        seq_len: int,
        tensor_parallel: int = 1,
        precision: "Precision | str" = Precision.FP16,
        tag: str = "",
    ) -> "Scenario":
        """Compute- vs memory-bound GEMM time of one training layer (Fig. 7).

        Keyed on the accelerator only (wrapped into a canonical single-device
        system), so sweeps that vary the network share one evaluation.
        """
        return cls(
            kind=ScenarioKind.ATTENTION_BOUND,
            system=_device_system(accelerator),
            model=_resolve_model(model),
            batch_size=micro_batch,
            seq_len=seq_len,
            tensor_parallel=tensor_parallel,
            precision=Precision.parse(precision),
            tag=tag,
        )

    @classmethod
    def gemv_validation(cls, num_clusters: int = 3, seed: int = 2024, tag: str = "") -> "Scenario":
        """The Fig.-3 GEMV calibration/validation flow on the synthetic set."""
        return cls(
            kind=ScenarioKind.GEMV_VALIDATION,
            extras=_canonical_extras({"num_clusters": num_clusters, "seed": seed}),
            tag=tag,
        )

    # -- identity --------------------------------------------------------------------

    def cache_key(self) -> str:
        """Canonical digest of everything that influences the evaluation.

        The ``tag`` field is deliberately excluded: it labels results, it does
        not change them.  Two scenarios with equal keys are guaranteed to
        evaluate to the same value.  The digest is a pure function of the
        field *values* (no ids, no hash seeds), so equal scenarios produce
        the same key in different processes and across runs -- the property
        the persistent result store (:mod:`repro.sweep.diskstore`) keys on.
        Memoized per instance: the runner asks for the key on every run and
        the canonicalization walk is not free.
        """
        cached = self.__dict__.get("_cache_key")
        if cached is not None:
            return cached
        payload = tuple(
            (field.name, _canonical(getattr(self, field.name)))
            for field in dataclasses.fields(self)
            if field.name != "tag"
        )
        key = hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()
        object.__setattr__(self, "_cache_key", key)
        return key

    def with_tag(self, tag: str) -> "Scenario":
        """Return a copy carrying a different result label."""
        return dataclasses.replace(self, tag=tag)

    def describe(self) -> Dict[str, object]:
        """Flat summary for result rows and logs."""
        return {
            "kind": self.kind.value,
            "system": self.system.name if self.system is not None else None,
            "model": self.model.name if self.model is not None else None,
            "parallelism": self.parallelism.label if self.parallelism is not None else None,
            "precision": self.precision.value,
            "tag": self.tag,
        }


def _device_system(accelerator: "AcceleratorSpec | SystemSpec | str") -> SystemSpec:
    """Wrap a bare accelerator into a canonical single-node system.

    Bottleneck and attention-bound scenarios depend only on the device, so the
    canonical wrapper (:func:`repro.hardware.catalog.device_system`) keeps
    their cache keys independent of whatever cluster the caller happened to
    hold.
    """
    if isinstance(accelerator, SystemSpec):
        return device_system(accelerator.accelerator)
    return device_system(accelerator)


#: Canonical-form digests of the heavyweight spec values (systems, models,
#: parallelism/serving configs).  A sweep re-canonicalizes the same handful of
#: spec objects for every scenario; digesting each once collapses the deep
#: recursive walk into one memo lookup.  The digest is over the canonical
#: *structure* (not ``hash()``/``id()``), so it stays deterministic across
#: processes -- required for the on-disk result store.
_CANONICAL_DIGEST_TYPES = (SystemSpec, TransformerConfig, ParallelismConfig, ServingConfig, FleetConfig)
_CANONICAL_MEMO = Memo(max_size=4096)


def _canonical(value: object) -> object:
    """Reduce a value to a stable, hashable canonical form for cache keys."""
    if isinstance(value, _CANONICAL_DIGEST_TYPES):
        # Two cache tiers: the digest is pinned on the instance (repeat keys
        # of the same object cost one attribute read -- no hashing of the
        # deep spec), and the value-keyed memo behind it collapses
        # *distinct-but-equal* objects, which catalog resolution produces one
        # of per scenario.  The pinned digest is a small tuple of strings, so
        # scenarios shipped to process-pool workers stay cheap to pickle.
        digest = value.__dict__.get("_repro_canonical")
        if digest is None:
            digest = _CANONICAL_MEMO.get(value)
            if digest is None:
                structure = _canonical_structure(value)
                digest = (type(value).__name__, hashlib.sha256(repr(structure).encode("utf-8")).hexdigest())
                _CANONICAL_MEMO.put(value, digest)
            object.__setattr__(value, "_repro_canonical", digest)
        return digest
    return _canonical_structure(value)


#: The cache-key fields (every field but ``tag``), in declaration order --
#: the exact payload order of :meth:`Scenario.cache_key`.
_KEY_FIELDS: Tuple[str, ...] = tuple(
    field.name for field in dataclasses.fields(Scenario) if field.name != "tag"
)

#: One attribute walk for all key fields (C-level, in declaration order).
_KEY_GETTER = operator.attrgetter(*_KEY_FIELDS)

#: Scalar types whose fragment may be memoized by ``(field, type, value)``:
#: for these, equal value plus equal type implies an equal canonical repr.
#: (Containers are excluded: ``(1,) == (1.0,)`` yet their canonical reprs
#: differ, so equality alone cannot key them safely.)
_SCALAR_FRAGMENT_TYPES = (int, float, str, bool, type(None), enum.Enum)

#: Fragment-cache dispatch codes, resolved once per value *class*.
_BY_ID, _BY_VALUE, _UNCACHED = 0, 1, 2
_FRAGMENT_KIND: Dict[type, int] = {}

#: Memoized repr fragments of the key payload, one entry per distinct field
#: value: heavyweight spec values key by ``(field index, id(value))`` (the
#: catalog/zoo intern them, so a grid presents the same few *objects* over
#: and over -- the pin map keeps each one alive so its id cannot be recycled
#: while cached), scalars by ``(field index, type, value)``.  A grid's
#: scenarios share almost every field value, so each fragment is rendered
#: once per process instead of once per scenario -- the win behind
#: :func:`cache_keys`.
_FRAGMENTS: Dict[object, str] = {}
_FRAGMENT_PINS: Dict[int, object] = {}
_FRAGMENT_CACHE_SIZE = 65536


def _fragment_kind_of(cls: type) -> int:
    """Resolve (and cache) how fragments of one value class may be keyed."""
    if issubclass(cls, _CANONICAL_DIGEST_TYPES):
        kind = _BY_ID
    elif issubclass(cls, _SCALAR_FRAGMENT_TYPES):
        kind = _BY_VALUE
    else:
        kind = _UNCACHED
    _FRAGMENT_KIND[cls] = kind
    return kind


def cache_keys(scenarios: Sequence[Scenario]) -> List[str]:
    """Cache keys of many scenarios, canonicalizing each distinct value once.

    Equal to ``[scenario.cache_key() for scenario in scenarios]`` (pinned by
    ``tests/sweep/test_cache_keys.py``), but grid-shaped: the per-field repr
    fragments are memoized across scenarios -- by object identity for the
    interned spec values, by ``(type, value)`` for scalars -- so the
    per-scenario work drops to dict probes, composing known strings, and one
    sha256.  Keys are pinned on the instances exactly like
    :meth:`Scenario.cache_key` does, and instances with pinned keys are
    served from the pin.
    """
    keys: List[str] = []
    names = _KEY_FIELDS
    getter = _KEY_GETTER
    kinds = _FRAGMENT_KIND
    fragment_memo = _FRAGMENTS
    sha256 = hashlib.sha256
    for scenario in scenarios:
        cached = scenario.__dict__.get("_cache_key")
        if cached is not None:
            keys.append(cached)
            continue
        fragments: List[str] = []
        for index, value in enumerate(getter(scenario)):
            cls = value.__class__
            kind = kinds.get(cls)
            if kind is None:
                kind = _fragment_kind_of(cls)
            if kind == _BY_ID:
                ref: object = (index, id(value))
            elif kind == _BY_VALUE:
                ref = (index, cls, value)
            else:
                fragments.append(repr((names[index], _canonical(value))))
                continue
            fragment = fragment_memo.get(ref)
            if fragment is None:
                if len(fragment_memo) >= _FRAGMENT_CACHE_SIZE:
                    fragment_memo.clear()
                    _FRAGMENT_PINS.clear()
                fragment = repr((names[index], _canonical(value)))
                fragment_memo[ref] = fragment
                if kind == _BY_ID:
                    _FRAGMENT_PINS[id(value)] = value
            fragments.append(fragment)
        # repr of the payload tuple, composed from the per-item fragments
        # (exact for tuples of length >= 2, which _KEY_FIELDS guarantees).
        key = sha256(("(" + ", ".join(fragments) + ")").encode("utf-8")).hexdigest()
        object.__setattr__(scenario, "_cache_key", key)
        keys.append(key)
    return keys


def _canonical_structure(value: object) -> object:
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple((field.name, _canonical(getattr(value, field.name))) for field in dataclasses.fields(value)),
        )
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if hasattr(value, "levels"):  # MemoryHierarchy
        return (type(value).__name__, tuple(_canonical(level) for level in value.levels))
    return value


# ---------------------------------------------------------------------------
# Evaluation: scenario -> result, with a per-process engine cache.
# ---------------------------------------------------------------------------

#: Engines kept per process, keyed by the (value-hashable) system spec.
_ENGINE_CACHE_SIZE = 64
_ENGINE_CACHE: Dict[SystemSpec, PerformancePredictionEngine] = {}
#: Identity fast path over ``_ENGINE_CACHE``: hashing a deep ``SystemSpec``
#: costs microseconds, an ``id()`` lookup does not.  The entry pins the spec
#: object so its id cannot be recycled while cached.
_ENGINE_BY_ID: Dict[int, "Tuple[SystemSpec, PerformancePredictionEngine]"] = {}


def engine_for(system: SystemSpec) -> PerformancePredictionEngine:
    """Return a (cached) prediction engine for ``system``.

    Reusing the engine also reuses its memoized kernel and collective models
    and its shared :class:`~repro.core.stepcost.StepCostModel` -- including
    the per-KV-length attention time tables the epoch-fused serving loop
    prices decode runs from -- which is where most of a sweep's repeated
    work is saved.  Serving scenarios in particular run warm from the second
    frontier point on (verified by ``tests/sweep/test_serving_cache.py``
    through the step-cost model's ``cache_hits`` counter).  Equal (not just
    identical) specs share one engine.
    """
    cached = _ENGINE_BY_ID.get(id(system))
    if cached is not None:
        return cached[1]
    engine = _ENGINE_CACHE.get(system)
    if engine is None:
        if len(_ENGINE_CACHE) >= _ENGINE_CACHE_SIZE:
            _ENGINE_CACHE.pop(next(iter(_ENGINE_CACHE)))
        engine = PerformancePredictionEngine(system)
        _ENGINE_CACHE[system] = engine
    if len(_ENGINE_BY_ID) >= _ENGINE_CACHE_SIZE * 8:
        _ENGINE_BY_ID.clear()
    _ENGINE_BY_ID[id(system)] = (system, engine)
    return engine


def clear_engine_cache() -> None:
    """Drop every cached engine (and the canonical-form digest memos).

    Dropping the engines also drops their memoized kernel/collective models
    (including the interned per-(system, algorithm) collective models) and
    step-cost caches, so the next evaluation of any scenario pays the full
    cold-path cost again.  Used by the cold-sweep benchmarks to measure
    genuinely cold pricing; sweeps never need to call this.
    """
    _ENGINE_CACHE.clear()
    _ENGINE_BY_ID.clear()
    _CANONICAL_MEMO.clear()
    _FRAGMENTS.clear()
    _FRAGMENT_PINS.clear()
    clear_collective_model_cache()


def apply_test_fault_hooks(scenarios: Sequence[Scenario]) -> None:
    """Test-only fault injection, armed exclusively through environment variables.

    The crash-recovery and soft-timeout tests need a worker process to
    misbehave deterministically mid-sweep; real fault surfaces (a dying
    process, a wedged evaluation) cannot be triggered from scenario data.
    Inert unless one of these is set:

    * ``REPRO_TEST_CRASH_TAG``: a worker evaluating a scenario with this tag
      hard-exits (``os._exit``, no cleanup -- exactly what breaks a process
      pool).  With ``REPRO_TEST_CRASH_ONCE`` naming a marker file, only the
      first process to create it crashes; retries then run normally.
    * ``REPRO_TEST_SLOW_TAG``: a scenario with this tag sleeps
      ``REPRO_TEST_SLOW_SECONDS`` (default 1.0) before evaluating, to trip
      the runner's stall detector.
    """
    crash_tag = os.environ.get("REPRO_TEST_CRASH_TAG")
    slow_tag = os.environ.get("REPRO_TEST_SLOW_TAG")
    if not crash_tag and not slow_tag:
        return
    for scenario in scenarios:
        if crash_tag and scenario.tag == crash_tag:
            marker = os.environ.get("REPRO_TEST_CRASH_ONCE")
            if marker:
                try:
                    with open(marker, "x"):
                        pass
                except OSError:  # marker exists (or unwritable): already crashed once
                    continue
            os._exit(17)
        if slow_tag and scenario.tag == slow_tag:
            _time.sleep(float(os.environ.get("REPRO_TEST_SLOW_SECONDS", "1.0")))


def evaluate_scenario(scenario: Scenario) -> object:
    """Evaluate one scenario to its result object.

    This is the single dispatch point the sweep runner (and its process-pool
    workers) call; it must stay importable at module top level so scenarios
    can be shipped to worker processes.
    """
    apply_test_fault_hooks((scenario,))
    kind = scenario.kind
    if kind is ScenarioKind.GEMV_VALIDATION:
        from ..calibration.gemv import run_gemv_validation

        return run_gemv_validation(**dict(scenario.extras))
    if kind is ScenarioKind.TRAINING_MEMORY:
        return training_memory_breakdown(
            scenario.model,
            scenario.parallelism,
            global_batch_size=scenario.global_batch_size,
            seq_len=scenario.seq_len,
            precision=scenario.precision,
            strategy=scenario.recompute,
        )
    if kind is ScenarioKind.INFERENCE_MEMORY:
        return inference_memory_breakdown(
            scenario.model,
            batch_size=scenario.batch_size,
            context_len=scenario.context_len if scenario.context_len is not None else 400,
            precision=scenario.precision,
            tensor_parallel=scenario.tensor_parallel,
        )
    if kind is ScenarioKind.ATTENTION_BOUND:
        # Route through the per-system engine's kernel model: the breakdown's
        # numbers do not change (same accelerator, memoization only), but the
        # shared memo lets a sweep -- and the cross-scenario batch planner --
        # reuse GEMM evaluations across scenarios.
        return attention_layer_bound_breakdown(
            scenario.model,
            accelerator=scenario.system.accelerator,
            micro_batch=scenario.batch_size,
            seq_len=scenario.seq_len,
            tensor_parallel=scenario.tensor_parallel,
            precision=scenario.precision,
            kernel_model=engine_for(scenario.system).kernel_model,
        )
    engine = engine_for(scenario.system)
    if kind is ScenarioKind.TRAINING:
        return engine.predict_training(
            scenario.model,
            scenario.parallelism,
            global_batch_size=scenario.global_batch_size,
            seq_len=scenario.seq_len,
            precision=scenario.precision,
            recompute=scenario.recompute,
        )
    if kind is ScenarioKind.INFERENCE:
        return engine.predict_inference(
            scenario.model,
            batch_size=scenario.batch_size,
            prompt_tokens=scenario.prompt_tokens,
            generated_tokens=scenario.generated_tokens,
            tensor_parallel=scenario.tensor_parallel,
            precision=scenario.precision,
            decode_mode=scenario.decode_mode,
        )
    if kind is ScenarioKind.SERVING:
        return engine.predict_serving(
            scenario.model,
            scenario.serving_config.trace,
            tensor_parallel=scenario.tensor_parallel,
            precision=scenario.precision,
            scheduler=scenario.serving_config.scheduler,
            slo=scenario.serving_config.slo,
            include_lm_head=scenario.serving_config.include_lm_head,
        )
    if kind is ScenarioKind.FLEET:
        return engine.predict_fleet(
            scenario.model,
            scenario.fleet_config,
            tensor_parallel=scenario.tensor_parallel,
            precision=scenario.precision,
        )
    if kind is ScenarioKind.PREFILL_BOTTLENECKS:
        return engine.prefill_bottlenecks(
            scenario.model,
            batch_size=scenario.batch_size,
            prompt_tokens=scenario.prompt_tokens,
            tensor_parallel=scenario.tensor_parallel,
            precision=scenario.precision,
        )
    if kind is ScenarioKind.DECODE_BOTTLENECKS:
        return engine.decode_bottlenecks(
            scenario.model,
            batch_size=scenario.batch_size,
            kv_len=scenario.kv_len if scenario.kv_len is not None else 200,
            tensor_parallel=scenario.tensor_parallel,
            precision=scenario.precision,
        )
    raise ConfigurationError(f"unknown scenario kind: {kind!r}")
