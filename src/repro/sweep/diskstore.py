"""Persistent on-disk result store for the sweep runner.

The in-memory LRU of :class:`~repro.sweep.runner.SweepRunner` dies with the
process; incremental workflows (re-running a study after editing its plotting
code, CI re-runs, notebook restarts) re-price every scenario from scratch.
:class:`DiskResultStore` persists evaluation outcomes -- values *and* captured
library errors -- keyed by the scenario's deterministic
:meth:`~repro.sweep.scenario.Scenario.cache_key`, so a second run of the same
study prices nothing.

Layout and invalidation
-----------------------
Entries are pickles sharded under ``<root>/<fingerprint>/<key[:2]>/<key>.pkl``:

* ``root`` defaults to ``~/.cache/repro`` and is overridable per store
  (``DiskResultStore(root=...)``, the CLI's ``--cache-dir``) or globally via
  the ``REPRO_CACHE_DIR`` environment variable.
* ``fingerprint`` folds in the library version and the store's format
  version, so upgrading the code (which may change predictions) or the
  record format orphans old entries instead of serving stale results.
  The store never deletes on its own; housekeeping is explicit --
  :meth:`DiskResultStore.clear` empties the current fingerprint,
  :meth:`DiskResultStore.prune` drops orphaned fingerprint directories,
  and :meth:`DiskResultStore.stats` reports entry counts and bytes per
  fingerprint (all three surfaced by the ``repro cache`` CLI verb).

Robustness
----------
Writes go through a temp file plus :func:`os.replace`, so concurrent writers
(process-pool sweeps, parallel CI jobs) can race on the same key and readers
still see only complete records -- last writer wins, and every writer writes
the same bytes-equal value anyway (deterministic evaluations).  Reads treat
*any* failure (truncated pickle, corrupted shard, unreadable file, foreign
record shape) as a miss: a damaged cache can cost re-pricing, never a crash
and never a wrong result.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError

logger = logging.getLogger(__name__)

#: Version of the on-disk record layout; bump on incompatible changes.
FORMAT_VERSION = 1

#: Consecutive environmental write failures before the store stops trying.
WRITE_FAILURE_LIMIT = 3

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """The default store root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def code_fingerprint() -> str:
    """Digest of everything that invalidates stored results wholesale.

    Currently the library version plus the record format version: a release
    that changes any prediction must bump ``repro.__version__``, which moves
    the store to a fresh fingerprint directory.
    """
    from .. import __version__

    payload = f"repro={__version__};format={FORMAT_VERSION}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class DiskResultStore:
    """Sharded pickle store of scenario evaluation outcomes.

    Attributes:
        root: Store root directory (shared by all fingerprints).
        fingerprint: The code/format fingerprint this store reads and writes
            under (defaults to :func:`code_fingerprint`; overridable for
            tests).
    """

    def __init__(self, root: "Path | str | None" = None, fingerprint: Optional[str] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self._consecutive_write_failures = 0
        self._writes_disabled = False
        self._warned = False

    @property
    def writes_disabled(self) -> bool:
        """Whether persistent writes have been abandoned for this store's lifetime."""
        return self._writes_disabled

    def path_for(self, key: str) -> Path:
        """The shard path of one cache key."""
        return self.root / self.fingerprint / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Tuple[object, Optional[ReproError]]]:
        """Load one outcome, or ``None`` on miss *or any* read failure.

        Returns ``(value, error)``: exactly one of the pair is meaningful,
        mirroring the runner's cache entries (captured library errors are
        stored too, so infeasible corners are not re-evaluated either).
        """
        try:
            with open(self.path_for(key), "rb") as handle:
                record = pickle.load(handle)
            if not isinstance(record, tuple) or len(record) != 3 or record[0] != FORMAT_VERSION:
                return None
            _, value, error = record
            if error is not None and not isinstance(error, ReproError):
                return None
            return value, error
        except Exception:
            # Corrupted/truncated/unreadable entries are plain misses: the
            # scenario is re-priced and the entry rewritten.
            return None

    def put(self, key: str, value: object = None, error: Optional[ReproError] = None) -> bool:
        """Persist one outcome; returns whether the write landed.

        Failures (unpicklable value, read-only filesystem, full disk) are
        swallowed: persistence is an optimization, never a reason to fail a
        sweep.  Environmental failures (``OSError``: disk full, permission
        denied) additionally degrade the store -- one warning is logged on
        the first failure, and after :data:`WRITE_FAILURE_LIMIT` consecutive
        ones the store stops attempting writes for its lifetime, so a dead
        disk is not hammered once per scenario.  Per-entry failures (an
        unpicklable value) do not count toward the limit.  Reads keep
        working either way; the runner's in-memory LRU carries the sweep.
        """
        if self._writes_disabled:
            return False
        path = self.path_for(key)
        tmp_path: Optional[str] = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_path = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(handle, "wb") as stream:
                pickle.dump((FORMAT_VERSION, value, error), stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
            tmp_path = None
            self._consecutive_write_failures = 0
            return True
        except OSError as exc:
            self._note_write_failure(exc)
            return False
        except Exception:
            return False
        finally:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass

    def _note_write_failure(self, exc: OSError) -> None:
        """Track an environmental write failure; warn once, disable at the limit."""
        self._consecutive_write_failures += 1
        if not self._warned:
            self._warned = True
            logger.warning(
                "disk result store write to %s failed (%s); results stay cached "
                "in memory and the sweep continues",
                self.root / self.fingerprint,
                exc,
            )
        if self._consecutive_write_failures >= WRITE_FAILURE_LIMIT:
            self._writes_disabled = True

    def count(self) -> int:
        """Number of entries stored under the current fingerprint (tests/inspection)."""
        base = self.root / self.fingerprint
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.glob("*/*.pkl"))

    # -- housekeeping -----------------------------------------------------------------

    def fingerprints(self) -> List[str]:
        """Every fingerprint directory present under :attr:`root`, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(entry.name for entry in self.root.iterdir() if entry.is_dir())

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-fingerprint entry counts and on-disk bytes.

        Returns ``{fingerprint: {"entries": n, "bytes": b, "current": 0|1}}``
        for every fingerprint directory under the root; ``current`` marks
        the fingerprint this store reads and writes under.  Unreadable
        entries are skipped (consistent with :meth:`get` treating damage as
        a miss).
        """
        report: Dict[str, Dict[str, int]] = {}
        for fingerprint in self.fingerprints():
            entries = 0
            total_bytes = 0
            for path in (self.root / fingerprint).glob("*/*.pkl"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
            report[fingerprint] = {
                "entries": entries,
                "bytes": total_bytes,
                "current": int(fingerprint == self.fingerprint),
            }
        return report

    def clear(self) -> int:
        """Delete every entry under the **current** fingerprint.

        Returns the number of entries removed.  Other fingerprints are left
        alone (see :meth:`prune`).
        """
        base = self.root / self.fingerprint
        if not base.is_dir():
            return 0
        removed = sum(1 for _ in base.glob("*/*.pkl"))
        shutil.rmtree(base, ignore_errors=True)
        return removed

    def prune(self, keep_current: bool = True) -> List[str]:
        """Delete orphaned fingerprint directories; returns those removed.

        With ``keep_current`` (the default) the store's own fingerprint
        survives -- the usual call after a version upgrade drops every stale
        fingerprint while the fresh cache keeps filling.  With
        ``keep_current=False`` the whole root is emptied.
        """
        removed: List[str] = []
        for fingerprint in self.fingerprints():
            if keep_current and fingerprint == self.fingerprint:
                continue
            shutil.rmtree(self.root / fingerprint, ignore_errors=True)
            removed.append(fingerprint)
        return removed
