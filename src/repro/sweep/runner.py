"""The sweep runner: deduplicated, cached, optionally parallel evaluation.

``SweepRunner`` turns a list of :class:`~repro.sweep.scenario.Scenario`
objects into :class:`SweepResult` rows.  It deduplicates scenarios by their
canonical cache key, serves repeats from an LRU result cache, and evaluates
the remaining unique scenarios through a pluggable executor::

    runner = SweepRunner()                     # serial, in-process
    runner = SweepRunner(executor="process")   # fan out across CPUs

    results = runner.run(scenarios)
    report = runner.evaluate(scenario)         # single scenario, same cache

Grids expand with :func:`expand_grid`::

    scenarios = [
        Scenario.inference(system, "Llama2-13B", **combo)
        for combo in expand_grid(batch_size=[1, 4, 16], tensor_parallel=[1, 2, 4])
    ]
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import enum
import itertools
import os
import threading
import time as _time
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ReproError
from .batchplan import BatchTimings, evaluate_pending_batched, evaluate_shard
from .diskstore import DiskResultStore
from .scenario import Scenario, cache_keys, evaluate_scenario
from .table import SweepTable

#: Executor names accepted by :class:`SweepRunner`.
EXECUTORS = ("serial", "thread", "process")

#: Pool reconstructions after worker crashes before falling back to serial.
_MAX_POOL_REBUILDS = 2


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """Outcome of one scenario evaluation.

    Attributes:
        scenario: The scenario that was evaluated.
        value: The evaluation result (a report, breakdown, table, ...), or
            ``None`` when the evaluation failed and errors are captured.
        from_cache: Whether the value was served from the result cache
            (including duplicates within one :meth:`SweepRunner.run` call).
        error: The captured library error message, if any.
    """

    scenario: Scenario
    value: object
    from_cache: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the evaluation produced a value."""
        return self.error is None

    @property
    def report(self) -> object:
        """Alias for :attr:`value`, reading naturally for report-producing kinds."""
        return self.value

    def row(self) -> Dict[str, object]:
        """Scenario summary merged with an ``error`` column, for tables."""
        row = self.scenario.describe()
        row["error"] = self.error
        return row


@dataclasses.dataclass
class SweepStats:
    """Running counters of a :class:`SweepRunner` (across all calls).

    Attributes:
        evaluations: Scenarios actually priced (fresh, not served from any
            cache).
        cache_hits: Results served without evaluation -- in-memory LRU hits,
            within-run duplicates, and disk-store hits alike.
        errors: Fresh evaluations that raised a captured library error.
        disk_hits: The subset of :attr:`cache_hits` loaded from the
            persistent :class:`~repro.sweep.diskstore.DiskResultStore`.
        batched_scenarios: Fresh evaluations priced through the
            cross-scenario batch planner (:mod:`repro.sweep.batchplan`)
            rather than one at a time.
        plan_seconds: Cold-path seconds spent building workload graphs
            (:func:`~repro.sweep.batchplan.plan_scenario`).  Under the
            process-sharded path the per-stage seconds sum across worker
            processes, so they can exceed the sweep's wall-clock.
        price_seconds: Cold-path seconds spent in the vectorized pricing
            calls (:func:`~repro.sweep.batchplan.price_plans`).
        scatter_seconds: Cold-path seconds spent assembling results (and
            running the ``evaluate_scenario`` fallback of unbatchable
            kinds).
        keyhash_seconds: Seconds spent computing scenario cache keys
            (:func:`~repro.sweep.scenario.cache_keys`) in :meth:`run`.
        pool_rebuilds: Process pools rebuilt after a worker crash
            (``BrokenProcessPool``); the lost scenarios are re-run.
        timeouts: Scenarios abandoned by the soft ``scenario_timeout``
            stall detector and surfaced as captured errors (never cached).
    """

    evaluations: int = 0
    cache_hits: int = 0
    errors: int = 0
    disk_hits: int = 0
    batched_scenarios: int = 0
    plan_seconds: float = 0.0
    price_seconds: float = 0.0
    scatter_seconds: float = 0.0
    keyhash_seconds: float = 0.0
    pool_rebuilds: int = 0
    timeouts: int = 0

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view for logs and benchmark extra_info."""
        return dataclasses.asdict(self)


class _CacheEntry:
    """A cached evaluation: either a value or the library error it raised."""

    __slots__ = ("value", "error")

    def __init__(self, value: object = None, error: Optional[ReproError] = None):
        self.value = value
        self.error = error


class SweepRunner:
    """Expands, deduplicates, caches, and executes scenario evaluations.

    Attributes:
        executor: ``"serial"``, ``"thread"``, or ``"process"``.
        max_workers: Worker count for the pooled executors.
        cache_size: Maximum number of cached evaluation results.
        capture_errors: When True, library errors (:class:`ReproError`) are
            recorded on the result row instead of raised -- useful for grids
            that contain infeasible corners.  Non-library exceptions always
            propagate: a bug in the model must not masquerade as an
            infeasible scenario.
        disk_cache: Persistent result store.  ``None``/``False`` disables it
            (the default); ``True`` opens the default store
            (``~/.cache/repro`` or ``$REPRO_CACHE_DIR``); a path opens a
            store rooted there; a built
            :class:`~repro.sweep.diskstore.DiskResultStore` is used as-is.
            Outcomes are checked on LRU misses and persisted after fresh
            evaluations, so a repeat run prices nothing.
        batch_planning: Whether pending generations are priced through the
            cross-scenario batch planner (:mod:`repro.sweep.batchplan`) --
            bit-identical results, one vectorized pricing call per query
            family per generation instead of per-GEMM Python loops.  The
            serial executor runs one planning pass in-process; the process
            executor shards the generation across workers (one plan + price
            pass per shard, outcomes merged in the parent).  On by default;
            turn off to force the one-at-a-time reference path (the cold-
            sweep benchmarks compare both).
        scenario_timeout: Soft stall detector for the pooled executors, in
            seconds: whenever no pending evaluation completes for this long,
            everything still outstanding is surfaced as a captured
            :class:`ReproError` (counted in :attr:`SweepStats.timeouts`,
            never cached -- a timeout is environmental, not a property of
            the scenario) and the sweep moves on.  In the process-sharded
            path the window scales with the largest shard.  ``None`` (the
            default) waits indefinitely; ignored by the serial executor.

    The pooled executors are additionally crash-tolerant: a worker process
    dying (``BrokenProcessPool``) rebuilds the pool and re-runs only the
    scenarios whose outcomes were lost, and after :data:`_MAX_POOL_REBUILDS`
    rebuilds the remainder is evaluated serially in the parent with captured
    errors -- a sweep never dies with a half-priced grid.
    """

    def __init__(
        self,
        executor: str = "serial",
        max_workers: Optional[int] = None,
        cache_size: int = 4096,
        capture_errors: bool = False,
        disk_cache: "DiskResultStore | str | bool | None" = None,
        batch_planning: bool = True,
        scenario_timeout: Optional[float] = None,
    ):
        if executor not in EXECUTORS:
            raise ConfigurationError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if cache_size < 0:
            raise ConfigurationError("cache_size must be non-negative")
        if scenario_timeout is not None and scenario_timeout <= 0:
            raise ConfigurationError("scenario_timeout must be positive (or None)")
        self.executor = executor
        self.max_workers = max_workers
        self.cache_size = cache_size
        self.capture_errors = capture_errors
        self.batch_planning = batch_planning
        self.scenario_timeout = scenario_timeout
        self.disk_cache = _resolve_disk_cache(disk_cache)
        self.stats = SweepStats()
        self._cache: "collections.OrderedDict[str, _CacheEntry]" = collections.OrderedDict()
        # Guards the LRU dict and the stats counters so concurrent run()
        # calls (the study service drives one shared runner from several
        # worker threads) stay consistent.  Reentrant because the cache
        # helpers nest; never held across evaluation, disk I/O, or the
        # on_result/on_entry callbacks.
        self._lock = threading.RLock()

    # -- cache ------------------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop every cached result (the stats keep counting)."""
        with self._lock:
            self._cache.clear()

    def _cache_get(self, key: str) -> Optional[_CacheEntry]:
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
            return entry

    def _cache_put(self, key: str, entry: _CacheEntry) -> None:
        with self._lock:
            if self.cache_size == 0:
                return
            while len(self._cache) >= self.cache_size:
                self._cache.popitem(last=False)
            self._cache[key] = entry

    def _lookup(self, key: str) -> Optional[_CacheEntry]:
        """LRU lookup, falling through to the persistent store on a miss.

        Disk hits are promoted into the LRU (and counted in
        :attr:`SweepStats.disk_hits`) so repeats within the process stay
        memory-speed.
        """
        entry = self._cache_get(key)
        if entry is not None or self.disk_cache is None:
            return entry
        stored = self.disk_cache.get(key)  # file I/O stays outside the lock
        if stored is None:
            return None
        entry = _CacheEntry(value=stored[0], error=stored[1])
        with self._lock:
            self.stats.disk_hits += 1
            self._cache_put(key, entry)
        return entry

    # -- execution --------------------------------------------------------------------

    def run(
        self,
        scenarios: Iterable[Scenario],
        capture_errors: Optional[bool] = None,
        on_result: Optional[Callable[[SweepResult], None]] = None,
    ) -> List[SweepResult]:
        """Evaluate ``scenarios`` and return one result per input, in order.

        Scenarios with equal cache keys are evaluated once; later occurrences
        (and scenarios already in the cache from previous calls) are marked
        ``from_cache``.  ``capture_errors`` overrides the runner-level setting
        for this call only (useful for probe batches that must survive
        infeasible corners without reconfiguring the shared runner).

        ``on_result`` streams progress: it is called exactly once per input
        scenario, as soon as that scenario's result is known -- cached results
        fire before any evaluation starts, fresh ones as their evaluation
        completes (completion order under the pooled executors, so not
        necessarily input order).  The returned list is always input-ordered
        regardless.
        """
        capture = self.capture_errors if capture_errors is None else capture_errors
        ordered = list(scenarios)
        hash_started = _time.perf_counter()
        keys = cache_keys(ordered)
        with self._lock:
            self.stats.keyhash_seconds += _time.perf_counter() - hash_started

        # Snapshot cache hits up front: entries may be evicted from the LRU
        # while the pending scenarios are stored, so result resolution below
        # must never depend on re-reading the evictable cache.
        hits: Dict[str, _CacheEntry] = {}
        pending: Dict[str, Scenario] = {}
        indices_by_key: Dict[str, List[int]] = {}
        for index, (scenario, key) in enumerate(zip(ordered, keys)):
            indices_by_key.setdefault(key, []).append(index)
            if key in hits or key in pending:
                continue
            entry = self._lookup(key)
            if entry is not None:
                hits[key] = entry
            else:
                pending[key] = scenario

        results: List[Optional[SweepResult]] = [None] * len(ordered)
        # When errors raise (capture off), every pending scenario is still
        # evaluated and cached first, and the error surfaced is the earliest
        # one in *input* order -- deterministic even when the pooled
        # executors complete out of order.
        deferred_errors: List["tuple[int, ReproError]"] = []

        def resolve(key: str, entry: _CacheEntry, fresh: bool) -> None:
            for position, index in enumerate(indices_by_key[key]):
                from_cache = position > 0 or not fresh
                if from_cache:
                    with self._lock:
                        self.stats.cache_hits += 1
                if entry.error is not None:
                    if not capture:
                        deferred_errors.append((index, entry.error))
                        continue
                    result = SweepResult(
                        scenario=ordered[index], value=None, from_cache=from_cache, error=str(entry.error)
                    )
                else:
                    result = SweepResult(scenario=ordered[index], value=entry.value, from_cache=from_cache)
                results[index] = result
                if on_result is not None:
                    on_result(result)

        for key, entry in hits.items():
            resolve(key, entry, fresh=False)
        self._evaluate_pending(pending, on_entry=lambda key, entry: resolve(key, entry, fresh=True))
        if deferred_errors:
            raise min(deferred_errors, key=lambda pair: pair[0])[1]
        return results  # type: ignore[return-value]  # every index was resolved above

    def evaluate(self, scenario: Scenario) -> object:
        """Evaluate one scenario through the cache and return its value.

        Library errors raise (regardless of :attr:`capture_errors`); this is
        the building block for objective functions and one-off queries.
        """
        key = scenario.cache_key()
        entry = self._lookup(key)
        if entry is None:
            entry = self._evaluate_pending({key: scenario})[key]
        else:
            with self._lock:
                self.stats.cache_hits += 1
        if entry.error is not None:
            raise entry.error
        return entry.value

    def run_grid(
        self,
        factory: Callable[..., Scenario],
        extract: Optional[Callable[[SweepResult], "Mapping[str, object] | Sequence[Mapping[str, object]]"]] = None,
        capture_errors: Optional[bool] = None,
        on_result: Optional[Callable[[SweepResult], None]] = None,
        **axes: Sequence[object],
    ) -> SweepTable:
        """Expand the cartesian product of ``axes`` through ``factory`` and run it.

        ``factory`` receives one keyword argument per axis, e.g.::

            table = runner.run_grid(
                lambda batch_size, tensor_parallel: Scenario.inference(system, model, ...),
                batch_size=[1, 4, 16],
                tensor_parallel=[1, 2, 4],
            )

        The result is a :class:`SweepTable` with one column per axis (values
        rendered via :func:`axis_label`, so systems/models/configs appear as
        their names) followed by the columns of the extracted record -- the
        same axis-column attachment the Study layer uses.  ``extract``
        defaults to ``{"error": result.error}`` merged after the axis
        columns; it may also return a *list* of records to explode one
        scenario into several rows.
        """
        combos = list(expand_grid(**axes))
        results = self.run(
            (factory(**combo) for combo in combos), capture_errors=capture_errors, on_result=on_result
        )
        extract = extract or (lambda result: {"error": result.error})
        return SweepTable.from_records(merge_axis_records(combos, results, extract))

    def run_table(
        self,
        scenarios: Iterable[Scenario],
        extract: Optional[Callable[[SweepResult], Mapping[str, object]]] = None,
        capture_errors: Optional[bool] = None,
        on_result: Optional[Callable[[SweepResult], None]] = None,
    ) -> SweepTable:
        """Evaluate ``scenarios`` and columnize the results into a :class:`SweepTable`.

        ``extract`` maps one :class:`SweepResult` to the record that becomes
        the table's row (default: :meth:`SweepResult.row`, i.e. the scenario
        summary plus the error column).  The records are transposed into one
        NumPy array per column, so downstream consumers work on columns
        instead of per-row dicts::

            table = runner.run_table(
                scenarios,
                extract=lambda result: {
                    "model": result.scenario.model.name,
                    "latency_ms": result.report.total_latency_ms,
                },
            )
            fastest = table["latency_ms"].min()
        """
        results = self.run(scenarios, capture_errors=capture_errors, on_result=on_result)
        extract = extract or (lambda result: result.row())
        return SweepTable.from_records(extract(result) for result in results)

    # -- internals --------------------------------------------------------------------

    def _evaluate_pending(
        self,
        pending: Mapping[str, Scenario],
        on_entry: Optional[Callable[[str, _CacheEntry], None]] = None,
    ) -> Dict[str, _CacheEntry]:
        """Evaluate every pending scenario, streaming entries via ``on_entry``.

        ``on_entry`` fires once per key as its evaluation completes (input
        order for the serial executor, completion order for the pools);
        stats and the result cache are updated before each callback.
        """
        if not pending:
            return {}
        fresh: Dict[str, _CacheEntry] = {}

        def record(key: str, entry: _CacheEntry) -> None:
            with self._lock:
                self.stats.evaluations += 1
                if entry.error is not None:
                    self.stats.errors += 1
                self._cache_put(key, entry)
            if self.disk_cache is not None:
                self.disk_cache.put(key, value=entry.value, error=entry.error)
            fresh[key] = entry
            if on_entry is not None:
                on_entry(key, entry)

        def record_outcomes(outcomes) -> None:
            for outcome in outcomes:
                if outcome.batched:
                    with self._lock:
                        self.stats.batched_scenarios += 1
                record(outcome.key, _CacheEntry(value=outcome.value, error=outcome.error))

        def absorb_timings(timings: BatchTimings) -> None:
            with self._lock:
                self.stats.plan_seconds += timings.plan_seconds
                self.stats.price_seconds += timings.price_seconds
                self.stats.scatter_seconds += timings.scatter_seconds

        def record_transient(key: str, message: str) -> None:
            # A soft-timeout outcome: surfaced like a captured error but
            # never written to the LRU or the disk store -- timeouts are
            # environmental, not properties of the scenario.
            with self._lock:
                self.stats.timeouts += 1
            entry = _CacheEntry(error=ReproError(message))
            fresh[key] = entry
            if on_entry is not None:
                on_entry(key, entry)

        if self.executor == "serial" or len(pending) == 1:
            if self.batch_planning and len(pending) > 1:
                # Stream outcomes as they are assembled (instead of recording
                # the returned list wholesale): every completed scenario is in
                # the LRU and the disk store before the next one evaluates, so
                # a KeyboardInterrupt mid-generation loses only in-flight work.
                timings = BatchTimings()
                try:
                    evaluate_pending_batched(
                        pending, timings=timings, on_outcome=lambda o: record_outcomes([o])
                    )
                finally:
                    absorb_timings(timings)
                return fresh
            for key, scenario in pending.items():
                record(key, self._evaluate_one(scenario))
            return fresh
        if self.executor == "process" and self.batch_planning:
            # Process-sharded planning: each worker plans + prices one
            # contiguous shard of the generation through the batch planner,
            # the parent merges outcomes (and their stage timings) through
            # the normal record path.  A crashed worker breaks the whole
            # pool, so the shards whose outcomes never landed are re-sharded
            # onto a fresh pool (serially, in the parent, as a last resort).
            workers = self.max_workers or os.cpu_count() or 1
            remaining = list(pending.items())
            rebuilds = 0
            while remaining:
                shards = _split_shards(remaining, workers)
                window = (
                    None
                    if self.scenario_timeout is None
                    else self.scenario_timeout * max(len(shard) for shard in shards)
                )
                timed_out = False
                pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.max_workers)
                try:
                    futures = {pool.submit(evaluate_shard, shard): shard for shard in shards}
                    outstanding = set(futures)
                    while outstanding:
                        done, outstanding = concurrent.futures.wait(
                            outstanding,
                            timeout=window,
                            return_when=concurrent.futures.FIRST_COMPLETED,
                        )
                        if not done:
                            timed_out = True
                            for future in outstanding:
                                future.cancel()
                                for key, _ in futures[future]:
                                    record_transient(
                                        key, f"scenario evaluation stalled past {window:g}s (shard abandoned)"
                                    )
                            break
                        for future in done:
                            outcomes, timings = future.result()
                            record_outcomes(outcomes)
                            absorb_timings(timings)
                    remaining = []
                except concurrent.futures.process.BrokenProcessPool:
                    with self._lock:
                        self.stats.pool_rebuilds += 1
                    rebuilds += 1
                    remaining = [(key, scenario) for key, scenario in remaining if key not in fresh]
                    if rebuilds > _MAX_POOL_REBUILDS:
                        for key, scenario in remaining:
                            record(key, self._evaluate_one(scenario))
                        remaining = []
                finally:
                    pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
            return fresh
        pool_cls = (
            concurrent.futures.ThreadPoolExecutor
            if self.executor == "thread"
            else concurrent.futures.ProcessPoolExecutor
        )
        remaining = list(pending.items())
        rebuilds = 0
        while remaining:
            timed_out = False
            pool = pool_cls(max_workers=self.max_workers)
            try:
                futures = {
                    pool.submit(evaluate_scenario, scenario): key for key, scenario in remaining
                }
                outstanding = set(futures)
                while outstanding:
                    done, outstanding = concurrent.futures.wait(
                        outstanding,
                        timeout=self.scenario_timeout,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    if not done:
                        timed_out = True
                        for future in outstanding:
                            future.cancel()
                            record_transient(
                                futures[future],
                                f"scenario evaluation stalled past {self.scenario_timeout:g}s",
                            )
                        break
                    for future in done:
                        try:
                            entry = _CacheEntry(value=future.result())
                        except ReproError as error:
                            entry = _CacheEntry(error=error)
                        record(futures[future], entry)
                remaining = []
            except concurrent.futures.process.BrokenProcessPool:
                with self._lock:
                    self.stats.pool_rebuilds += 1
                rebuilds += 1
                remaining = [(key, scenario) for key, scenario in remaining if key not in fresh]
                if rebuilds > _MAX_POOL_REBUILDS:
                    for key, scenario in remaining:
                        record(key, self._evaluate_one(scenario))
                    remaining = []
            finally:
                pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
        return fresh

    def _evaluate_one(self, scenario: Scenario) -> _CacheEntry:
        try:
            return _CacheEntry(value=evaluate_scenario(scenario))
        except ReproError as error:
            return _CacheEntry(error=error)


def _split_shards(items: List[Tuple[str, Scenario]], workers: int) -> List[List[Tuple[str, Scenario]]]:
    """Split pending ``(key, scenario)`` pairs into contiguous, near-equal shards.

    Produces at most ``workers`` non-empty shards whose sizes differ by at
    most one, preserving input order (so merged outcomes stay deterministic
    modulo completion order, which the runner's record path already
    tolerates).
    """
    count = len(items)
    shard_count = max(1, min(workers, count))
    base, extra = divmod(count, shard_count)
    shards: List[List[Tuple[str, Scenario]]] = []
    start = 0
    for shard_index in range(shard_count):
        size = base + (1 if shard_index < extra else 0)
        shards.append(items[start : start + size])
        start += size
    return shards


def _resolve_disk_cache(disk_cache: "DiskResultStore | str | bool | None") -> Optional[DiskResultStore]:
    """Normalize the runner's ``disk_cache`` argument to a store (or ``None``)."""
    if disk_cache is None or disk_cache is False:
        return None
    if disk_cache is True:
        return DiskResultStore()
    if isinstance(disk_cache, DiskResultStore):
        return disk_cache
    return DiskResultStore(root=disk_cache)


def axis_label(value: object) -> object:
    """Render one axis value as a table-column scalar.

    Scalars pass through; rich spec objects collapse to their human name --
    ``SystemSpec`` / ``AcceleratorSpec`` / ``TransformerConfig`` to ``.name``,
    :class:`~repro.parallelism.config.ParallelismConfig` to its paper
    ``.label``, enums to ``.value``.  Anything else is stored verbatim (as an
    object column).
    """
    if isinstance(value, enum.Enum):
        return value.value
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    label = getattr(value, "label", None)
    if isinstance(label, str):
        return label
    return value


def merge_axis_records(
    axis_records: Sequence[Mapping[str, object]],
    results: Sequence[SweepResult],
    extract: Callable[[SweepResult], "Mapping[str, object] | Sequence[Mapping[str, object]]"],
) -> Iterator[Dict[str, object]]:
    """Merge axis columns with extracted metric records, one dict per table row.

    This is the single axis-column attachment point shared by
    :meth:`SweepRunner.run_grid` and the Study execution path: each result's
    extracted record (or records -- a list explodes one scenario into several
    rows, e.g. one row per GEMM) is prefixed with that scenario's axis
    values, rendered through :func:`axis_label`.
    """
    for axes, result in zip(axis_records, results):
        rendered = {name: axis_label(value) for name, value in axes.items()}
        extracted = extract(result)
        if isinstance(extracted, Mapping):
            extracted = [extracted]
        for record in extracted:
            yield {**rendered, **record}


def expand_grid(**axes: Sequence[object]) -> Iterator[Dict[str, object]]:
    """Yield every combination of the given axes as a keyword dict.

    ``expand_grid(a=[1, 2], b=["x"])`` yields ``{"a": 1, "b": "x"}`` and
    ``{"a": 2, "b": "x"}``.  Axis order follows the keyword order, with the
    last axis varying fastest.
    """
    if not axes:
        return
    names = list(axes)
    for values in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, values))


#: Lazily created module-level runner shared by the analysis and DSE layers,
#: so separate tables/figures reuse each other's evaluations within a process.
_SHARED_RUNNER: Optional[SweepRunner] = None


def default_runner() -> SweepRunner:
    """The process-wide shared runner (serial executor, capture off)."""
    global _SHARED_RUNNER
    if _SHARED_RUNNER is None:
        _SHARED_RUNNER = SweepRunner()
    return _SHARED_RUNNER
