"""Analytical cost models for the communication collectives (Eqs. 3 and 4).

Both training and inference rely on all-reduce / all-gather style collectives.
Two algorithms are modeled, following the paper's Section 3.4:

* **Ring all-reduce** (bandwidth optimal): a scatter-reduce stage followed by
  an all-gather stage.  Each stage moves ``K/N`` bytes ``N - 1`` times, so

      T_ring = 2 * K * (N - 1) / (N * BW) + 2 * l * (N - 1)          (Eq. 3)

* **Double-binary-tree all-reduce** (bandwidth and latency optimal): the
  bandwidth term is the same but the latency term grows only logarithmically,

      T_tree = 2 * K * (N - 1) / (N * BW) + 2 * l * log2(N)          (Eq. 4)

The latency term is negligible for the huge gradients of training but matters
for the kilobyte-sized all-reduces of autoregressive inference, which is why
the tree algorithm "helps scale inference up to 8 GPUs".
"""

from __future__ import annotations

import enum
import math

from ..errors import ConfigurationError


class CollectiveAlgorithm(enum.Enum):
    """Algorithm used to execute an all-reduce style collective."""

    RING = "ring"
    DOUBLE_BINARY_TREE = "double_binary_tree"


def _validate(data_bytes: float, group_size: int, bandwidth: float, latency: float) -> None:
    if data_bytes < 0:
        raise ConfigurationError("data_bytes must be non-negative")
    if group_size < 1:
        raise ConfigurationError("group_size must be at least 1")
    if bandwidth <= 0:
        raise ConfigurationError("bandwidth must be positive")
    if latency < 0:
        raise ConfigurationError("latency must be non-negative")


def ring_all_reduce_time(data_bytes: float, group_size: int, bandwidth: float, latency: float = 0.0) -> float:
    """Ring all-reduce time (Eq. 3)."""
    _validate(data_bytes, group_size, bandwidth, latency)
    if group_size == 1 or data_bytes == 0:
        return 0.0
    transfer = 2.0 * data_bytes * (group_size - 1) / (group_size * bandwidth)
    return transfer + 2.0 * latency * (group_size - 1)


def tree_all_reduce_time(data_bytes: float, group_size: int, bandwidth: float, latency: float = 0.0) -> float:
    """Double-binary-tree all-reduce time (Eq. 4)."""
    _validate(data_bytes, group_size, bandwidth, latency)
    if group_size == 1 or data_bytes == 0:
        return 0.0
    transfer = 2.0 * data_bytes * (group_size - 1) / (group_size * bandwidth)
    return transfer + 2.0 * latency * math.log2(group_size)


def all_reduce_time(
    data_bytes: float,
    group_size: int,
    bandwidth: float,
    latency: float = 0.0,
    algorithm: CollectiveAlgorithm = CollectiveAlgorithm.RING,
) -> float:
    """All-reduce time under the chosen algorithm."""
    if algorithm is CollectiveAlgorithm.RING:
        return ring_all_reduce_time(data_bytes, group_size, bandwidth, latency)
    return tree_all_reduce_time(data_bytes, group_size, bandwidth, latency)


def all_gather_time(data_bytes: float, group_size: int, bandwidth: float, latency: float = 0.0) -> float:
    """Ring all-gather time: one pipeline sweep instead of the all-reduce's two."""
    _validate(data_bytes, group_size, bandwidth, latency)
    if group_size == 1 or data_bytes == 0:
        return 0.0
    transfer = data_bytes * (group_size - 1) / (group_size * bandwidth)
    return transfer + latency * (group_size - 1)


def reduce_scatter_time(data_bytes: float, group_size: int, bandwidth: float, latency: float = 0.0) -> float:
    """Ring reduce-scatter time: same cost structure as the all-gather."""
    return all_gather_time(data_bytes, group_size, bandwidth, latency)


def point_to_point_time(data_bytes: float, bandwidth: float, latency: float = 0.0) -> float:
    """Time to send ``data_bytes`` from one device to a neighbour."""
    _validate(data_bytes, 1, bandwidth, latency)
    if data_bytes == 0:
        return 0.0
    return data_bytes / bandwidth + latency


def broadcast_time(data_bytes: float, group_size: int, bandwidth: float, latency: float = 0.0) -> float:
    """Binary-tree broadcast time."""
    _validate(data_bytes, group_size, bandwidth, latency)
    if group_size == 1 or data_bytes == 0:
        return 0.0
    return data_bytes / bandwidth + latency * math.log2(group_size)
