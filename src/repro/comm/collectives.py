"""Analytical cost models for the communication collectives (Eqs. 3 and 4).

Both training and inference rely on all-reduce / all-gather style collectives.
Two algorithms are modeled, following the paper's Section 3.4:

* **Ring all-reduce** (bandwidth optimal): a scatter-reduce stage followed by
  an all-gather stage.  Each stage moves ``K/N`` bytes ``N - 1`` times, so

      T_ring = 2 * K * (N - 1) / (N * BW) + 2 * l * (N - 1)          (Eq. 3)

* **Double-binary-tree all-reduce** (bandwidth and latency optimal): the
  bandwidth term is the same but the latency term grows only logarithmically,

      T_tree = 2 * K * (N - 1) / (N * BW) + 2 * l * log2(N)          (Eq. 4)

The latency term is negligible for the huge gradients of training but matters
for the kilobyte-sized all-reduces of autoregressive inference, which is why
the tree algorithm "helps scale inference up to 8 GPUs".
"""

from __future__ import annotations

import enum
import math

import numpy as np

from ..errors import ConfigurationError


class CollectiveAlgorithm(enum.Enum):
    """Algorithm used to execute an all-reduce style collective."""

    RING = "ring"
    DOUBLE_BINARY_TREE = "double_binary_tree"


def _validate(data_bytes: float, group_size: int, bandwidth: float, latency: float) -> None:
    if data_bytes < 0:
        raise ConfigurationError("data_bytes must be non-negative")
    if group_size < 1:
        raise ConfigurationError("group_size must be at least 1")
    if bandwidth <= 0:
        raise ConfigurationError("bandwidth must be positive")
    if latency < 0:
        raise ConfigurationError("latency must be non-negative")


def ring_all_reduce_time(data_bytes: float, group_size: int, bandwidth: float, latency: float = 0.0) -> float:
    """Ring all-reduce time (Eq. 3)."""
    _validate(data_bytes, group_size, bandwidth, latency)
    if group_size == 1 or data_bytes == 0:
        return 0.0
    transfer = 2.0 * data_bytes * (group_size - 1) / (group_size * bandwidth)
    return transfer + 2.0 * latency * (group_size - 1)


def tree_all_reduce_time(data_bytes: float, group_size: int, bandwidth: float, latency: float = 0.0) -> float:
    """Double-binary-tree all-reduce time (Eq. 4)."""
    _validate(data_bytes, group_size, bandwidth, latency)
    if group_size == 1 or data_bytes == 0:
        return 0.0
    transfer = 2.0 * data_bytes * (group_size - 1) / (group_size * bandwidth)
    return transfer + 2.0 * latency * math.log2(group_size)


def all_reduce_time(
    data_bytes: float,
    group_size: int,
    bandwidth: float,
    latency: float = 0.0,
    algorithm: CollectiveAlgorithm = CollectiveAlgorithm.RING,
) -> float:
    """All-reduce time under the chosen algorithm."""
    if algorithm is CollectiveAlgorithm.RING:
        return ring_all_reduce_time(data_bytes, group_size, bandwidth, latency)
    return tree_all_reduce_time(data_bytes, group_size, bandwidth, latency)


def all_gather_time(data_bytes: float, group_size: int, bandwidth: float, latency: float = 0.0) -> float:
    """Ring all-gather time: one pipeline sweep instead of the all-reduce's two."""
    _validate(data_bytes, group_size, bandwidth, latency)
    if group_size == 1 or data_bytes == 0:
        return 0.0
    transfer = data_bytes * (group_size - 1) / (group_size * bandwidth)
    return transfer + latency * (group_size - 1)


def reduce_scatter_time(data_bytes: float, group_size: int, bandwidth: float, latency: float = 0.0) -> float:
    """Ring reduce-scatter time: same cost structure as the all-gather."""
    return all_gather_time(data_bytes, group_size, bandwidth, latency)


def point_to_point_time(data_bytes: float, bandwidth: float, latency: float = 0.0) -> float:
    """Time to send ``data_bytes`` from one device to a neighbour."""
    _validate(data_bytes, 1, bandwidth, latency)
    if data_bytes == 0:
        return 0.0
    return data_bytes / bandwidth + latency


def broadcast_time(data_bytes: float, group_size: int, bandwidth: float, latency: float = 0.0) -> float:
    """Binary-tree broadcast time."""
    _validate(data_bytes, group_size, bandwidth, latency)
    if group_size == 1 or data_bytes == 0:
        return 0.0
    return data_bytes / bandwidth + latency * math.log2(group_size)


# ---------------------------------------------------------------------------
# Vectorized (struct-of-arrays) forms of the same equations.
#
# Each function mirrors its scalar counterpart's floating-point operation
# order exactly (the bit-for-bit contract of the batched backends, see
# ``repro.perf.batched``), so a batched collective query returns the very
# floats the scalar loop would have produced.  Callers pass only non-trivial
# rows (``group_size > 1`` unless noted, ``data_bytes > 0``); the trivial
# zero-time case is handled by the caller's mask, matching the scalar early
# returns.
# ---------------------------------------------------------------------------


def exact_log2(values: np.ndarray) -> np.ndarray:
    """Element-wise ``math.log2``, bit-identical to the scalar calls.

    ``np.log2`` is allowed to differ from the C library's ``log2`` in the
    last ulp on some platforms; the latency terms of the tree/broadcast
    equations would then break the batched-vs-scalar equality contract.
    Group sizes take few distinct values per batch, so computing
    ``math.log2`` once per unique value costs nothing.
    """
    uniques, inverse = np.unique(values, return_inverse=True)
    logs = np.array([math.log2(value) for value in uniques.tolist()], dtype=np.float64)
    return logs[inverse]


def ring_all_reduce_times(
    data_bytes: np.ndarray, group_sizes: np.ndarray, bandwidths: np.ndarray, latencies: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`ring_all_reduce_time` (Eq. 3) over non-trivial rows."""
    transfer = 2.0 * data_bytes * (group_sizes - 1.0) / (group_sizes * bandwidths)
    return transfer + 2.0 * latencies * (group_sizes - 1.0)


def tree_all_reduce_times(
    data_bytes: np.ndarray, group_sizes: np.ndarray, bandwidths: np.ndarray, latencies: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`tree_all_reduce_time` (Eq. 4) over non-trivial rows."""
    transfer = 2.0 * data_bytes * (group_sizes - 1.0) / (group_sizes * bandwidths)
    return transfer + 2.0 * latencies * exact_log2(group_sizes)


def all_gather_times(
    data_bytes: np.ndarray, group_sizes: np.ndarray, bandwidths: np.ndarray, latencies: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`all_gather_time` over non-trivial rows."""
    transfer = data_bytes * (group_sizes - 1.0) / (group_sizes * bandwidths)
    return transfer + latencies * (group_sizes - 1.0)


def reduce_scatter_times(
    data_bytes: np.ndarray, group_sizes: np.ndarray, bandwidths: np.ndarray, latencies: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`reduce_scatter_time` (same cost structure as all-gather)."""
    return all_gather_times(data_bytes, group_sizes, bandwidths, latencies)


def point_to_point_times(
    data_bytes: np.ndarray, bandwidths: np.ndarray, latencies: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`point_to_point_time` over rows with ``data_bytes > 0``."""
    return data_bytes / bandwidths + latencies


def broadcast_times(
    data_bytes: np.ndarray, group_sizes: np.ndarray, bandwidths: np.ndarray, latencies: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`broadcast_time` over non-trivial rows."""
    return data_bytes / bandwidths + latencies * exact_log2(group_sizes)
