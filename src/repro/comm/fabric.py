"""System-level collective pricing: pick the fabric, apply utilization, add overheads.

The :class:`CollectiveModel` is the bridge between the abstract
:class:`~repro.workload.operators.CommunicationOp` descriptors of a task
graph and the analytical collective equations.  It selects the right fabric
(intra-node NVLink vs. inter-node InfiniBand/NVS) for the operation's scope,
applies a data-volume-dependent bandwidth-utilization factor (small inference
messages never saturate the links), and adds a fixed per-collective software
launch overhead (the NCCL/runtime cost that dominates kilobyte-sized
all-reduces).
"""

from __future__ import annotations

import dataclasses

from ..caching import Memo
from ..errors import ConfigurationError
from ..hardware.cluster import SystemSpec
from ..hardware.network import Interconnect
from ..units import MIB, MICROSECOND
from ..workload.operators import CollectiveKind, CommunicationOp
from .collectives import (
    CollectiveAlgorithm,
    all_gather_time,
    all_reduce_time,
    broadcast_time,
    point_to_point_time,
    reduce_scatter_time,
)

#: Message size at which the links are considered fully saturated.
DEFAULT_SATURATION_BYTES = 4 * MIB
#: Utilization floor for tiny messages.
DEFAULT_MIN_UTILIZATION = 0.25
#: Per-collective software (launch/protocol) overhead.  Calibrated against the
#: small-message all-reduce cost seen in the inference validation (Table 2).
DEFAULT_SOFTWARE_LATENCY = 20.0 * MICROSECOND


@dataclasses.dataclass(frozen=True)
class CollectiveModel:
    """Prices communication operators on a given system.

    Attributes:
        system: The hardware system providing the fabrics.
        algorithm: All-reduce algorithm (ring, or double binary tree which is
            the latency-optimal choice the paper uses for inference).
        saturation_bytes: Message size at which full link utilization is reached.
        min_utilization: Utilization floor for very small messages.
        software_latency: Fixed software overhead added per collective call.
    """

    system: SystemSpec
    algorithm: CollectiveAlgorithm = CollectiveAlgorithm.RING
    saturation_bytes: float = DEFAULT_SATURATION_BYTES
    min_utilization: float = DEFAULT_MIN_UTILIZATION
    software_latency: float = DEFAULT_SOFTWARE_LATENCY

    def __post_init__(self) -> None:
        if self.saturation_bytes <= 0:
            raise ConfigurationError("saturation_bytes must be positive")
        if not 0 < self.min_utilization <= 1:
            raise ConfigurationError("min_utilization must be in (0, 1]")
        if self.software_latency < 0:
            raise ConfigurationError("software_latency must be non-negative")
        # Memoization of repeated collective queries: scenario sweeps price the
        # same (collective, bytes, group, scope) tuples over and over.  Keyed
        # by the frozen CommunicationOp; not a dataclass field, so model
        # equality and replace() semantics are unchanged.
        object.__setattr__(self, "_time_cache", Memo())

    # -- fabric selection and effective bandwidth ------------------------------------

    def fabric_for_scope(self, scope: str) -> Interconnect:
        """The interconnect a collective with the given scope uses."""
        if scope == "inter_node":
            return self.system.inter_node_fabric
        return self.system.intra_node_fabric

    def bandwidth_utilization(self, data_bytes: float) -> float:
        """Data-volume-dependent fraction of the peak link bandwidth achieved.

        Large (multi-MiB) messages reach full utilization; small messages ramp
        linearly down to :attr:`min_utilization`.
        """
        if data_bytes <= 0:
            return self.min_utilization
        ramp = data_bytes / self.saturation_bytes
        return min(1.0, max(self.min_utilization, ramp))

    def per_device_bandwidth(self, fabric: Interconnect) -> float:
        """The bandwidth one device sees on ``fabric``.

        Node-level fabrics (e.g. the paper's "HDR InfiniBand (200 GB/s)")
        quote the aggregate NIC bandwidth of one node; each of the node's
        devices only gets its share of it.
        """
        if fabric.per_device:
            return fabric.bandwidth
        return fabric.bandwidth / max(1, self.system.devices_per_node)

    def effective_bandwidth(self, fabric: Interconnect, data_bytes: float) -> float:
        """Per-device bandwidth x fabric utilization x message-size utilization."""
        return self.per_device_bandwidth(fabric) * fabric.utilization * self.bandwidth_utilization(data_bytes)

    # -- pricing ------------------------------------------------------------------------

    def time(self, op: CommunicationOp) -> float:
        """Execution time of one communication operator in seconds."""
        if op.is_trivial:
            return 0.0
        cached = self._time_cache.get(op)
        if cached is not None:
            return cached
        fabric = self.fabric_for_scope(op.scope)
        bandwidth = self.effective_bandwidth(fabric, op.data_bytes)
        latency = fabric.latency
        if op.collective is CollectiveKind.ALL_REDUCE:
            base = all_reduce_time(op.data_bytes, op.group_size, bandwidth, latency, algorithm=self.algorithm)
        elif op.collective is CollectiveKind.ALL_GATHER:
            base = all_gather_time(op.data_bytes, op.group_size, bandwidth, latency)
        elif op.collective is CollectiveKind.REDUCE_SCATTER:
            base = reduce_scatter_time(op.data_bytes, op.group_size, bandwidth, latency)
        elif op.collective is CollectiveKind.BROADCAST:
            base = broadcast_time(op.data_bytes, op.group_size, bandwidth, latency)
        else:
            base = point_to_point_time(op.data_bytes, bandwidth, latency)
        return self._time_cache.put(op, base + self.software_latency)

    def all_reduce(self, data_bytes: float, group_size: int, scope: str = "intra_node") -> float:
        """Convenience: time of a raw all-reduce outside a task graph."""
        op = CommunicationOp(
            name="all_reduce",
            collective=CollectiveKind.ALL_REDUCE,
            data_bytes=data_bytes,
            group_size=group_size,
            scope=scope,
        )
        return self.time(op)

    def point_to_point(self, data_bytes: float, scope: str = "inter_node") -> float:
        """Convenience: time of a raw point-to-point transfer."""
        op = CommunicationOp(
            name="p2p",
            collective=CollectiveKind.POINT_TO_POINT,
            data_bytes=data_bytes,
            group_size=2,
            scope=scope,
        )
        return self.time(op)

    def with_algorithm(self, algorithm: CollectiveAlgorithm) -> "CollectiveModel":
        """Return a copy of the model using a different all-reduce algorithm."""
        return dataclasses.replace(self, algorithm=algorithm)
