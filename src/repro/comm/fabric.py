"""System-level collective pricing: pick the fabric, apply utilization, add overheads.

The :class:`CollectiveModel` is the bridge between the abstract
:class:`~repro.workload.operators.CommunicationOp` descriptors of a task
graph and the analytical collective equations.  It selects the right fabric
(intra-node NVLink vs. inter-node InfiniBand/NVS) for the operation's scope,
applies a data-volume-dependent bandwidth-utilization factor (small inference
messages never saturate the links), and adds a fixed per-collective software
launch overhead (the NCCL/runtime cost that dominates kilobyte-sized
all-reduces).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..caching import Memo
from ..errors import ConfigurationError
from ..hardware.cluster import SystemSpec
from ..hardware.network import Interconnect
from ..units import MIB, MICROSECOND
from ..workload.operators import CollectiveKind, CommunicationOp
from .collectives import (
    CollectiveAlgorithm,
    all_gather_time,
    all_gather_times,
    all_reduce_time,
    broadcast_time,
    broadcast_times,
    point_to_point_time,
    point_to_point_times,
    reduce_scatter_time,
    reduce_scatter_times,
    ring_all_reduce_times,
    tree_all_reduce_times,
)

#: Message size at which the links are considered fully saturated.
DEFAULT_SATURATION_BYTES = 4 * MIB
#: Utilization floor for tiny messages.
DEFAULT_MIN_UTILIZATION = 0.25
#: Per-collective software (launch/protocol) overhead.  Calibrated against the
#: small-message all-reduce cost seen in the inference validation (Table 2).
DEFAULT_SOFTWARE_LATENCY = 20.0 * MICROSECOND


#: Dispatch codes of the batched pricing path, one per collective kind.
_KIND_CODES: Dict[CollectiveKind, int] = {
    CollectiveKind.ALL_REDUCE: 0,
    CollectiveKind.ALL_GATHER: 1,
    CollectiveKind.REDUCE_SCATTER: 2,
    CollectiveKind.BROADCAST: 3,
    CollectiveKind.POINT_TO_POINT: 4,
}


@dataclasses.dataclass(frozen=True)
class CollectiveBatch:
    """A struct-of-arrays batch of communication operators.

    The collective analogue of :class:`~repro.perf.batched.GemmBatch`: the
    fields every collective equation needs, transposed into NumPy columns so
    :meth:`CollectiveModel.evaluate_batch` prices a whole generation of
    queries in a handful of vectorized operations.

    Attributes:
        ops: The source operators, in row order.
        data_bytes: Payload sizes (float64).
        group_sizes: Participating device counts (float64; exact for every
            realistic group size).
        kind_codes: Collective-kind dispatch codes (see ``_KIND_CODES``).
        inter_node: Whether each row uses the inter-node fabric.
    """

    ops: Tuple[CommunicationOp, ...]
    data_bytes: np.ndarray
    group_sizes: np.ndarray
    kind_codes: np.ndarray
    inter_node: np.ndarray

    def __len__(self) -> int:
        return len(self.ops)

    @classmethod
    def from_ops(cls, ops: Sequence[CommunicationOp]) -> "CollectiveBatch":
        """Transpose a sequence of operators into one batch."""
        ops = tuple(ops)
        return cls(
            ops=ops,
            data_bytes=np.array([op.data_bytes for op in ops], dtype=np.float64),
            group_sizes=np.array([op.group_size for op in ops], dtype=np.float64),
            kind_codes=np.array([_KIND_CODES[op.collective] for op in ops], dtype=np.int8),
            inter_node=np.array([op.scope == "inter_node" for op in ops], dtype=bool),
        )


@dataclasses.dataclass(frozen=True)
class CollectiveModel:
    """Prices communication operators on a given system.

    Attributes:
        system: The hardware system providing the fabrics.
        algorithm: All-reduce algorithm (ring, or double binary tree which is
            the latency-optimal choice the paper uses for inference).
        saturation_bytes: Message size at which full link utilization is reached.
        min_utilization: Utilization floor for very small messages.
        software_latency: Fixed software overhead added per collective call.
    """

    system: SystemSpec
    algorithm: CollectiveAlgorithm = CollectiveAlgorithm.RING
    saturation_bytes: float = DEFAULT_SATURATION_BYTES
    min_utilization: float = DEFAULT_MIN_UTILIZATION
    software_latency: float = DEFAULT_SOFTWARE_LATENCY

    def __post_init__(self) -> None:
        if self.saturation_bytes <= 0:
            raise ConfigurationError("saturation_bytes must be positive")
        if not 0 < self.min_utilization <= 1:
            raise ConfigurationError("min_utilization must be in (0, 1]")
        if self.software_latency < 0:
            raise ConfigurationError("software_latency must be non-negative")
        # Memoization of repeated collective queries: scenario sweeps price the
        # same (collective, bytes, group, scope) tuples over and over.  Keyed
        # by the frozen CommunicationOp; not a dataclass field, so model
        # equality and replace() semantics are unchanged.
        object.__setattr__(self, "_time_cache", Memo())

    # -- fabric selection and effective bandwidth ------------------------------------

    def fabric_for_scope(self, scope: str) -> Interconnect:
        """The interconnect a collective with the given scope uses."""
        if scope == "inter_node":
            return self.system.inter_node_fabric
        return self.system.intra_node_fabric

    def bandwidth_utilization(self, data_bytes: float) -> float:
        """Data-volume-dependent fraction of the peak link bandwidth achieved.

        Large (multi-MiB) messages reach full utilization; small messages ramp
        linearly down to :attr:`min_utilization`.
        """
        if data_bytes <= 0:
            return self.min_utilization
        ramp = data_bytes / self.saturation_bytes
        return min(1.0, max(self.min_utilization, ramp))

    def per_device_bandwidth(self, fabric: Interconnect) -> float:
        """The bandwidth one device sees on ``fabric``.

        Node-level fabrics (e.g. the paper's "HDR InfiniBand (200 GB/s)")
        quote the aggregate NIC bandwidth of one node; each of the node's
        devices only gets its share of it.
        """
        if fabric.per_device:
            return fabric.bandwidth
        return fabric.bandwidth / max(1, self.system.devices_per_node)

    def effective_bandwidth(self, fabric: Interconnect, data_bytes: float) -> float:
        """Per-device bandwidth x fabric utilization x message-size utilization."""
        return self.per_device_bandwidth(fabric) * fabric.utilization * self.bandwidth_utilization(data_bytes)

    # -- pricing ------------------------------------------------------------------------

    def time(self, op: CommunicationOp) -> float:
        """Execution time of one communication operator in seconds."""
        if op.is_trivial:
            return 0.0
        cached = self._time_cache.get(op)
        if cached is not None:
            return cached
        fabric = self.fabric_for_scope(op.scope)
        bandwidth = self.effective_bandwidth(fabric, op.data_bytes)
        latency = fabric.latency
        if op.collective is CollectiveKind.ALL_REDUCE:
            base = all_reduce_time(op.data_bytes, op.group_size, bandwidth, latency, algorithm=self.algorithm)
        elif op.collective is CollectiveKind.ALL_GATHER:
            base = all_gather_time(op.data_bytes, op.group_size, bandwidth, latency)
        elif op.collective is CollectiveKind.REDUCE_SCATTER:
            base = reduce_scatter_time(op.data_bytes, op.group_size, bandwidth, latency)
        elif op.collective is CollectiveKind.BROADCAST:
            base = broadcast_time(op.data_bytes, op.group_size, bandwidth, latency)
        else:
            base = point_to_point_time(op.data_bytes, bandwidth, latency)
        return self._time_cache.put(op, base + self.software_latency)

    def memoized(self, op: CommunicationOp) -> bool:
        """Whether ``op``'s time is already in the shared memo."""
        return op in self._time_cache

    def memoize(self, op: CommunicationOp, time: float) -> float:
        """Seed the shared memo with an externally computed time (see ``evaluate_batch``)."""
        return self._time_cache.put(op, time)

    def evaluate_batch(self, batch: CollectiveBatch) -> np.ndarray:
        """Price every operator of ``batch`` in a few vectorized operations.

        Returns the total times (base + software latency) in row order,
        bit-for-bit equal to calling :meth:`time` per operator: the fabric
        selection, the utilization ramp, and each collective equation mirror
        the scalar floating-point operation order exactly (trivial rows are
        ``0.0``, with no software latency, like the scalar early return).
        The memo is neither read nor written -- callers that want seeding
        combine this with :meth:`memoized` / :meth:`memoize` (see
        :meth:`time_batch`).
        """
        times = np.zeros(len(batch.ops), dtype=np.float64)
        active = ~((batch.group_sizes <= 1.0) | (batch.data_bytes == 0.0))
        if not active.any():
            return times
        # bandwidth_utilization, vectorized: min(1.0, max(floor, ramp)),
        # with the floor short-circuit for empty payloads.
        ramp = batch.data_bytes / self.saturation_bytes
        utilization = np.minimum(1.0, np.maximum(self.min_utilization, ramp))
        utilization = np.where(batch.data_bytes <= 0.0, self.min_utilization, utilization)
        # effective_bandwidth = (per-device bandwidth * fabric utilization)
        # * message-size utilization; the per-fabric product is one scalar.
        intra = self.fabric_for_scope("intra_node")
        inter = self.fabric_for_scope("inter_node")
        intra_peak = self.per_device_bandwidth(intra) * intra.utilization
        inter_peak = self.per_device_bandwidth(inter) * inter.utilization
        bandwidths = np.where(batch.inter_node, inter_peak, intra_peak) * utilization
        latencies = np.where(batch.inter_node, inter.latency, intra.latency)
        all_reduce_times = (
            ring_all_reduce_times
            if self.algorithm is CollectiveAlgorithm.RING
            else tree_all_reduce_times
        )
        for code, formula in (
            (_KIND_CODES[CollectiveKind.ALL_REDUCE], all_reduce_times),
            (_KIND_CODES[CollectiveKind.ALL_GATHER], all_gather_times),
            (_KIND_CODES[CollectiveKind.REDUCE_SCATTER], reduce_scatter_times),
            (_KIND_CODES[CollectiveKind.BROADCAST], broadcast_times),
        ):
            mask = active & (batch.kind_codes == code)
            if mask.any():
                base = formula(
                    batch.data_bytes[mask], batch.group_sizes[mask], bandwidths[mask], latencies[mask]
                )
                times[mask] = base + self.software_latency
        mask = active & (batch.kind_codes == _KIND_CODES[CollectiveKind.POINT_TO_POINT])
        if mask.any():
            base = point_to_point_times(batch.data_bytes[mask], bandwidths[mask], latencies[mask])
            times[mask] = base + self.software_latency
        return times

    def time_batch(self, ops: Sequence[CommunicationOp]) -> List[float]:
        """Times of many operators: memo-served where possible, one
        :meth:`evaluate_batch` call for the rest (which then seeds the memo,
        exactly like repeated :meth:`time` calls would)."""
        times: List[Optional[float]] = [None] * len(ops)
        missing: List[CommunicationOp] = []
        missing_rows: Dict[CommunicationOp, int] = {}
        for index, op in enumerate(ops):
            if op.is_trivial:
                times[index] = 0.0
                continue
            cached = self._time_cache.get(op)
            if cached is not None:
                times[index] = cached
            elif op not in missing_rows:
                missing_rows[op] = len(missing)
                missing.append(op)
        if missing:
            fresh = self.evaluate_batch(CollectiveBatch.from_ops(missing))
            fresh_times = fresh.tolist()
            for op, row in missing_rows.items():
                self._time_cache.put(op, fresh_times[row])
            for index, op in enumerate(ops):
                if times[index] is None:
                    times[index] = fresh_times[missing_rows[op]]
        return times  # type: ignore[return-value]  # every row was filled above

    def all_reduce(self, data_bytes: float, group_size: int, scope: str = "intra_node") -> float:
        """Convenience: time of a raw all-reduce outside a task graph."""
        op = CommunicationOp(
            name="all_reduce",
            collective=CollectiveKind.ALL_REDUCE,
            data_bytes=data_bytes,
            group_size=group_size,
            scope=scope,
        )
        return self.time(op)

    def point_to_point(self, data_bytes: float, scope: str = "inter_node") -> float:
        """Convenience: time of a raw point-to-point transfer."""
        op = CommunicationOp(
            name="p2p",
            collective=CollectiveKind.POINT_TO_POINT,
            data_bytes=data_bytes,
            group_size=2,
            scope=scope,
        )
        return self.time(op)

    def with_algorithm(self, algorithm: CollectiveAlgorithm) -> "CollectiveModel":
        """Return a copy of the model using a different all-reduce algorithm."""
        return dataclasses.replace(self, algorithm=algorithm)


# ---------------------------------------------------------------------------
# Interning: one default-parameter CollectiveModel per (system, algorithm).
#
# Mirrors the catalog's SystemSpec interning: engines, training models, and
# step-cost models built for the same system share one model -- and with it
# one collective-time memo, so cross-scenario dedup (the sweep batch planner)
# hits a single cache instead of per-instance ones.
# ---------------------------------------------------------------------------

_SHARED_MODEL_CACHE_SIZE = 64
#: Value-keyed intern table: equal (not just identical) systems share a model.
_SHARED_MODELS: Dict[Tuple[SystemSpec, CollectiveAlgorithm], CollectiveModel] = {}
#: Identity fast path: hashing a deep SystemSpec costs microseconds, an
#: ``id()`` lookup does not.  The entry pins the spec object so its id cannot
#: be recycled while cached.
_SHARED_BY_ID: Dict[Tuple[int, CollectiveAlgorithm], Tuple[SystemSpec, CollectiveModel]] = {}


def shared_collective_model(
    system: SystemSpec, algorithm: CollectiveAlgorithm = CollectiveAlgorithm.RING
) -> CollectiveModel:
    """The interned default-parameter :class:`CollectiveModel` of a system.

    Callers that need non-default saturation/latency parameters construct
    their own model; every default construction site routes through here.
    """
    key = (id(system), algorithm)
    cached = _SHARED_BY_ID.get(key)
    if cached is not None:
        return cached[1]
    model = _SHARED_MODELS.get((system, algorithm))
    if model is None:
        if len(_SHARED_MODELS) >= _SHARED_MODEL_CACHE_SIZE:
            _SHARED_MODELS.pop(next(iter(_SHARED_MODELS)))
        model = CollectiveModel(system=system, algorithm=algorithm)
        _SHARED_MODELS[(system, algorithm)] = model
    if len(_SHARED_BY_ID) >= _SHARED_MODEL_CACHE_SIZE * 8:
        _SHARED_BY_ID.clear()
    _SHARED_BY_ID[key] = (system, model)
    return model


def clear_collective_model_cache() -> None:
    """Drop every interned collective model (cold-benchmark support)."""
    _SHARED_MODELS.clear()
    _SHARED_BY_ID.clear()
