"""Communication models: collective equations and system-level pricing."""

from .collectives import (
    CollectiveAlgorithm,
    all_gather_time,
    all_reduce_time,
    broadcast_time,
    point_to_point_time,
    reduce_scatter_time,
    ring_all_reduce_time,
    tree_all_reduce_time,
)
from .fabric import (
    DEFAULT_MIN_UTILIZATION,
    DEFAULT_SATURATION_BYTES,
    DEFAULT_SOFTWARE_LATENCY,
    CollectiveModel,
)

__all__ = [
    "CollectiveAlgorithm",
    "CollectiveModel",
    "DEFAULT_MIN_UTILIZATION",
    "DEFAULT_SATURATION_BYTES",
    "DEFAULT_SOFTWARE_LATENCY",
    "all_gather_time",
    "all_reduce_time",
    "broadcast_time",
    "point_to_point_time",
    "reduce_scatter_time",
    "ring_all_reduce_time",
    "tree_all_reduce_time",
]
