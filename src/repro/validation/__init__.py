"""Published reference data and validation metrics."""

from .metrics import (
    absolute_percentage_error,
    geometric_mean,
    max_absolute_percentage_error,
    mean_absolute_percentage_error,
    relative_error,
)
from .reference import (
    CASE_STUDY_CONFIGS,
    GPU_GENERATION_SCALING_SYSTEMS,
    GPU_GENERATION_SPEEDUP_CLAIMS,
    TABLE1_MAX_RELATIVE_ERROR,
    TABLE1_TRAINING_ROWS,
    TABLE2_INFERENCE_ROWS,
    TABLE2_MAX_RELATIVE_ERROR,
    CaseStudyConfig,
    InferenceValidationRow,
    TrainingValidationRow,
    find_inference_row,
    find_training_row,
)

__all__ = [
    "CASE_STUDY_CONFIGS",
    "CaseStudyConfig",
    "GPU_GENERATION_SCALING_SYSTEMS",
    "GPU_GENERATION_SPEEDUP_CLAIMS",
    "InferenceValidationRow",
    "TABLE1_MAX_RELATIVE_ERROR",
    "TABLE1_TRAINING_ROWS",
    "TABLE2_INFERENCE_ROWS",
    "TABLE2_MAX_RELATIVE_ERROR",
    "TrainingValidationRow",
    "absolute_percentage_error",
    "find_inference_row",
    "find_training_row",
    "geometric_mean",
    "max_absolute_percentage_error",
    "mean_absolute_percentage_error",
    "relative_error",
]
