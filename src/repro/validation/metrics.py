"""Error metrics used by the validation studies."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError


def relative_error(predicted: float, reference: float) -> float:
    """Signed relative error ``(predicted - reference) / reference``."""
    if reference == 0:
        raise ConfigurationError("reference value must be non-zero")
    return (predicted - reference) / reference


def relative_error_percent(predicted, reference) -> "np.ndarray":
    """Vectorized signed relative error in percent, with the zero-reference guard.

    The array twin of :func:`relative_error`, used by the columnar validation
    drivers: ``(predicted - reference) / reference * 100`` element-wise.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if (reference == 0).any():
        raise ConfigurationError("reference values must be non-zero")
    return (predicted - reference) / reference * 100.0


def absolute_percentage_error(predicted: float, reference: float) -> float:
    """Absolute percentage error ``|predicted - reference| / reference * 100``."""
    return abs(relative_error(predicted, reference)) * 100.0


def mean_absolute_percentage_error(predicted: Sequence[float], reference: Sequence[float]) -> float:
    """Mean absolute percentage error over paired sequences."""
    if len(predicted) != len(reference):
        raise ConfigurationError("predicted and reference sequences must have the same length")
    if not predicted:
        raise ConfigurationError("sequences must be non-empty")
    return sum(absolute_percentage_error(p, r) for p, r in zip(predicted, reference)) / len(predicted)


def max_absolute_percentage_error(predicted: Sequence[float], reference: Sequence[float]) -> float:
    """Worst-case absolute percentage error over paired sequences."""
    if len(predicted) != len(reference):
        raise ConfigurationError("predicted and reference sequences must have the same length")
    if not predicted:
        raise ConfigurationError("sequences must be non-empty")
    return max(absolute_percentage_error(p, r) for p, r in zip(predicted, reference))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ConfigurationError("values must be non-empty")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ConfigurationError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
