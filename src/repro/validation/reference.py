"""Published reference data the paper validates against.

* :data:`TABLE1_TRAINING_ROWS` -- training time per batch for GPT models on
  A100 clusters, as reported by Megatron-LM (Narayanan et al. 2021) and
  Korthikanti et al. 2023, together with the paper's own predictions.
* :data:`TABLE2_INFERENCE_ROWS` -- Llama-2 inference latencies on A100 and
  H100 systems from NVIDIA's NeMo performance documentation, together with
  the paper's predictions.
* :data:`CASE_STUDY_CONFIGS` -- the training configurations of the paper's
  case studies (its Table 3).
* :data:`GPU_GENERATION_SPEEDUP_CLAIMS` -- the qualitative speed-up claims of
  the GPU-generation scaling study (Fig. 5, aligned with NVIDIA's reported
  scaling from A100 to H100 to B200).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class TrainingValidationRow:
    """One row of the paper's Table 1.

    Attributes:
        model: Model zoo name.
        num_gpus: Number of A100 GPUs in the reference run.
        global_batch_size: Global batch size in sequences.
        parallelism_label: The ``DP-TP-PP-SP`` configuration string.
        recompute: ``"full"`` or ``"selective"``.
        reference_seconds: Published training time per batch, seconds.
        paper_prediction_seconds: The paper's own prediction, seconds.
        micro_batch_size: Micro-batch size used by the reference run.
    """

    model: str
    num_gpus: int
    global_batch_size: int
    parallelism_label: str
    recompute: str
    reference_seconds: float
    paper_prediction_seconds: float
    micro_batch_size: int = 1


TABLE1_TRAINING_ROWS: List[TrainingValidationRow] = [
    # --- TP and PP only, full recomputation ---------------------------------------
    # The paper's table lists "1-8-8-1" for the 8-GPU GPT-22B run; with 8 GPUs the
    # pipeline degree is necessarily 1 (DP x TP x PP must equal the GPU count), which
    # matches the original Megatron/Korthikanti configuration (TP=8, PP=1).
    TrainingValidationRow("GPT-22B", 8, 4, "1-8-1-1", "full", 1.4, 1.4),
    TrainingValidationRow("GPT-175B", 64, 64, "1-8-8-1", "full", 18.1, 16.9),
    TrainingValidationRow("GPT-530B", 280, 280, "1-8-35-1", "full", 49.1, 46.8),
    TrainingValidationRow("GPT-1008B", 512, 512, "1-8-64-1", "full", 94.4, 87.9),
    # --- TP, PP and SP, selective recomputation ------------------------------------
    TrainingValidationRow("GPT-22B", 8, 4, "1-8-1-8", "selective", 1.1, 1.1),
    TrainingValidationRow("GPT-175B", 64, 64, "1-8-8-8", "selective", 13.8, 12.9),
    TrainingValidationRow("GPT-530B", 280, 280, "1-8-35-8", "selective", 37.8, 35.5),
    TrainingValidationRow("GPT-1008B", 512, 512, "1-8-64-8", "selective", 71.5, 69.1),
    # --- DP, TP and PP, full recomputation -------------------------------------------
    TrainingValidationRow("GPT-310B", 1920, 2160, "15-8-16-1", "full", 37.6, 34.1),
    TrainingValidationRow("GPT-530B", 2520, 2520, "9-8-35-1", "full", 54.2, 51.2),
    TrainingValidationRow("GPT-1008B", 3072, 3072, "6-8-64-1", "full", 102.4, 100.7),
]


@dataclasses.dataclass(frozen=True)
class InferenceValidationRow:
    """One row of the paper's Table 2 (one model / GPU-count / GPU-type triple).

    Attributes:
        model: Model zoo name.
        num_gpus: Number of GPUs (equal to the TP degree).
        gpu: ``"A100"`` or ``"H100"``.
        nvidia_latency_ms: NVIDIA's reported end-to-end latency, milliseconds.
        paper_prediction_ms: The paper's predicted latency, milliseconds.
        batch_size: Batch size of the benchmark (1).
        prompt_tokens: Summarization length (200).
        generated_tokens: Generation length (200).
    """

    model: str
    num_gpus: int
    gpu: str
    nvidia_latency_ms: float
    paper_prediction_ms: float
    batch_size: int = 1
    prompt_tokens: int = 200
    generated_tokens: int = 200


TABLE2_INFERENCE_ROWS: List[InferenceValidationRow] = [
    InferenceValidationRow("Llama2-70B", 8, "A100", 4735, 4284),
    InferenceValidationRow("Llama2-70B", 4, "A100", 6403, 6019),
    InferenceValidationRow("Llama2-70B", 2, "A100", 10500, 10042),
    InferenceValidationRow("Llama2-13B", 8, "A100", 1693, 1514),
    InferenceValidationRow("Llama2-13B", 4, "A100", 1894, 1748),
    InferenceValidationRow("Llama2-13B", 2, "A100", 2499, 2492),
    InferenceValidationRow("Llama2-13B", 1, "A100", 3884, 4263),
    InferenceValidationRow("Llama2-7B", 8, "A100", 1187, 1096),
    InferenceValidationRow("Llama2-7B", 4, "A100", 1280, 1166),
    InferenceValidationRow("Llama2-7B", 2, "A100", 1544, 1526),
    InferenceValidationRow("Llama2-7B", 1, "A100", 2190, 2472),
    InferenceValidationRow("Llama2-70B", 8, "H100", 3202, 3147),
    InferenceValidationRow("Llama2-70B", 4, "H100", 4116, 3986),
    InferenceValidationRow("Llama2-70B", 2, "H100", 6267, 6186),
    InferenceValidationRow("Llama2-13B", 8, "H100", 1201, 1209),
    InferenceValidationRow("Llama2-13B", 4, "H100", 1431, 1258),
    InferenceValidationRow("Llama2-13B", 2, "H100", 1717, 1617),
    InferenceValidationRow("Llama2-13B", 1, "H100", 2396, 2599),
    InferenceValidationRow("Llama2-7B", 8, "H100", 828, 899),
    InferenceValidationRow("Llama2-7B", 4, "H100", 924, 869),
    InferenceValidationRow("Llama2-7B", 2, "H100", 1143, 1016),
    InferenceValidationRow("Llama2-7B", 1, "H100", 1440, 1522),
]


@dataclasses.dataclass(frozen=True)
class CaseStudyConfig:
    """One row of the paper's Table 3 (case-study training configurations)."""

    model: str
    batch_sizes: Tuple[int, ...]
    seq_len: int
    vocab_size: int
    data_parallel: int
    tensor_parallel: int
    sequence_parallel: int
    pipeline_parallel: int

    @property
    def num_gpus(self) -> int:
        """Total GPU count: DP x TP x PP."""
        return self.data_parallel * self.tensor_parallel * self.pipeline_parallel

    @property
    def parallelism_label(self) -> str:
        """The DP-TP-PP-SP string for this configuration."""
        return f"{self.data_parallel}-{self.tensor_parallel}-{self.pipeline_parallel}-{self.sequence_parallel}"


CASE_STUDY_CONFIGS: Dict[str, CaseStudyConfig] = {
    "GPT-175B": CaseStudyConfig(
        model="GPT-175B",
        batch_sizes=(1024, 4096),
        seq_len=2048,
        vocab_size=51200,
        data_parallel=128,
        tensor_parallel=8,
        sequence_parallel=8,
        pipeline_parallel=8,
    ),
    "GPT-7B": CaseStudyConfig(
        model="GPT-7B",
        batch_sizes=(512,),
        seq_len=2048,
        vocab_size=51200,
        data_parallel=64,
        tensor_parallel=4,
        sequence_parallel=4,
        pipeline_parallel=4,
    ),
}

#: The GPU-generation scaling study's cluster line-up (paper Fig. 5), in the
#: order the figure plots them, with the batch size each bar uses.
GPU_GENERATION_SCALING_SYSTEMS: List[Tuple[str, int]] = [
    ("A100-HDR", 1024),
    ("H100-NDR", 1024),
    ("H100-NVS", 1024),
    ("H200-NVS-L", 4096),
    ("B200-NDR", 1024),
    ("B200-NVS", 1024),
    ("B200-NVS-L", 4096),
]

#: Qualitative speed-up claims versus the A100-HDR baseline the paper reports
#: for the GPU-generation scaling study, as (minimum, maximum) acceptable
#: speed-up factors used by the shape checks.
GPU_GENERATION_SPEEDUP_CLAIMS: Dict[str, Tuple[float, float]] = {
    "H100-NDR": (2.5, 7.0),      # "around 4x speedup"
    "H100-NVS": (4.0, 14.0),     # "an additional factor of 2" from the NVLink switch
    "H200-NVS-L": (6.0, 30.0),   # larger DRAM capacity -> larger (micro-)batch
    "B200-NVS-L": (15.0, 60.0),  # "~35x speed-up closely following NVIDIA's trend"
}

#: Tolerance (relative error) the paper achieves on its validation tables.
TABLE1_MAX_RELATIVE_ERROR = 0.10
TABLE2_MAX_RELATIVE_ERROR = 0.13


def find_training_row(model: str, num_gpus: int, recompute: str) -> Optional[TrainingValidationRow]:
    """Find a Table 1 row by model, GPU count and recompute strategy."""
    for row in TABLE1_TRAINING_ROWS:
        if row.model.upper() == model.upper() and row.num_gpus == num_gpus and row.recompute == recompute:
            return row
    return None


def find_inference_row(model: str, num_gpus: int, gpu: str) -> Optional[InferenceValidationRow]:
    """Find a Table 2 row by model, GPU count and GPU type."""
    for row in TABLE2_INFERENCE_ROWS:
        if row.model.upper() == model.upper() and row.num_gpus == num_gpus and row.gpu.upper() == gpu.upper():
            return row
    return None
