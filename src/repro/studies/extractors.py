"""Named extractors and derives: the serializable metric vocabulary of studies.

An **extractor** maps one :class:`~repro.sweep.runner.SweepResult` to the
metric columns of that scenario's row (or to a *list* of records, exploding
one scenario into several rows).  A **derive** post-processes the finished
:class:`~repro.sweep.table.SweepTable` -- appending vectorized columns,
joining follow-up evaluations through the same runner, or projecting a new
table.  Both are looked up *by name*, which is what lets a
:meth:`Study.to_dict() <repro.studies.study.Study.to_dict>` JSON spec carry
its full post-processing pipeline.

Register your own with :func:`register_extractor` / :func:`register_derive`::

    @register_extractor("latency_only")
    def latency_only(result):
        return {"latency_s": result.value.total_latency}

The built-in names cover every paper table/figure (see
:mod:`repro.studies.paper` for the studies using them).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.bottleneck import gemm_time_by_bound
from ..errors import ConfigurationError
from ..sweep.runner import SweepResult
from ..sweep.scenario import Scenario
from ..sweep.table import SweepTable
from ..units import GB, to_milliseconds
from ..validation.metrics import relative_error_percent

_EXTRACTORS: Dict[str, Callable] = {}
_DERIVES: Dict[str, Callable] = {}


def register_extractor(name: str) -> Callable[[Callable], Callable]:
    """Decorator: register an extractor under ``name`` (overwrites silently)."""

    def decorate(fn: Callable) -> Callable:
        _EXTRACTORS[name] = fn
        return fn

    return decorate


def register_derive(name: str) -> Callable[[Callable], Callable]:
    """Decorator: register a derive step under ``name`` (overwrites silently)."""

    def decorate(fn: Callable) -> Callable:
        _DERIVES[name] = fn
        return fn

    return decorate


def get_extractor(name: str) -> Callable:
    """Look up a registered extractor by name."""
    try:
        return _EXTRACTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown extractor {name!r}; registered: {sorted(_EXTRACTORS)}"
        ) from None


def get_derive(name: str) -> Callable:
    """Look up a registered derive step by name."""
    try:
        return _DERIVES[name]
    except KeyError:
        raise ConfigurationError(f"unknown derive {name!r}; registered: {sorted(_DERIVES)}") from None


def list_extractors() -> List[str]:
    """Names of every registered extractor."""
    return sorted(_EXTRACTORS)


def list_derives() -> List[str]:
    """Names of every registered derive step."""
    return sorted(_DERIVES)


# ---------------------------------------------------------------------------
# Extractors
# ---------------------------------------------------------------------------

@register_extractor("row")
def _row(result: SweepResult) -> Mapping[str, object]:
    """The scenario summary plus the error column (the run_table default)."""
    return result.row()


@register_extractor("error")
def _error_only(result: SweepResult) -> Mapping[str, object]:
    """Just the error column (axis columns carry all the identity)."""
    return {"error": result.error}


@register_extractor("training_validation")
def _training_validation(result: SweepResult) -> Mapping[str, object]:
    """Table-1 style training columns, in seconds."""
    report = result.report
    return {
        "predicted_s": report.step_time,
        "compute_s": report.compute_time + report.recompute_time,
        "communication_s": report.communication_time,
        "other_s": report.other_time,
    }


@register_extractor("training_times")
def _training_times(result: SweepResult) -> Mapping[str, object]:
    """Fig-6 style training columns (step/compute/communication/other)."""
    report = result.report
    return {
        "step_time": report.step_time,
        "compute_time": report.compute_time + report.recompute_time,
        "communication_time": report.communication_time,
        "other_time": report.other_time,
    }


@register_extractor("training_step")
def _training_step(result: SweepResult) -> Mapping[str, object]:
    """Fig-5 style training columns (explicit ``_s`` suffixes)."""
    report = result.report
    return {
        "step_time_s": report.step_time,
        "compute_s": report.compute_time + report.recompute_time,
        "communication_s": report.communication_time,
        "other_s": report.other_time,
    }


@register_extractor("inference_validation")
def _inference_validation(result: SweepResult) -> Mapping[str, object]:
    """Table-2 style inference columns, in milliseconds."""
    report = result.report
    return {
        "predicted_ms": report.total_latency_ms,
        "prefill_ms": to_milliseconds(report.prefill.total_time),
        "decode_ms": to_milliseconds(report.decode.total_time),
        "communication_ms": to_milliseconds(report.communication_time),
    }


@register_extractor("inference_times")
def _inference_times(result: SweepResult) -> Mapping[str, object]:
    """Fig-9 style inference columns (device/memory time vs communication)."""
    report = result.report
    return {
        "memory_time": report.device_time,
        "communication_time": report.communication_time,
    }


@register_extractor("gemm_bottlenecks")
def _gemm_bottlenecks(result: SweepResult) -> Sequence[Mapping[str, object]]:
    """Explode a bottleneck-table scenario into one row per GEMM (Table 4)."""
    return [
        {
            "gemm": entry.name,
            "m": entry.m,
            "n": entry.n,
            "k": entry.k,
            "batch": entry.batch,
            "time_us": entry.time_us,
            "bound": entry.bound_label,
        }
        for entry in result.value
    ]


@register_extractor("gemm_bound_totals")
def _gemm_bound_totals(result: SweepResult) -> Mapping[str, object]:
    """Aggregate a bottleneck table into bound-time totals (Fig. 8)."""
    totals = gemm_time_by_bound(result.value)
    return {
        "compute_bound_ms": totals["compute"] * 1e3,
        "memory_bound_ms": totals["memory"] * 1e3,
        "compute_bound_fraction": totals["compute_fraction"],
    }


@register_extractor("training_memory_gb")
def _training_memory_gb(result: SweepResult) -> Mapping[str, object]:
    """Fig-4 style per-device memory columns, in GB."""
    breakdown = result.value
    return {
        "parameters_gb": breakdown.parameter_bytes / GB,
        "optimizer_gb": (breakdown.optimizer_bytes + breakdown.gradient_bytes) / GB,
        "activations_gb": breakdown.activation_bytes / GB,
        "total_gb": breakdown.total_bytes / GB,
    }


@register_extractor("serving_frontier")
def _serving_frontier(result: SweepResult) -> Mapping[str, object]:
    """Serving-simulator tail latencies, throughput, goodput (error-tolerant)."""
    scenario = result.scenario
    report = result.report
    ok = result.ok
    return {
        "model": scenario.model.name,
        "arrival": scenario.serving_config.trace.arrival,
        "completed": report.completed_requests if ok else 0,
        "rejected": report.rejected_requests if ok else 0,
        "ttft_p50_s": report.ttft_p50 if ok else None,
        "ttft_p99_s": report.ttft_p99 if ok else None,
        "tpot_p50_s": report.tpot_p50 if ok else None,
        "tpot_p99_s": report.tpot_p99 if ok else None,
        "requests_per_s": report.request_throughput if ok else None,
        "tokens_per_s": report.output_token_throughput if ok else None,
        "goodput_rps": report.goodput if ok else None,
        "slo_attainment": report.slo_attainment if ok else None,
        "utilization": report.device_utilization if ok else None,
        "mean_decode_batch": report.mean_decode_batch if ok else None,
        "error": result.error,
    }


@register_extractor("fleet_frontier")
def _fleet_frontier(result: SweepResult) -> Mapping[str, object]:
    """Fleet-simulator tail latencies, goodput, balance, cost (error-tolerant)."""
    scenario = result.scenario
    report = result.report
    ok = result.ok
    return {
        "model": scenario.model.name,
        "replicas": scenario.fleet_config.num_replicas,
        "router": scenario.fleet_config.router,
        "completed": report.completed_requests if ok else 0,
        "rejected": report.rejected_requests if ok else 0,
        "ttft_p50_s": report.ttft_p50 if ok else None,
        "ttft_p99_s": report.ttft_p99 if ok else None,
        "tpot_p99_s": report.tpot_p99 if ok else None,
        "requests_per_s": report.request_throughput if ok else None,
        "tokens_per_s": report.output_token_throughput if ok else None,
        "goodput_rps": report.goodput if ok else None,
        "slo_attainment": report.slo_attainment if ok else None,
        "load_imbalance": report.load_imbalance if ok else None,
        "utilization": report.device_utilization if ok else None,
        "cost_per_million_tokens_usd": report.cost_per_million_tokens if ok else None,
        "error": result.error,
    }


@register_extractor("fleet_resilience")
def _fleet_resilience(result: SweepResult) -> Mapping[str, object]:
    """Fault-injection fleet outcomes: availability, retries, wasted work (error-tolerant)."""
    scenario = result.scenario
    report = result.report
    ok = result.ok
    faults = scenario.fleet_config.faults
    return {
        "model": scenario.model.name,
        "replicas": scenario.fleet_config.num_replicas,
        "router": scenario.fleet_config.router,
        "fault_mtbf_s": faults.mtbf if faults is not None else None,
        "availability": report.availability if ok else None,
        "replica_failures": report.replica_failures if ok else 0,
        "completed": report.completed_requests if ok else 0,
        "failed": report.failed_requests if ok else 0,
        "rejected": report.rejected_requests if ok else 0,
        "retried_requests": report.retried_requests if ok else 0,
        "wasted_prefill_tokens": report.wasted_prefill_tokens if ok else 0,
        "lost_output_tokens": report.lost_output_tokens if ok else 0,
        "ttft_p99_s": report.ttft_p99 if ok else None,
        "goodput_rps": report.goodput if ok else None,
        "slo_attainment": report.slo_attainment if ok else None,
        "tokens_per_s": report.output_token_throughput if ok else None,
        "cost_per_million_tokens_usd": report.cost_per_million_tokens if ok else None,
        "error": result.error,
    }


@register_extractor("gemv_summary")
def _gemv_summary(result: SweepResult) -> Mapping[str, object]:
    """Headline errors of the Fig-3 GEMV validation flow."""
    validation = result.value
    return {
        "points": len(validation.points),
        "mean_error_varied_percent": validation.mean_error_varied_percent,
        "mean_error_constant_percent": validation.mean_error_constant_percent,
    }


# ---------------------------------------------------------------------------
# Derives
# ---------------------------------------------------------------------------

@register_derive("relative_error")
def _relative_error(
    table: SweepTable,
    run,
    predicted: str = "predicted_s",
    reference: str = "reference_s",
    column: str = "relative_error_%",
) -> None:
    """``column = 100 * (predicted - reference) / reference``, vectorized."""
    table[column] = relative_error_percent(table[predicted], table[reference])


@register_derive("sum_columns")
def _sum_columns(table: SweepTable, run, parts: Sequence[str] = (), column: str = "total") -> None:
    """``column = sum(parts)`` -- e.g. total latency from its phases."""
    total = table[parts[0]]
    for name in parts[1:]:
        total = total + table[name]
    table[column] = total


@register_derive("series_label")
def _series_label(
    table: SweepTable,
    run,
    parts: Sequence[str] = (),
    column: str = "label",
    separator: str = "-",
) -> None:
    """Concatenate string columns into the paper's legend labels."""
    columns = [table[name] for name in parts]
    table[column] = [separator.join(str(value) for value in values) for values in zip(*columns)]


@register_derive("fits_memory")
def _fits_memory(
    table: SweepTable,
    run,
    total: str = "total_gb",
    device_memory_gb: float = 80.0,
    column: str = "fits_80gb",
) -> None:
    """Whether each row's footprint fits the device memory budget."""
    table[column] = table[total] <= device_memory_gb


@register_derive("per_sequence_normalizations")
def _per_sequence_normalizations(
    table: SweepTable,
    run,
    step_time: str = "step_time_s",
    batch: str = "batch_size",
) -> None:
    """Fig-5 normalizations: per-sequence time, speed-up vs row 0, min-normalized."""
    step_times = table[step_time]
    batch_sizes = table[batch].astype(np.float64)
    per_sequence = to_milliseconds(step_times / batch_sizes)
    table["time_per_sequence_ms"] = per_sequence
    table["speedup_vs_a100"] = per_sequence[0] / per_sequence
    table["normalized_time"] = per_sequence / per_sequence.min()


@register_derive("gemm_bound_times")
def _gemm_bound_times(table: SweepTable, run) -> None:
    """Attach the per-layer compute-/memory-bound GEMM split of each row.

    Builds one attention-bound scenario per training scenario (keyed on the
    accelerator only, so grid points differing just in the network dedup
    inside the runner) and evaluates them through the run's runner.
    """
    scenarios = [
        Scenario.attention_bound(
            scenario.system.accelerator,
            scenario.model,
            micro_batch=scenario.parallelism.micro_batch_size,
            seq_len=scenario.model.max_seq_len,
            tensor_parallel=scenario.parallelism.tensor_parallel,
            precision=scenario.precision,
        )
        for scenario in run.scenarios
    ]
    bounds = run.runner.run(scenarios)
    table["gemm_compute_bound_time"] = [bound.value["compute_bound"] for bound in bounds]
    table["gemm_memory_bound_time"] = [bound.value["memory_bound"] for bound in bounds]


@register_derive("bound_fraction_projection")
def _bound_fraction_projection(table: SweepTable, run) -> SweepTable:
    """Project a technology-node table onto the Fig-7 bound-fraction view."""
    return fig7_projection(table)


def fig7_projection(rows: SweepTable) -> SweepTable:
    """The Fig-7 compute-vs-memory-bound view of a Fig-6 technology table."""
    compute_bound = rows["gemm_compute_bound_time"]
    memory_bound = rows["gemm_memory_bound_time"]
    total = compute_bound + memory_bound
    return SweepTable(
        {
            "technology_node": rows["technology_node"],
            "dram": rows["dram_technology"],
            "network": rows["inter_node_network"],
            "compute_bound_ms": compute_bound * 1e3,
            "memory_bound_ms": memory_bound * 1e3,
            "memory_bound_fraction": np.divide(
                memory_bound, total, out=np.zeros_like(memory_bound), where=total > 0
            ),
        }
    )


@register_derive("inference_memory_inset")
def _inference_memory_inset(table: SweepTable, run, context_tokens: int = 400) -> None:
    """Fig-8 inset: weight/KV footprints + device capacity per row."""
    scenarios = [
        Scenario.inference_memory(
            scenario.model,
            batch_size=scenario.batch_size,
            context_len=context_tokens,
            tensor_parallel=scenario.tensor_parallel,
            precision=scenario.precision,
        )
        for scenario in run.scenarios
    ]
    breakdowns = run.runner.run(scenarios)
    table["weights_gb"] = np.array([memory.value.weight_bytes for memory in breakdowns]) / GB
    table["kv_cache_gb"] = np.array([memory.value.kv_cache_bytes for memory in breakdowns]) / GB
    table["device_memory_gb"] = (
        np.array([scenario.system.accelerator.dram_capacity for scenario in run.scenarios]) / GB
    )


@register_derive("select_columns")
def _select_columns(table: SweepTable, run, columns: Sequence[str] = ()) -> Optional[SweepTable]:
    """Project the table onto ``columns`` (a serializable ``table.select``)."""
    return table.select(list(columns)) if columns else None
