"""Registered Study declarations for every paper table and figure.

Each builder returns the :class:`~repro.studies.study.Study` behind one of
the paper's evaluation artifacts; the registry name doubles as the CLI name
(``python -m repro run table4_gemm_bottlenecks``).  The artifact mapping:

==========================================  ==================================
Registered study                            Paper artifact
==========================================  ==================================
``table1_training_validation``              Table 1 (training validation)
``table2_inference_validation``             Table 2 (inference validation)
``table4_gemm_bottlenecks``                 Table 4 (prefill GEMM bound types)
``fig3_gemv_validation``                    Fig. 3 (GEMV calibration)
``fig4_memory_breakdown``                   Fig. 4 (training memory dissection)
``fig5_gpu_generation_scaling``             Fig. 5 (A100 -> B200 scaling)
``fig6_technology_node_scaling``            Fig. 6 (logic node x HBM x network)
``fig7_bound_breakdown``                    Fig. 7 (bound-fraction view of Fig. 6)
``fig8_inference_boundedness``              Fig. 8 (prefill boundedness + inset)
``fig9_memory_technology_scaling``          Fig. 9 (DRAM technology scaling)
``serving_latency_throughput_frontier``     beyond the paper: serving frontier
``fleet_load_frontier``                     beyond the paper: fleet frontier
``fleet_resilience``                        beyond the paper: fleet resilience
==========================================  ==================================

The thin public drivers in :mod:`repro.analysis.experiments` and
:mod:`repro.dse.scaling` call these builders and run the result, so the
declarations here are the single source of truth for what each artifact
sweeps.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..hardware.accelerator import get_accelerator
from ..hardware.cluster import build_system, preset_cluster
from ..hardware.datatypes import Precision
from ..hardware.memory import get_dram_technology
from ..hardware.technology import NODE_ORDER
from ..hardware.uarch import ResourceBudget
from ..memmodel.activations import RecomputeStrategy
from ..models.transformer import TransformerConfig
from ..models.zoo import get_model
from ..parallelism.config import ParallelismConfig, parse_parallelism_label
from ..serving.faults import FaultConfig, RetryPolicy
from ..serving.fleet import FleetConfig
from ..serving.report import ServingSLO
from ..serving.request import FleetTraceConfig, LengthDistribution, TenantTrace, TraceConfig
from ..serving.scheduler import SchedulerConfig
from ..serving.simulator import ServingConfig
from ..sweep.runner import SweepRunner, default_runner
from ..sweep.scenario import Scenario
from ..validation.reference import (
    CASE_STUDY_CONFIGS,
    GPU_GENERATION_SCALING_SYSTEMS,
    TABLE1_TRAINING_ROWS,
    TABLE2_INFERENCE_ROWS,
)
from .registry import register_study
from .study import Study


# ---------------------------------------------------------------------------
# Table 1: training-time validation on A100 clusters
# ---------------------------------------------------------------------------

@register_study(artifact="Table 1", description="Predicted vs published training time per batch (A100 clusters)")
def table1_training_validation(rows=None) -> Study:
    """The Table-1 validation sweep: one case per published Megatron row."""
    rows = rows if rows is not None else TABLE1_TRAINING_ROWS
    cases = [
        {
            "model": row.model,
            "num_gpus": row.num_gpus,
            "parallelism": parse_parallelism_label(row.parallelism_label, micro_batch_size=row.micro_batch_size),
            "recompute": row.recompute,
            "reference_s": row.reference_seconds,
            "paper_pred_s": row.paper_prediction_seconds,
            "system": build_system(
                "A100",
                num_devices=row.num_gpus,
                intra_node="NVLink3",
                inter_node="HDR-IB",
                devices_per_node=8,
            ),
            "global_batch_size": row.global_batch_size,
        }
        for row in rows
    ]
    return Study(
        name="table1_training_validation",
        kind="training",
        axes={"case": cases},
        columns=("model", "num_gpus", "parallelism", "recompute", "reference_s", "paper_pred_s"),
        extract="training_validation",
        derive=("relative_error", {"predicted": "predicted_s", "reference": "reference_s"}),
        artifact="Table 1",
    )


# ---------------------------------------------------------------------------
# Table 2: inference-latency validation on A100 / H100 systems
# ---------------------------------------------------------------------------

@register_study(artifact="Table 2", description="Predicted vs NVIDIA-reported Llama-2 inference latency")
def table2_inference_validation(rows=None, decode_mode: str = "average") -> Study:
    """The Table-2 validation sweep: one case per NVIDIA-reported row."""
    rows = rows if rows is not None else TABLE2_INFERENCE_ROWS
    cases = [
        {
            "model": row.model,
            "gpu": row.gpu,
            "num_gpus": row.num_gpus,
            "nvidia_ms": row.nvidia_latency_ms,
            "paper_pred_ms": row.paper_prediction_ms,
            "system": build_system(
                row.gpu,
                num_devices=max(1, row.num_gpus),
                intra_node="NVLink3" if row.gpu.upper() == "A100" else "NVLink4",
                inter_node="NDR-IB",
                devices_per_node=8,
            ),
            "batch_size": row.batch_size,
            "prompt_tokens": row.prompt_tokens,
            "generated_tokens": row.generated_tokens,
            "tensor_parallel": row.num_gpus,
        }
        for row in rows
    ]
    return Study(
        name="table2_inference_validation",
        kind="inference",
        axes={"case": cases},
        fixed={"decode_mode": decode_mode},
        columns=("model", "gpu", "num_gpus", "nvidia_ms", "paper_pred_ms"),
        extract="inference_validation",
        derive=("relative_error", {"predicted": "predicted_ms", "reference": "nvidia_ms"}),
        artifact="Table 2",
    )


# ---------------------------------------------------------------------------
# Table 4: per-GEMM bottlenecks of the prefill phase
# ---------------------------------------------------------------------------

@register_study(artifact="Table 4", description="Time and bound type of each prefill GEMM per layer")
def table4_gemm_bottlenecks(
    model_name: str = "Llama2-13B",
    gpus: Sequence[str] = ("A100", "H100"),
    batch_size: int = 1,
    prompt_tokens: int = 200,
) -> Study:
    """The Table-4 bottleneck sweep; fully name-based, so it JSON-serializes."""
    return Study(
        name="table4_gemm_bottlenecks",
        kind="prefill_bottlenecks",
        axes={"gpu": list(gpus)},
        fixed={
            "model": model_name,
            "batch_size": batch_size,
            "prompt_tokens": prompt_tokens,
            "tensor_parallel": 1,
            "precision": "fp16",
        },
        rename={"gpu": "accelerator"},
        extract="gemm_bottlenecks",
        artifact="Table 4",
    )


# ---------------------------------------------------------------------------
# Fig. 3: GEMV validation
# ---------------------------------------------------------------------------

@register_study(artifact="Fig. 3", description="GEMV latency validation, varied vs constant DRAM utilization")
def fig3_gemv_validation(num_clusters: int = 3, seed: int = 2024) -> Study:
    """The Fig.-3 calibration/validation flow (a single-scenario study)."""
    return Study(
        name="fig3_gemv_validation",
        kind="gemv_validation",
        fixed={"num_clusters": num_clusters, "seed": seed},
        extract="gemv_summary",
        artifact="Fig. 3",
    )


# ---------------------------------------------------------------------------
# Fig. 4: training memory dissection
# ---------------------------------------------------------------------------

#: Table-1 parallelism/batch settings reused by the Fig.-4 memory dissection.
_FIG4_TABLE1_CONFIG = {
    "GPT-175B": ("1-8-8-1", 64),
    "GPT-530B": ("1-8-35-1", 280),
    "GPT-1008B": ("1-8-64-1", 512),
}


@register_study(artifact="Fig. 4", description="Per-device training memory breakdown per recompute strategy")
def fig4_memory_breakdown(
    models: Sequence[str] = ("GPT-175B", "GPT-530B", "GPT-1008B"),
    strategies: Sequence[str] = ("none", "selective", "full"),
    device_memory_gb: float = 80.0,
) -> Study:
    """The Fig.-4 memory sweep: models (with their Table-1 configs) x strategies."""
    cases = []
    for model_name in models:
        label, batch = _FIG4_TABLE1_CONFIG[model_name]
        cases.append(
            {
                "model": model_name,
                "parallelism": parse_parallelism_label(label, micro_batch_size=1),
                "global_batch_size": batch,
            }
        )
    return Study(
        name="fig4_memory_breakdown",
        kind="training_memory",
        axes={"case": cases, "strategy": list(strategies)},
        rename={"strategy": "recompute"},
        columns=("model", "strategy"),
        extract="training_memory_gb",
        derive=("fits_memory", {"device_memory_gb": device_memory_gb}),
        artifact="Fig. 4",
    )


# ---------------------------------------------------------------------------
# Fig. 5: training performance scaling across GPU generations
# ---------------------------------------------------------------------------

#: Per-generation training precision: H100/H200 use the FP8 transformer
#: engine, B200 additionally enables FP4 processing, as the paper describes.
GENERATION_PRECISION = {
    "A100": Precision.FP16,
    "H100": Precision.FP8,
    "H200": Precision.FP8,
    "B200": Precision.FP4,
}


@register_study(artifact="Fig. 5", description="GPT-175B training time across A100..B200 preset clusters")
def fig5_gpu_generation_scaling(
    systems: Optional[Sequence] = None,
    model_name: str = "GPT-175B",
    virtual_pipeline_stages: int = 6,
) -> Study:
    """The Fig.-5 generation sweep: one case per preset cluster.

    The "-L" (large-batch) variants exploit their larger DRAM capacity with
    both a 4x global batch and a larger micro-batch, as the paper's
    narrative describes.
    """
    systems = systems if systems is not None else GPU_GENERATION_SCALING_SYSTEMS
    case = CASE_STUDY_CONFIGS[model_name]
    model = get_model(model_name)
    cases = []
    for system_name, batch_size in systems:
        generation = system_name.split("-")[0].upper()
        precision = GENERATION_PRECISION.get(generation, Precision.FP16)
        large_memory_variant = system_name.upper().endswith("-L")
        cases.append(
            {
                "system": preset_cluster(system_name, num_devices=case.num_gpus),
                "batch_size": batch_size,
                "precision": precision.value,
                "model": model,
                "parallelism": ParallelismConfig(
                    data_parallel=case.data_parallel,
                    tensor_parallel=case.tensor_parallel,
                    pipeline_parallel=case.pipeline_parallel,
                    sequence_parallel=True,
                    micro_batch_size=4 if large_memory_variant else 1,
                    pipeline_schedule="interleaved",
                    virtual_pipeline_stages=virtual_pipeline_stages,
                ),
                "global_batch_size": batch_size,
                "seq_len": case.seq_len,
                "recompute": "selective",
            }
        )
    return Study(
        name="fig5_gpu_generation_scaling",
        kind="training",
        axes={"case": cases},
        columns=("system", "batch_size", "precision"),
        extract="training_step",
        derive=("per_sequence_normalizations",),
        artifact="Fig. 5",
    )


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 7: technology-node scaling (also the first DSE case study)
# ---------------------------------------------------------------------------

#: The six Fig.-6 legend curves: HBM generations on NDR, then faster networks.
FIG6_COMBINATIONS = (
    {"dram": "HBM2", "network": "NDR-x8"},
    {"dram": "HBM2E", "network": "NDR-x8"},
    {"dram": "HBM3", "network": "NDR-x8"},
    {"dram": "HBM4", "network": "NDR-x8"},
    {"dram": "HBM4", "network": "XDR-x8"},
    {"dram": "HBM4", "network": "GDR-x8"},
)


@register_study(
    name="fig6_technology_node_scaling",
    artifact="Fig. 6",
    description="GPT-7B training time across logic nodes x HBM x networks",
)
def technology_node_scaling(
    model: "TransformerConfig | str" = "GPT-7B",
    parallelism: Optional[ParallelismConfig] = None,
    global_batch_size: int = 512,
    num_devices: int = 1024,
    nodes: Sequence[str] = tuple(NODE_ORDER),
    combinations: Optional[Sequence[Dict[str, str]]] = None,
    precision: Precision = Precision.FP16,
    recompute: RecomputeStrategy = RecomputeStrategy.SELECTIVE,
    optimize_allocation: bool = False,
    budget: Optional[ResourceBudget] = None,
    runner: Optional[SweepRunner] = None,
) -> Study:
    """The Fig.-6 technology sweep over derived (node, DRAM, network) devices.

    ``optimize_allocation`` runs the per-node DSE area/power allocation
    search while the cases are built (probes go through ``runner``).
    """
    from ..dse.space import DesignPoint, DesignSpace  # local: dse imports studies

    model = get_model(model) if isinstance(model, str) else model
    if parallelism is None:
        parallelism = ParallelismConfig(
            data_parallel=64,
            tensor_parallel=4,
            pipeline_parallel=4,
            sequence_parallel=True,
            micro_batch_size=1,
        )
    combinations = list(combinations) if combinations is not None else [dict(c) for c in FIG6_COMBINATIONS]
    budget = budget or ResourceBudget()
    space = DesignSpace(budget=budget)
    cases = []
    for node in nodes:
        for combo in combinations:
            point = DesignPoint(
                technology_node=node,
                dram_technology=combo["dram"],
                inter_node_network=combo["network"],
            )
            if optimize_allocation:
                point = _optimize_point(
                    point, space, model, parallelism, global_batch_size, num_devices,
                    precision, recompute, budget, runner,
                )
            cases.append(
                {
                    "technology_node": node,
                    "dram_technology": combo["dram"],
                    "inter_node_network": combo["network"],
                    "system": point.build_system(num_devices=num_devices, budget=budget),
                }
            )
    return Study(
        name="fig6_technology_node_scaling",
        kind="training",
        axes={"case": cases},
        fixed={
            "model": model,
            "parallelism": parallelism,
            "global_batch_size": global_batch_size,
            "precision": precision,
            "recompute": recompute,
        },
        columns=("technology_node", "dram_technology", "inter_node_network"),
        extract="training_times",
        derive=(
            "gemm_bound_times",
            ("series_label", {"parts": ("dram_technology", "inter_node_network")}),
        ),
        artifact="Fig. 6",
    )


@register_study(artifact="Fig. 7", description="Compute- vs memory-bound GEMM time per layer across nodes")
def fig7_bound_breakdown(**kwargs) -> Study:
    """The Fig.-7 view: the Fig.-6 study projected onto bound fractions."""
    study = technology_node_scaling(**kwargs)
    return Study(
        name="fig7_bound_breakdown",
        kind=study.kind,
        axes=study.axes,
        fixed=study.fixed,
        columns=study.columns,
        extract=study.extract,
        derive=tuple(study.derive) + ("bound_fraction_projection",),
        artifact="Fig. 7",
    )


def _optimize_point(
    point,
    space,
    model: TransformerConfig,
    parallelism: ParallelismConfig,
    global_batch_size: int,
    num_devices: int,
    precision: Precision,
    recompute: RecomputeStrategy,
    budget: ResourceBudget,
    runner: Optional[SweepRunner] = None,
):
    """Optimize the area/power allocation of ``point`` for the training workload.

    The descent's gradient probes go through ``probe_objective`` -- one
    batched :meth:`SweepRunner.run` call per descent iteration -- so the
    runner deduplicates repeated probe points and infeasible corners are
    captured per-probe instead of aborting the whole batch.
    """
    from ..dse.search import GradientDescentSearch

    runner = runner or default_runner()

    def scenario_for(candidate) -> Scenario:
        return Scenario.training(
            candidate.build_system(num_devices=num_devices, budget=budget),
            model,
            parallelism,
            global_batch_size=global_batch_size,
            precision=precision,
            recompute=recompute,
        )

    def objective(candidate) -> float:
        return runner.evaluate(scenario_for(candidate)).step_time

    def probe_objective(candidates) -> Sequence[float]:
        results = runner.run((scenario_for(candidate) for candidate in candidates), capture_errors=True)
        return [float("inf") if result.error is not None else result.value.step_time for result in results]

    search = GradientDescentSearch(
        space, initial_step=0.1, min_step=0.02, max_iterations=15, batch_objective=probe_objective
    )
    return search.search(objective, starting_points=[point]).best_point


# ---------------------------------------------------------------------------
# Fig. 8: compute vs memory boundedness of the prefill phase
# ---------------------------------------------------------------------------

@register_study(artifact="Fig. 8", description="Prefill GEMM-time bound fractions plus the memory inset")
def fig8_inference_boundedness(
    model_name: str = "Llama2-13B",
    gpus: Sequence[str] = ("A100", "H100"),
    batch_sizes: Sequence[int] = (1, 16),
    prompt_tokens: int = 200,
    context_tokens: int = 400,
) -> Study:
    """The Fig.-8 boundedness sweep (GPU x batch); fully name-based."""
    return Study(
        name="fig8_inference_boundedness",
        kind="prefill_bottlenecks",
        axes={"gpu": list(gpus), "batch_size": list(batch_sizes)},
        fixed={
            "model": model_name,
            "prompt_tokens": prompt_tokens,
            "tensor_parallel": 1,
            "precision": "fp16",
        },
        rename={"gpu": "accelerator"},
        extract="gemm_bound_totals",
        derive=("inference_memory_inset", {"context_tokens": context_tokens}),
        artifact="Fig. 8",
    )


# ---------------------------------------------------------------------------
# Fig. 9: DRAM technology scaling for inference (the second DSE case study)
# ---------------------------------------------------------------------------

@register_study(
    name="fig9_memory_technology_scaling",
    artifact="Fig. 9",
    description="Llama2-13B inference latency vs DRAM technology, 2 and 8 GPUs",
)
def inference_memory_scaling(
    model: "TransformerConfig | str" = "Llama2-13B",
    gpu_counts: Sequence[int] = (2, 8),
    memory_technologies: Sequence[str] = ("GDDR6", "HBM2", "HBM2E", "HBM3", "HBM3E", "HBMX"),
    extra_points: Optional[Sequence[Dict[str, str]]] = None,
    batch_size: int = 1,
    prompt_tokens: int = 200,
    generated_tokens: int = 200,
    precision: Precision = Precision.FP16,
    base_accelerator: str = "A100",
    decode_mode: str = "average",
) -> Study:
    """The Fig.-9 DRAM sweep: the base compute die with swapped memory.

    Intra-node networking is NVLink-Gen3 except for the extra
    HBMX-NVLink-Gen4 point; ``decode_mode="exact"`` prices the decode phase
    per token through the batched roofline backend.
    """
    model = get_model(model) if isinstance(model, str) else model
    if extra_points is None:
        extra_points = [{"dram": "HBMX", "network": "NVLink4"}]
    base = get_accelerator(base_accelerator)
    sweep = [{"dram": tech, "network": "NVLink3"} for tech in memory_technologies]
    sweep.extend(extra_points)
    cases = []
    for combo in sweep:
        technology = get_dram_technology(combo["dram"]).with_capacity(base.dram_capacity)
        accelerator = base.with_dram(technology, keep_capacity=True)
        cases.append(
            {
                "dram_technology": combo["dram"],
                "network": combo["network"],
                "accelerator": accelerator,
            }
        )

    def prepare(flat: Dict[str, object]) -> Dict[str, object]:
        num_gpus = flat["num_gpus"]
        accelerator = flat["accelerator"]
        flat["system"] = build_system(
            accelerator,
            num_devices=num_gpus,
            intra_node=flat["network"],
            inter_node="HDR-IB",
            devices_per_node=8,
            name=f"{base.name}-{flat['dram_technology']}-{flat['network']}",
        )
        flat["tensor_parallel"] = num_gpus
        return flat

    return Study(
        name="fig9_memory_technology_scaling",
        kind="inference",
        axes={"num_gpus": list(gpu_counts), "case": cases},
        fixed={
            "model": model,
            "batch_size": batch_size,
            "prompt_tokens": prompt_tokens,
            "generated_tokens": generated_tokens,
            "precision": precision,
            "decode_mode": decode_mode,
        },
        columns=("dram_technology", "network", "num_gpus"),
        prepare=prepare,
        extract="inference_times",
        derive=(
            ("sum_columns", {"parts": ("memory_time", "communication_time"), "column": "total_latency"}),
            ("series_label", {"parts": ("dram_technology", "network")}),
        ),
        artifact="Fig. 9",
    )


# ---------------------------------------------------------------------------
# Beyond the paper: the request-level serving frontier
# ---------------------------------------------------------------------------

@register_study(
    artifact="serving frontier",
    description="Latency-throughput frontier of the request-level serving simulator",
)
def serving_latency_throughput_frontier(
    model_name: str = "Llama2-13B",
    gpu: str = "A100",
    num_devices: int = 8,
    arrival_rates: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    tensor_parallels: Sequence[int] = (1,),
    arrival: str = "poisson",
    num_requests: int = 48,
    prompt_lengths: Optional[LengthDistribution] = None,
    output_lengths: Optional[LengthDistribution] = None,
    seed: int = 2024,
    max_batch_size: int = 32,
    slo: Optional[ServingSLO] = None,
    precision: "Precision | str" = Precision.FP16,
) -> Study:
    """The serving-frontier sweep over (TP degree, arrival rate) grid points.

    Infeasible corners (e.g. the model does not fit one device) land in the
    ``error`` column instead of aborting the sweep.
    """
    system = build_system(
        gpu,
        num_devices=num_devices,
        intra_node="NVLink3" if gpu.upper().startswith("A100") else "NVLink4",
        inter_node="HDR-IB",
    )
    slo = slo or ServingSLO()
    prompt_lengths = prompt_lengths or LengthDistribution.uniform(64, 512)
    output_lengths = output_lengths or LengthDistribution.constant(128)

    def prepare(flat: Dict[str, object]) -> Dict[str, object]:
        flat["serving"] = ServingConfig(
            trace=TraceConfig(
                rate=flat["arrival_rate"],
                num_requests=num_requests,
                arrival=arrival,
                prompt_lengths=prompt_lengths,
                output_lengths=output_lengths,
                seed=seed,
            ),
            scheduler=SchedulerConfig(max_batch_size=max_batch_size),
            slo=slo,
        )
        return flat

    return Study(
        name="serving_latency_throughput_frontier",
        kind="serving",
        axes={"tensor_parallel": list(tensor_parallels), "arrival_rate": list(arrival_rates)},
        fixed={"system": system, "model": model_name, "precision": precision, "gpu": gpu},
        columns=("gpu", "tensor_parallel", "arrival_rate"),
        prepare=prepare,
        extract="serving_frontier",
        capture_errors=True,
        artifact="serving frontier",
    )


# ---------------------------------------------------------------------------
# Beyond the paper: the fleet-scale (replicas x router) frontier
# ---------------------------------------------------------------------------

@register_study(
    artifact="fleet frontier",
    description="Fleet-scale goodput/cost frontier over replica count and routing policy",
)
def fleet_load_frontier(
    model_name: str = "Llama2-13B",
    gpu: str = "A100",
    num_devices: int = 8,
    replica_counts: Sequence[int] = (1, 2, 4),
    routers: Sequence[str] = ("round_robin", "least_kv_load", "least_queue", "prefix_affinity"),
    rate_per_tenant: float = 4.0,
    requests_per_tenant: int = 96,
    max_batch_size: int = 32,
    slo: Optional[ServingSLO] = None,
    precision: "Precision | str" = Precision.FP16,
) -> Study:
    """The fleet frontier over (replica count, routing policy) grid points.

    The workload is a two-tenant diurnal trace -- a chatbot-shaped tenant
    whose load peaks mid-period and a batch-summarization tenant arriving in
    bursts against an inverted profile -- so the routing policies actually
    face imbalance.  Per-replica TP is fixed at 1; infeasible corners land in
    the ``error`` column.
    """
    system = build_system(
        gpu,
        num_devices=num_devices,
        intra_node="NVLink3" if gpu.upper().startswith("A100") else "NVLink4",
        inter_node="HDR-IB",
    )
    slo = slo or ServingSLO()
    trace = FleetTraceConfig(
        tenants=(
            TenantTrace(
                trace=TraceConfig(
                    rate=rate_per_tenant,
                    num_requests=requests_per_tenant,
                    arrival="poisson",
                    prompt_lengths=LengthDistribution.uniform(64, 512),
                    output_lengths=LengthDistribution.constant(128),
                    seed=2024,
                ),
                name="chat",
                diurnal=(0.5, 1.0, 2.0, 0.5),
                period=240.0,
            ),
            TenantTrace(
                trace=TraceConfig(
                    rate=rate_per_tenant / 2.0,
                    num_requests=requests_per_tenant // 2,
                    arrival="bursty",
                    prompt_lengths=LengthDistribution.lognormal(256, 0.8, maximum=2048),
                    output_lengths=LengthDistribution.uniform(32, 256),
                    seed=7,
                ),
                name="batch-summarize",
                diurnal=(2.0, 0.5, 0.5, 2.0),
                period=240.0,
            ),
        )
    )

    def prepare(flat: Dict[str, object]) -> Dict[str, object]:
        flat["fleet"] = FleetConfig(
            trace=trace,
            num_replicas=flat["replicas"],
            router=flat["router"],
            scheduler=SchedulerConfig(max_batch_size=max_batch_size),
            slo=slo,
        )
        return flat

    return Study(
        name="fleet_load_frontier",
        kind="fleet",
        axes={"replicas": list(replica_counts), "router": list(routers)},
        fixed={"system": system, "model": model_name, "precision": precision, "gpu": gpu},
        columns=("gpu", "replicas", "router"),
        prepare=prepare,
        extract="fleet_frontier",
        capture_errors=True,
        artifact="fleet frontier",
    )


# ---------------------------------------------------------------------------
# Beyond the paper: fleet resilience under replica failures
# ---------------------------------------------------------------------------

@register_study(
    artifact="fleet resilience",
    description="Availability/goodput degradation under replica faults, by router and retry policy",
)
def fleet_resilience(
    model_name: str = "Llama2-7B",
    gpu: str = "A100",
    num_devices: int = 8,
    num_replicas: int = 4,
    mtbf_values: Sequence[float] = (0.0, 120.0, 30.0),
    routers: Sequence[str] = ("round_robin", "least_queue"),
    retry_attempts: Sequence[int] = (1, 3),
    mttr: float = 10.0,
    fault_seed: int = 2024,
    rate: float = 8.0,
    num_requests: int = 128,
    max_batch_size: int = 32,
    slo: Optional[ServingSLO] = None,
    precision: "Precision | str" = Precision.FP16,
) -> Study:
    """Fleet goodput/availability under fault injection, over three axes.

    ``mtbf_s`` sweeps the per-replica mean time between failures, with the
    sentinel ``0`` meaning *faults disabled* (the baseline row every other
    point is compared against -- it runs the exact non-resilient fleet
    path).  ``router`` varies how lost requests are re-spread, and
    ``retry_max_attempts`` prices how much re-prefill work the retry policy
    is willing to buy before declaring a request failed.
    """
    system = build_system(
        gpu,
        num_devices=num_devices,
        intra_node="NVLink3" if gpu.upper().startswith("A100") else "NVLink4",
        inter_node="HDR-IB",
    )
    slo = slo or ServingSLO()
    trace = FleetTraceConfig(
        tenants=(
            TenantTrace(
                trace=TraceConfig(
                    rate=rate,
                    num_requests=num_requests,
                    arrival="poisson",
                    prompt_lengths=LengthDistribution.uniform(64, 512),
                    output_lengths=LengthDistribution.constant(96),
                    seed=2024,
                ),
                name="chat",
            ),
        )
    )

    def prepare(flat: Dict[str, object]) -> Dict[str, object]:
        mtbf = float(flat["mtbf_s"])
        flat["fleet"] = FleetConfig(
            trace=trace,
            num_replicas=num_replicas,
            router=flat["router"],
            scheduler=SchedulerConfig(max_batch_size=max_batch_size),
            slo=slo,
            faults=FaultConfig(mtbf=mtbf, mttr=mttr, seed=fault_seed) if mtbf > 0 else None,
            retry=RetryPolicy(max_attempts=int(flat["retry_max_attempts"])),
        )
        return flat

    return Study(
        name="fleet_resilience",
        kind="fleet",
        axes={
            "mtbf_s": list(mtbf_values),
            "router": list(routers),
            "retry_max_attempts": list(retry_attempts),
        },
        fixed={"system": system, "model": model_name, "precision": precision, "gpu": gpu},
        columns=("gpu", "mtbf_s", "router", "retry_max_attempts"),
        prepare=prepare,
        extract="fleet_resilience",
        capture_errors=True,
        artifact="fleet resilience",
    )
